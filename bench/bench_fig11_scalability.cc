// Reproduces Figure 11: time efficiency.
//  (a) computation time vs data cardinality n on a 4-D US-census-style
//      dataset: DPCopula, PSD, Privelet+ (Privelet+ on a coarsened grid
//      that fits the dense-histogram cell budget, as in Fig. 7).
//  (b) computation time vs dimensionality at n = 50000: DPCopula vs PSD.
// Paper findings: all methods are linear in n (DPCopula flat thanks to tau
// subsampling); DPCopula's time grows quadratically with m but stays
// acceptable at 8D.
#include <cstdio>

#include "baselines/privelet.h"
#include "baselines/psd.h"
#include "bench/bench_util.h"
#include "core/hybrid.h"
#include "data/census.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  bench::PrintBanner("Figure 11: time efficiency", cfg);
  Rng master(cfg.seed);

  std::printf("\n(a) time vs cardinality (4D US-census-style data)\n");
  bench::PrintSeriesHeader("n", {"DPCopula(s)", "PSD(s)", "Privelet+(s)"});
  const std::vector<std::size_t> cardinalities =
      cfg.ProfileName() == "paper"
          ? std::vector<std::size_t>{50000, 100000, 200000, 400000, 800000}
          : std::vector<std::size_t>{10000, 20000, 40000, 80000};
  for (std::size_t n : cardinalities) {
    auto table = data::GenerateUsCensus(n, &master);
    Rng rng = master.Split();

    bench::Timer t1;
    core::HybridOptions hopts;
    hopts.epsilon = cfg.epsilon;
    auto dpc = core::SynthesizeHybrid(*table, hopts, &rng);
    const double dpc_time = t1.Seconds();
    if (!dpc.ok()) {
      std::fprintf(stderr, "DPCopula failed: %s\n",
                   dpc.status().ToString().c_str());
      return 1;
    }

    bench::Timer t2;
    auto psd = baselines::PsdTree::Build(*table, cfg.epsilon, &rng);
    const double psd_time = t2.Seconds();

    const auto coarse = bench::CoarsenTable(*table, 1ULL << 22);
    bench::Timer t3;
    auto pvl =
        baselines::PriveletMechanism::Release(coarse.table, cfg.epsilon, &rng);
    const double pvl_time = t3.Seconds();
    if (!psd.ok() || !pvl.ok()) {
      std::fprintf(stderr, "baseline failed\n");
      return 1;
    }
    bench::PrintSeriesRow(static_cast<double>(n),
                          {dpc_time, psd_time, pvl_time});
  }

  std::printf("\n(b) time vs dimensionality (n=%lld, domain=%lld)\n",
              static_cast<long long>(cfg.num_tuples),
              static_cast<long long>(cfg.domain_size));
  bench::PrintSeriesHeader("m", {"DPCopula(s)", "PSD(s)"});
  for (std::size_t m : {2u, 4u, 6u, 8u}) {
    data::Table table =
        bench::MakeGaussianTable(static_cast<std::size_t>(cfg.num_tuples), m,
                                 cfg.domain_size, &master);
    Rng rng = master.Split();
    bench::Timer t1;
    core::DpCopulaOptions opts;
    opts.epsilon = cfg.epsilon;
    auto dpc = core::Synthesize(table, opts, &rng);
    const double dpc_time = t1.Seconds();
    bench::Timer t2;
    auto psd = baselines::PsdTree::Build(table, cfg.epsilon, &rng);
    const double psd_time = t2.Seconds();
    if (!dpc.ok() || !psd.ok()) {
      std::fprintf(stderr, "mechanism failed at m=%zu\n", m);
      return 1;
    }
    bench::PrintSeriesRow(static_cast<double>(m), {dpc_time, psd_time});
  }
  std::printf(
      "\nexpected shape: (a) every method ~linear in n; (b) DPCopula time "
      "grows ~quadratically with m yet stays in seconds at 8D.\n");
  return 0;
}
