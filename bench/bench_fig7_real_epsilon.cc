// Reproduces Figure 7: relative error vs privacy budget on the two census
// datasets.
//  (a) US census (4 attrs): DPCopula-Hybrid vs Privelet+, PSD, FP, P-HP.
//  (b) Brazil census (8 attrs): DPCopula-Hybrid vs PSD (and P-HP where its
//      dense histogram is feasible).
// Paper findings: DPCopula outperforms every baseline, the gap widening as
// epsilon shrinks; its accuracy is robust across epsilon.
//
// Dense-histogram baselines (Privelet+, P-HP) cannot materialize the full
// US product domain (~10^8 cells) or the Brazil domain (~10^11 cells), so
// they run on a coarsened grid that fits the cell budget (reported below) —
// the same scalability wall §5.1 of the paper discusses. PSD, FP and
// DPCopula run on the original domains.
#include <cstdio>
#include <memory>

#include "baselines/filter_priority.h"
#include "baselines/php.h"
#include "baselines/privelet.h"
#include "baselines/psd.h"
#include "bench/bench_util.h"
#include "core/hybrid.h"
#include "data/census.h"
#include "query/metrics.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

namespace {

constexpr std::uint64_t kGridCellBudget = 1ULL << 22;  // 4M cells.

void RunDataset(const char* title, const data::Table& table,
                double sanity_bound, const query::ExperimentConfig& cfg,
                bool include_grid_methods, Rng* master) {
  std::printf("\n%s (n=%zu, domain space=%.3g)\n", title, table.num_rows(),
              table.schema().DomainSpace());

  const bench::CoarsenedTable coarse =
      bench::CoarsenTable(table, kGridCellBudget);
  std::printf("grid methods run on a coarsened domain (factors:");
  for (auto f : coarse.factors) std::printf(" %lld", static_cast<long long>(f));
  std::printf(")\n");

  std::vector<std::string> methods = {"DPCopula", "PSD", "FP"};
  if (include_grid_methods) {
    methods.push_back("Privelet+");
    methods.push_back("P-HP");
  } else {
    methods.push_back("P-HP");
  }
  bench::PrintSeriesHeader("epsilon", methods);

  for (double epsilon : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> totals(methods.size(), 0.0);
    for (std::size_t run = 0; run < cfg.num_runs; ++run) {
      Rng rng = master->Split();
      const auto workload =
          query::RandomWorkload(table.schema(), cfg.queries_per_run, &rng);
      const auto truth = query::ComputeTrueAnswers(table, workload);

      std::size_t mi = 0;
      {  // DPCopula-Hybrid.
        core::HybridOptions opts;
        opts.epsilon = epsilon;
        opts.inner.budget_ratio_k = cfg.budget_ratio_k;
        auto res = core::SynthesizeHybrid(table, opts, &rng);
        baselines::TableEstimator est(res->synthetic, "DPCopula");
        totals[mi++] += query::EvaluateWorkloadWithTruth(*truth, est,
                                                         workload,
                                                         sanity_bound)
                            ->mean_relative_error;
      }
      {  // PSD on the original domain.
        auto tree = baselines::PsdTree::Build(table, epsilon, &rng);
        totals[mi++] += query::EvaluateWorkloadWithTruth(*truth, **tree,
                                                         workload,
                                                         sanity_bound)
                            ->mean_relative_error;
      }
      {  // FP on the original domain (sparse summary).
        auto fp = baselines::FilterPrioritySummary::Build(table, epsilon,
                                                          &rng);
        totals[mi++] += query::EvaluateWorkloadWithTruth(*truth, **fp,
                                                         workload,
                                                         sanity_bound)
                            ->mean_relative_error;
      }
      if (include_grid_methods) {  // Privelet+ on the coarsened grid.
        auto pvl = baselines::PriveletMechanism::Release(coarse.table,
                                                         epsilon, &rng);
        bench::CoarsenedEstimator est(pvl->get(), coarse.factors);
        totals[mi++] += query::EvaluateWorkloadWithTruth(*truth, est,
                                                         workload,
                                                         sanity_bound)
                            ->mean_relative_error;
      }
      {  // P-HP on the coarsened grid.
        auto php =
            baselines::PhpMechanism::Release(coarse.table, epsilon, &rng);
        bench::CoarsenedEstimator est(php->get(), coarse.factors);
        totals[mi++] += query::EvaluateWorkloadWithTruth(*truth, est,
                                                         workload,
                                                         sanity_bound)
                            ->mean_relative_error;
      }
    }
    for (double& t : totals) t /= static_cast<double>(cfg.num_runs);
    bench::PrintSeriesRow(epsilon, totals);
  }
}

}  // namespace

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  bench::PrintBanner("Figure 7: relative error vs privacy budget (census)",
                     cfg);
  Rng master(cfg.seed);

  // Census cardinality is part of the experiment definition (paper: 100000
  // US / 188846 Brazil); the fast profile halves it rather than dropping to
  // Table 3's synthetic n, because relative errors scale with cardinality.
  const std::size_t us_rows =
      cfg.ProfileName() == "paper" ? 100000 : 50000;
  auto us = data::GenerateUsCensus(us_rows, &master);
  RunDataset("(a) US census", *us,
             query::UsCensusSanityBound(static_cast<std::int64_t>(us_rows)),
             cfg, /*include_grid_methods=*/true, &master);

  const std::size_t br_rows =
      cfg.ProfileName() == "paper" ? 188846 : 50000;
  auto br = data::GenerateBrazilCensus(br_rows, &master);
  RunDataset("(b) Brazil census", *br, query::BrazilSanityBound(), cfg,
             /*include_grid_methods=*/false, &master);

  std::printf(
      "\nexpected shape: DPCopula lowest error at every epsilon; the gap "
      "vs PSD/P-HP/FP widens as epsilon decreases.\n");
  return 0;
}
