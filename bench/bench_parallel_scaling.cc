// bench_parallel_scaling — rows/sec and speedup of the deterministic
// parallel execution layer at 1/2/4/8 threads, for the four pooled hot
// paths: Algorithm 3 sampling, the Kendall estimator, the MLE estimator,
// and Algorithm 6 hybrid synthesis.
//
// Every configuration also cross-checks that the multi-threaded output is
// byte-identical to the single-threaded one (the RNG-split sharding
// contract), so this doubles as a stress test of the determinism
// guarantee. The default profile is sized for CI; DPCOPULA_BENCH_FULL=1
// runs the acceptance workload (10 attributes x 1M rows for sampling).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "copula/mle_estimator.h"
#include "copula/sampler.h"
#include "core/hybrid.h"
#include "data/census.h"
#include "data/generator.h"
#include "stats/empirical_cdf.h"

namespace {

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

bool TablesEqual(const data::Table& a, const data::Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (std::size_t j = 0; j < a.num_columns(); ++j) {
    if (a.column(j) != b.column(j)) return false;
  }
  return true;
}

void PrintHeader(const char* name, const char* unit, bool deterministic) {
  std::printf("\n%s (determinism vs 1 thread: %s)\n", name,
              deterministic ? "OK" : "VIOLATED");
  std::printf("%-10s%16s%16s%12s\n", "threads", "seconds", unit, "speedup");
}

void PrintRow(int threads, double secs, double work, double base_secs) {
  std::printf("%-10d%16.4f%16.4g%12.2fx\n", threads, secs, work / secs,
              base_secs / secs);
}

}  // namespace

int main() {
  const bool full = std::getenv("DPCOPULA_BENCH_FULL") != nullptr;
  const std::size_t sample_rows = full ? 1000000 : 100000;
  const std::size_t data_rows = full ? 20000 : 5000;
  const std::size_t hybrid_rows = full ? 50000 : 10000;
  const std::size_t m = 10;
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::printf("=== parallel scaling: sampler / Kendall / MLE / hybrid ===\n");
  std::printf(
      "hardware threads: %d   profile: %s   "
      "(DPCOPULA_BENCH_FULL=1 for the 1M-row acceptance workload)\n",
      HardwareThreads(), full ? "full" : "quick");

  Rng data_rng(17);
  const data::Table table =
      bench::MakeGaussianTable(data_rows, m, 256, &data_rng);

  // --- Path 1: Algorithm 3 sampling, 10 attributes x sample_rows rows. ---
  {
    std::vector<stats::EmpiricalCdf> cdfs;
    std::vector<data::Attribute> attrs;
    for (std::size_t j = 0; j < m; ++j) {
      std::vector<double> counts(256, 1.0);
      cdfs.push_back(*stats::EmpiricalCdf::FromCounts(counts));
      attrs.push_back({"x" + std::to_string(j), 256});
    }
    const data::Schema schema(attrs);
    const linalg::Matrix corr = data::Ar1Correlation(m, 0.5);

    data::Table reference{data::Schema()};
    bool deterministic = true;
    std::vector<double> secs(thread_counts.size(), 0.0);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      Rng rng(99);  // Same seed per config: outputs must be identical.
      bench::Timer timer;
      auto out = copula::SampleSyntheticData(schema, cdfs, corr, sample_rows,
                                             &rng, thread_counts[i]);
      secs[i] = timer.Seconds();
      if (!out.ok()) {
        std::fprintf(stderr, "sampling failed: %s\n",
                     out.status().ToString().c_str());
        return 1;
      }
      if (i == 0) {
        reference = std::move(*out);
      } else if (!TablesEqual(reference, *out)) {
        deterministic = false;
      }
    }
    PrintHeader("Alg. 3 sampling (Gaussian copula)", "rows/sec",
                deterministic);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      PrintRow(thread_counts[i], secs[i],
               static_cast<double>(sample_rows), secs[0]);
    }
  }

  // --- Path 2: Kendall correlation estimator (C(m,2) pairwise taus). ---
  {
    copula::KendallEstimatorOptions opts;
    opts.subsample = false;  // Use all rows: the tau merge sorts dominate.
    linalg::Matrix reference(0, 0);
    bool deterministic = true;
    std::vector<double> secs(thread_counts.size(), 0.0);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      opts.num_threads = thread_counts[i];
      Rng rng(7);
      bench::Timer timer;
      auto est = copula::EstimateKendallCorrelation(table, 0.1, &rng, opts);
      secs[i] = timer.Seconds();
      if (!est.ok()) {
        std::fprintf(stderr, "kendall failed: %s\n",
                     est.status().ToString().c_str());
        return 1;
      }
      if (i == 0) {
        reference = est->correlation;
      } else if (reference.MaxAbsDiff(est->correlation) != 0.0) {
        deterministic = false;
      }
    }
    const double pairs = static_cast<double>(m) * (m - 1) / 2.0;
    PrintHeader("Kendall estimator", "pairs/sec", deterministic);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      PrintRow(thread_counts[i], secs[i], pairs, secs[0]);
    }
  }

  // --- Path 3: MLE estimator (l disjoint partition fits). ---
  {
    copula::MleEstimatorOptions opts;
    opts.num_partitions = 64;
    linalg::Matrix reference(0, 0);
    bool deterministic = true;
    std::vector<double> secs(thread_counts.size(), 0.0);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      opts.num_threads = thread_counts[i];
      Rng rng(13);
      bench::Timer timer;
      auto est = copula::EstimateMleCorrelation(table, 0.1, &rng, opts);
      secs[i] = timer.Seconds();
      if (!est.ok()) {
        std::fprintf(stderr, "mle failed: %s\n",
                     est.status().ToString().c_str());
        return 1;
      }
      if (i == 0) {
        reference = est->correlation;
      } else if (reference.MaxAbsDiff(est->correlation) != 0.0) {
        deterministic = false;
      }
    }
    PrintHeader("MLE estimator", "partitions/sec", deterministic);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      PrintRow(thread_counts[i], secs[i], 64.0, secs[0]);
    }
  }

  // --- Path 4: Algorithm 6 hybrid (per-partition DPCopula runs). ---
  {
    Rng census_rng(3);
    auto census = data::GenerateUsCensus(hybrid_rows, &census_rng);
    if (!census.ok()) {
      std::fprintf(stderr, "census generation failed\n");
      return 1;
    }
    core::HybridOptions opts;
    opts.epsilon = 1.0;
    data::Table reference{data::Schema()};
    bool deterministic = true;
    std::vector<double> secs(thread_counts.size(), 0.0);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      opts.num_threads = thread_counts[i];
      Rng rng(5);
      bench::Timer timer;
      auto res = core::SynthesizeHybrid(*census, opts, &rng);
      secs[i] = timer.Seconds();
      if (!res.ok()) {
        std::fprintf(stderr, "hybrid failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
      if (i == 0) {
        reference = std::move(res->synthetic);
      } else if (!TablesEqual(reference, res->synthetic)) {
        deterministic = false;
      }
    }
    PrintHeader("Hybrid synthesis (Alg. 6)", "rows/sec", deterministic);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      PrintRow(thread_counts[i], secs[i],
               static_cast<double>(hybrid_rows), secs[0]);
    }
  }

  return 0;
}
