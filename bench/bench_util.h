#ifndef DPCOPULA_BENCH_BENCH_UTIL_H_
#define DPCOPULA_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/range_estimator.h"
#include "common/rng.h"
#include "data/generator.h"
#include "data/table.h"
#include "query/evaluator.h"
#include "query/experiment_config.h"
#include "query/workload.h"

namespace dpcopula::bench {

/// Wall-clock stopwatch in seconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the standard experiment banner: which figure/table, which profile.
inline void PrintBanner(const std::string& title,
                        const query::ExperimentConfig& cfg) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "profile=%s  n=%lld  queries/run=%zu  runs=%zu  seed=%llu  "
      "(DPCOPULA_BENCH_FULL=1 for paper scale)\n",
      cfg.ProfileName().c_str(), static_cast<long long>(cfg.num_tuples),
      cfg.queries_per_run, cfg.num_runs,
      static_cast<unsigned long long>(cfg.seed));
}

/// One row of a printed series: x value plus one y value per method.
inline void PrintSeriesHeader(const std::string& x_name,
                              const std::vector<std::string>& methods) {
  std::printf("%-14s", x_name.c_str());
  for (const auto& m : methods) std::printf("%16s", m.c_str());
  std::printf("\n");
}

inline void PrintSeriesRow(double x, const std::vector<double>& ys) {
  std::printf("%-14.4g", x);
  for (double y : ys) {
    if (std::isnan(y)) {
      std::printf("%16s", "n/a");
    } else {
      std::printf("%16.4g", y);
    }
  }
  std::printf("\n");
}

inline void PrintSeriesRowLabel(const std::string& x,
                                const std::vector<double>& ys) {
  std::printf("%-14s", x.c_str());
  for (double y : ys) {
    if (std::isnan(y)) {
      std::printf("%16s", "n/a");
    } else {
      std::printf("%16.4g", y);
    }
  }
  std::printf("\n");
}

/// Gaussian-margin synthetic table with AR(1) Gaussian dependence — the
/// default synthetic dataset of §5.4.
inline data::Table MakeGaussianTable(std::size_t n, std::size_t m,
                                     std::int64_t domain, Rng* rng) {
  std::vector<data::MarginSpec> specs;
  specs.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), domain));
  }
  return *data::GenerateGaussianDependent(specs, data::Ar1Correlation(m, 0.5),
                                          n, rng);
}

/// Coarsens every attribute of `table` by integer factors so the product
/// domain fits `max_cells` — the substitution that lets dense-histogram
/// baselines run on domains they could not otherwise materialize (noted in
/// bench output wherever used). Returns the coarsened table and per-column
/// factors.
struct CoarsenedTable {
  data::Table table;
  std::vector<std::int64_t> factors;
};

inline CoarsenedTable CoarsenTable(const data::Table& table,
                                   std::uint64_t max_cells) {
  const std::size_t m = table.num_columns();
  std::vector<std::int64_t> factors(m, 1);
  auto cells = [&]() {
    double prod = 1.0;
    for (std::size_t j = 0; j < m; ++j) {
      const auto d = table.schema().attribute(j).domain_size;
      prod *= std::ceil(static_cast<double>(d) /
                        static_cast<double>(factors[j]));
    }
    return prod;
  };
  // Repeatedly double the factor of the largest effective domain.
  while (cells() > static_cast<double>(max_cells)) {
    std::size_t worst = 0;
    double worst_domain = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double eff =
          std::ceil(static_cast<double>(
                        table.schema().attribute(j).domain_size) /
                    static_cast<double>(factors[j]));
      if (eff > worst_domain) {
        worst_domain = eff;
        worst = j;
      }
    }
    factors[worst] *= 2;
  }
  std::vector<data::Attribute> attrs;
  for (std::size_t j = 0; j < m; ++j) {
    const auto d = table.schema().attribute(j).domain_size;
    attrs.push_back({table.schema().attribute(j).name,
                     (d + factors[j] - 1) / factors[j]});
  }
  data::Table out = data::Table::Zeros(data::Schema(attrs), table.num_rows());
  for (std::size_t j = 0; j < m; ++j) {
    const auto& src = table.column(j);
    auto& dst = out.mutable_column(j);
    for (std::size_t r = 0; r < src.size(); ++r) {
      dst[r] = std::floor(src[r] / static_cast<double>(factors[j]));
    }
  }
  return {std::move(out), std::move(factors)};
}

/// Adapts an estimator built on a coarsened domain back to original-domain
/// queries by dividing the query bounds by the coarsening factors.
class CoarsenedEstimator : public baselines::RangeCountEstimator {
 public:
  CoarsenedEstimator(const baselines::RangeCountEstimator* inner,
                     std::vector<std::int64_t> factors)
      : inner_(inner), factors_(std::move(factors)) {}

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override {
    std::vector<std::int64_t> clo(lo.size()), chi(hi.size());
    for (std::size_t j = 0; j < lo.size(); ++j) {
      clo[j] = lo[j] / factors_[j];
      chi[j] = hi[j] / factors_[j];
    }
    return inner_->EstimateRangeCount(clo, chi);
  }

  std::string name() const override { return inner_->name() + "(coarse)"; }

 private:
  const baselines::RangeCountEstimator* inner_;
  std::vector<std::int64_t> factors_;
};

}  // namespace dpcopula::bench

#endif  // DPCOPULA_BENCH_BENCH_UTIL_H_
