// Serving-path benchmark: an in-process dpcopula_serve Server exercised
// over real loopback TCP by 1/2/4/8 persistent client threads, each
// running closed-loop SAMPLE requests (64 rows, epsilon 0 — free replay,
// so the ledger admits forever). Reported per configuration:
//   - rows/sec via SetItemsProcessed (the figure bench_to_json extracts
//     into BENCH_serve.json for the drop gate),
//   - qps (requests/sec, summed across client threads),
//   - client-observed latency p50/p99/p99.9 in microseconds (averaged
//     across client threads).
// The fixture server runs 8 workers so the client count — not worker
// starvation — is the variable under test; sampling itself is
// single-threaded per request (sample_threads = 1), matching the other
// hot-path acceptance configurations.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/model_io.h"
#include "data/generator.h"
#include "serve/server.h"

namespace {

using dpcopula::Rng;

constexpr std::uint64_t kRowsPerRequest = 64;

dpcopula::serve::Server& GetServer() {
  static std::unique_ptr<dpcopula::serve::Server>* server = [] {
    Rng rng(97);
    std::vector<dpcopula::data::MarginSpec> specs = {
        dpcopula::data::MarginSpec::Gaussian("a", 50),
        dpcopula::data::MarginSpec::Zipf("b", 40, 1.0)};
    auto table = dpcopula::data::GenerateGaussianDependent(
        specs, *dpcopula::data::Equicorrelation(2, 0.5), 2000, &rng);
    dpcopula::core::DpCopulaOptions opts;
    opts.epsilon = 5.0;
    auto res = dpcopula::core::Synthesize(*table, opts, &rng);
    auto model =
        dpcopula::core::ModelFromSynthesis(table->schema(), *res);
    const std::string path = "/tmp/dpcopula_bench_serve.model";
    if (!dpcopula::core::SaveModel(model, path).ok()) std::abort();
    dpcopula::serve::ServerOptions options;
    options.num_workers = 8;
    options.queue_capacity = 64;
    auto created = dpcopula::serve::Server::Create(options);
    if (!created.ok()) std::abort();
    auto* owned = new std::unique_ptr<dpcopula::serve::Server>(
        created.MoveValueUnsafe());
    if (!(*owned)->AddModel("m", path).ok()) std::abort();
    std::remove(path.c_str());
    return owned;
  }();
  return **server;
}

// Minimal blocking loopback client for the line protocol.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }

  // One PING round-trip; the reply is exactly "OK PONG\n" (8 bytes).
  bool Ping() {
    static const std::string request = "PING\n";
    if (::send(fd_, request.data(), request.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(request.size())) {
      return false;
    }
    char reply[8];
    std::size_t got = 0;
    while (got < sizeof(reply)) {
      const ssize_t n = ::recv(fd_, reply + got, sizeof(reply) - got, 0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Sends one request and drains the full response (through "END\n").
  bool Roundtrip(const std::string& line) {
    const std::string out = line + "\n";
    if (::send(fd_, out.data(), out.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(out.size())) {
      return false;
    }
    // The response terminator is "END\n"; error lines end at their own
    // newline and never contain it, so check each refill.
    buffer_.clear();
    char chunk[8192];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (buffer_.size() >= 4 &&
          buffer_.compare(buffer_.size() - 4, 4, "END\n") == 0) {
        return buffer_.rfind("OK SAMPLE", 0) == 0;
      }
      if (buffer_.rfind("ERR", 0) == 0 && buffer_.back() == '\n') {
        return false;
      }
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

double Percentile(std::vector<double>* sorted_us, double q) {
  if (sorted_us->empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us->size() - 1));
  return (*sorted_us)[rank];
}

void BM_ServeSampleLoopback(benchmark::State& state) {
  dpcopula::serve::Server& server = GetServer();
  Client client(server.port());
  if (!client.connected()) {
    state.SkipWithError("connect failed");
    return;
  }
  // Distinct seeds across threads and iterations keep request bytes warm
  // but not byte-identical responses from a hot cache anywhere.
  std::uint64_t seed =
      static_cast<std::uint64_t>(state.thread_index()) * 1000003;
  std::vector<double> latencies_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const bool ok = client.Roundtrip("SAMPLE m bench 0 " +
                                     std::to_string(kRowsPerRequest) + " " +
                                     std::to_string(seed++));
    const auto end = std::chrono::steady_clock::now();
    if (!ok) {
      state.SkipWithError("request failed");
      return;
    }
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRowsPerRequest));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["p50_us"] = benchmark::Counter(
      Percentile(&latencies_us, 0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_us"] = benchmark::Counter(
      Percentile(&latencies_us, 0.99), benchmark::Counter::kAvgThreads);
  state.counters["p999_us"] = benchmark::Counter(
      Percentile(&latencies_us, 0.999), benchmark::Counter::kAvgThreads);
}

BENCHMARK(BM_ServeSampleLoopback)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Protocol floor: PING round-trips isolate the framing + scheduling cost
// from sampling itself.
void BM_ServePingLoopback(benchmark::State& state) {
  dpcopula::serve::Server& server = GetServer();
  Client client(server.port());
  if (!client.connected()) {
    state.SkipWithError("connect failed");
    return;
  }
  for (auto _ : state) {
    if (!client.Ping()) {
      state.SkipWithError("ping failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_ServePingLoopback)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
