// Hot-path benchmark for Algorithm 3's sampling kernel: the legacy scalar
// pipeline (polar Gaussian + per-row triangular multiply + per-cell
// std::lower_bound inversion) against the tiled production pipeline
// (ziggurat fill + blocked Cholesky + guide-table inversion). Rows/sec is
// reported via SetItemsProcessed, so google-benchmark's items_per_second
// field is the figure of merit that tools/bench_to_json extracts into
// BENCH_sampler.json. The acceptance configuration is m = 10, N = 1M,
// single thread.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "copula/sampler.h"
#include "data/generator.h"
#include "data/schema.h"
#include "stats/empirical_cdf.h"

namespace {

using dpcopula::GaussianMethod;
using dpcopula::Rng;
using dpcopula::copula::SampleSyntheticData;
using dpcopula::copula::SampleSyntheticDataT;
using dpcopula::copula::SamplerKernel;

struct Fixture {
  dpcopula::data::Schema schema;
  std::vector<dpcopula::stats::EmpiricalCdf> cdfs;
  dpcopula::linalg::Matrix corr;
};

/// m skewed marginals over `domain` values, equicorrelated at 0.4 — the
/// same shape the paper's experiments use (non-uniform counts so the
/// inversion cannot degenerate to an affine map).
Fixture MakeFixture(std::size_t m, std::int64_t domain) {
  Fixture fx;
  std::vector<dpcopula::data::Attribute> attrs;
  attrs.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::string name = "a";
    name += std::to_string(j);
    attrs.push_back({std::move(name), domain});
    std::vector<double> counts(static_cast<std::size_t>(domain));
    for (std::size_t v = 0; v < counts.size(); ++v) {
      counts[v] = (j % 2 == 0) ? static_cast<double>(v + 1)
                               : static_cast<double>(counts.size() - v);
    }
    fx.cdfs.push_back(*dpcopula::stats::EmpiricalCdf::FromCounts(counts));
  }
  fx.schema = dpcopula::data::Schema(attrs);
  fx.corr = *dpcopula::data::Equicorrelation(m, 0.4);
  return fx;
}

constexpr std::size_t kRows = 1'000'000;
constexpr std::size_t kDims = 10;
constexpr std::int64_t kDomain = 64;

void BM_SamplerHot_Legacy(benchmark::State& state) {
  const auto fx = MakeFixture(kDims, kDomain);
  for (auto _ : state) {
    Rng rng(42);
    rng.set_gaussian_method(GaussianMethod::kPolar);
    auto out = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, kRows, &rng,
                                   1, SamplerKernel::kLegacy);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
}
BENCHMARK(BM_SamplerHot_Legacy)->Unit(benchmark::kMillisecond);

void BM_SamplerHot_Tiled(benchmark::State& state) {
  const auto fx = MakeFixture(kDims, kDomain);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(42);
    auto out = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, kRows, &rng,
                                   threads, SamplerKernel::kTiled);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
}
BENCHMARK(BM_SamplerHot_Tiled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SamplerHotT_Tiled(benchmark::State& state) {
  const auto fx = MakeFixture(kDims, kDomain);
  for (auto _ : state) {
    Rng rng(42);
    auto out = SampleSyntheticDataT(fx.schema, fx.cdfs, fx.corr, 6.0,
                                    kRows / 4, &rng, 1, SamplerKernel::kTiled);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows / 4));
}
BENCHMARK(BM_SamplerHotT_Tiled)->Unit(benchmark::kMillisecond);

void BM_GaussianDraw(benchmark::State& state) {
  Rng rng(7);
  rng.set_gaussian_method(state.range(0) == 0 ? GaussianMethod::kZiggurat
                                              : GaussianMethod::kPolar);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.NextGaussian();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GaussianDraw)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"polar"});

}  // namespace

BENCHMARK_MAIN();
