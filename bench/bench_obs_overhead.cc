// Overhead of the observability layer on the end-to-end pipeline.
//
// Four runtime modes over identical Synthesize runs (same data, same
// seed, so the work is byte-identical by the determinism guarantee):
//
//   disabled         ObsConfig all off — one relaxed atomic load per
//                    instrumentation site. This is the default for library
//                    users and must stay within ~2% of a build with
//                    -DDPCOPULA_OBS=OFF (compare externally by rebuilding).
//   metrics          counters/gauges/histograms on, tracing off.
//   metrics+trace    spans recorded, as `dpcopula --trace-json` configures.
//   metrics+prof     stage scopes live, as `dpcopula --profile` configures.
//
// Then micro-costs of the primitives themselves (Observe, Quantile,
// StageScope both armed and disarmed), and finally the enforcement run:
// the tiled sampler hot path with profiling on must stay within 2% of the
// same path with obs disabled — the budget DESIGN.md promises. A blown
// budget exits non-zero; set DPCOPULA_BENCH_NO_ENFORCE=1 to report without
// gating (e.g. on wildly noisy shared runners).
//
// Reports median seconds per run and the overhead relative to `disabled`.
// Run with DPCOPULA_BENCH_FULL=1 for a paper-scale table.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "copula/sampler.h"
#include "core/dpcopula.h"
#include "data/generator.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "stats/empirical_cdf.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

namespace {

double MedianRunSeconds(const data::Table& table,
                        const core::DpCopulaOptions& options,
                        std::size_t repeats) {
  std::vector<double> seconds;
  seconds.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    Rng rng(1234);  // Same seed every repeat: identical work.
    bench::Timer timer;
    auto result = core::Synthesize(table, options, &rng);
    seconds.push_back(timer.Seconds());
    if (!result.ok()) {
      std::fprintf(stderr, "synthesize failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

// ---------------------------------------------------------------------------
// Micro-costs of the primitives (ns per op, amortized over a tight loop).

double NanosPerOp(std::size_t iters, double seconds) {
  return 1e9 * seconds / static_cast<double>(iters);
}

void RunMicroCosts() {
  constexpr std::size_t kIters = 1 << 20;

  obs::ObsConfig on;
  on.metrics = true;
  on.profile = true;
  obs::SetObsConfig(on);
  obs::MetricsRegistry::Global().ResetAll();

  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("bench.micro_seconds");
  bench::Timer observe_timer;
  for (std::size_t i = 0; i < kIters; ++i) {
    h->Observe(1e-9 * static_cast<double>((i & 0xffff) + 1));
  }
  const double observe_ns = NanosPerOp(kIters, observe_timer.Seconds());

  // Quantile walks the bucket array — a report-time cost, not a hot-path
  // one, but it should stay microseconds even over all 1216 buckets.
  constexpr std::size_t kQuantileIters = 1 << 12;
  volatile double sink = 0.0;
  bench::Timer quantile_timer;
  for (std::size_t i = 0; i < kQuantileIters; ++i) {
    sink = sink + h->Quantile(0.99);
  }
  const double quantile_ns =
      NanosPerOp(kQuantileIters, quantile_timer.Seconds());

  bench::Timer armed_timer;
  for (std::size_t i = 0; i < kIters; ++i) {
    obs::StageScope scope(obs::Stage::kTauPairs);
  }
  const double scope_armed_ns = NanosPerOp(kIters, armed_timer.Seconds());

  obs::SetObsConfig(obs::ObsConfig{});
  bench::Timer disarmed_timer;
  for (std::size_t i = 0; i < kIters; ++i) {
    obs::StageScope scope(obs::Stage::kTauPairs);
  }
  const double scope_disarmed_ns = NanosPerOp(kIters, disarmed_timer.Seconds());

  std::printf("\n--- primitive micro-costs (ns/op) ---\n");
  bench::PrintSeriesHeader("primitive", {"ns_per_op"});
  bench::PrintSeriesRowLabel("observe", {observe_ns});
  bench::PrintSeriesRowLabel("quantile_p99", {quantile_ns});
  bench::PrintSeriesRowLabel("scope_armed", {scope_armed_ns});
  bench::PrintSeriesRowLabel("scope_off", {scope_disarmed_ns});
}

// ---------------------------------------------------------------------------
// Enforcement: profiled sampler hot path within 2% of the unprofiled one.

double MedianSamplerSeconds(const data::Schema& schema,
                            const std::vector<stats::EmpiricalCdf>& cdfs,
                            const linalg::Matrix& corr, std::size_t rows,
                            std::size_t repeats) {
  std::vector<double> seconds;
  seconds.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    Rng rng(99);
    bench::Timer timer;
    auto table = copula::SampleSyntheticData(schema, cdfs, corr, rows, &rng,
                                             /*num_threads=*/1);
    seconds.push_back(timer.Seconds());
    if (!table.ok()) {
      std::fprintf(stderr, "sampler failed: %s\n",
                   table.status().ToString().c_str());
      std::exit(1);
    }
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

int RunSamplerBudget(std::size_t rows) {
  constexpr std::size_t kDims = 8;
  constexpr std::size_t kRepeats = 7;
  std::vector<data::Attribute> attrs;
  std::vector<stats::EmpiricalCdf> cdfs;
  for (std::size_t j = 0; j < kDims; ++j) {
    attrs.push_back({"x" + std::to_string(j), 64});
    std::vector<double> counts(64);
    for (std::size_t v = 0; v < counts.size(); ++v) {
      counts[v] = static_cast<double>(v + 1);
    }
    cdfs.push_back(*stats::EmpiricalCdf::FromCounts(counts));
  }
  const data::Schema schema(attrs);
  const linalg::Matrix corr = *data::Equicorrelation(kDims, 0.4);

  obs::SetObsConfig(obs::ObsConfig{});
  MedianSamplerSeconds(schema, cdfs, corr, rows, 1);  // Warm-up.
  const double plain = MedianSamplerSeconds(schema, cdfs, corr, rows, kRepeats);

  obs::ObsConfig profiled;
  profiled.profile = true;
  obs::SetObsConfig(profiled);
  obs::MetricsRegistry::Global().ResetAll();
  const double instrumented =
      MedianSamplerSeconds(schema, cdfs, corr, rows, kRepeats);
  obs::SetObsConfig(obs::ObsConfig{});

  const double overhead = 100.0 * (instrumented - plain) / plain;
  std::printf("\n--- sampler hot path, profile budget (n=%zu, m=%zu) ---\n",
              rows, kDims);
  bench::PrintSeriesHeader("mode", {"median_s", "overhead_%"});
  bench::PrintSeriesRowLabel("uninstrumented", {plain, 0.0});
  bench::PrintSeriesRowLabel("profiled", {instrumented, overhead});

  constexpr double kBudgetPercent = 2.0;
  if (overhead > kBudgetPercent) {
    if (std::getenv("DPCOPULA_BENCH_NO_ENFORCE") != nullptr) {
      std::printf("over the %.1f%% budget (enforcement disabled)\n",
                  kBudgetPercent);
      return 0;
    }
    std::fprintf(stderr,
                 "FAIL: profiled sampler %.2f%% over uninstrumented "
                 "(budget %.1f%%)\n",
                 overhead, kBudgetPercent);
    return 1;
  }
  std::printf("within the %.1f%% budget\n", kBudgetPercent);
  return 0;
}

}  // namespace

int main() {
  query::ExperimentConfig cfg = query::ExperimentConfig::FromEnvironment();
  const std::size_t rows =
      static_cast<std::size_t>(std::min<std::int64_t>(cfg.num_tuples, 200000));
  constexpr std::size_t kColumns = 6;
  constexpr std::size_t kRepeats = 5;

  Rng data_rng(cfg.seed);
  data::Table table = bench::MakeGaussianTable(rows, kColumns, 64, &data_rng);

  core::DpCopulaOptions options;
  options.epsilon = 1.0;
  options.num_threads = 0;  // All hardware threads — the worst case for
                            // shared-counter contention.

  std::printf("=== observability overhead (n=%zu, m=%zu, %zu repeats) ===\n",
              rows, kColumns, kRepeats);
  std::printf("obs compiled in: %s\n",
#if DPCOPULA_OBS_ENABLED
              "yes"
#else
              "no (all modes are identical no-ops)"
#endif
  );

  struct Mode {
    const char* name;
    obs::ObsConfig config;
  };
  std::vector<Mode> modes(4);
  modes[0].name = "disabled";
  modes[1].name = "metrics";
  modes[1].config.metrics = true;
  modes[2].name = "metrics+trace";
  modes[2].config.metrics = true;
  modes[2].config.trace = true;
  modes[3].name = "metrics+prof";
  modes[3].config.metrics = true;
  modes[3].config.profile = true;

  double baseline = 0.0;
  bench::PrintSeriesHeader("mode", {"median_s", "overhead_%"});
  for (const Mode& mode : modes) {
    obs::SetObsConfig(mode.config);
    obs::MetricsRegistry::Global().ResetAll();
    obs::Tracer::Global().Reset();
    // One warm-up run outside the timer (pool spin-up, registry fills).
    MedianRunSeconds(table, options, 1);
    const double median = MedianRunSeconds(table, options, kRepeats);
    if (baseline == 0.0) baseline = median;
    bench::PrintSeriesRowLabel(
        mode.name, {median, 100.0 * (median - baseline) / baseline});
  }
  obs::SetObsConfig(obs::ObsConfig{});

  RunMicroCosts();
  return RunSamplerBudget(rows);
}
