// Overhead of the observability layer on the end-to-end pipeline.
//
// Three runtime modes over identical Synthesize runs (same data, same
// seed, so the work is byte-identical by the determinism guarantee):
//
//   disabled       ObsConfig all off — one relaxed atomic load per
//                  instrumentation site. This is the default for library
//                  users and must stay within ~2% of a build with
//                  -DDPCOPULA_OBS=OFF (compare externally by rebuilding).
//   metrics        counters/gauges/histograms on, tracing off.
//   metrics+trace  everything on, as `dpcopula --trace-json` configures.
//
// Reports median seconds per run and the overhead relative to `disabled`.
// Run with DPCOPULA_BENCH_FULL=1 for a paper-scale table.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/dpcopula.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

namespace {

double MedianRunSeconds(const data::Table& table,
                        const core::DpCopulaOptions& options,
                        std::size_t repeats) {
  std::vector<double> seconds;
  seconds.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    Rng rng(1234);  // Same seed every repeat: identical work.
    bench::Timer timer;
    auto result = core::Synthesize(table, options, &rng);
    seconds.push_back(timer.Seconds());
    if (!result.ok()) {
      std::fprintf(stderr, "synthesize failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace

int main() {
  query::ExperimentConfig cfg = query::ExperimentConfig::FromEnvironment();
  const std::size_t rows =
      static_cast<std::size_t>(std::min<std::int64_t>(cfg.num_tuples, 200000));
  constexpr std::size_t kColumns = 6;
  constexpr std::size_t kRepeats = 5;

  Rng data_rng(cfg.seed);
  data::Table table = bench::MakeGaussianTable(rows, kColumns, 64, &data_rng);

  core::DpCopulaOptions options;
  options.epsilon = 1.0;
  options.num_threads = 0;  // All hardware threads — the worst case for
                            // shared-counter contention.

  std::printf("=== observability overhead (n=%zu, m=%zu, %zu repeats) ===\n",
              rows, kColumns, kRepeats);
  std::printf("obs compiled in: %s\n",
#if DPCOPULA_OBS_ENABLED
              "yes"
#else
              "no (all modes are identical no-ops)"
#endif
  );

  struct Mode {
    const char* name;
    obs::ObsConfig config;
  };
  std::vector<Mode> modes(3);
  modes[0].name = "disabled";
  modes[1].name = "metrics";
  modes[1].config.metrics = true;
  modes[2].name = "metrics+trace";
  modes[2].config.metrics = true;
  modes[2].config.trace = true;

  double baseline = 0.0;
  bench::PrintSeriesHeader("mode", {"median_s", "overhead_%"});
  for (const Mode& mode : modes) {
    obs::SetObsConfig(mode.config);
    obs::MetricsRegistry::Global().ResetAll();
    obs::Tracer::Global().Reset();
    // One warm-up run outside the timer (pool spin-up, registry fills).
    MedianRunSeconds(table, options, 1);
    const double median = MedianRunSeconds(table, options, kRepeats);
    if (baseline == 0.0) baseline = median;
    bench::PrintSeriesRowLabel(
        mode.name, {median, 100.0 * (median - baseline) / baseline});
  }
  obs::SetObsConfig(obs::ObsConfig{});
  return 0;
}
