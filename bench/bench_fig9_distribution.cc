// Reproduces Figure 9: relative error vs epsilon for 8-D data with Gaussian
// dependence and margins drawn from (a) Gaussian, (b) uniform, and (c) zipf
// distributions. Paper findings: DPCopula beats PSD under every margin, the
// more so when margins are skewed; DPCopula does best on uniform/zipf
// because EFPA compresses those margins well.
#include <cstdio>

#include "baselines/psd.h"
#include "bench/bench_util.h"
#include "core/dpcopula.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

namespace {

data::Table MakeTable(const std::string& family, std::size_t n, std::size_t m,
                      std::int64_t domain, Rng* rng) {
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    const std::string name = "x" + std::to_string(j);
    if (family == "gaussian") {
      specs.push_back(data::MarginSpec::Gaussian(name, domain));
    } else if (family == "uniform") {
      specs.push_back(data::MarginSpec::Uniform(name, domain));
    } else {
      specs.push_back(data::MarginSpec::Zipf(name, domain, 1.0));
    }
  }
  return *data::GenerateGaussianDependent(specs, data::Ar1Correlation(m, 0.5),
                                          n, rng);
}

}  // namespace

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  bench::PrintBanner(
      "Figure 9: relative error vs epsilon by marginal distribution (8D)",
      cfg);
  Rng master(cfg.seed);

  for (const std::string family : {"gaussian", "uniform", "zipf"}) {
    data::Table table =
        MakeTable(family, static_cast<std::size_t>(cfg.num_tuples),
                  cfg.num_dimensions, cfg.domain_size, &master);
    std::printf("\nmargins: %s\n", family.c_str());
    bench::PrintSeriesHeader("epsilon", {"DPCopula", "PSD"});
    for (double epsilon : {0.1, 0.25, 0.5, 0.75, 1.0}) {
      double dpc_total = 0.0, psd_total = 0.0;
      for (std::size_t run = 0; run < cfg.num_runs; ++run) {
        Rng rng = master.Split();
        const auto workload = query::RandomWorkload(
            table.schema(), cfg.queries_per_run, &rng);
        const auto truth = query::ComputeTrueAnswers(table, workload);
        core::DpCopulaOptions opts;
        opts.epsilon = epsilon;
        opts.budget_ratio_k = cfg.budget_ratio_k;
        auto res = core::Synthesize(table, opts, &rng);
        baselines::TableEstimator est(res->synthetic, "DPCopula");
        dpc_total += query::EvaluateWorkloadWithTruth(*truth, est, workload,
                                                      cfg.sanity_bound)
                         ->mean_relative_error;
        auto psd = baselines::PsdTree::Build(table, epsilon, &rng);
        psd_total += query::EvaluateWorkloadWithTruth(*truth, **psd,
                                                      workload,
                                                      cfg.sanity_bound)
                         ->mean_relative_error;
      }
      bench::PrintSeriesRow(
          epsilon, {dpc_total / static_cast<double>(cfg.num_runs),
                    psd_total / static_cast<double>(cfg.num_runs)});
    }
  }
  std::printf(
      "\nexpected shape: DPCopula < PSD at every epsilon and margin; the "
      "gap is largest for skewed (zipf) margins.\n");
  return 0;
}
