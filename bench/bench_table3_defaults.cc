// Reproduces Table 3: the experiment parameters and their default values,
// as encoded by query::ExperimentConfig::Paper(). Every other bench binary
// consumes this config, so this harness doubles as a wiring check.
#include <cstdio>
#include <cstdlib>

#include "query/experiment_config.h"

int main() {
  using dpcopula::query::ExperimentConfig;
  const ExperimentConfig paper = ExperimentConfig::Paper();
  const ExperimentConfig fast = ExperimentConfig::Fast();

  std::printf("=== Table 3: experiment parameters ===\n");
  std::printf("%-12s%-40s%14s%14s\n", "Parameter", "Description", "paper",
              "fast");
  std::printf("%-12s%-40s%14lld%14lld\n", "n", "number of tuples in D",
              static_cast<long long>(paper.num_tuples),
              static_cast<long long>(fast.num_tuples));
  std::printf("%-12s%-40s%14.1f%14.1f\n", "epsilon", "privacy budget",
              paper.epsilon, fast.epsilon);
  std::printf("%-12s%-40s%14zu%14zu\n", "m", "number of dimensions",
              paper.num_dimensions, fast.num_dimensions);
  std::printf("%-12s%-40s%14.1f%14.1f\n", "s", "sanity bound",
              paper.sanity_bound, fast.sanity_bound);
  std::printf("%-12s%-40s%14.1f%14.1f\n", "k", "ratio of eps1 and eps2",
              paper.budget_ratio_k, fast.budget_ratio_k);
  std::printf("%-12s%-40s%14lld%14lld\n", "|A_i|", "domain size of dimension i",
              static_cast<long long>(paper.domain_size),
              static_cast<long long>(fast.domain_size));
  std::printf("%-12s%-40s%14zu%14zu\n", "queries", "random queries per run",
              paper.queries_per_run, fast.queries_per_run);
  std::printf("%-12s%-40s%14zu%14zu\n", "runs", "averaging runs",
              paper.num_runs, fast.num_runs);

  // Paper defaults are load-bearing: fail if they drift.
  const bool ok = paper.num_tuples == 50000 && paper.epsilon == 1.0 &&
                  paper.num_dimensions == 8 && paper.sanity_bound == 1.0 &&
                  paper.budget_ratio_k == 8.0 && paper.domain_size == 1000 &&
                  paper.queries_per_run == 1000 && paper.num_runs == 5;
  if (!ok) {
    std::printf("\nFAILED: paper profile drifted from Table 3\n");
    return EXIT_FAILURE;
  }
  std::printf("\npaper profile matches Table 3\n");
  return EXIT_SUCCESS;
}
