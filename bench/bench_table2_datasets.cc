// Reproduces Table 2: domain sizes of the US and Brazil census datasets.
// Our simulators (DESIGN.md §3 substitution 1) must expose exactly the
// paper's schemas; this harness prints them side by side with the paper's
// values and flags any mismatch.
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "data/census.h"

namespace {

struct Row {
  const char* attribute;
  long long paper_domain;
};

int CheckSchema(const char* title, const dpcopula::data::Schema& schema,
                const Row* rows, std::size_t count) {
  std::printf("\n%s\n%-22s%16s%16s%8s\n", title, "Attribute", "paper",
              "simulator", "match");
  int mismatches = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const long long sim = schema.attribute(i).domain_size;
    const bool ok = sim == rows[i].paper_domain;
    mismatches += ok ? 0 : 1;
    std::printf("%-22s%16lld%16lld%8s\n", rows[i].attribute,
                rows[i].paper_domain, sim, ok ? "yes" : "NO");
  }
  return mismatches;
}

}  // namespace

int main() {
  std::printf("=== Table 2: domain sizes of the real datasets ===\n");

  static const Row kUsRows[] = {
      {"Age", 96}, {"Income", 1020}, {"Occupation", 511}, {"Gender", 2}};
  static const Row kBrazilRows[] = {{"Age", 95},
                                    {"Gender", 2},
                                    {"Disability", 2},
                                    {"Nativity", 2},
                                    {"Number of Years", 31},
                                    {"Education", 140},
                                    {"Working hours per week", 95},
                                    {"Annual income", 586}};

  int mismatches = 0;
  mismatches += CheckSchema("(a) US census dataset",
                            dpcopula::data::UsCensusSchema(), kUsRows, 4);
  mismatches += CheckSchema("(b) Brazil census dataset",
                            dpcopula::data::BrazilCensusSchema(), kBrazilRows,
                            8);

  // Also demonstrate that the simulators actually generate data under these
  // schemas.
  dpcopula::Rng rng(2014);
  auto us = dpcopula::data::GenerateUsCensus(1000, &rng);
  auto br = dpcopula::data::GenerateBrazilCensus(1000, &rng);
  std::printf("\nsimulated US rows: %zu (valid=%s)\n", us->num_rows(),
              us->Validate().ok() ? "yes" : "no");
  std::printf("simulated Brazil rows: %zu (valid=%s)\n", br->num_rows(),
              br->Validate().ok() ? "yes" : "no");

  if (mismatches != 0) {
    std::printf("\nFAILED: %d domain-size mismatches\n", mismatches);
    return EXIT_FAILURE;
  }
  std::printf("\nall domain sizes match the paper's Table 2\n");
  return EXIT_SUCCESS;
}
