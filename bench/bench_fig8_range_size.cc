// Reproduces Figure 8: query accuracy vs query range size on 2-D synthetic
// data at epsilon = 0.1, in (a) relative error and (b) absolute error.
// Paper findings: DPCopula beats PSD and P-HP everywhere; relative error
// falls with range size while absolute error rises.
#include <cstdio>

#include "baselines/dpcube.h"
#include "baselines/grids.h"
#include "baselines/php.h"
#include "baselines/psd.h"
#include "bench/bench_util.h"
#include "core/dpcopula.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  cfg.epsilon = 0.1;  // Paper's setting for this figure.
  bench::PrintBanner(
      "Figure 8: accuracy vs query range size (2D synthetic, eps=0.1)", cfg);

  Rng master(cfg.seed);
  data::Table table = bench::MakeGaussianTable(
      static_cast<std::size_t>(cfg.num_tuples), 2, cfg.domain_size, &master);

  // Per-dimension range fraction; the product of the per-dimension widths
  // (the paper's "query range size") is fraction^2 * |A|^2.
  const std::vector<double> fractions = {0.001, 0.005, 0.02, 0.05,
                                         0.1,   0.25,  0.5,  1.0};

  std::vector<double> rel(fractions.size() * 5, 0.0);
  std::vector<double> abs(fractions.size() * 5, 0.0);

  for (std::size_t run = 0; run < cfg.num_runs; ++run) {
    Rng rng = master.Split();
    // Build each mechanism once per run, evaluate on all range sizes.
    core::DpCopulaOptions opts;
    opts.epsilon = cfg.epsilon;
    opts.budget_ratio_k = cfg.budget_ratio_k;
    auto dpc = core::Synthesize(table, opts, &rng);
    baselines::TableEstimator dpc_est(dpc->synthetic, "DPCopula");
    auto psd = baselines::PsdTree::Build(table, cfg.epsilon, &rng);
    auto php = baselines::PhpMechanism::Release(table, cfg.epsilon, &rng);
    auto cube = baselines::DpCubeMechanism::Release(table, cfg.epsilon, &rng);
    auto ag = baselines::AdaptiveGrid::Build(table, cfg.epsilon, &rng);
    if (!dpc.ok() || !psd.ok() || !php.ok() || !cube.ok() || !ag.ok()) {
      std::fprintf(stderr, "mechanism build failed\n");
      return 1;
    }
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      auto workload = query::FixedSizeWorkload(
          table.schema(), fractions[fi], cfg.queries_per_run, &rng);
      const auto truth = query::ComputeTrueAnswers(table, *workload);
      const baselines::RangeCountEstimator* estimators[5] = {
          &dpc_est, psd->get(), php->get(), cube->get(), ag->get()};
      for (int e = 0; e < 5; ++e) {
        auto eval = query::EvaluateWorkloadWithTruth(
            *truth, *estimators[e], *workload, cfg.sanity_bound);
        rel[fi * 5 + static_cast<std::size_t>(e)] +=
            eval->mean_relative_error;
        abs[fi * 5 + static_cast<std::size_t>(e)] +=
            eval->mean_absolute_error;
      }
    }
  }

  const double runs = static_cast<double>(cfg.num_runs);
  std::printf(
      "\n(a) relative error (DPCube, AG: extra reference baselines)\n");
  bench::PrintSeriesHeader("range frac",
                           {"DPCopula", "PSD", "P-HP", "DPCube", "AG"});
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    bench::PrintSeriesRow(fractions[fi],
                          {rel[fi * 5] / runs, rel[fi * 5 + 1] / runs,
                           rel[fi * 5 + 2] / runs, rel[fi * 5 + 3] / runs,
                           rel[fi * 5 + 4] / runs});
  }
  std::printf("\n(b) absolute error\n");
  bench::PrintSeriesHeader("range frac",
                           {"DPCopula", "PSD", "P-HP", "DPCube", "AG"});
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    bench::PrintSeriesRow(fractions[fi],
                          {abs[fi * 5] / runs, abs[fi * 5 + 1] / runs,
                           abs[fi * 5 + 2] / runs, abs[fi * 5 + 3] / runs,
                           abs[fi * 5 + 4] / runs});
  }
  std::printf(
      "\nexpected shape: DPCopula lowest on both metrics; relative error "
      "decreases and absolute error increases with range size.\n");
  return 0;
}
