// Reproduces Figure 6: DPCopula-Kendall vs DPCopula-MLE.
//  (a) relative error for random range-count queries vs dimensionality;
//  (b) runtime vs dimensionality.
// Paper findings: Kendall is more accurate (lower sensitivity per
// coefficient); both run in seconds, with Kendall slightly slower; runtime
// grows quadratically with m. The paper uses n = 10^6 here because MLE's
// partition rule needs a large cardinality; profiles scale n down but keep
// the MLE partition clamp honest (reported in the output).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/dpcopula.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  // Fig. 6 uses a larger n than Table 3 (paper: 10^6).
  const std::size_t n = cfg.ProfileName() == "paper"
                            ? 1000000
                            : static_cast<std::size_t>(cfg.num_tuples) * 4;
  cfg.num_tuples = static_cast<std::int64_t>(n);
  bench::PrintBanner(
      "Figure 6: DPCopula-Kendall vs DPCopula-MLE (synthetic, Gaussian "
      "margins)",
      cfg);

  Rng master(cfg.seed);
  std::printf("\n(a) relative error and (b) runtime vs dimensionality\n");
  bench::PrintSeriesHeader(
      "m", {"RE Kendall", "RE MLE", "time Kendall(s)", "time MLE(s)"});

  for (std::size_t m : {2u, 4u, 6u, 8u}) {
    data::Table table =
        bench::MakeGaussianTable(n, m, cfg.domain_size, &master);
    double err_kendall = 0.0, err_mle = 0.0;
    double time_kendall = 0.0, time_mle = 0.0;
    long long mle_partitions = 0;
    for (std::size_t run = 0; run < cfg.num_runs; ++run) {
      Rng rng = master.Split();
      const auto workload =
          query::RandomWorkload(table.schema(), cfg.queries_per_run, &rng);
      for (const bool use_mle : {false, true}) {
        core::DpCopulaOptions opts;
        opts.epsilon = cfg.epsilon;
        opts.budget_ratio_k = cfg.budget_ratio_k;
        opts.estimator = use_mle ? core::CorrelationEstimator::kMle
                                 : core::CorrelationEstimator::kKendall;
        bench::Timer timer;
        auto res = core::Synthesize(table, opts, &rng);
        const double secs = timer.Seconds();
        if (!res.ok()) {
          std::fprintf(stderr, "synthesis failed (m=%zu mle=%d): %s\n", m,
                       use_mle, res.status().ToString().c_str());
          return 1;
        }
        baselines::TableEstimator est(res->synthetic, "DPCopula");
        auto eval =
            query::EvaluateWorkload(table, est, workload, cfg.sanity_bound);
        if (use_mle) {
          err_mle += eval->mean_relative_error;
          time_mle += secs;
          mle_partitions = res->mle_partitions;
        } else {
          err_kendall += eval->mean_relative_error;
          time_kendall += secs;
        }
      }
    }
    const double runs = static_cast<double>(cfg.num_runs);
    bench::PrintSeriesRow(static_cast<double>(m),
                          {err_kendall / runs, err_mle / runs,
                           time_kendall / runs, time_mle / runs});
    std::printf("    (MLE used l=%lld partitions)\n", mle_partitions);
  }
  std::printf(
      "\nexpected shape: Kendall RE <= MLE RE at every m (lower per-"
      "coefficient sensitivity); runtime grows ~quadratically in m with "
      "Kendall slightly slower.\n");
  return 0;
}
