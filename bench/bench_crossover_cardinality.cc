// Crossover analysis (beyond the paper's figures): where does DPCopula
// overtake PSD as the data grows?
//
// DPCopula's error is dominated by fixed-scale noise on m margins and
// C(m,2) coefficients, so its relative error falls roughly like 1/n; PSD's
// per-node noise also amortizes with n but its within-leaf uniformity error
// does not. This bench sweeps the cardinality of the US-census-style
// dataset at two budgets and reports the DPCopula/PSD error ratio — the
// "who wins where" picture EXPERIMENTS.md summarizes.
#include <cstdio>

#include "baselines/psd.h"
#include "bench/bench_util.h"
#include "core/hybrid.h"
#include "data/census.h"
#include "query/metrics.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  bench::PrintBanner(
      "Crossover: DPCopula vs PSD error as cardinality grows (US-census "
      "data)",
      cfg);

  const std::vector<std::size_t> cardinalities =
      cfg.ProfileName() == "paper"
          ? std::vector<std::size_t>{5000, 10000, 20000, 50000, 100000,
                                     200000}
          : std::vector<std::size_t>{5000, 10000, 20000, 50000};

  Rng master(cfg.seed);
  for (double epsilon : {0.1, 1.0}) {
    std::printf("\nepsilon = %.1f\n", epsilon);
    bench::PrintSeriesHeader("n", {"DPCopula", "PSD", "ratio"});
    for (std::size_t n : cardinalities) {
      auto table = data::GenerateUsCensus(n, &master);
      const double sanity =
          query::UsCensusSanityBound(static_cast<std::int64_t>(n));
      double dpc_total = 0.0, psd_total = 0.0;
      for (std::size_t run = 0; run < cfg.num_runs; ++run) {
        Rng rng = master.Split();
        const auto workload = query::RandomWorkload(
            table->schema(), cfg.queries_per_run, &rng);
        const auto truth = query::ComputeTrueAnswers(*table, workload);
        core::HybridOptions opts;
        opts.epsilon = epsilon;
        auto res = core::SynthesizeHybrid(*table, opts, &rng);
        baselines::TableEstimator est(res->synthetic, "DPCopula");
        dpc_total += query::EvaluateWorkloadWithTruth(*truth, est, workload,
                                                      sanity)
                         ->mean_relative_error;
        auto psd = baselines::PsdTree::Build(*table, epsilon, &rng);
        psd_total += query::EvaluateWorkloadWithTruth(*truth, **psd,
                                                      workload, sanity)
                         ->mean_relative_error;
      }
      const double runs = static_cast<double>(cfg.num_runs);
      bench::PrintSeriesRow(static_cast<double>(n),
                            {dpc_total / runs, psd_total / runs,
                             (dpc_total / runs) / (psd_total / runs)});
    }
  }
  std::printf(
      "\nratio < 1 means DPCopula wins; expect the ratio to fall as n "
      "grows (margin/coefficient noise amortizes faster than PSD's "
      "uniformity error), with the crossover earlier at larger epsilon.\n");
  return 0;
}
