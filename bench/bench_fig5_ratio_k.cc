// Reproduces Figure 5: relative error of DPCopula-Kendall for random range
// count queries vs the budget ratio k = eps1/eps2, on 2-D synthetic data
// with Gaussian margins. Paper finding: error degrades for k < 1 and is flat
// and insensitive for k >= 1.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/dpcopula.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  bench::PrintBanner("Figure 5: relative error vs ratio k (2D synthetic)",
                     cfg);

  const std::vector<double> ks = {1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4,
                                  1.0 / 2,  1.0,      2.0,     4.0,
                                  8.0,      16.0,     32.0};

  Rng master(cfg.seed);
  data::Table table = bench::MakeGaussianTable(
      static_cast<std::size_t>(cfg.num_tuples), 2, cfg.domain_size, &master);

  bench::PrintSeriesHeader("k", {"DPCopula-Kendall"});
  for (double k : ks) {
    double total_err = 0.0;
    for (std::size_t run = 0; run < cfg.num_runs; ++run) {
      Rng rng = master.Split();
      core::DpCopulaOptions opts;
      opts.epsilon = cfg.epsilon;
      opts.budget_ratio_k = k;
      auto res = core::Synthesize(table, opts, &rng);
      if (!res.ok()) {
        std::fprintf(stderr, "synthesis failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
      baselines::TableEstimator est(res->synthetic, "DPCopula");
      const auto workload =
          query::RandomWorkload(table.schema(), cfg.queries_per_run, &rng);
      auto eval =
          query::EvaluateWorkload(table, est, workload, cfg.sanity_bound);
      total_err += eval->mean_relative_error;
    }
    bench::PrintSeriesRow(k,
                          {total_err / static_cast<double>(cfg.num_runs)});
  }
  std::printf(
      "\nexpected shape: error decreases as k grows to 1, then stays flat "
      "(method insensitive to k >= 1).\n");
  return 0;
}
