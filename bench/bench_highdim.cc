// High-dimensional pipeline benchmark for ROADMAP item 2 (m = 100-500):
// estimate -> PSD repair -> Cholesky -> sample, swept over the attribute
// count m. The fixture keeps n small (64 rows, 8-value domains) and the
// Kendall budget tiny, so the noisy tau matrix is far from PSD and the
// m x m eigenvalue repair dominates at large m -- the regime this
// benchmark exists to track. Rows/sec is reported via SetItemsProcessed
// so tools/bench_to_json extracts items_per_second into
// BENCH_highdim.json.
//
// The acceptance pair is BM_HighDimEstimateRepair_{TridiagQL,Jacobi}/200:
// the tridiagonal QL kernel must hold >= 5x the Jacobi kernel's rate on
// the m = 200 estimate->repair leg. Jacobi is not swept past m = 200
// (its per-solve cost is O(m^3) per sweep with a large constant; the
// m = 500 leg alone would dominate the bench-smoke wall clock).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "copula/sampler.h"
#include "data/generator.h"
#include "data/table.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "stats/empirical_cdf.h"

namespace {

using dpcopula::Rng;
using dpcopula::copula::EstimateKendallCorrelation;
using dpcopula::copula::KendallEstimatorOptions;
using dpcopula::copula::SampleSyntheticData;
using dpcopula::linalg::EigenKernel;

constexpr std::size_t kRows = 64;
constexpr std::int64_t kDomain = 8;
// Tiny total budget: per-pair epsilon is kEpsilon2 / C(m,2), so the
// Laplace noise on each tau grows with m and the noisy matrix is
// strongly indefinite at every swept m -- repair always fires.
constexpr double kEpsilon2 = 0.5;
// Single thread, like the other hot-path acceptance configurations: the
// figure of merit is the eigensolver kernel, not pool scheduling.
constexpr int kThreads = 1;

struct Fixture {
  dpcopula::data::Table table;
  std::vector<dpcopula::stats::EmpiricalCdf> cdfs;
};

/// m equicorrelated (rho = 0.3) Gaussian-shaped marginals over 16-value
/// domains, plus skewed per-column CDFs for the sampling stage. Built
/// once per m and shared by every leg at that m.
const Fixture& GetFixture(std::size_t m) {
  static std::map<std::size_t, Fixture>* cache =
      new std::map<std::size_t, Fixture>();
  auto it = cache->find(m);
  if (it != cache->end()) return it->second;

  Rng rng(42);
  std::vector<dpcopula::data::MarginSpec> specs;
  specs.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::string name = "a";
    name += std::to_string(j);
    specs.push_back(
        dpcopula::data::MarginSpec::Gaussian(std::move(name), kDomain));
  }
  auto corr = dpcopula::data::Equicorrelation(m, 0.3);
  Fixture fx{*dpcopula::data::GenerateGaussianDependent(specs, *corr, kRows,
                                                        &rng),
             {}};
  fx.cdfs.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double> counts(static_cast<std::size_t>(kDomain));
    for (std::size_t v = 0; v < counts.size(); ++v) {
      counts[v] = (j % 2 == 0) ? static_cast<double>(v + 1)
                               : static_cast<double>(counts.size() - v);
    }
    fx.cdfs.push_back(*dpcopula::stats::EmpiricalCdf::FromCounts(counts));
  }
  return cache->emplace(m, std::move(fx)).first->second;
}

KendallEstimatorOptions PipelineOptions(EigenKernel kernel) {
  KendallEstimatorOptions options;
  options.subsample = false;  // n is already small; measure the full table.
  options.num_threads = kThreads;
  options.eigen_kernel = kernel;
  return options;
}

/// Full synthesis pipeline: DP Kendall estimation (repair included) ->
/// Cholesky factorization -> synthetic sampling at n rows.
void RunPipeline(benchmark::State& state, EigenKernel kernel) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Fixture& fx = GetFixture(m);
  const KendallEstimatorOptions options = PipelineOptions(kernel);
  for (auto _ : state) {
    Rng rng(7);
    auto est = EstimateKendallCorrelation(fx.table, kEpsilon2, &rng, options);
    if (!est.ok()) {
      state.SkipWithError(est.status().ToString().c_str());
      break;
    }
    auto chol = dpcopula::linalg::CholeskyDecompose(est->correlation);
    if (!chol.ok()) {
      state.SkipWithError(chol.status().ToString().c_str());
      break;
    }
    auto rows = SampleSyntheticData(fx.table.schema(), fx.cdfs,
                                    est->correlation, kRows, &rng, kThreads);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
}

/// Estimation + repair only -- the acceptance leg comparing the two
/// eigensolver kernels on identical noisy input.
void RunEstimateRepair(benchmark::State& state, EigenKernel kernel) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Fixture& fx = GetFixture(m);
  const KendallEstimatorOptions options = PipelineOptions(kernel);
  for (auto _ : state) {
    Rng rng(7);
    auto est = EstimateKendallCorrelation(fx.table, kEpsilon2, &rng, options);
    if (!est.ok()) {
      state.SkipWithError(est.status().ToString().c_str());
      break;
    }
    if (!est->repaired) {
      state.SkipWithError("PSD repair did not fire; fixture noise too low");
      break;
    }
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
}

void BM_HighDimPipeline_TridiagQL(benchmark::State& state) {
  RunPipeline(state, EigenKernel::kTridiagQL);
}
BENCHMARK(BM_HighDimPipeline_TridiagQL)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_HighDimPipeline_Jacobi(benchmark::State& state) {
  RunPipeline(state, EigenKernel::kJacobi);
}
BENCHMARK(BM_HighDimPipeline_Jacobi)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_HighDimEstimateRepair_TridiagQL(benchmark::State& state) {
  RunEstimateRepair(state, EigenKernel::kTridiagQL);
}
BENCHMARK(BM_HighDimEstimateRepair_TridiagQL)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_HighDimEstimateRepair_Jacobi(benchmark::State& state) {
  RunEstimateRepair(state, EigenKernel::kJacobi);
}
BENCHMARK(BM_HighDimEstimateRepair_Jacobi)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
