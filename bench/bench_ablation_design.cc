// Ablation harness for the design choices DESIGN.md calls out:
//   A.  marginal publishers (EFPA / Dwork / NoiseFirst / StructureFirst) —
//       reconstruction L2 on smooth vs spiky margins;
//   A2. the same publishers *inside* DPCopula — end-to-end range-query
//       error on census-style data;
//   B.  simplex-projection consistency post-processing vs naive clamping;
//   C.  synthetic-data oversampling factor (post-processing, zero privacy
//       cost) vs query accuracy;
//   D.  Kendall tau subsampling on/off — accuracy/runtime trade;
//   E.  copula family on tail-dependent data — Gaussian vs Student-t.
#include <cstdio>

#include "bench/bench_util.h"
#include "copula/t_copula.h"
#include "core/dpcopula.h"
#include "data/census.h"
#include "query/metrics.h"
#include "marginals/dwork.h"
#include "marginals/efpa.h"
#include "marginals/noisefirst.h"
#include "marginals/postprocess.h"
#include "marginals/structurefirst.h"
#include "stats/empirical_cdf.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

namespace {

double L2(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(acc);
}

void AblationMarginals(const query::ExperimentConfig& cfg, Rng* master) {
  std::printf("\n[A] marginal publisher: reconstruction L2 error, eps=0.1\n");
  bench::PrintSeriesHeader("margin",
                           {"EFPA", "Dwork", "NoiseFirst", "StructFirst"});
  // Smooth (gaussian bump) and spiky (permuted zipf) margins, 512 bins.
  std::vector<std::pair<std::string, std::vector<double>>> margins;
  {
    std::vector<double> smooth(512);
    for (std::size_t i = 0; i < smooth.size(); ++i) {
      const double z = (static_cast<double>(i) - 256.0) / 85.0;
      smooth[i] = 2000.0 * std::exp(-0.5 * z * z);
    }
    margins.emplace_back("smooth", std::move(smooth));
  }
  {
    std::vector<double> spiky(512, 1.0);
    for (std::size_t i = 0; i < spiky.size(); ++i) {
      spiky[(i * 337) % 512] =
          2000.0 * std::pow(static_cast<double>(i + 1), -0.8);
    }
    margins.emplace_back("spiky", std::move(spiky));
  }
  for (const auto& [name, counts] : margins) {
    double efpa_err = 0.0, dwork_err = 0.0, nf_err = 0.0, sf_err = 0.0;
    for (int rep = 0; rep < 10; ++rep) {
      Rng rng = master->Split();
      efpa_err += L2(counts, *marginals::PublishEfpaHistogram(counts, 0.1,
                                                              &rng));
      dwork_err += L2(counts, *marginals::PublishDworkHistogram(counts, 0.1,
                                                                &rng));
      nf_err += L2(counts, *marginals::PublishNoiseFirstHistogram(counts, 0.1,
                                                                  &rng));
      sf_err += L2(counts, *marginals::PublishStructureFirstHistogram(
                               counts, 0.1, &rng));
    }
    bench::PrintSeriesRowLabel(
        name, {efpa_err / 10.0, dwork_err / 10.0, nf_err / 10.0,
               sf_err / 10.0});
  }
  (void)cfg;
}

void AblationMarginalsEndToEnd(const query::ExperimentConfig& cfg,
                               Rng* master) {
  std::printf(
      "\n[A2] marginal publisher inside DPCopula: end-to-end RE on "
      "US-census-style data, eps=0.5\n");
  bench::PrintSeriesHeader("method", {"RE"});
  Rng data_rng = master->Split();
  auto table = data::GenerateUsCensus(
      static_cast<std::size_t>(cfg.num_tuples), &data_rng);
  const double sanity = query::UsCensusSanityBound(cfg.num_tuples);
  const std::pair<const char*, marginals::MarginalMethod> methods[] = {
      {"efpa", marginals::MarginalMethod::kEfpa},
      {"dwork", marginals::MarginalMethod::kDwork},
      {"noisefirst", marginals::MarginalMethod::kNoiseFirst},
      {"structfirst", marginals::MarginalMethod::kStructureFirst},
  };
  for (const auto& [label, method] : methods) {
    double total = 0.0;
    for (std::size_t run = 0; run < cfg.num_runs; ++run) {
      Rng rng = master->Split();
      core::DpCopulaOptions opts;
      opts.epsilon = 0.5;
      opts.marginal_method = method;
      auto res = core::Synthesize(*table, opts, &rng);
      baselines::TableEstimator est(res->synthetic, "DPCopula");
      const auto workload =
          query::RandomWorkload(table->schema(), cfg.queries_per_run, &rng);
      total += query::EvaluateWorkload(*table, est, workload, sanity)
                   ->mean_relative_error;
    }
    bench::PrintSeriesRowLabel(label,
                               {total / static_cast<double>(cfg.num_runs)});
  }
}

void AblationProjection(const query::ExperimentConfig& cfg, Rng* master) {
  std::printf(
      "\n[B] consistency post-processing (phantom mass after noising a "
      "20k-record margin over 1000 bins, eps=0.05)\n");
  bench::PrintSeriesHeader("metric", {"clamp-only", "simplex-proj"});
  Rng rng = master->Split();
  std::vector<double> counts(1000, 20.0);  // 20k records, uniform margin.
  double clamp_mass = 0.0, proj_mass = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    auto noisy = *marginals::PublishDworkHistogram(counts, 0.05, &rng);
    double clamped = 0.0;
    for (double v : noisy) clamped += std::max(0.0, v);
    clamp_mass += clamped;
    const auto projected = marginals::ProjectToNoisyTotal(noisy);
    for (double v : projected) proj_mass += v;
  }
  bench::PrintSeriesRowLabel("mass vs 20000",
                             {clamp_mass / 10.0, proj_mass / 10.0});
  (void)cfg;
}

void AblationOversample(const query::ExperimentConfig& cfg, Rng* master) {
  std::printf("\n[C] oversampling factor vs relative error (2D, eps=1)\n");
  bench::PrintSeriesHeader("factor", {"RE"});
  data::Table table = bench::MakeGaussianTable(
      static_cast<std::size_t>(cfg.num_tuples), 2, cfg.domain_size, master);
  for (double factor : {1.0, 2.0, 4.0, 8.0}) {
    double total = 0.0;
    for (std::size_t run = 0; run < cfg.num_runs; ++run) {
      Rng rng = master->Split();
      core::DpCopulaOptions opts;
      opts.epsilon = 1.0;
      opts.oversample_factor = factor;
      auto res = core::Synthesize(table, opts, &rng);
      baselines::ScaledTableEstimator est(res->synthetic, 1.0 / factor,
                                          "DPCopula");
      const auto workload =
          query::RandomWorkload(table.schema(), cfg.queries_per_run, &rng);
      total += query::EvaluateWorkload(table, est, workload, 1.0)
                   ->mean_relative_error;
    }
    bench::PrintSeriesRow(factor,
                          {total / static_cast<double>(cfg.num_runs)});
  }
}

void AblationSubsample(const query::ExperimentConfig& cfg, Rng* master) {
  std::printf("\n[D] Kendall tau subsampling (4D, eps=1)\n");
  bench::PrintSeriesHeader("subsample", {"RE", "time(s)"});
  data::Table table = bench::MakeGaussianTable(
      static_cast<std::size_t>(cfg.num_tuples) * 4, 4, cfg.domain_size,
      master);
  for (const bool subsample : {true, false}) {
    double total = 0.0, secs = 0.0;
    for (std::size_t run = 0; run < cfg.num_runs; ++run) {
      Rng rng = master->Split();
      core::DpCopulaOptions opts;
      opts.epsilon = 1.0;
      opts.kendall.subsample = subsample;
      bench::Timer timer;
      auto res = core::Synthesize(table, opts, &rng);
      secs += timer.Seconds();
      baselines::TableEstimator est(res->synthetic, "DPCopula");
      const auto workload =
          query::RandomWorkload(table.schema(), cfg.queries_per_run, &rng);
      total += query::EvaluateWorkload(table, est, workload, 1.0)
                   ->mean_relative_error;
    }
    const double runs = static_cast<double>(cfg.num_runs);
    bench::PrintSeriesRowLabel(subsample ? "on" : "off",
                               {total / runs, secs / runs});
  }
}

void AblationFamily(const query::ExperimentConfig& cfg, Rng* master) {
  std::printf(
      "\n[E] copula family on tail-dependent data (2D t(3) dependence, "
      "eps=2): joint-tail count error\n");
  bench::PrintSeriesHeader("family", {"tail RE", "overall RE"});
  // Data with genuine tail dependence: uniforms from a t(3) copula mapped
  // through gaussian-bump margins.
  Rng data_rng = master->Split();
  auto corr = data::Equicorrelation(2, 0.6);
  auto tcop = copula::TCopula::Create(*corr, 3.0);
  const std::int64_t domain = 500;
  data::Table table =
      data::Table::Zeros(data::Schema({{"a", domain}, {"b", domain}}),
                         static_cast<std::size_t>(cfg.num_tuples));
  {
    std::vector<double> cum(static_cast<std::size_t>(domain));
    double acc = 0.0;
    for (std::size_t v = 0; v < cum.size(); ++v) {
      const double z = (static_cast<double>(v) - 250.0) / 80.0;
      acc += std::exp(-0.5 * z * z);
      cum[v] = acc;
    }
    for (double& v : cum) v /= acc;
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      const auto u = tcop->SampleUniforms(&data_rng);
      for (std::size_t j = 0; j < 2; ++j) {
        const auto it = std::lower_bound(cum.begin(), cum.end(), u[j]);
        table.set(r, j,
                  static_cast<double>(it == cum.end()
                                          ? domain - 1
                                          : it - cum.begin()));
      }
    }
  }
  // Tail workload: deep joint upper-corner boxes (2-3 sigma of the margin
  // bump), where the Gaussian copula's zero tail dependence shows.
  std::vector<query::RangeQuery> tail;
  for (std::int64_t cut : {410, 430, 450, 470}) {
    query::RangeQuery q;
    q.lo = {cut, cut};
    q.hi = {domain - 1, domain - 1};
    tail.push_back(q);
  }
  struct Variant {
    const char* label;
    core::CopulaFamily family;
    double dof;
  };
  const Variant variants[] = {
      {"gaussian", core::CopulaFamily::kGaussian, 0.0},
      {"t (dof=3 fixed)", core::CopulaFamily::kStudentT, 3.0},
      {"t (private dof)", core::CopulaFamily::kStudentT, 0.0},
  };
  const std::size_t runs = cfg.num_runs * 2;
  for (const Variant& variant : variants) {
    double tail_total = 0.0, overall_total = 0.0;
    for (std::size_t run = 0; run < runs; ++run) {
      Rng rng = master->Split();
      core::DpCopulaOptions opts;
      opts.epsilon = 2.0;
      opts.family = variant.family;
      opts.t_dof = variant.dof;
      auto res = core::Synthesize(table, opts, &rng);
      baselines::TableEstimator est(res->synthetic, "DPCopula");
      tail_total += query::EvaluateWorkload(table, est, tail, 1.0)
                        ->mean_relative_error;
      const auto workload =
          query::RandomWorkload(table.schema(), cfg.queries_per_run, &rng);
      overall_total += query::EvaluateWorkload(table, est, workload, 1.0)
                           ->mean_relative_error;
    }
    bench::PrintSeriesRowLabel(
        variant.label, {tail_total / static_cast<double>(runs),
                        overall_total / static_cast<double>(runs)});
  }
  std::printf(
      "expected: the t family cuts joint-tail error on tail-dependent data "
      "(Gaussian copulas have zero tail dependence).\n");
}

}  // namespace

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  bench::PrintBanner("Ablations: DESIGN.md design choices", cfg);
  Rng master(cfg.seed);
  AblationMarginals(cfg, &master);
  AblationMarginalsEndToEnd(cfg, &master);
  AblationProjection(cfg, &master);
  AblationOversample(cfg, &master);
  AblationSubsample(cfg, &master);
  AblationFamily(cfg, &master);
  return 0;
}
