// Hot-path benchmark for DPCopula-Kendall estimation (Alg. 4/5): the
// legacy one-comparator-sort-per-pair kernel against the rank-cache
// production kernel (per-column rank structures built once; contingency
// table or counting-sort + merge-count per pair, reusable per-thread
// workspaces). Rows/sec is reported via SetItemsProcessed so
// tools/bench_to_json extracts items_per_second into BENCH_kendall.json.
// The acceptance configuration is m = 10, N = 1M, single thread: the
// rank-cache kernel must hold >= 3x the legacy kernel's rows/sec.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "data/generator.h"
#include "data/table.h"
#include "stats/kendall.h"

namespace {

using dpcopula::Rng;
using dpcopula::copula::EstimateKendallCorrelation;
using dpcopula::copula::KendallEstimatorOptions;
using dpcopula::stats::TauKernel;

constexpr std::size_t kRows = 1'000'000;
constexpr std::size_t kDims = 10;
// Discrete fixture: 64-value domains — every pair lands on the
// contingency kernel (64 * 64 cells << 2n), the common case for the
// paper's census-style attributes.
constexpr std::int64_t kDomain = 64;
// Wide fixture: 1M-value domains make nearly every value distinct, so
// every pair falls back to the counting-sort + merge-count kernel.
constexpr std::int64_t kWideDomain = 1'000'000;

/// m equicorrelated (rho = 0.4) Gaussian-shaped discrete marginals — the
/// same shape bench_sampler_hot uses. Built once per domain and shared by
/// every benchmark (generation at N = 1M is itself seconds of work).
const dpcopula::data::Table& Fixture(std::int64_t domain) {
  auto make = [](std::int64_t d) {
    Rng rng(42);
    std::vector<dpcopula::data::MarginSpec> specs;
    specs.reserve(kDims);
    for (std::size_t j = 0; j < kDims; ++j) {
      specs.push_back(dpcopula::data::MarginSpec::Gaussian(
          "a" + std::to_string(j), d));
    }
    auto corr = dpcopula::data::Equicorrelation(kDims, 0.4);
    return *dpcopula::data::GenerateGaussianDependent(specs, *corr, kRows,
                                                      &rng);
  };
  static const dpcopula::data::Table* discrete =
      new dpcopula::data::Table(make(kDomain));
  static const dpcopula::data::Table* wide =
      new dpcopula::data::Table(make(kWideDomain));
  return domain == kDomain ? *discrete : *wide;
}

void RunEstimator(benchmark::State& state, std::int64_t domain,
                  TauKernel kernel, int threads) {
  const auto& table = Fixture(domain);
  KendallEstimatorOptions options;
  options.subsample = false;  // Measure the full-n estimation cost.
  options.kernel = kernel;
  options.num_threads = threads;
  for (auto _ : state) {
    Rng rng(7);
    auto est = EstimateKendallCorrelation(table, 1.0, &rng, options);
    if (!est.ok()) state.SkipWithError(est.status().ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
}

void BM_KendallHot_Legacy(benchmark::State& state) {
  RunEstimator(state, kDomain, TauKernel::kLegacy, 1);
}
BENCHMARK(BM_KendallHot_Legacy)->Unit(benchmark::kMillisecond);

void BM_KendallHot_RankCache(benchmark::State& state) {
  RunEstimator(state, kDomain, TauKernel::kRankCache,
               static_cast<int>(state.range(0)));
}
BENCHMARK(BM_KendallHot_RankCache)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_KendallHotWide_Legacy(benchmark::State& state) {
  RunEstimator(state, kWideDomain, TauKernel::kLegacy, 1);
}
BENCHMARK(BM_KendallHotWide_Legacy)->Unit(benchmark::kMillisecond);

void BM_KendallHotWide_RankCache(benchmark::State& state) {
  RunEstimator(state, kWideDomain, TauKernel::kRankCache,
               static_cast<int>(state.range(0)));
}
BENCHMARK(BM_KendallHotWide_RankCache)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Micro views of the kernel stages at N = 1M: one rank-cache build and one
// pairwise tau through each pair kernel.
void BM_RankColumnBuild(benchmark::State& state) {
  const auto& table = Fixture(kDomain);
  for (auto _ : state) {
    auto col = dpcopula::stats::BuildRankColumn(table.column(0));
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
}
BENCHMARK(BM_RankColumnBuild)->Unit(benchmark::kMillisecond);

void BM_TauPair(benchmark::State& state) {
  const std::int64_t domain = state.range(0) == 0 ? kDomain : kWideDomain;
  const auto& table = Fixture(domain);
  const auto x = *dpcopula::stats::BuildRankColumn(table.column(0));
  const auto y = *dpcopula::stats::BuildRankColumn(table.column(1));
  dpcopula::stats::TauWorkspace ws;
  for (auto _ : state) {
    auto tau = dpcopula::stats::KendallTauFromRanks(x, y, &ws);
    benchmark::DoNotOptimize(tau);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
}
BENCHMARK(BM_TauPair)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"wide"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
