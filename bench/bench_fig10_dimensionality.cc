// Reproduces Figure 10: query accuracy vs dimensionality (2D-8D, Gaussian
// margins, domain 1000 per dimension, n = 50000, epsilon = 1), in (a)
// relative error and (b) absolute error. Paper findings: 2D is easiest for
// both methods; error grows with m; DPCopula stays below PSD with a gap
// that widens as m grows.
#include <cstdio>

#include "baselines/psd.h"
#include "bench/bench_util.h"
#include "core/dpcopula.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

int main() {
  auto cfg = query::ExperimentConfig::FromEnvironment();
  bench::PrintBanner("Figure 10: accuracy vs dimensionality (synthetic)",
                     cfg);
  Rng master(cfg.seed);

  std::printf("\n");
  bench::PrintSeriesHeader(
      "m", {"RE DPCopula", "RE PSD", "ABS DPCopula", "ABS PSD"});
  for (std::size_t m : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    data::Table table =
        bench::MakeGaussianTable(static_cast<std::size_t>(cfg.num_tuples), m,
                                 cfg.domain_size, &master);
    double dpc_rel = 0.0, psd_rel = 0.0, dpc_abs = 0.0, psd_abs = 0.0;
    for (std::size_t run = 0; run < cfg.num_runs; ++run) {
      Rng rng = master.Split();
      const auto workload =
          query::RandomWorkload(table.schema(), cfg.queries_per_run, &rng);
      const auto truth = query::ComputeTrueAnswers(table, workload);
      core::DpCopulaOptions opts;
      opts.epsilon = cfg.epsilon;
      opts.budget_ratio_k = cfg.budget_ratio_k;
      auto res = core::Synthesize(table, opts, &rng);
      baselines::TableEstimator est(res->synthetic, "DPCopula");
      auto e1 = query::EvaluateWorkloadWithTruth(*truth, est, workload,
                                                 cfg.sanity_bound);
      dpc_rel += e1->mean_relative_error;
      dpc_abs += e1->mean_absolute_error;
      auto psd = baselines::PsdTree::Build(table, cfg.epsilon, &rng);
      auto e2 = query::EvaluateWorkloadWithTruth(*truth, **psd, workload,
                                                 cfg.sanity_bound);
      psd_rel += e2->mean_relative_error;
      psd_abs += e2->mean_absolute_error;
    }
    const double runs = static_cast<double>(cfg.num_runs);
    bench::PrintSeriesRow(static_cast<double>(m),
                          {dpc_rel / runs, psd_rel / runs, dpc_abs / runs,
                           psd_abs / runs});
  }
  std::printf(
      "\nexpected shape: both errors lowest at m=2 and growing with m; "
      "DPCopula below PSD throughout, gap widening with m.\n");
  return 0;
}
