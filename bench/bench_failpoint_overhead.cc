// Overhead of the fault-injection layer on the end-to-end pipeline.
//
// The hot path runs DPC_FAILPOINT_AT once per sampled row (plus coarser
// sites per shard / partition), so this bench answers: what does a
// compiled-in but dormant fail-point layer cost? Three runtime modes over
// identical Synthesize runs (same data, same seed, so the work is
// byte-identical by the determinism guarantee):
//
//   disarmed        no site armed — the production state. Each site is one
//                   relaxed atomic load of the process-wide AnyArmed gate
//                   and a predicted-not-taken branch.
//   unrelated-armed an unrelated site armed. The AnyArmed gate passes, so
//                   every site also resolves its cached FailPoint pointer
//                   and loads its (off) mode — the worst dormant case.
//   armed-miss      "sampler.row" armed with a trigger that never fires
//                   (after<2^63>): full trigger evaluation on every row.
//
// Reports median seconds per run and the overhead relative to `disarmed`.
// Compare externally against a -DDPCOPULA_FAILPOINTS=OFF build (where every
// site folds to `false` at compile time) to see the cost of the gate load
// itself. Run with DPCOPULA_BENCH_FULL=1 for a paper-scale table.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/failpoint.h"
#include "core/dpcopula.h"

using namespace dpcopula;  // NOLINT(build/namespaces) — bench binary.

namespace {

double MedianRunSeconds(const data::Table& table,
                        const core::DpCopulaOptions& options,
                        std::size_t repeats) {
  std::vector<double> seconds;
  seconds.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    Rng rng(1234);  // Same seed every repeat: identical work.
    bench::Timer timer;
    auto result = core::Synthesize(table, options, &rng);
    seconds.push_back(timer.Seconds());
    if (!result.ok()) {
      std::fprintf(stderr, "synthesize failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace

int main() {
  query::ExperimentConfig cfg = query::ExperimentConfig::FromEnvironment();
  const std::size_t rows =
      static_cast<std::size_t>(std::min<std::int64_t>(cfg.num_tuples, 200000));
  constexpr std::size_t kColumns = 6;
  constexpr std::size_t kRepeats = 5;

  Rng data_rng(cfg.seed);
  data::Table table = bench::MakeGaussianTable(rows, kColumns, 64, &data_rng);

  core::DpCopulaOptions options;
  options.epsilon = 1.0;
  options.num_threads = 0;  // All hardware threads — max evaluations/sec.

  std::printf(
      "=== fail-point overhead (n=%zu, m=%zu, %zu repeats) ===\n", rows,
      kColumns, kRepeats);
  std::printf("failpoints compiled in: %s\n",
#if DPCOPULA_FAILPOINTS_ENABLED
              "yes"
#else
              "no (all modes are identical no-ops)"
#endif
  );

  struct Mode {
    const char* name;
    const char* arm_site;  // nullptr = nothing armed.
    const char* arm_spec;
  };
  const std::vector<Mode> modes = {
      {"disarmed", nullptr, nullptr},
      {"unrelated-armed", "bench.unrelated", "always"},
      // kAfterN with a param no row index reaches: evaluates the full
      // trigger on every DPC_FAILPOINT_AT("sampler.row", r) but never
      // fires, so the run completes.
      {"armed-miss", "sampler.row", "after9223372036854775807"},
  };

  double baseline = 0.0;
  bench::PrintSeriesHeader("mode", {"median_s", "overhead_%"});
  for (const Mode& mode : modes) {
    failpoint::Registry::Global().DisarmAll();
    if (mode.arm_site != nullptr) {
      Status st =
          failpoint::Registry::Global().Arm(mode.arm_site, mode.arm_spec);
      if (!st.ok()) {
        std::fprintf(stderr, "arm failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    // One warm-up run outside the timer (pool spin-up, site registration).
    MedianRunSeconds(table, options, 1);
    const double median = MedianRunSeconds(table, options, kRepeats);
    if (baseline == 0.0) baseline = median;
    bench::PrintSeriesRowLabel(
        mode.name, {median, 100.0 * (median - baseline) / baseline});
  }
  failpoint::Registry::Global().DisarmAll();
  return 0;
}
