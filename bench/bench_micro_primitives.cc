// Google-benchmark micro suite for the numeric primitives underlying
// DPCopula: Kendall's tau (the O(n log n) claim of §4.2), normal inverse
// CDF, Cholesky, multivariate-normal sampling, the Haar/DCT transforms and
// the EFPA marginal publisher.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "copula/sampler.h"
#include "copula/t_copula.h"
#include "data/generator.h"
#include "hist/dct.h"
#include "hist/summed_area.h"
#include "hist/wavelet.h"
#include "linalg/cholesky.h"
#include "marginals/efpa.h"
#include "stats/distributions.h"
#include "stats/empirical_cdf.h"
#include "stats/kendall.h"
#include "stats/normal.h"

namespace {

using dpcopula::Rng;

std::pair<std::vector<double>, std::vector<double>> MakePair(std::size_t n) {
  Rng rng(42);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.NextGaussian();
    y[i] = 0.5 * x[i] + rng.NextGaussian();
  }
  return {std::move(x), std::move(y)};
}

void BM_KendallTauFast(benchmark::State& state) {
  const auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpcopula::stats::KendallTau(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KendallTauFast)->Range(1 << 8, 1 << 16)->Complexity();

void BM_KendallTauBruteForce(benchmark::State& state) {
  const auto [x, y] = MakePair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpcopula::stats::KendallTauBruteForce(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KendallTauBruteForce)->Range(1 << 8, 1 << 12)->Complexity();

void BM_NormalInverseCdf(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dpcopula::stats::NormalInverseCdf(rng.NextDoubleOpen()));
  }
}
BENCHMARK(BM_NormalInverseCdf);

// Scalar loop vs the batch entry point (AVX2 when compiled in and the CPU
// supports it — the two are bit-identical, so this row shows the pure
// dispatch/vectorization effect). Arg is the batch length.
void BM_NormalInverseCdfBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  Rng rng(7);
  std::vector<double> p(n), z(n);
  for (double& v : p) v = rng.NextDoubleOpen();
  for (auto _ : state) {
    if (batched) {
      dpcopula::stats::NormalInverseCdfBatch(p.data(), z.data(), n);
    } else {
      dpcopula::stats::internal::NormalInverseCdfBatchScalar(p.data(),
                                                             z.data(), n);
    }
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NormalInverseCdfBatch)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->ArgNames({"n", "simd"});

void BM_NormalCdfBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  Rng rng(7);
  std::vector<double> x(n), out(n);
  for (double& v : x) v = 8.0 * (rng.NextDouble() - 0.5);
  for (auto _ : state) {
    if (batched) {
      dpcopula::stats::NormalCdfBatch(x.data(), out.data(), n);
    } else {
      dpcopula::stats::internal::NormalCdfBatchScalar(x.data(), out.data(),
                                                      n);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NormalCdfBatch)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->ArgNames({"n", "simd"});

void BM_Cholesky(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  auto corr = dpcopula::data::Ar1Correlation(m, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpcopula::linalg::CholeskyDecompose(corr));
  }
}
BENCHMARK(BM_Cholesky)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_SampleSynthetic(benchmark::State& state) {
  const std::size_t m = 8;
  Rng rng(11);
  dpcopula::data::Schema schema{[] {
    std::vector<dpcopula::data::Attribute> attrs;
    for (std::size_t j = 0; j < 8; ++j) {
      attrs.push_back({"x" + std::to_string(j), 1000});
    }
    return attrs;
  }()};
  std::vector<dpcopula::stats::EmpiricalCdf> cdfs;
  for (std::size_t j = 0; j < m; ++j) {
    cdfs.push_back(*dpcopula::stats::EmpiricalCdf::FromCounts(
        std::vector<double>(1000, 1.0)));
  }
  const auto corr = dpcopula::data::Ar1Correlation(m, 0.5);
  const auto rows = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpcopula::copula::SampleSyntheticData(
        schema, cdfs, corr, rows, &rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rows) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SampleSynthetic)->Arg(1000)->Arg(10000);

void BM_ForwardHaar(benchmark::State& state) {
  Rng rng(13);
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  for (double& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpcopula::hist::ForwardHaar(x));
  }
}
BENCHMARK(BM_ForwardHaar)->Range(1 << 8, 1 << 16);

void BM_ForwardDct(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  for (double& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpcopula::hist::ForwardDct(x));
  }
}
BENCHMARK(BM_ForwardDct)->Arg(256)->Arg(1024);

void BM_EfpaPublish(benchmark::State& state) {
  Rng rng(19);
  std::vector<double> counts(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double z = (static_cast<double>(i) - 500.0) / 150.0;
    counts[i] = 1000.0 * std::exp(-0.5 * z * z);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dpcopula::marginals::PublishEfpaHistogram(counts, 1.0, &rng));
  }
}
BENCHMARK(BM_EfpaPublish)->Arg(1000);

void BM_StudentTInverseCdf(benchmark::State& state) {
  Rng rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dpcopula::stats::StudentTInverseCdf(rng.NextDoubleOpen(), 4.0));
  }
}
BENCHMARK(BM_StudentTInverseCdf);

void BM_TCopulaLogDensity(benchmark::State& state) {
  auto corr = dpcopula::data::Ar1Correlation(8, 0.5);
  auto copula = dpcopula::copula::TCopula::Create(corr, 4.0);
  Rng rng(29);
  std::vector<double> u(8);
  for (double& v : u) v = rng.NextDoubleOpen();
  for (auto _ : state) {
    benchmark::DoNotOptimize(copula->LogDensity(u));
  }
}
BENCHMARK(BM_TCopulaLogDensity);

void BM_KendallEstimatorThreads(benchmark::State& state) {
  Rng data_rng(31);
  std::vector<dpcopula::data::MarginSpec> specs;
  for (int j = 0; j < 8; ++j) {
    specs.push_back(dpcopula::data::MarginSpec::Gaussian(
        "x" + std::to_string(j), 1000));
  }
  auto table = dpcopula::data::GenerateGaussianDependent(
      specs, dpcopula::data::Ar1Correlation(8, 0.5), 20000, &data_rng);
  dpcopula::copula::KendallEstimatorOptions opts;
  opts.subsample = false;
  opts.num_threads = static_cast<int>(state.range(0));
  Rng rng(37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpcopula::copula::EstimateKendallCorrelation(
        *table, 1.0, &rng, opts));
  }
}
BENCHMARK(BM_KendallEstimatorThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_SummedAreaVsDirectRangeSum(benchmark::State& state) {
  Rng rng(41);
  auto h = dpcopula::hist::Histogram::Create({256, 256});
  for (double& v : h->mutable_data()) v = rng.NextDouble();
  const bool use_sat = state.range(0) != 0;
  auto sat = dpcopula::hist::SummedAreaTable::Build(*h);
  for (auto _ : state) {
    const std::int64_t a = rng.NextInt64InRange(0, 127);
    const std::int64_t b = rng.NextInt64InRange(128, 255);
    if (use_sat) {
      benchmark::DoNotOptimize(sat->RangeSum({a, a}, {b, b}));
    } else {
      benchmark::DoNotOptimize(h->RangeSum({a, a}, {b, b}));
    }
  }
}
BENCHMARK(BM_SummedAreaVsDirectRangeSum)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
