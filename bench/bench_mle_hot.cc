// Hot-path benchmark for DPCopula-MLE estimation (Alg. 2): the legacy
// per-partition Table::Zeros + PseudoObservations + NormalScores pipeline
// against the batched production kernel (one rank sort per column shared by
// all l partitions, one batched Phi^-1 per distinct value bin, flat
// reusable workspaces, 256-row blocked correlation). Rows/sec is reported
// via SetItemsProcessed so tools/bench_to_json extracts items_per_second
// into BENCH_mle.json. The acceptance configuration is m = 10, N = 1M,
// epsilon2 = 1 (the paper's rule picks l = 1800, b = 555), single thread:
// the batched kernel must hold >= 3x the legacy kernel's rows/sec.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "copula/gaussian_copula.h"
#include "copula/mle_estimator.h"
#include "data/generator.h"
#include "data/table.h"

namespace {

using dpcopula::Rng;
using dpcopula::copula::EstimateMleCorrelation;
using dpcopula::copula::MleEstimatorOptions;
using dpcopula::copula::MleKernel;

constexpr std::size_t kRows = 1'000'000;
constexpr std::size_t kDims = 10;
// Discrete fixture: 64-value domains — a partition of b = 555 rows holds
// ~10 rows per distinct value, so the batched kernel's one-Phi^-1-per-bin
// rewrite pays off heavily. The common census-attribute case.
constexpr std::int64_t kDomain = 64;
// Wide fixture: 4096-value domains make most values distinct within a
// 555-row partition — the worst case for run batching (one run per row)
// and for the legacy per-partition histogram allocation.
constexpr std::int64_t kWideDomain = 4096;

/// m equicorrelated (rho = 0.4) Gaussian-shaped discrete marginals — the
/// same fixture shape bench_sampler_hot / bench_kendall_hot use. Built once
/// per domain and shared by every benchmark.
const dpcopula::data::Table& Fixture(std::int64_t domain) {
  auto make = [](std::int64_t d) {
    Rng rng(42);
    std::vector<dpcopula::data::MarginSpec> specs;
    specs.reserve(kDims);
    for (std::size_t j = 0; j < kDims; ++j) {
      specs.push_back(dpcopula::data::MarginSpec::Gaussian(
          "a" + std::to_string(j), d));
    }
    auto corr = dpcopula::data::Equicorrelation(kDims, 0.4);
    return *dpcopula::data::GenerateGaussianDependent(specs, *corr, kRows,
                                                      &rng);
  };
  static const dpcopula::data::Table* discrete =
      new dpcopula::data::Table(make(kDomain));
  static const dpcopula::data::Table* wide =
      new dpcopula::data::Table(make(kWideDomain));
  return domain == kDomain ? *discrete : *wide;
}

void RunEstimator(benchmark::State& state, std::int64_t domain,
                  MleKernel kernel, int threads) {
  const auto& table = Fixture(domain);
  MleEstimatorOptions options;
  options.kernel = kernel;
  options.num_threads = threads;
  for (auto _ : state) {
    Rng rng(7);
    auto est = EstimateMleCorrelation(table, 1.0, &rng, options);
    if (!est.ok()) state.SkipWithError(est.status().ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
}

void BM_MleHot_Legacy(benchmark::State& state) {
  RunEstimator(state, kDomain, MleKernel::kLegacy, 1);
}
BENCHMARK(BM_MleHot_Legacy)->Unit(benchmark::kMillisecond);

void BM_MleHot_Batched(benchmark::State& state) {
  RunEstimator(state, kDomain, MleKernel::kBatched,
               static_cast<int>(state.range(0)));
}
BENCHMARK(BM_MleHot_Batched)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MleHotWide_Legacy(benchmark::State& state) {
  RunEstimator(state, kWideDomain, MleKernel::kLegacy, 1);
}
BENCHMARK(BM_MleHotWide_Legacy)->Unit(benchmark::kMillisecond);

void BM_MleHotWide_Batched(benchmark::State& state) {
  RunEstimator(state, kWideDomain, MleKernel::kBatched,
               static_cast<int>(state.range(0)));
}
BENCHMARK(BM_MleHotWide_Batched)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Micro view of the phase-2 stage at the acceptance partition shape
// (b = 555, m = 10): the blocked correlation against the reference
// column-vector implementation on identical scores.
void BM_PartitionCorrelation(benchmark::State& state) {
  constexpr std::size_t kPartRows = 555;
  const bool tiled = state.range(0) != 0;
  Rng rng(3);
  std::vector<std::vector<double>> scores(kDims,
                                          std::vector<double>(kPartRows));
  for (auto& col : scores) {
    for (auto& v : col) v = rng.NextGaussian();
  }
  std::vector<const double*> ptrs(kDims);
  for (std::size_t j = 0; j < kDims; ++j) ptrs[j] = scores[j].data();
  for (auto _ : state) {
    if (tiled) {
      auto corr = dpcopula::copula::NormalScoresCorrelationTiled(
          ptrs.data(), kDims, kPartRows);
      benchmark::DoNotOptimize(corr);
    } else {
      auto corr = dpcopula::copula::NormalScoresCorrelation(scores);
      benchmark::DoNotOptimize(corr);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPartRows));
}
BENCHMARK(BM_PartitionCorrelation)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"tiled"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
