# Empty dependencies file for tcopula_test.
# This may be replaced when dependencies are built.
