file(REMOVE_RECURSE
  "CMakeFiles/tcopula_test.dir/tcopula_test.cc.o"
  "CMakeFiles/tcopula_test.dir/tcopula_test.cc.o.d"
  "tcopula_test"
  "tcopula_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcopula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
