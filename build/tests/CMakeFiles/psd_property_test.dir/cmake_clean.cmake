file(REMOVE_RECURSE
  "CMakeFiles/psd_property_test.dir/psd_property_test.cc.o"
  "CMakeFiles/psd_property_test.dir/psd_property_test.cc.o.d"
  "psd_property_test"
  "psd_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
