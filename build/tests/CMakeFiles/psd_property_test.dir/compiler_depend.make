# Empty compiler generated dependencies file for psd_property_test.
# This may be replaced when dependencies are built.
