# Empty dependencies file for marginals_test.
# This may be replaced when dependencies are built.
