file(REMOVE_RECURSE
  "CMakeFiles/marginals_test.dir/marginals_test.cc.o"
  "CMakeFiles/marginals_test.dir/marginals_test.cc.o.d"
  "marginals_test"
  "marginals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marginals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
