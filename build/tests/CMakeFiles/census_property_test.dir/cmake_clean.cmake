file(REMOVE_RECURSE
  "CMakeFiles/census_property_test.dir/census_property_test.cc.o"
  "CMakeFiles/census_property_test.dir/census_property_test.cc.o.d"
  "census_property_test"
  "census_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
