# Empty dependencies file for census_property_test.
# This may be replaced when dependencies are built.
