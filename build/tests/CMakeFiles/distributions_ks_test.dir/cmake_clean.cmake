file(REMOVE_RECURSE
  "CMakeFiles/distributions_ks_test.dir/distributions_ks_test.cc.o"
  "CMakeFiles/distributions_ks_test.dir/distributions_ks_test.cc.o.d"
  "distributions_ks_test"
  "distributions_ks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributions_ks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
