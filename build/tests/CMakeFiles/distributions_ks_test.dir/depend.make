# Empty dependencies file for distributions_ks_test.
# This may be replaced when dependencies are built.
