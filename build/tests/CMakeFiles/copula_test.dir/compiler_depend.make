# Empty compiler generated dependencies file for copula_test.
# This may be replaced when dependencies are built.
