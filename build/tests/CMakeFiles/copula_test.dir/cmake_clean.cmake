file(REMOVE_RECURSE
  "CMakeFiles/copula_test.dir/copula_test.cc.o"
  "CMakeFiles/copula_test.dir/copula_test.cc.o.d"
  "copula_test"
  "copula_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
