file(REMOVE_RECURSE
  "CMakeFiles/kendall_test.dir/kendall_test.cc.o"
  "CMakeFiles/kendall_test.dir/kendall_test.cc.o.d"
  "kendall_test"
  "kendall_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kendall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
