file(REMOVE_RECURSE
  "CMakeFiles/fuzz_options_test.dir/fuzz_options_test.cc.o"
  "CMakeFiles/fuzz_options_test.dir/fuzz_options_test.cc.o.d"
  "fuzz_options_test"
  "fuzz_options_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
