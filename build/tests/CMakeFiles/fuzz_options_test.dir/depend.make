# Empty dependencies file for fuzz_options_test.
# This may be replaced when dependencies are built.
