# Empty compiler generated dependencies file for dpcopula_eval.
# This may be replaced when dependencies are built.
