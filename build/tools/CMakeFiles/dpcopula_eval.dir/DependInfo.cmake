
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dpcopula_eval.cc" "tools/CMakeFiles/dpcopula_eval.dir/dpcopula_eval.cc.o" "gcc" "tools/CMakeFiles/dpcopula_eval.dir/dpcopula_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dpc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dpc_query.dir/DependInfo.cmake"
  "/root/repo/build/src/copula/CMakeFiles/dpc_copula.dir/DependInfo.cmake"
  "/root/repo/build/src/marginals/CMakeFiles/dpc_marginals.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/dpc_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dpc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/dpc_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dpc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
