file(REMOVE_RECURSE
  "CMakeFiles/dpcopula_eval.dir/dpcopula_eval.cc.o"
  "CMakeFiles/dpcopula_eval.dir/dpcopula_eval.cc.o.d"
  "dpcopula_eval"
  "dpcopula_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpcopula_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
