# Empty compiler generated dependencies file for dpcopula_cli.
# This may be replaced when dependencies are built.
