file(REMOVE_RECURSE
  "CMakeFiles/dpcopula_cli.dir/dpcopula_cli.cc.o"
  "CMakeFiles/dpcopula_cli.dir/dpcopula_cli.cc.o.d"
  "dpcopula"
  "dpcopula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpcopula_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
