# Empty compiler generated dependencies file for bench_fig6_kendall_vs_mle.
# This may be replaced when dependencies are built.
