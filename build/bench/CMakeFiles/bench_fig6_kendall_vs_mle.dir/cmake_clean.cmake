file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_kendall_vs_mle.dir/bench_fig6_kendall_vs_mle.cc.o"
  "CMakeFiles/bench_fig6_kendall_vs_mle.dir/bench_fig6_kendall_vs_mle.cc.o.d"
  "bench_fig6_kendall_vs_mle"
  "bench_fig6_kendall_vs_mle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_kendall_vs_mle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
