# Empty compiler generated dependencies file for bench_fig5_ratio_k.
# This may be replaced when dependencies are built.
