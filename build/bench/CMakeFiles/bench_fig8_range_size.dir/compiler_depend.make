# Empty compiler generated dependencies file for bench_fig8_range_size.
# This may be replaced when dependencies are built.
