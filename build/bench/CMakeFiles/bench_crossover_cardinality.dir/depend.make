# Empty dependencies file for bench_crossover_cardinality.
# This may be replaced when dependencies are built.
