file(REMOVE_RECURSE
  "CMakeFiles/bench_crossover_cardinality.dir/bench_crossover_cardinality.cc.o"
  "CMakeFiles/bench_crossover_cardinality.dir/bench_crossover_cardinality.cc.o.d"
  "bench_crossover_cardinality"
  "bench_crossover_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossover_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
