file(REMOVE_RECURSE
  "libdpc_marginals.a"
)
