# Empty compiler generated dependencies file for dpc_marginals.
# This may be replaced when dependencies are built.
