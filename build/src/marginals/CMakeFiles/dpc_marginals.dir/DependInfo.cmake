
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marginals/dwork.cc" "src/marginals/CMakeFiles/dpc_marginals.dir/dwork.cc.o" "gcc" "src/marginals/CMakeFiles/dpc_marginals.dir/dwork.cc.o.d"
  "/root/repo/src/marginals/efpa.cc" "src/marginals/CMakeFiles/dpc_marginals.dir/efpa.cc.o" "gcc" "src/marginals/CMakeFiles/dpc_marginals.dir/efpa.cc.o.d"
  "/root/repo/src/marginals/marginal_method.cc" "src/marginals/CMakeFiles/dpc_marginals.dir/marginal_method.cc.o" "gcc" "src/marginals/CMakeFiles/dpc_marginals.dir/marginal_method.cc.o.d"
  "/root/repo/src/marginals/noisefirst.cc" "src/marginals/CMakeFiles/dpc_marginals.dir/noisefirst.cc.o" "gcc" "src/marginals/CMakeFiles/dpc_marginals.dir/noisefirst.cc.o.d"
  "/root/repo/src/marginals/postprocess.cc" "src/marginals/CMakeFiles/dpc_marginals.dir/postprocess.cc.o" "gcc" "src/marginals/CMakeFiles/dpc_marginals.dir/postprocess.cc.o.d"
  "/root/repo/src/marginals/structurefirst.cc" "src/marginals/CMakeFiles/dpc_marginals.dir/structurefirst.cc.o" "gcc" "src/marginals/CMakeFiles/dpc_marginals.dir/structurefirst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/dpc_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/dpc_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dpc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dpc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
