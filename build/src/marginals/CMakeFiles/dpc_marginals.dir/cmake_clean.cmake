file(REMOVE_RECURSE
  "CMakeFiles/dpc_marginals.dir/dwork.cc.o"
  "CMakeFiles/dpc_marginals.dir/dwork.cc.o.d"
  "CMakeFiles/dpc_marginals.dir/efpa.cc.o"
  "CMakeFiles/dpc_marginals.dir/efpa.cc.o.d"
  "CMakeFiles/dpc_marginals.dir/marginal_method.cc.o"
  "CMakeFiles/dpc_marginals.dir/marginal_method.cc.o.d"
  "CMakeFiles/dpc_marginals.dir/noisefirst.cc.o"
  "CMakeFiles/dpc_marginals.dir/noisefirst.cc.o.d"
  "CMakeFiles/dpc_marginals.dir/postprocess.cc.o"
  "CMakeFiles/dpc_marginals.dir/postprocess.cc.o.d"
  "CMakeFiles/dpc_marginals.dir/structurefirst.cc.o"
  "CMakeFiles/dpc_marginals.dir/structurefirst.cc.o.d"
  "libdpc_marginals.a"
  "libdpc_marginals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_marginals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
