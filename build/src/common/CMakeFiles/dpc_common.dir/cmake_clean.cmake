file(REMOVE_RECURSE
  "CMakeFiles/dpc_common.dir/rng.cc.o"
  "CMakeFiles/dpc_common.dir/rng.cc.o.d"
  "CMakeFiles/dpc_common.dir/status.cc.o"
  "CMakeFiles/dpc_common.dir/status.cc.o.d"
  "libdpc_common.a"
  "libdpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
