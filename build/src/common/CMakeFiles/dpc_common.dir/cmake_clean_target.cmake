file(REMOVE_RECURSE
  "libdpc_common.a"
)
