# Empty compiler generated dependencies file for dpc_common.
# This may be replaced when dependencies are built.
