# Empty compiler generated dependencies file for dpc_linalg.
# This may be replaced when dependencies are built.
