file(REMOVE_RECURSE
  "libdpc_linalg.a"
)
