
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/linalg/CMakeFiles/dpc_linalg.dir/cholesky.cc.o" "gcc" "src/linalg/CMakeFiles/dpc_linalg.dir/cholesky.cc.o.d"
  "/root/repo/src/linalg/eigen_sym.cc" "src/linalg/CMakeFiles/dpc_linalg.dir/eigen_sym.cc.o" "gcc" "src/linalg/CMakeFiles/dpc_linalg.dir/eigen_sym.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/dpc_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/dpc_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/psd_repair.cc" "src/linalg/CMakeFiles/dpc_linalg.dir/psd_repair.cc.o" "gcc" "src/linalg/CMakeFiles/dpc_linalg.dir/psd_repair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
