file(REMOVE_RECURSE
  "CMakeFiles/dpc_linalg.dir/cholesky.cc.o"
  "CMakeFiles/dpc_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/dpc_linalg.dir/eigen_sym.cc.o"
  "CMakeFiles/dpc_linalg.dir/eigen_sym.cc.o.d"
  "CMakeFiles/dpc_linalg.dir/matrix.cc.o"
  "CMakeFiles/dpc_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/dpc_linalg.dir/psd_repair.cc.o"
  "CMakeFiles/dpc_linalg.dir/psd_repair.cc.o.d"
  "libdpc_linalg.a"
  "libdpc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
