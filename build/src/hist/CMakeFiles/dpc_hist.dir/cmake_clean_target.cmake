file(REMOVE_RECURSE
  "libdpc_hist.a"
)
