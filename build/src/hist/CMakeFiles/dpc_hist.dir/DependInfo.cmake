
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hist/dct.cc" "src/hist/CMakeFiles/dpc_hist.dir/dct.cc.o" "gcc" "src/hist/CMakeFiles/dpc_hist.dir/dct.cc.o.d"
  "/root/repo/src/hist/histogram.cc" "src/hist/CMakeFiles/dpc_hist.dir/histogram.cc.o" "gcc" "src/hist/CMakeFiles/dpc_hist.dir/histogram.cc.o.d"
  "/root/repo/src/hist/summed_area.cc" "src/hist/CMakeFiles/dpc_hist.dir/summed_area.cc.o" "gcc" "src/hist/CMakeFiles/dpc_hist.dir/summed_area.cc.o.d"
  "/root/repo/src/hist/wavelet.cc" "src/hist/CMakeFiles/dpc_hist.dir/wavelet.cc.o" "gcc" "src/hist/CMakeFiles/dpc_hist.dir/wavelet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dpc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dpc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
