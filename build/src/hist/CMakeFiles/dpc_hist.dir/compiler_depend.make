# Empty compiler generated dependencies file for dpc_hist.
# This may be replaced when dependencies are built.
