file(REMOVE_RECURSE
  "CMakeFiles/dpc_hist.dir/dct.cc.o"
  "CMakeFiles/dpc_hist.dir/dct.cc.o.d"
  "CMakeFiles/dpc_hist.dir/histogram.cc.o"
  "CMakeFiles/dpc_hist.dir/histogram.cc.o.d"
  "CMakeFiles/dpc_hist.dir/summed_area.cc.o"
  "CMakeFiles/dpc_hist.dir/summed_area.cc.o.d"
  "CMakeFiles/dpc_hist.dir/wavelet.cc.o"
  "CMakeFiles/dpc_hist.dir/wavelet.cc.o.d"
  "libdpc_hist.a"
  "libdpc_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
