file(REMOVE_RECURSE
  "CMakeFiles/dpc_data.dir/census.cc.o"
  "CMakeFiles/dpc_data.dir/census.cc.o.d"
  "CMakeFiles/dpc_data.dir/csv.cc.o"
  "CMakeFiles/dpc_data.dir/csv.cc.o.d"
  "CMakeFiles/dpc_data.dir/generator.cc.o"
  "CMakeFiles/dpc_data.dir/generator.cc.o.d"
  "CMakeFiles/dpc_data.dir/table.cc.o"
  "CMakeFiles/dpc_data.dir/table.cc.o.d"
  "libdpc_data.a"
  "libdpc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
