file(REMOVE_RECURSE
  "libdpc_data.a"
)
