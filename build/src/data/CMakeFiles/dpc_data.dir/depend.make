# Empty dependencies file for dpc_data.
# This may be replaced when dependencies are built.
