file(REMOVE_RECURSE
  "libdpc_dp.a"
)
