# Empty compiler generated dependencies file for dpc_dp.
# This may be replaced when dependencies are built.
