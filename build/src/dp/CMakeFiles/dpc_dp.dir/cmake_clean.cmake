file(REMOVE_RECURSE
  "CMakeFiles/dpc_dp.dir/budget.cc.o"
  "CMakeFiles/dpc_dp.dir/budget.cc.o.d"
  "CMakeFiles/dpc_dp.dir/interactive.cc.o"
  "CMakeFiles/dpc_dp.dir/interactive.cc.o.d"
  "CMakeFiles/dpc_dp.dir/mechanisms.cc.o"
  "CMakeFiles/dpc_dp.dir/mechanisms.cc.o.d"
  "libdpc_dp.a"
  "libdpc_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
