file(REMOVE_RECURSE
  "CMakeFiles/dpc_query.dir/evaluator.cc.o"
  "CMakeFiles/dpc_query.dir/evaluator.cc.o.d"
  "CMakeFiles/dpc_query.dir/experiment_config.cc.o"
  "CMakeFiles/dpc_query.dir/experiment_config.cc.o.d"
  "CMakeFiles/dpc_query.dir/fidelity_metrics.cc.o"
  "CMakeFiles/dpc_query.dir/fidelity_metrics.cc.o.d"
  "CMakeFiles/dpc_query.dir/metrics.cc.o"
  "CMakeFiles/dpc_query.dir/metrics.cc.o.d"
  "CMakeFiles/dpc_query.dir/privacy_metrics.cc.o"
  "CMakeFiles/dpc_query.dir/privacy_metrics.cc.o.d"
  "CMakeFiles/dpc_query.dir/workload.cc.o"
  "CMakeFiles/dpc_query.dir/workload.cc.o.d"
  "libdpc_query.a"
  "libdpc_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
