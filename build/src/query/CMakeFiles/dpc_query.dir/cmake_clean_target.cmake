file(REMOVE_RECURSE
  "libdpc_query.a"
)
