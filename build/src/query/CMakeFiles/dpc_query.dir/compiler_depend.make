# Empty compiler generated dependencies file for dpc_query.
# This may be replaced when dependencies are built.
