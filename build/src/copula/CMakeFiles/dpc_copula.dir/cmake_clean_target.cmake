file(REMOVE_RECURSE
  "libdpc_copula.a"
)
