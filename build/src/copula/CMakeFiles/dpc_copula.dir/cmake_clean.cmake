file(REMOVE_RECURSE
  "CMakeFiles/dpc_copula.dir/empirical_copula.cc.o"
  "CMakeFiles/dpc_copula.dir/empirical_copula.cc.o.d"
  "CMakeFiles/dpc_copula.dir/gaussian_copula.cc.o"
  "CMakeFiles/dpc_copula.dir/gaussian_copula.cc.o.d"
  "CMakeFiles/dpc_copula.dir/kendall_estimator.cc.o"
  "CMakeFiles/dpc_copula.dir/kendall_estimator.cc.o.d"
  "CMakeFiles/dpc_copula.dir/mle_estimator.cc.o"
  "CMakeFiles/dpc_copula.dir/mle_estimator.cc.o.d"
  "CMakeFiles/dpc_copula.dir/pseudo_obs.cc.o"
  "CMakeFiles/dpc_copula.dir/pseudo_obs.cc.o.d"
  "CMakeFiles/dpc_copula.dir/sampler.cc.o"
  "CMakeFiles/dpc_copula.dir/sampler.cc.o.d"
  "CMakeFiles/dpc_copula.dir/t_copula.cc.o"
  "CMakeFiles/dpc_copula.dir/t_copula.cc.o.d"
  "libdpc_copula.a"
  "libdpc_copula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_copula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
