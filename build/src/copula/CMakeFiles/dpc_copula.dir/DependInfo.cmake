
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/copula/empirical_copula.cc" "src/copula/CMakeFiles/dpc_copula.dir/empirical_copula.cc.o" "gcc" "src/copula/CMakeFiles/dpc_copula.dir/empirical_copula.cc.o.d"
  "/root/repo/src/copula/gaussian_copula.cc" "src/copula/CMakeFiles/dpc_copula.dir/gaussian_copula.cc.o" "gcc" "src/copula/CMakeFiles/dpc_copula.dir/gaussian_copula.cc.o.d"
  "/root/repo/src/copula/kendall_estimator.cc" "src/copula/CMakeFiles/dpc_copula.dir/kendall_estimator.cc.o" "gcc" "src/copula/CMakeFiles/dpc_copula.dir/kendall_estimator.cc.o.d"
  "/root/repo/src/copula/mle_estimator.cc" "src/copula/CMakeFiles/dpc_copula.dir/mle_estimator.cc.o" "gcc" "src/copula/CMakeFiles/dpc_copula.dir/mle_estimator.cc.o.d"
  "/root/repo/src/copula/pseudo_obs.cc" "src/copula/CMakeFiles/dpc_copula.dir/pseudo_obs.cc.o" "gcc" "src/copula/CMakeFiles/dpc_copula.dir/pseudo_obs.cc.o.d"
  "/root/repo/src/copula/sampler.cc" "src/copula/CMakeFiles/dpc_copula.dir/sampler.cc.o" "gcc" "src/copula/CMakeFiles/dpc_copula.dir/sampler.cc.o.d"
  "/root/repo/src/copula/t_copula.cc" "src/copula/CMakeFiles/dpc_copula.dir/t_copula.cc.o" "gcc" "src/copula/CMakeFiles/dpc_copula.dir/t_copula.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dpc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dpc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/dpc_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/marginals/CMakeFiles/dpc_marginals.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/dpc_hist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
