# Empty dependencies file for dpc_copula.
# This may be replaced when dependencies are built.
