file(REMOVE_RECURSE
  "libdpc_baselines.a"
)
