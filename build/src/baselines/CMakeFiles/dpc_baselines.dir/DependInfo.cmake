
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/barak.cc" "src/baselines/CMakeFiles/dpc_baselines.dir/barak.cc.o" "gcc" "src/baselines/CMakeFiles/dpc_baselines.dir/barak.cc.o.d"
  "/root/repo/src/baselines/dpcube.cc" "src/baselines/CMakeFiles/dpc_baselines.dir/dpcube.cc.o" "gcc" "src/baselines/CMakeFiles/dpc_baselines.dir/dpcube.cc.o.d"
  "/root/repo/src/baselines/filter_priority.cc" "src/baselines/CMakeFiles/dpc_baselines.dir/filter_priority.cc.o" "gcc" "src/baselines/CMakeFiles/dpc_baselines.dir/filter_priority.cc.o.d"
  "/root/repo/src/baselines/grids.cc" "src/baselines/CMakeFiles/dpc_baselines.dir/grids.cc.o" "gcc" "src/baselines/CMakeFiles/dpc_baselines.dir/grids.cc.o.d"
  "/root/repo/src/baselines/php.cc" "src/baselines/CMakeFiles/dpc_baselines.dir/php.cc.o" "gcc" "src/baselines/CMakeFiles/dpc_baselines.dir/php.cc.o.d"
  "/root/repo/src/baselines/privelet.cc" "src/baselines/CMakeFiles/dpc_baselines.dir/privelet.cc.o" "gcc" "src/baselines/CMakeFiles/dpc_baselines.dir/privelet.cc.o.d"
  "/root/repo/src/baselines/psd.cc" "src/baselines/CMakeFiles/dpc_baselines.dir/psd.cc.o" "gcc" "src/baselines/CMakeFiles/dpc_baselines.dir/psd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dpc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/dpc_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/dpc_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dpc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/marginals/CMakeFiles/dpc_marginals.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
