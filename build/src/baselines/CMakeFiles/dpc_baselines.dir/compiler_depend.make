# Empty compiler generated dependencies file for dpc_baselines.
# This may be replaced when dependencies are built.
