file(REMOVE_RECURSE
  "CMakeFiles/dpc_baselines.dir/barak.cc.o"
  "CMakeFiles/dpc_baselines.dir/barak.cc.o.d"
  "CMakeFiles/dpc_baselines.dir/dpcube.cc.o"
  "CMakeFiles/dpc_baselines.dir/dpcube.cc.o.d"
  "CMakeFiles/dpc_baselines.dir/filter_priority.cc.o"
  "CMakeFiles/dpc_baselines.dir/filter_priority.cc.o.d"
  "CMakeFiles/dpc_baselines.dir/grids.cc.o"
  "CMakeFiles/dpc_baselines.dir/grids.cc.o.d"
  "CMakeFiles/dpc_baselines.dir/php.cc.o"
  "CMakeFiles/dpc_baselines.dir/php.cc.o.d"
  "CMakeFiles/dpc_baselines.dir/privelet.cc.o"
  "CMakeFiles/dpc_baselines.dir/privelet.cc.o.d"
  "CMakeFiles/dpc_baselines.dir/psd.cc.o"
  "CMakeFiles/dpc_baselines.dir/psd.cc.o.d"
  "libdpc_baselines.a"
  "libdpc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
