file(REMOVE_RECURSE
  "CMakeFiles/dpc_core.dir/dpcopula.cc.o"
  "CMakeFiles/dpc_core.dir/dpcopula.cc.o.d"
  "CMakeFiles/dpc_core.dir/hybrid.cc.o"
  "CMakeFiles/dpc_core.dir/hybrid.cc.o.d"
  "CMakeFiles/dpc_core.dir/model_io.cc.o"
  "CMakeFiles/dpc_core.dir/model_io.cc.o.d"
  "CMakeFiles/dpc_core.dir/streaming.cc.o"
  "CMakeFiles/dpc_core.dir/streaming.cc.o.d"
  "libdpc_core.a"
  "libdpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
