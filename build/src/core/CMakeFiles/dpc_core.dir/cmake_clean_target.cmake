file(REMOVE_RECURSE
  "libdpc_core.a"
)
