
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/dpc_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/dpc_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/dpc_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/dpc_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/empirical_cdf.cc" "src/stats/CMakeFiles/dpc_stats.dir/empirical_cdf.cc.o" "gcc" "src/stats/CMakeFiles/dpc_stats.dir/empirical_cdf.cc.o.d"
  "/root/repo/src/stats/kendall.cc" "src/stats/CMakeFiles/dpc_stats.dir/kendall.cc.o" "gcc" "src/stats/CMakeFiles/dpc_stats.dir/kendall.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/stats/CMakeFiles/dpc_stats.dir/normal.cc.o" "gcc" "src/stats/CMakeFiles/dpc_stats.dir/normal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
