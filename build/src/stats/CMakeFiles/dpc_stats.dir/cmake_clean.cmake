file(REMOVE_RECURSE
  "CMakeFiles/dpc_stats.dir/descriptive.cc.o"
  "CMakeFiles/dpc_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/dpc_stats.dir/distributions.cc.o"
  "CMakeFiles/dpc_stats.dir/distributions.cc.o.d"
  "CMakeFiles/dpc_stats.dir/empirical_cdf.cc.o"
  "CMakeFiles/dpc_stats.dir/empirical_cdf.cc.o.d"
  "CMakeFiles/dpc_stats.dir/kendall.cc.o"
  "CMakeFiles/dpc_stats.dir/kendall.cc.o.d"
  "CMakeFiles/dpc_stats.dir/normal.cc.o"
  "CMakeFiles/dpc_stats.dir/normal.cc.o.d"
  "libdpc_stats.a"
  "libdpc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
