# Empty dependencies file for dpc_stats.
# This may be replaced when dependencies are built.
