file(REMOVE_RECURSE
  "libdpc_stats.a"
)
