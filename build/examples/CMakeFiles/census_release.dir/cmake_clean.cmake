file(REMOVE_RECURSE
  "CMakeFiles/census_release.dir/census_release.cpp.o"
  "CMakeFiles/census_release.dir/census_release.cpp.o.d"
  "census_release"
  "census_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
