# Empty compiler generated dependencies file for census_release.
# This may be replaced when dependencies are built.
