file(REMOVE_RECURSE
  "CMakeFiles/workload_accuracy.dir/workload_accuracy.cpp.o"
  "CMakeFiles/workload_accuracy.dir/workload_accuracy.cpp.o.d"
  "workload_accuracy"
  "workload_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
