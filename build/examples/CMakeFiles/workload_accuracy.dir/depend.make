# Empty dependencies file for workload_accuracy.
# This may be replaced when dependencies are built.
