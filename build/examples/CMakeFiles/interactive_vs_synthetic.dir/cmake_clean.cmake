file(REMOVE_RECURSE
  "CMakeFiles/interactive_vs_synthetic.dir/interactive_vs_synthetic.cpp.o"
  "CMakeFiles/interactive_vs_synthetic.dir/interactive_vs_synthetic.cpp.o.d"
  "interactive_vs_synthetic"
  "interactive_vs_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_vs_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
