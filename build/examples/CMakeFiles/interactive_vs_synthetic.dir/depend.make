# Empty dependencies file for interactive_vs_synthetic.
# This may be replaced when dependencies are built.
