file(REMOVE_RECURSE
  "CMakeFiles/estimator_tradeoff.dir/estimator_tradeoff.cpp.o"
  "CMakeFiles/estimator_tradeoff.dir/estimator_tradeoff.cpp.o.d"
  "estimator_tradeoff"
  "estimator_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
