# Empty compiler generated dependencies file for estimator_tradeoff.
# This may be replaced when dependencies are built.
