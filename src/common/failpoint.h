#ifndef DPCOPULA_COMMON_FAILPOINT_H_
#define DPCOPULA_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// Compile-time kill switch for the fault-injection layer, mirroring
/// DPCOPULA_OBS_ENABLED. The build defines DPCOPULA_FAILPOINTS_ENABLED=0
/// when configured with -DDPCOPULA_FAILPOINTS=OFF; every DPC_FAILPOINT*
/// site then compiles to the constant `false` and the branch folds away.
#ifndef DPCOPULA_FAILPOINTS_ENABLED
#define DPCOPULA_FAILPOINTS_ENABLED 1
#endif

namespace dpcopula::failpoint {

/// How an armed fail point decides whether a given evaluation fires. All
/// triggers are deterministic — no randomness — so a fault schedule is
/// exactly reproducible run to run and thread count to thread count.
enum class Mode : int {
  kOff = 0,
  kAlways,  // Every evaluation fires.
  kOnce,    // Evaluation index 0 fires (see "index" below).
  kOneIn,   // Indices 0, k, 2k, ... fire.
  kAfterN,  // Indices >= n fire.
};

/// An armed trigger: the mode plus its k (kOneIn) or n (kAfterN).
struct Spec {
  Mode mode = Mode::kOff;
  std::uint64_t param = 0;
};

/// Parses "off", "always", "once", "1in<k>" (k >= 1) or "after<n>".
/// Returns false on anything else and leaves *out untouched.
bool ParseSpec(const std::string& text, Spec* out);

/// One named fail-point site. Stable address for the lifetime of the
/// process (sites are created once and never destroyed), so call sites
/// cache the pointer in a function-local static.
///
/// The evaluation *index* that the deterministic triggers test against is,
/// in priority order:
///   1. the explicit index passed by the call site (DPC_FAILPOINT_AT) —
///      used in parallel loops where the loop variable, not arrival order,
///      must decide the fault pattern;
///   2. the innermost ScopedContext index on this thread — used to
///      propagate a partition index into generic sites nested below it;
///   3. a per-site atomic hit counter — fine for sequential code.
/// Sources 1 and 2 are scheduling-independent, which is what makes a fault
/// schedule produce bit-identical output at every thread count.
class FailPoint {
 public:
  explicit FailPoint(std::string name) : name_(std::move(name)) {}
  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const std::string& name() const { return name_; }

  /// Evaluates with the implicit index (context or hit counter).
  bool Evaluate() { return EvaluateAt(NextImplicitIndex()); }

  /// Evaluates with an explicit, scheduling-independent index.
  bool EvaluateAt(std::uint64_t index) {
    const Mode mode =
        static_cast<Mode>(mode_.load(std::memory_order_acquire));
    if (mode == Mode::kOff) return false;
    const std::uint64_t param = param_.load(std::memory_order_relaxed);
    bool fire = false;
    switch (mode) {
      case Mode::kOff:
        break;
      case Mode::kAlways:
        fire = true;
        break;
      case Mode::kOnce:
        fire = (index == 0);
        break;
      case Mode::kOneIn:
        fire = (param > 0) && (index % param == 0);
        break;
      case Mode::kAfterN:
        fire = (index >= param);
        break;
    }
    if (fire) fired_.fetch_add(1, std::memory_order_relaxed);
    return fire;
  }

  bool armed() const {
    return static_cast<Mode>(mode_.load(std::memory_order_acquire)) !=
           Mode::kOff;
  }

  std::uint64_t fired_count() const {
    return fired_.load(std::memory_order_relaxed);
  }
  std::uint64_t hit_count() const {
    return hits_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    hits_.store(0, std::memory_order_relaxed);
    fired_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Registry;

  /// Arm/disarm maintain the process-wide AnyArmed gate, so they are only
  /// reachable through the Registry.
  void Arm(Spec spec) {
    param_.store(spec.param, std::memory_order_relaxed);
    mode_.store(static_cast<int>(spec.mode), std::memory_order_release);
  }
  void Disarm() { Arm(Spec{}); }

  std::uint64_t NextImplicitIndex();

  const std::string name_;
  std::atomic<int> mode_{static_cast<int>(Mode::kOff)};
  std::atomic<std::uint64_t> param_{0};
  std::atomic<std::uint64_t> hits_{0};   // Implicit-index evaluations.
  std::atomic<std::uint64_t> fired_{0};  // Evaluations that fired.
};

/// Process-wide site registry. Arms/disarms are rare (tests, process
/// start-up from the environment); evaluation of a disarmed site is one
/// relaxed atomic load behind the process-wide `AnyArmed` gate.
class Registry {
 public:
  static Registry& Global();

  /// Site for `name`, created (disarmed) on first use. Never null; the
  /// pointer is stable for the process lifetime.
  FailPoint* GetSite(const std::string& name);

  /// Arms `name` with a parsed spec string; InvalidArgument on bad specs.
  Status Arm(const std::string& name, const std::string& spec);
  void Arm(const std::string& name, Spec spec);
  void Disarm(const std::string& name);

  /// Disarms every site and zeroes all hit/fired counters.
  void DisarmAll();

  std::uint64_t FiredCount(const std::string& name);
  std::vector<std::string> ArmedSites() const;

  /// Parses DPCOPULA_FAILPOINTS ("site=spec[,site=spec...]", ';' also
  /// accepted) and arms each entry. Called once on first Global() access;
  /// exposed for tests. Unparseable entries are reported on stderr and
  /// skipped — a typo must not silently disable the intended fault.
  Status ArmFromEnv(const char* env_value);

 private:
  Registry();

  struct Impl;
  Impl* impl_;
};

/// Declares that code on this thread is currently processing the work item
/// with the given deterministic index (e.g. hybrid partition p). Generic
/// fail points evaluated below pick it up as their evaluation index, so a
/// fault schedule hits the same work items at any thread count. Nests;
/// innermost wins.
class ScopedContext {
 public:
  explicit ScopedContext(std::uint64_t index);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;
};

/// All fail-point site names compiled into the library, in one place so the
/// fault-injection suite can sweep them and fail when a new site lacks
/// coverage.
std::vector<std::string> KnownSites();

/// The Status every injected fault surfaces as when the site fails closed.
/// Deliberately contains the site name and nothing else — never data.
Status InjectedFault(const char* site);

namespace internal {
extern std::atomic<int> g_armed_sites;
/// Fast-path gate: true when at least one site is armed anywhere in the
/// process. One relaxed load; false for every production run.
inline bool AnyArmed() {
  return g_armed_sites.load(std::memory_order_relaxed) != 0;
}
}  // namespace internal

}  // namespace dpcopula::failpoint

/// `if (DPC_FAILPOINT("site.name")) { <inject failure>; }`
///
/// Cost when no site is armed (the production state): one relaxed atomic
/// load and a predictable branch. Compiled out entirely under
/// -DDPCOPULA_FAILPOINTS=OFF.
#if DPCOPULA_FAILPOINTS_ENABLED
#define DPC_FAILPOINT(site)                                          \
  (::dpcopula::failpoint::internal::AnyArmed() &&                    \
   []() -> ::dpcopula::failpoint::FailPoint* {                       \
     static ::dpcopula::failpoint::FailPoint* const _dpc_fp =        \
         ::dpcopula::failpoint::Registry::Global().GetSite(site);    \
     return _dpc_fp;                                                 \
   }()->Evaluate())

/// Indexed variant for parallel loops: the caller supplies the
/// deterministic work-item index the trigger tests against.
#define DPC_FAILPOINT_AT(site, index)                                \
  (::dpcopula::failpoint::internal::AnyArmed() &&                    \
   []() -> ::dpcopula::failpoint::FailPoint* {                       \
     static ::dpcopula::failpoint::FailPoint* const _dpc_fp =        \
         ::dpcopula::failpoint::Registry::Global().GetSite(site);    \
     return _dpc_fp;                                                 \
   }()->EvaluateAt(static_cast<std::uint64_t>(index)))
#else
#define DPC_FAILPOINT(site) (false)
#define DPC_FAILPOINT_AT(site, index) ((void)(index), false)
#endif

#endif  // DPCOPULA_COMMON_FAILPOINT_H_
