#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace dpcopula {

namespace {

// Pool observability. Everything is per-Run/per-call granularity (no
// per-task-element updates), so the counters cost nothing measurable even
// with metrics enabled.
struct PoolMetrics {
  obs::Counter* pool_runs;        // Run() calls that actually fanned out.
  obs::Counter* inline_runs;      // Run()/ParallelFor calls executed inline.
  obs::Counter* nested_inline;    // Inline because caller is a pool worker.
  obs::Counter* pool_tasks;       // Tasks executed across all Run() calls.
  obs::Counter* shards;           // Shards created by ParallelFor*().
  obs::Counter* rng_splits;       // Shard RNG streams pre-derived.
  obs::Counter* dispatch_fallbacks;  // Pool dispatch failed -> ran inline.
  obs::Gauge* queue_depth;        // Queue length right after an enqueue.
};

PoolMetrics& Metrics() {
  static PoolMetrics m = {
      obs::MetricsRegistry::Global().GetCounter("parallel.pool_runs"),
      obs::MetricsRegistry::Global().GetCounter("parallel.inline_runs"),
      obs::MetricsRegistry::Global().GetCounter("parallel.nested_inline"),
      obs::MetricsRegistry::Global().GetCounter("parallel.pool_tasks"),
      obs::MetricsRegistry::Global().GetCounter("parallel.shards"),
      obs::MetricsRegistry::Global().GetCounter("parallel.rng_splits"),
      obs::MetricsRegistry::Global().GetCounter(
          "parallel.dispatch_fallbacks"),
      obs::MetricsRegistry::Global().GetGauge("parallel.queue_depth"),
  };
  return m;
}

}  // namespace

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int ResolveNumThreads(int requested) {
  if (requested == 0) return HardwareThreads();
  return std::max(1, requested);
}

namespace {
// Set while a thread is executing pool work; nested ParallelFor calls see
// it and fall back to inline execution instead of blocking a worker on
// tasks that may be queued behind it (classic pool deadlock).
thread_local bool t_in_pool_worker = false;
}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stop = false;

  void WorkerLoop() {
    t_in_pool_worker = true;
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (stop && queue.empty()) return;
        job = std::move(queue.front());
        queue.pop_front();
      }
      job();
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : impl_(new Impl) {
  const int n = std::max(1, num_threads);
  impl_->workers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

int ThreadPool::num_workers() const {
  return static_cast<int>(impl_->workers.size());
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: workers must outlive every static destructor that
  // could conceivably submit work during shutdown.
  static ThreadPool* pool = new ThreadPool(HardwareThreads());
  return *pool;
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

void ThreadPool::Run(std::size_t num_tasks, int max_parallelism,
                     const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  const int parallelism =
      std::min<int>(std::max(1, max_parallelism),
                    static_cast<int>(std::min<std::size_t>(
                        num_tasks, static_cast<std::size_t>(
                                       num_workers() + 1))));
  if (parallelism <= 1 || num_tasks == 1 || InWorker()) {
    if (obs::MetricsEnabled()) {
      Metrics().inline_runs->Increment();
      if (InWorker()) Metrics().nested_inline->Increment();
      Metrics().pool_tasks->Add(static_cast<std::int64_t>(num_tasks));
    }
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  if (obs::MetricsEnabled()) {
    Metrics().pool_runs->Increment();
    Metrics().pool_tasks->Add(static_cast<std::int64_t>(num_tasks));
  }

  struct RunState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t total;
    std::mutex mu;
    std::condition_variable cv;
    const std::function<void(std::size_t)>* task;
  };
  auto state = std::make_shared<RunState>();
  state->total = num_tasks;
  state->task = &task;  // Caller blocks below, so the reference stays valid.

  auto drain = [](const std::shared_ptr<RunState>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1);
      if (i >= s->total) break;
      (*s->task)(i);
      if (s->done.fetch_add(1) + 1 == s->total) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (int h = 0; h < parallelism - 1; ++h) {
      impl_->queue.emplace_back([state, drain] { drain(state); });
    }
    Metrics().queue_depth->Set(static_cast<double>(impl_->queue.size()));
  }
  impl_->cv.notify_all();

  // The calling thread claims shards too; mark it as "in pool work" so any
  // nested ParallelFor it triggers runs inline.
  const bool was_in_worker = t_in_pool_worker;
  t_in_pool_worker = true;
  drain(state);
  t_in_pool_worker = was_in_worker;

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock,
                 [&] { return state->done.load() == state->total; });
}

std::vector<Shard> MakeShards(std::size_t begin, std::size_t end,
                              std::size_t grain) {
  std::vector<Shard> shards;
  if (begin >= end) return shards;
  const std::size_t g = std::max<std::size_t>(1, grain);
  shards.reserve((end - begin + g - 1) / g);
  for (std::size_t lo = begin; lo < end; lo += g) {
    shards.push_back({lo, std::min(end, lo + g)});
  }
  return shards;
}

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 int num_threads) {
  if (begin >= end) return;
  const int threads = ResolveNumThreads(num_threads);
  const std::size_t g = std::max<std::size_t>(1, grain);
  if (threads <= 1 || end - begin <= g || ThreadPool::InWorker()) {
    if (obs::MetricsEnabled()) {
      Metrics().inline_runs->Increment();
      if (ThreadPool::InWorker()) Metrics().nested_inline->Increment();
      Metrics().shards->Add(
          static_cast<std::int64_t>((end - begin + g - 1) / g));
    }
    // Single shard-sized chunks keep cache behaviour identical to the
    // parallel path (same loop bounds per call).
    for (std::size_t lo = begin; lo < end; lo += g) {
      fn(lo, std::min(end, lo + g));
    }
    return;
  }
  const std::vector<Shard> shards = MakeShards(begin, end, g);
  if (obs::MetricsEnabled()) {
    Metrics().shards->Add(static_cast<std::int64_t>(shards.size()));
  }
  // Graceful degradation: if pool dispatch fails (injected here; a real
  // analogue is thread exhaustion), drain the shards sequentially on the
  // caller. Shard bounds are already fixed, so the output is identical —
  // only wall-clock suffers.
  if (DPC_FAILPOINT("parallel.dispatch")) {
    Metrics().dispatch_fallbacks->Increment();
    for (const Shard& s : shards) fn(s.begin, s.end);
    return;
  }
  ThreadPool::Global().Run(
      shards.size(), threads,
      [&](std::size_t i) { fn(shards[i].begin, shards[i].end); });
}

void ParallelForSharded(
    std::size_t begin, std::size_t end, std::size_t grain, Rng* rng,
    const std::function<void(std::size_t, std::size_t, Rng*)>& fn,
    int num_threads) {
  if (begin >= end) return;
  const std::vector<Shard> shards = MakeShards(begin, end, grain);
  // Split in shard order before any task runs: the parent RNG advances by
  // exactly shards.size() states and every shard's stream is fixed no
  // matter how shards are later scheduled.
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shard_rngs.push_back(rng->Split());
  }
  if (obs::MetricsEnabled()) {
    Metrics().shards->Add(static_cast<std::int64_t>(shards.size()));
    Metrics().rng_splits->Add(static_cast<std::int64_t>(shards.size()));
  }
  const int threads = ResolveNumThreads(num_threads);
  if (threads <= 1 || shards.size() == 1 || ThreadPool::InWorker()) {
    if (obs::MetricsEnabled()) {
      Metrics().inline_runs->Increment();
      if (ThreadPool::InWorker()) Metrics().nested_inline->Increment();
    }
    for (std::size_t i = 0; i < shards.size(); ++i) {
      fn(shards[i].begin, shards[i].end, &shard_rngs[i]);
    }
    return;
  }
  // Same fallback as ParallelFor: shard RNGs were pre-split above, so the
  // sequential drain produces bit-identical output.
  if (DPC_FAILPOINT("parallel.dispatch")) {
    Metrics().dispatch_fallbacks->Increment();
    for (std::size_t i = 0; i < shards.size(); ++i) {
      fn(shards[i].begin, shards[i].end, &shard_rngs[i]);
    }
    return;
  }
  ThreadPool::Global().Run(shards.size(), threads, [&](std::size_t i) {
    fn(shards[i].begin, shards[i].end, &shard_rngs[i]);
  });
}

}  // namespace dpcopula
