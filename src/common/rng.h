#ifndef DPCOPULA_COMMON_RNG_H_
#define DPCOPULA_COMMON_RNG_H_

#include <cstdint>

namespace dpcopula {

/// Which algorithm NextGaussian() uses. kZiggurat is the default serving
/// path (one uniform draw + one table lookup in the ~98.6% common case);
/// kPolar is the pre-ziggurat Marsaglia polar method, kept behind this flag
/// so golden fixtures and old-vs-new equivalence tests can reproduce the
/// legacy stream exactly.
enum class GaussianMethod : std::uint8_t { kZiggurat, kPolar };

/// Deterministic pseudo-random number generator: xoshiro256++ seeded through
/// splitmix64. Fast, high quality, and reproducible across platforms, which
/// matters for the experiment harness (every bench fixes its seed).
///
/// Not cryptographically secure; the privacy guarantees in this library are
/// analytical (sensitivity / Laplace-scale proofs), and a production release
/// for adversarial settings would swap in a CSPRNG behind this same interface.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Uniform on [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform on (0, 1) — never returns exactly 0, safe for log() transforms.
  double NextDoubleOpen();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t NextUint64Below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive, lo <= hi.
  std::int64_t NextInt64InRange(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate via the configured method (ziggurat by
  /// default; see set_gaussian_method()).
  double NextGaussian();

  /// Standard normal deviate via the 128-layer ziggurat of Marsaglia &
  /// Tsang (Doornik's variant): one 64-bit draw serves both the layer
  /// index (low 7 bits) and the 53-bit uniform, so the common case is a
  /// single multiply + compare. Wedge and tail rejections draw more.
  double NextGaussianZiggurat();

  /// Standard normal deviate via the legacy Marsaglia polar method with
  /// caching (the pre-ziggurat stream).
  double NextGaussianPolar();

  /// Fills dst[0..n) with standard normal deviates using the configured
  /// method; the block-sampling hot path for the tiled copula kernel.
  void FillGaussian(double* dst, std::size_t n);

  GaussianMethod gaussian_method() const { return gaussian_method_; }
  void set_gaussian_method(GaussianMethod m) { gaussian_method_ = m; }

  /// Derives an independent child generator; useful for giving parallel
  /// experiment arms decorrelated streams from one master seed. The child
  /// inherits the parent's Gaussian method (so flag-gated legacy runs stay
  /// legacy across RNG-split shards).
  Rng Split();

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
  GaussianMethod gaussian_method_ = GaussianMethod::kZiggurat;
};

}  // namespace dpcopula

#endif  // DPCOPULA_COMMON_RNG_H_
