#ifndef DPCOPULA_COMMON_RNG_H_
#define DPCOPULA_COMMON_RNG_H_

#include <cstdint>

namespace dpcopula {

/// Deterministic pseudo-random number generator: xoshiro256++ seeded through
/// splitmix64. Fast, high quality, and reproducible across platforms, which
/// matters for the experiment harness (every bench fixes its seed).
///
/// Not cryptographically secure; the privacy guarantees in this library are
/// analytical (sensitivity / Laplace-scale proofs), and a production release
/// for adversarial settings would swap in a CSPRNG behind this same interface.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Uniform on [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform on (0, 1) — never returns exactly 0, safe for log() transforms.
  double NextDoubleOpen();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t NextUint64Below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive, lo <= hi.
  std::int64_t NextInt64InRange(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method with caching).
  double NextGaussian();

  /// Derives an independent child generator; useful for giving parallel
  /// experiment arms decorrelated streams from one master seed.
  Rng Split();

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace dpcopula

#endif  // DPCOPULA_COMMON_RNG_H_
