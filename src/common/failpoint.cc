#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace dpcopula::failpoint {

namespace internal {
std::atomic<int> g_armed_sites{0};
}  // namespace internal

namespace {

/// Innermost-wins stack of deterministic work-item indices for this thread
/// (see ScopedContext). A plain vector: pushes/pops happen once per work
/// item, never per fail-point evaluation.
thread_local std::vector<std::uint64_t> t_context_stack;

}  // namespace

bool ParseSpec(const std::string& text, Spec* out) {
  Spec spec;
  if (text == "off") {
    spec.mode = Mode::kOff;
  } else if (text == "always") {
    spec.mode = Mode::kAlways;
  } else if (text == "once") {
    spec.mode = Mode::kOnce;
  } else if (text.rfind("1in", 0) == 0) {
    char* end = nullptr;
    const unsigned long long k = std::strtoull(text.c_str() + 3, &end, 10);
    if (end == text.c_str() + 3 || *end != '\0' || k == 0) return false;
    spec.mode = Mode::kOneIn;
    spec.param = k;
  } else if (text.rfind("after", 0) == 0) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(text.c_str() + 5, &end, 10);
    if (end == text.c_str() + 5 || *end != '\0') return false;
    spec.mode = Mode::kAfterN;
    spec.param = n;
  } else {
    return false;
  }
  *out = spec;
  return true;
}

std::uint64_t FailPoint::NextImplicitIndex() {
  if (!t_context_stack.empty()) return t_context_stack.back();
  return hits_.fetch_add(1, std::memory_order_relaxed);
}

ScopedContext::ScopedContext(std::uint64_t index) {
  t_context_stack.push_back(index);
}

ScopedContext::~ScopedContext() { t_context_stack.pop_back(); }

struct Registry::Impl {
  mutable std::mutex mu;
  // Sites are never erased, so FailPoint addresses handed out by GetSite
  // stay valid for the process lifetime (call sites cache them).
  std::map<std::string, std::unique_ptr<FailPoint>> sites;

  FailPoint* GetLocked(const std::string& name) {
    auto it = sites.find(name);
    if (it == sites.end()) {
      it = sites.emplace(name, std::make_unique<FailPoint>(name)).first;
    }
    return it->second.get();
  }
};

Registry::Registry() : impl_(new Impl) {
  // Environment arming happens exactly once, on first Global() access —
  // before any site can have been evaluated, since every evaluation goes
  // through Global() itself.
  const char* env = std::getenv("DPCOPULA_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    (void)ArmFromEnv(env);
  }
}

Registry& Registry::Global() {
  static Registry* registry = new Registry;  // Leaked: sites must outlive
                                             // static destructors.
  return *registry;
}

namespace {
// Force registry construction (which parses DPCOPULA_FAILPOINTS) at
// process start-up. The DPC_FAILPOINT macros consult the AnyArmed gate
// *before* touching the registry, so without this eager touch a site armed
// only through the environment would never fire.
[[maybe_unused]] const bool g_env_arm_at_startup = (Registry::Global(), true);
}  // namespace

FailPoint* Registry::GetSite(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->GetLocked(name);
}

void Registry::Arm(const std::string& name, Spec spec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  FailPoint* site = impl_->GetLocked(name);
  const bool was_armed = site->armed();
  site->Arm(spec);
  const bool now_armed = site->armed();
  if (!was_armed && now_armed) {
    internal::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  } else if (was_armed && !now_armed) {
    internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

Status Registry::Arm(const std::string& name, const std::string& spec_text) {
  Spec spec;
  if (!ParseSpec(spec_text, &spec)) {
    return Status::InvalidArgument("bad fail-point spec '" + spec_text +
                                   "' for site '" + name +
                                   "' (want off|always|once|1in<k>|after<n>)");
  }
  Arm(name, spec);
  return Status::OK();
}

void Registry::Disarm(const std::string& name) { Arm(name, Spec{}); }

void Registry::DisarmAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, site] : impl_->sites) {
    if (site->armed()) {
      internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
    }
    site->Disarm();
    site->ResetCounters();
  }
}

std::uint64_t Registry::FiredCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->GetLocked(name)->fired_count();
}

std::vector<std::string> Registry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> armed;
  for (const auto& [name, site] : impl_->sites) {
    if (site->armed()) armed.push_back(name);
  }
  return armed;
}

Status Registry::ArmFromEnv(const char* env_value) {
  Status first_error = Status::OK();
  std::string entry;
  const std::string value(env_value == nullptr ? "" : env_value);
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t sep = value.find_first_of(",;", start);
    entry = value.substr(
        start, sep == std::string::npos ? std::string::npos : sep - start);
    start = sep == std::string::npos ? value.size() + 1 : sep + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    Status st = (eq == std::string::npos)
                    ? Status::InvalidArgument("bad fail-point entry '" +
                                              entry + "' (want site=spec)")
                    : Arm(entry.substr(0, eq), entry.substr(eq + 1));
    if (!st.ok()) {
      std::fprintf(stderr, "[dpcopula] DPCOPULA_FAILPOINTS: %s\n",
                   st.ToString().c_str());
      if (first_error.ok()) first_error = st;
    }
  }
  return first_error;
}

std::vector<std::string> KnownSites() {
  // Every DPC_FAILPOINT / DPC_FAILPOINT_AT site in the library, one line
  // per site. tests/fault_injection_test.cc sweeps this list and fails if
  // a site is added here without a scenario (or vice versa), so keep the
  // two in sync.
  return {
      "atomicio.rename",             // common/atomic_file.cc
      "atomicio.write",              // common/atomic_file.cc
      "core.correlation_estimate",   // core/dpcopula.cc
      "csv.read.open",               // data/csv.cc
      "csv.read.row",                // data/csv.cc
      "hybrid.partition.synthesize", // core/hybrid.cc
      "kendall.pair_tau",            // copula/kendall_estimator.cc
      "linalg.cholesky",             // linalg/cholesky.cc
      "linalg.eigen.converge",       // linalg/eigen_sym.cc
      "linalg.psd_repair",           // linalg/psd_repair.cc
      "mle.partition_fit",           // copula/mle_estimator.cc
      "model.load.open",             // core/model_io.cc
      "parallel.dispatch",           // common/parallel.cc
      "sampler.row",                 // copula/sampler.cc
      "serve.accept",                // serve/server.cc
      "serve.model_reload",          // serve/registry.cc
      "serve.sample",                // serve/server.cc
      "streaming.ingest.merge",      // core/streaming.cc
  };
}

Status InjectedFault(const char* site) {
  return Status::Internal("injected fault at fail point '" +
                          std::string(site) + "'");
}

}  // namespace dpcopula::failpoint
