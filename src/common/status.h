#ifndef DPCOPULA_COMMON_STATUS_H_
#define DPCOPULA_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace dpcopula {

/// Machine-readable category of a failure. Mirrors the Arrow/RocksDB style of
/// status codes used widely in database engines.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kIOError,
  kNumericalError,
  kPrivacyBudgetExceeded,
  kNotImplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation. `Status::OK()` is cheap (no allocation);
/// error statuses carry a code and a message. This library does not throw
/// exceptions across public API boundaries; every fallible public function
/// returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for the singleton-like OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status PrivacyBudgetExceeded(std::string msg) {
    return Status(StatusCode::kPrivacyBudgetExceeded, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// Message of an error status; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so copies of error statuses are cheap; null means OK.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status from the current function.
#define DPC_RETURN_NOT_OK(expr)                    \
  do {                                             \
    ::dpcopula::Status _st = (expr);               \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace dpcopula

#endif  // DPCOPULA_COMMON_STATUS_H_
