#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "common/failpoint.h"

namespace dpcopula {

namespace {

/// fsync the object at `path` (file or directory). Best effort on
/// directories: some filesystems refuse O_RDONLY directory fsync; a failed
/// directory sync only weakens durability of the *name*, never atomicity.
Status SyncPath(const std::string& path, bool required) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return required ? Status::IOError("cannot open for fsync: " + path)
                    : Status::OK();
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && required) {
    return Status::IOError("fsync failed: " + path);
  }
  return Status::OK();
}

std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot open for write: " + tmp);
    Status st = writer(out);
    if (!st.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return st;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IOError("write failed: " + tmp);
    }
  }
  if (DPC_FAILPOINT("atomicio.write")) {
    std::remove(tmp.c_str());
    return failpoint::InjectedFault("atomicio.write");
  }
  DPC_RETURN_NOT_OK(SyncPath(tmp, /*required=*/true));
  // A crash here is the worst case the tmp+rename protocol defends
  // against: the data is durable under the tmp name, the target still
  // holds its previous (complete) content. The fail point leaves the tmp
  // file in place so tests can verify exactly that state.
  if (DPC_FAILPOINT("atomicio.rename")) {
    return failpoint::InjectedFault("atomicio.rename");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return SyncPath(ParentDir(path), /*required=*/false);
}

}  // namespace dpcopula
