#ifndef DPCOPULA_COMMON_RESULT_H_
#define DPCOPULA_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dpcopula {

/// Value-or-error container in the style of arrow::Result. Holds either a `T`
/// or a non-OK `Status`. Accessing the value of an errored Result aborts, so
/// callers must check `ok()` (or use DPC_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::...;`. Constructing a
  /// Result from an OK status is a programming error and aborts.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(payload_));
  }

  /// Moves the value out; aborts if errored.
  T MoveValueUnsafe() { return std::move(ValueOrDie()); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: "
                << std::get<Status>(payload_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

#define DPC_CONCAT_IMPL(a, b) a##b
#define DPC_CONCAT(a, b) DPC_CONCAT_IMPL(a, b)

/// Evaluates a Result-returning expression; on error, returns its status from
/// the enclosing function, otherwise assigns the value to `lhs`.
#define DPC_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  DPC_ASSIGN_OR_RETURN_IMPL(DPC_CONCAT(_dpc_result_, __LINE__), lhs, rexpr)

#define DPC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace dpcopula

#endif  // DPCOPULA_COMMON_RESULT_H_
