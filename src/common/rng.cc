#include "common/rng.h"

#include <cmath>

namespace dpcopula {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// 128-layer ziggurat for the standard normal (Marsaglia & Tsang, with
// Doornik's layout): kZigX[i] is the right edge of layer i (decreasing,
// kZigX[0] is the virtual base-layer width V/f(R), kZigX[1] = R,
// kZigX[128] = 0), kZigRatio[i] = kZigX[i+1]/kZigX[i] is the always-accept
// threshold for the uniform, and kZigF[i] = exp(-x_i^2/2) feeds the wedge
// test. Tables are built once at first use from the two published
// constants; everything else is derived, so there is no 400-line constant
// blob to transcribe wrong.
constexpr int kZigLayers = 128;
constexpr double kZigR = 3.442619855899;       // x_1: start of the tail.
constexpr double kZigV = 9.91256303526217e-3;  // per-layer area.

struct ZigguratTables {
  double x[kZigLayers + 1];
  double ratio[kZigLayers];
  double f[kZigLayers + 1];

  ZigguratTables() {
    x[0] = kZigV / std::exp(-0.5 * kZigR * kZigR);
    x[1] = kZigR;
    x[kZigLayers] = 0.0;
    for (int i = 2; i < kZigLayers; ++i) {
      x[i] = std::sqrt(
          -2.0 * std::log(kZigV / x[i - 1] +
                          std::exp(-0.5 * x[i - 1] * x[i - 1])));
    }
    for (int i = 0; i < kZigLayers; ++i) ratio[i] = x[i + 1] / x[i];
    for (int i = 0; i <= kZigLayers; ++i) f[i] = std::exp(-0.5 * x[i] * x[i]);
  }
};

const ZigguratTables& ZigTables() {
  static const ZigguratTables tables;
  return tables;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (v + 1) in [1, 2^53], scaled into (0, 1].  Flip to (0, 1) by reflecting:
  // use (v >> 11) + 0.5 ulp trick instead — simplest robust form:
  return (static_cast<double>(NextUint64() >> 12) + 0.5) * 0x1.0p-52;
}

std::uint64_t Rng::NextUint64Below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt64InRange(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextUint64Below(span));
}

double Rng::NextGaussian() {
  return gaussian_method_ == GaussianMethod::kPolar ? NextGaussianPolar()
                                                    : NextGaussianZiggurat();
}

double Rng::NextGaussianZiggurat() {
  const ZigguratTables& t = ZigTables();
  for (;;) {
    // One draw serves both: low 7 bits pick the layer, the top 53 bits make
    // a signed uniform in (-1, 1). The bit ranges are disjoint, so layer
    // and position are independent.
    const std::uint64_t bits = NextUint64();
    const int i = static_cast<int>(bits & (kZigLayers - 1));
    const double u =
        2.0 * (static_cast<double>(bits >> 11) * 0x1.0p-53) - 1.0;
    if (std::fabs(u) < t.ratio[i]) return u * t.x[i];  // ~98.6% of draws.
    if (i == 0) {
      // Base layer overflow: sample the tail |z| > R (Marsaglia 1964).
      double xx, yy;
      do {
        xx = -std::log(NextDoubleOpen()) / kZigR;
        yy = -std::log(NextDoubleOpen());
      } while (2.0 * yy < xx * xx);
      return (u < 0.0) ? -(kZigR + xx) : kZigR + xx;
    }
    // Wedge between the inscribed and circumscribed rectangles: accept
    // with probability (f(z) - f(x_i)) / (f(x_{i+1}) - f(x_i)).
    const double z = u * t.x[i];
    if (t.f[i] + NextDouble() * (t.f[i + 1] - t.f[i]) <
        std::exp(-0.5 * z * z)) {
      return z;
    }
  }
}

double Rng::NextGaussianPolar() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

void Rng::FillGaussian(double* dst, std::size_t n) {
  if (gaussian_method_ == GaussianMethod::kPolar) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = NextGaussianPolar();
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = NextGaussianZiggurat();
  }
}

Rng Rng::Split() {
  Rng child(NextUint64() ^ 0xd1b54a32d192ed03ULL);
  child.gaussian_method_ = gaussian_method_;
  return child;
}

}  // namespace dpcopula
