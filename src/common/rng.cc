#include "common/rng.h"

#include <cmath>

namespace dpcopula {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (v + 1) in [1, 2^53], scaled into (0, 1].  Flip to (0, 1) by reflecting:
  // use (v >> 11) + 0.5 ulp trick instead — simplest robust form:
  return (static_cast<double>(NextUint64() >> 12) + 0.5) * 0x1.0p-52;
}

std::uint64_t Rng::NextUint64Below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt64InRange(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextUint64Below(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

Rng Rng::Split() { return Rng(NextUint64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace dpcopula
