#ifndef DPCOPULA_COMMON_CPUINFO_H_
#define DPCOPULA_COMMON_CPUINFO_H_

namespace dpcopula::common {

/// True when the CPU executing this process supports AVX2. Always false on
/// non-x86 targets. The answer never changes over the process lifetime, so
/// callers may cache it (the stats batch kernels resolve their dispatch
/// once, behind a function-local static).
bool CpuSupportsAvx2();

/// Runtime kill switch for SIMD dispatch, mirroring the DPCOPULA_SIMD
/// build option: true when the environment variable DPCOPULA_SIMD is set
/// to "off", "0" or "false" (case-insensitive). Lets one binary A/B the
/// vector and scalar paths without a rebuild.
bool SimdDisabledByEnv();

}  // namespace dpcopula::common

#endif  // DPCOPULA_COMMON_CPUINFO_H_
