#ifndef DPCOPULA_COMMON_ATOMIC_FILE_H_
#define DPCOPULA_COMMON_ATOMIC_FILE_H_

#include <functional>
#include <ostream>
#include <string>

#include "common/status.h"

namespace dpcopula {

/// Crash-safe whole-file write: `writer` streams the content into
/// `<path>.tmp`, which is flushed, fsync'ed, and atomically renamed onto
/// `path`. A crash (or injected fault) at any step leaves either the old
/// file intact or no file at all — never a truncated artifact. The parent
/// directory is fsync'ed after the rename so the new name itself is
/// durable.
///
/// Fail points: "atomicio.write" fires after `writer` runs (the tmp file is
/// removed, as a real write error would leave it useless anyway);
/// "atomicio.rename" fires between fsync and rename, simulating a crash at
/// the most revealing instant — tmp written and durable, target untouched.
Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream&)>& writer);

}  // namespace dpcopula

#endif  // DPCOPULA_COMMON_ATOMIC_FILE_H_
