#include "common/cpuinfo.h"

#include <cstdlib>
#include <string>

namespace dpcopula::common {

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool SimdDisabledByEnv() {
  const char* value = std::getenv("DPCOPULA_SIMD");
  if (value == nullptr) return false;
  std::string v(value);
  for (char& c : v) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return v == "off" || v == "0" || v == "false";
}

}  // namespace dpcopula::common
