#ifndef DPCOPULA_COMMON_PARALLEL_H_
#define DPCOPULA_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace dpcopula {

/// Number of hardware threads (always >= 1; hardware_concurrency() may
/// report 0 on exotic platforms).
int HardwareThreads();

/// Maps the user-facing `num_threads` knob to an effective worker count:
/// 0 selects HardwareThreads(), anything below 1 clamps to 1 (sequential),
/// larger values are taken literally.
int ResolveNumThreads(int requested);

/// A fixed-size thread pool with a plain FIFO queue (no work stealing —
/// every task in this library is a coarse shard, so a single shared queue
/// is contention-free in practice). The pool is lazily created on first
/// use and sized from HardwareThreads(); it never blocks a worker on
/// another pool task: ParallelFor called from inside a worker runs inline,
/// which makes nested parallelism (hybrid partitions that themselves
/// sample) deadlock-free by construction.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const;

  /// The process-wide pool, created on first call with HardwareThreads()
  /// workers.
  static ThreadPool& Global();

  /// Runs task(0) .. task(num_tasks - 1), at most `max_parallelism` at a
  /// time (the calling thread participates), and returns when all have
  /// finished. Tasks must not throw. The assignment of tasks to threads is
  /// unspecified — callers needing determinism must make each task's
  /// output independent of scheduling (see ParallelForSharded).
  void Run(std::size_t num_tasks, int max_parallelism,
           const std::function<void(std::size_t)>& task);

  /// True when the current thread is one of this pool's workers.
  static bool InWorker();

 private:
  struct Impl;
  Impl* impl_;
};

/// A contiguous index shard [begin, end).
struct Shard {
  std::size_t begin;
  std::size_t end;
};

/// Deterministic shard decomposition of [begin, end): successive shards of
/// at most `grain` indices. Depends only on the range and grain — never on
/// the thread count — which is what makes sharded execution reproducible.
std::vector<Shard> MakeShards(std::size_t begin, std::size_t end,
                              std::size_t grain);

/// Runs fn(shard_begin, shard_end) over the deterministic shards of
/// [begin, end) using up to ResolveNumThreads(num_threads) threads from
/// the global pool. `fn` must only touch state owned by its shard.
/// Sequential (and allocation-free) when the effective thread count is 1,
/// the range fits one shard, or the caller is itself a pool worker.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 int num_threads);

/// RNG-split sharded variant: pre-derives one child generator per shard
/// from `*rng` (in shard order — this advances the parent exactly
/// shard-count states), then runs fn(shard_begin, shard_end, &shard_rng)
/// on the pool. Because the shard decomposition and the split order are
/// fixed, the combined output is bit-identical for every thread count,
/// including 1. This is the contract the Kendall estimator pioneered,
/// promoted to a library primitive.
void ParallelForSharded(
    std::size_t begin, std::size_t end, std::size_t grain, Rng* rng,
    const std::function<void(std::size_t, std::size_t, Rng*)>& fn,
    int num_threads);

}  // namespace dpcopula

#endif  // DPCOPULA_COMMON_PARALLEL_H_
