#include "copula/pseudo_obs.h"

#include <string>

#include "stats/normal.h"

namespace dpcopula::copula {

Result<std::vector<std::vector<double>>> PseudoObservations(
    const data::Table& table) {
  std::vector<stats::EmpiricalCdf> cdfs;
  cdfs.reserve(table.num_columns());
  for (std::size_t j = 0; j < table.num_columns(); ++j) {
    DPC_ASSIGN_OR_RETURN(
        stats::EmpiricalCdf cdf,
        stats::EmpiricalCdf::FromData(table.column(j),
                                      table.schema().attribute(j).domain_size));
    cdfs.push_back(std::move(cdf));
  }
  return PseudoObservationsWithCdfs(table, cdfs);
}

Result<std::vector<std::vector<double>>> PseudoObservationsWithCdfs(
    const data::Table& table, const std::vector<stats::EmpiricalCdf>& cdfs) {
  if (cdfs.size() != table.num_columns()) {
    return Status::InvalidArgument("PseudoObservations: one CDF per column");
  }
  std::vector<std::vector<double>> pseudo(table.num_columns());
  for (std::size_t j = 0; j < table.num_columns(); ++j) {
    const auto& col = table.column(j);
    if (col.size() != table.num_rows()) {
      return Status::InvalidArgument(
          "PseudoObservations: ragged column " + std::to_string(j));
    }
    // A CDF fitted from raw data (fitted_rows > 0) must be paired with the
    // column it was fitted on; a shorter or longer column means the caller
    // truncated or swapped data after fitting. CDFs built from noisy counts
    // report 0 and are exempt — they carry no row count by design.
    if (cdfs[j].fitted_rows() != 0 && cdfs[j].fitted_rows() != col.size()) {
      return Status::InvalidArgument(
          "PseudoObservations: column " + std::to_string(j) + " has " +
          std::to_string(col.size()) + " rows but its CDF was fitted on " +
          std::to_string(cdfs[j].fitted_rows()));
    }
    pseudo[j].resize(col.size());
    for (std::size_t i = 0; i < col.size(); ++i) {
      // Midpoint evaluation keeps discrete data centered within its
      // cumulative step and strictly inside (0, 1).
      pseudo[j][i] = cdfs[j].EvaluateMid(col[i]);
    }
  }
  return pseudo;
}

std::vector<std::vector<double>> NormalScores(
    const std::vector<std::vector<double>>& pseudo) {
  std::vector<std::vector<double>> z(pseudo.size());
  for (std::size_t j = 0; j < pseudo.size(); ++j) {
    z[j].resize(pseudo[j].size());
    for (std::size_t i = 0; i < pseudo[j].size(); ++i) {
      z[j][i] = stats::NormalInverseCdf(pseudo[j][i]);
    }
  }
  return z;
}

}  // namespace dpcopula::copula
