#include "copula/gaussian_copula.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "stats/normal.h"

namespace dpcopula::copula {

Result<GaussianCopula> GaussianCopula::Create(
    const linalg::Matrix& correlation) {
  if (correlation.rows() != correlation.cols() || correlation.rows() == 0) {
    return Status::InvalidArgument("correlation matrix must be square");
  }
  for (std::size_t i = 0; i < correlation.rows(); ++i) {
    if (std::fabs(correlation(i, i) - 1.0) > 1e-8) {
      return Status::InvalidArgument(
          "correlation matrix must have unit diagonal");
    }
  }
  GaussianCopula c;
  c.correlation_ = correlation;
  DPC_ASSIGN_OR_RETURN(c.cholesky_, linalg::CholeskyDecompose(correlation));
  DPC_ASSIGN_OR_RETURN(c.precision_, linalg::CholeskyInverse(c.cholesky_));
  c.log_det_ = linalg::CholeskyLogDet(c.cholesky_);
  return c;
}

double GaussianCopula::LogDensityFromScores(
    const std::vector<double>& z) const {
  const std::size_t m = dims();
  // z^T (P^{-1} - I) z.
  double quad = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < m; ++j) row += precision_(i, j) * z[j];
    quad += z[i] * (row - z[i]);
  }
  return -0.5 * log_det_ - 0.5 * quad;
}

Result<double> GaussianCopula::LogDensity(const std::vector<double>& u) const {
  if (u.size() != dims()) {
    return Status::InvalidArgument("LogDensity: dimension mismatch");
  }
  std::vector<double> z(u.size());
  for (std::size_t j = 0; j < u.size(); ++j) {
    if (!(u[j] > 0.0 && u[j] < 1.0)) {
      return Status::OutOfRange("pseudo-observation outside (0, 1)");
    }
    z[j] = stats::NormalInverseCdf(u[j]);
  }
  return LogDensityFromScores(z);
}

Result<double> GaussianCopula::LogLikelihood(
    const std::vector<std::vector<double>>& pseudo) const {
  if (pseudo.size() != dims()) {
    return Status::InvalidArgument("LogLikelihood: dimension mismatch");
  }
  const std::size_t n = pseudo.empty() ? 0 : pseudo[0].size();
  std::vector<double> u(dims());
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dims(); ++j) u[j] = pseudo[j][i];
    DPC_ASSIGN_OR_RETURN(double ld, LogDensity(u));
    acc += ld;
  }
  return acc;
}

Result<double> GaussianCopula::Aic(
    const std::vector<std::vector<double>>& pseudo) const {
  DPC_ASSIGN_OR_RETURN(double ll, LogLikelihood(pseudo));
  const double m = static_cast<double>(dims());
  const double num_params = m * (m - 1.0) / 2.0;
  return 2.0 * num_params - 2.0 * ll;
}

Result<linalg::Matrix> NormalScoresCorrelation(
    const std::vector<std::vector<double>>& scores) {
  const std::size_t m = scores.size();
  if (m == 0) return Status::InvalidArgument("no score columns");
  const std::size_t n = scores[0].size();
  if (n < 2) return Status::InvalidArgument("need >= 2 rows");
  for (const auto& col : scores) {
    if (col.size() != n) {
      return Status::InvalidArgument("ragged score columns");
    }
  }

  // Column means and centered second moments.
  std::vector<double> mean(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (double v : scores[j]) mean[j] += v;
    mean[j] /= static_cast<double>(n);
  }
  linalg::Matrix cov(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a; b < m; ++b) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += (scores[a][i] - mean[a]) * (scores[b][i] - mean[b]);
      }
      cov(a, b) = acc;
      cov(b, a) = acc;
    }
  }
  // Normalize to a correlation matrix.
  linalg::Matrix corr(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      const double denom = std::sqrt(cov(a, a) * cov(b, b));
      corr(a, b) = (denom > 0.0) ? cov(a, b) / denom : (a == b ? 1.0 : 0.0);
    }
    corr(a, a) = 1.0;
  }
  return corr;
}

}  // namespace dpcopula::copula
