#include "copula/gaussian_copula.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "linalg/cholesky.h"
#include "stats/normal.h"

namespace dpcopula::copula {

Result<GaussianCopula> GaussianCopula::Create(
    const linalg::Matrix& correlation) {
  if (correlation.rows() != correlation.cols() || correlation.rows() == 0) {
    return Status::InvalidArgument("correlation matrix must be square");
  }
  for (std::size_t i = 0; i < correlation.rows(); ++i) {
    if (std::fabs(correlation(i, i) - 1.0) > 1e-8) {
      return Status::InvalidArgument(
          "correlation matrix must have unit diagonal");
    }
  }
  GaussianCopula c;
  c.correlation_ = correlation;
  DPC_ASSIGN_OR_RETURN(c.cholesky_, linalg::CholeskyDecompose(correlation));
  DPC_ASSIGN_OR_RETURN(c.precision_, linalg::CholeskyInverse(c.cholesky_));
  c.log_det_ = linalg::CholeskyLogDet(c.cholesky_);
  return c;
}

double GaussianCopula::LogDensityFromScores(
    const std::vector<double>& z) const {
  const std::size_t m = dims();
  // z^T (P^{-1} - I) z.
  double quad = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < m; ++j) row += precision_(i, j) * z[j];
    quad += z[i] * (row - z[i]);
  }
  return -0.5 * log_det_ - 0.5 * quad;
}

Result<double> GaussianCopula::LogDensity(const std::vector<double>& u) const {
  if (u.size() != dims()) {
    return Status::InvalidArgument("LogDensity: dimension mismatch");
  }
  std::vector<double> z(u.size());
  for (std::size_t j = 0; j < u.size(); ++j) {
    if (!(u[j] > 0.0 && u[j] < 1.0)) {
      return Status::OutOfRange("pseudo-observation outside (0, 1)");
    }
    z[j] = stats::NormalInverseCdf(u[j]);
  }
  return LogDensityFromScores(z);
}

Result<double> GaussianCopula::LogLikelihood(
    const std::vector<std::vector<double>>& pseudo) const {
  if (pseudo.size() != dims()) {
    return Status::InvalidArgument("LogLikelihood: dimension mismatch");
  }
  const std::size_t n = pseudo.empty() ? 0 : pseudo[0].size();
  std::vector<double> u(dims());
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dims(); ++j) u[j] = pseudo[j][i];
    DPC_ASSIGN_OR_RETURN(double ld, LogDensity(u));
    acc += ld;
  }
  return acc;
}

Result<double> GaussianCopula::Aic(
    const std::vector<std::vector<double>>& pseudo) const {
  DPC_ASSIGN_OR_RETURN(double ll, LogLikelihood(pseudo));
  const double m = static_cast<double>(dims());
  const double num_params = m * (m - 1.0) / 2.0;
  return 2.0 * num_params - 2.0 * ll;
}

Result<linalg::Matrix> NormalScoresCorrelation(
    const std::vector<std::vector<double>>& scores) {
  const std::size_t m = scores.size();
  if (m == 0) return Status::InvalidArgument("no score columns");
  const std::size_t n = scores[0].size();
  if (n < 2) return Status::InvalidArgument("need >= 2 rows");
  for (const auto& col : scores) {
    if (col.size() != n) {
      return Status::InvalidArgument("ragged score columns");
    }
  }

  // Column means and centered second moments.
  std::vector<double> mean(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (double v : scores[j]) mean[j] += v;
    mean[j] /= static_cast<double>(n);
  }
  linalg::Matrix cov(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a; b < m; ++b) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += (scores[a][i] - mean[a]) * (scores[b][i] - mean[b]);
      }
      cov(a, b) = acc;
      cov(b, a) = acc;
    }
  }
  // Normalize to a correlation matrix.
  linalg::Matrix corr(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      const double denom = std::sqrt(cov(a, a) * cov(b, b));
      corr(a, b) = (denom > 0.0) ? cov(a, b) / denom : (a == b ? 1.0 : 0.0);
    }
    corr(a, a) = 1.0;
  }
  return corr;
}

namespace {

/// Tile height for the blocked correlation kernel. 256 rows x 8 bytes keeps
/// one tile of every column (m <= a few hundred) inside L2 while the
/// C(m,2)+m pair accumulations sweep it.
constexpr std::size_t kCorrTileRows = 256;

/// Grow-once scratch for NormalScoresCorrelationTiled; one per thread.
struct CorrWorkspace {
  std::vector<double> centered;  // m x kCorrTileRows, column-major tiles.
  std::vector<double> acc;       // Packed upper triangle incl. diagonal.
  std::vector<double> mean;
  std::vector<std::uint32_t> pa;  // Packed index -> column a.
  std::vector<std::uint32_t> pb;  // Packed index -> column b.
};

// Shared accumulation core of the tiled kernel: fills ws->mean and the
// packed upper-triangle covariance accumulators ws->acc (pair p covers
// columns ws->pa[p] <= ws->pb[p], a-major). Both public wrappers normalize
// with the exact expressions of the reference implementation, so the
// per-entry results are bit-identical regardless of the output layout.
Status TiledCovarianceAccumulate(const double* const* cols, std::size_t m,
                                 std::size_t n, CorrWorkspace* workspace) {
  if (m == 0) return Status::InvalidArgument("no score columns");
  if (n < 2) return Status::InvalidArgument("need >= 2 rows");

  CorrWorkspace& ws = *workspace;
  ws.mean.assign(m, 0.0);
  ws.acc.assign(m * (m + 1) / 2, 0.0);
  ws.centered.resize(m * kCorrTileRows);
  ws.pa.resize(ws.acc.size());
  ws.pb.resize(ws.acc.size());
  {
    std::size_t p = 0;
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = a; b < m; ++b, ++p) {
        ws.pa[p] = static_cast<std::uint32_t>(a);
        ws.pb[p] = static_cast<std::uint32_t>(b);
      }
    }
  }

  // Column means: one sequential pass per column in row order — the exact
  // addition sequence of the reference implementation.
  for (std::size_t j = 0; j < m; ++j) {
    double s = 0.0;
    const double* c = cols[j];
    for (std::size_t i = 0; i < n; ++i) s += c[i];
    ws.mean[j] = s / static_cast<double>(n);
  }

  // Blocked syrk-style accumulation: center one tile of every column, then
  // run all pairs over the hot tile. Carrying each pair's scalar
  // accumulator across tiles in row order reproduces the reference's
  // per-pair sequential sum bit for bit.
  for (std::size_t i0 = 0; i0 < n; i0 += kCorrTileRows) {
    const std::size_t tile = std::min(kCorrTileRows, n - i0);
    for (std::size_t j = 0; j < m; ++j) {
      const double* c = cols[j] + i0;
      const double mu = ws.mean[j];
      double* dst = ws.centered.data() + j * kCorrTileRows;
      for (std::size_t ii = 0; ii < tile; ++ii) dst[ii] = c[ii] - mu;
    }
    // Four pairs at a time: each pair keeps its own strictly sequential
    // accumulation (bit-identical to the reference), but the four
    // independent chains hide the FP-add latency that bounds a single
    // running sum.
    const std::size_t np = ws.acc.size();
    std::size_t p = 0;
    for (; p + 4 <= np; p += 4) {
      const double* a0 = ws.centered.data() + ws.pa[p] * kCorrTileRows;
      const double* b0 = ws.centered.data() + ws.pb[p] * kCorrTileRows;
      const double* a1 = ws.centered.data() + ws.pa[p + 1] * kCorrTileRows;
      const double* b1 = ws.centered.data() + ws.pb[p + 1] * kCorrTileRows;
      const double* a2 = ws.centered.data() + ws.pa[p + 2] * kCorrTileRows;
      const double* b2 = ws.centered.data() + ws.pb[p + 2] * kCorrTileRows;
      const double* a3 = ws.centered.data() + ws.pa[p + 3] * kCorrTileRows;
      const double* b3 = ws.centered.data() + ws.pb[p + 3] * kCorrTileRows;
      double s0 = ws.acc[p];
      double s1 = ws.acc[p + 1];
      double s2 = ws.acc[p + 2];
      double s3 = ws.acc[p + 3];
      for (std::size_t ii = 0; ii < tile; ++ii) {
        s0 += a0[ii] * b0[ii];
        s1 += a1[ii] * b1[ii];
        s2 += a2[ii] * b2[ii];
        s3 += a3[ii] * b3[ii];
      }
      ws.acc[p] = s0;
      ws.acc[p + 1] = s1;
      ws.acc[p + 2] = s2;
      ws.acc[p + 3] = s3;
    }
    for (; p < np; ++p) {
      const double* ca = ws.centered.data() + ws.pa[p] * kCorrTileRows;
      const double* cb = ws.centered.data() + ws.pb[p] * kCorrTileRows;
      double s = ws.acc[p];
      for (std::size_t ii = 0; ii < tile; ++ii) s += ca[ii] * cb[ii];
      ws.acc[p] = s;
    }
  }

  return Status::OK();
}

}  // namespace

Result<linalg::Matrix> NormalScoresCorrelationTiled(const double* const* cols,
                                                    std::size_t m,
                                                    std::size_t n) {
  thread_local CorrWorkspace ws;
  Status accumulated = TiledCovarianceAccumulate(cols, m, n, &ws);
  if (!accumulated.ok()) return accumulated;

  linalg::Matrix cov(m, m);
  {
    std::size_t p = 0;
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = a; b < m; ++b, ++p) {
        cov(a, b) = ws.acc[p];
        cov(b, a) = ws.acc[p];
      }
    }
  }
  // Normalize to a correlation matrix — same expressions as the reference.
  linalg::Matrix corr(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      const double denom = std::sqrt(cov(a, a) * cov(b, b));
      corr(a, b) = (denom > 0.0) ? cov(a, b) / denom : (a == b ? 1.0 : 0.0);
    }
    corr(a, a) = 1.0;
  }
  return corr;
}

Result<linalg::PackedSymmetric> NormalScoresCorrelationTiledPacked(
    const double* const* cols, std::size_t m, std::size_t n) {
  thread_local CorrWorkspace ws;
  Status accumulated = TiledCovarianceAccumulate(cols, m, n, &ws);
  if (!accumulated.ok()) return accumulated;

  // Diagonal covariance entries: pair (a, a) sits at the head of column
  // a's run in the a-major packed upper triangle.
  std::vector<double> cov_diag(m);
  for (std::size_t a = 0; a < m; ++a) {
    cov_diag[a] = ws.acc[a * m - a * (a - 1) / 2];
  }
  // Normalize straight into packed storage — one store per coefficient,
  // same expressions (and bits) as the dense wrapper above.
  linalg::PackedSymmetric corr(m);
  std::size_t p = 0;
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a; b < m; ++b, ++p) {
      if (a == b) {
        corr.at(a, a) = 1.0;
        continue;
      }
      const double denom = std::sqrt(cov_diag[a] * cov_diag[b]);
      corr.at(b, a) = (denom > 0.0) ? ws.acc[p] / denom : 0.0;
    }
  }
  return corr;
}

}  // namespace dpcopula::copula
