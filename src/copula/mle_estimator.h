#ifndef DPCOPULA_COPULA_MLE_ESTIMATOR_H_
#define DPCOPULA_COPULA_MLE_ESTIMATOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"

namespace dpcopula::copula {

/// Which partition-fit kernel EstimateMleCorrelation runs (mirrors
/// SamplerKernel / TauKernel from PRs 4 and 5).
///
/// kBatched is the production path: each partition's rows are a contiguous
/// block, so pseudo-observations come from a per-partition counting pass —
/// bucket the block's values by llround bin, prefix-sum the histogram, and
/// evaluate Phi^-1 once per distinct bin through the batch kernel instead
/// of once per row. Domains too large for a dense histogram switch to a
/// sorted sparse variant whose cost is O(b log b) per partition,
/// independent of the domain size (kLegacy allocates a domain-sized
/// histogram per partition per column). Normal scores land in a flat
/// column-major buffer sliced zero-copy per partition, and the
/// per-partition correlation runs as a 256-row blocked accumulation. The
/// released noisy matrix is bit-identical to kLegacy on the same data, for
/// any thread count.
///
/// kLegacy is the original per-partition Table::Zeros + PseudoObservations
/// + NormalScores pipeline, kept verbatim as the reference implementation
/// for old-vs-new equivalence tests.
///
/// Two documented kBatched divergences (failure behavior only, never the
/// released matrix): a non-finite value anywhere in a column — including
/// the dropped n mod l remainder rows — fails the whole estimate up front
/// (under kLegacy a NaN reaches std::llround, which is UB), and partitions
/// longer than uint32 can index are rejected.
enum class MleKernel {
  kBatched,
  kLegacy,
};

/// Options for the DP MLE correlation estimator (Algorithm 2 — Dwork &
/// Smith sample-and-aggregate).
struct MleEstimatorOptions {
  /// Number of disjoint horizontal partitions l. 0 selects the paper's rule
  /// l = ceil(C(m,2) / (0.025 * epsilon2)), clamped so each partition keeps
  /// at least `min_partition_rows` records.
  std::int64_t num_partitions = 0;

  /// Lower bound on records per partition when auto-selecting l. A Gaussian
  /// copula correlation estimate needs at least a handful of rows to be
  /// informative.
  std::int64_t min_partition_rows = 10;

  /// Worker threads (shared ThreadPool) for the l disjoint partition fits.
  /// The fits consume no randomness and are averaged in partition order, so
  /// the released matrix is bit-identical for any thread count. 0 =
  /// hardware concurrency, <= 1 = sequential.
  int num_threads = 1;

  /// Degradation policy: how many of the l per-partition fits may fail
  /// before the whole estimate fails closed. Surviving partitions are
  /// averaged; each coefficient's sensitivity grows to Lambda / l_s for l_s
  /// survivors, so the Laplace scale is enlarged accordingly and the
  /// released matrix stays epsilon2-DP. The budget attributed to failed
  /// partitions is still charged — never refunded. 0 (default) keeps the
  /// strict behavior: any partition failure fails the estimate.
  std::int64_t max_failed_partitions = 0;

  /// Partition-fit kernel; both produce bit-identical released matrices on
  /// the same data (see MleKernel).
  MleKernel kernel = MleKernel::kBatched;

  /// Eigensolver kernel for the PSD-repair step (see linalg::EigenKernel).
  /// kTridiagQL is the high-dimension production path; kJacobi is the
  /// verbatim legacy solver kept for agreement tests. The repair also
  /// inherits `num_threads` above.
  linalg::EigenKernel eigen_kernel = linalg::EigenKernel::kTridiagQL;
};

/// Diagnostics reported alongside the private correlation matrix.
struct MleEstimate {
  linalg::Matrix correlation;     // The DP correlation matrix P~ (valid).
  std::int64_t num_partitions = 0;
  std::int64_t rows_per_partition = 0;
  /// Trailing n mod l rows that belong to no partition and did not
  /// influence the estimate (also logged and counted as mle.rows_dropped).
  std::int64_t rows_dropped = 0;
  /// Partition fits that failed and were excluded from the average (always
  /// <= options.max_failed_partitions on a returned estimate).
  std::int64_t failed_partitions = 0;
  double laplace_scale = 0.0;     // Noise scale per averaged coefficient.
  bool repaired = false;
};

/// Computes the DP correlation matrix of Algorithm 2: split the data into l
/// disjoint partitions, fit the Gaussian copula on each via the
/// normal-scores pseudo-MLE (see DESIGN.md §3 substitution 5), average the
/// per-partition coefficient estimates, and add Laplace noise with scale
/// C(m,2) * Lambda / (l * epsilon2) where Lambda = 2 is the diameter of a
/// correlation coefficient's space. Parallel composition over the disjoint
/// partitions plus sequential composition over coefficients gives
/// epsilon2-DP.
Result<MleEstimate> EstimateMleCorrelation(
    const data::Table& table, double epsilon2, Rng* rng,
    const MleEstimatorOptions& options = {});

/// The paper's partition-count rule: ceil(C(m,2) / (0.025 * epsilon2)).
std::int64_t PaperMlePartitionCount(std::size_t m, double epsilon2);

}  // namespace dpcopula::copula

#endif  // DPCOPULA_COPULA_MLE_ESTIMATOR_H_
