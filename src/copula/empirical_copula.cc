#include "copula/empirical_copula.h"

#include <algorithm>
#include <cmath>

#include "marginals/postprocess.h"
#include "stats/distributions.h"

namespace dpcopula::copula {

namespace {

Result<std::vector<double>> CountCells(
    const std::vector<std::vector<double>>& pseudo, std::int64_t grid_size,
    std::size_t* dims_out) {
  const std::size_t m = pseudo.size();
  if (m == 0) return Status::InvalidArgument("empirical copula: no columns");
  if (grid_size < 2) {
    return Status::InvalidArgument("empirical copula: grid_size must be >= 2");
  }
  double cells = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    cells *= static_cast<double>(grid_size);
    if (cells > static_cast<double>(hist::Histogram::kDefaultMaxCells)) {
      return Status::ResourceExhausted(
          "empirical copula grid exceeds the cell budget; use a parametric "
          "copula for this dimensionality");
    }
  }
  const std::size_t n = pseudo[0].size();
  for (const auto& col : pseudo) {
    if (col.size() != n) {
      return Status::InvalidArgument("ragged pseudo-observation columns");
    }
  }
  std::vector<double> counts(static_cast<std::size_t>(cells), 0.0);
  const auto g = static_cast<double>(grid_size);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t flat = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const double u = pseudo[j][i];
      if (!(u > 0.0 && u < 1.0)) {
        return Status::OutOfRange("pseudo-observation outside (0, 1)");
      }
      const auto cell = static_cast<std::uint64_t>(
          std::min<double>(g - 1.0, std::floor(u * g)));
      flat = flat * static_cast<std::uint64_t>(grid_size) + cell;
    }
    counts[flat] += 1.0;
  }
  *dims_out = m;
  return counts;
}

}  // namespace

Result<EmpiricalCopula> EmpiricalCopula::FromCounts(
    std::vector<double> counts, std::size_t dims, std::int64_t grid_size) {
  double total = 0.0;
  for (double c : counts) total += std::max(0.0, c);
  EmpiricalCopula copula;
  copula.dims_ = dims;
  copula.grid_size_ = grid_size;
  copula.cell_probs_.resize(counts.size());
  if (total <= 0.0) {
    // Degenerate: independence copula.
    std::fill(copula.cell_probs_.begin(), copula.cell_probs_.end(),
              1.0 / static_cast<double>(counts.size()));
  } else {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      copula.cell_probs_[i] = std::max(0.0, counts[i]) / total;
    }
  }
  copula.cell_cumulative_.resize(counts.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    acc += copula.cell_probs_[i];
    copula.cell_cumulative_[i] = acc;
  }
  copula.cell_cumulative_.back() = 1.0;
  return copula;
}

Result<EmpiricalCopula> EmpiricalCopula::Fit(
    const std::vector<std::vector<double>>& pseudo, std::int64_t grid_size) {
  std::size_t dims = 0;
  DPC_ASSIGN_OR_RETURN(std::vector<double> counts,
                       CountCells(pseudo, grid_size, &dims));
  return FromCounts(std::move(counts), dims, grid_size);
}

Result<EmpiricalCopula> EmpiricalCopula::FitDp(
    const std::vector<std::vector<double>>& pseudo, std::int64_t grid_size,
    double epsilon, Rng* rng) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("empirical copula: epsilon must be > 0");
  }
  std::size_t dims = 0;
  DPC_ASSIGN_OR_RETURN(std::vector<double> counts,
                       CountCells(pseudo, grid_size, &dims));
  // One record occupies exactly one cell => histogram sensitivity 1.
  for (double& c : counts) {
    c += stats::SampleLaplace(rng, 1.0 / epsilon);
  }
  counts = marginals::ProjectToNoisyTotal(counts);
  return FromCounts(std::move(counts), dims, grid_size);
}

std::uint64_t EmpiricalCopula::CellIndex(const std::vector<double>& u) const {
  const auto g = static_cast<double>(grid_size_);
  std::uint64_t flat = 0;
  for (std::size_t j = 0; j < dims_; ++j) {
    const auto cell = static_cast<std::uint64_t>(
        std::clamp(std::floor(u[j] * g), 0.0, g - 1.0));
    flat = flat * static_cast<std::uint64_t>(grid_size_) + cell;
  }
  return flat;
}

Result<double> EmpiricalCopula::CellProbability(
    const std::vector<double>& u) const {
  if (u.size() != dims_) {
    return Status::InvalidArgument("dimension mismatch");
  }
  return cell_probs_[CellIndex(u)];
}

Result<double> EmpiricalCopula::Density(const std::vector<double>& u) const {
  DPC_ASSIGN_OR_RETURN(double p, CellProbability(u));
  return p * std::pow(static_cast<double>(grid_size_),
                      static_cast<double>(dims_));
}

std::vector<double> EmpiricalCopula::SampleUniforms(Rng* rng) const {
  // Draw a cell by cumulative probability.
  const double r = rng->NextDouble();
  const auto it = std::lower_bound(cell_cumulative_.begin(),
                                   cell_cumulative_.end(), r);
  auto flat = static_cast<std::uint64_t>(
      it == cell_cumulative_.end()
          ? cell_cumulative_.size() - 1
          : static_cast<std::size_t>(it - cell_cumulative_.begin()));
  // Decode the multi-index and jitter uniformly within the cell.
  std::vector<double> u(dims_);
  const auto g = static_cast<std::uint64_t>(grid_size_);
  for (std::size_t j = dims_; j-- > 0;) {
    const std::uint64_t cell = flat % g;
    flat /= g;
    u[j] = (static_cast<double>(cell) + rng->NextDouble()) /
           static_cast<double>(grid_size_);
  }
  return u;
}

}  // namespace dpcopula::copula
