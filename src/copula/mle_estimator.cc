#include "copula/mle_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "copula/gaussian_copula.h"
#include "copula/pseudo_obs.h"
#include "linalg/cholesky.h"
#include "linalg/psd_repair.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/distributions.h"

namespace dpcopula::copula {

std::int64_t PaperMlePartitionCount(std::size_t m, double epsilon2) {
  const double md = static_cast<double>(m);
  const double pairs = md * (md - 1.0) / 2.0;
  const double count = std::ceil(pairs / (0.025 * epsilon2));
  // Tiny ε₂ / large m push the count past what int64 can hold (casting an
  // out-of-range double is UB); saturate exactly as
  // AdequateKendallSampleSize does — callers clamp against the actual row
  // count anyway.
  constexpr double kInt64Safe = 9.2e18;
  if (!(count < kInt64Safe)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return static_cast<std::int64_t>(count);
}

Result<MleEstimate> EstimateMleCorrelation(const data::Table& table,
                                           double epsilon2, Rng* rng,
                                           const MleEstimatorOptions& options) {
  static obs::Counter* const partitions_counter =
      obs::MetricsRegistry::Global().GetCounter("mle.partitions_fit");
  static obs::Counter* const repairs_counter =
      obs::MetricsRegistry::Global().GetCounter("mle.psd_repairs");
  static obs::Gauge* const rows_per_partition_gauge =
      obs::MetricsRegistry::Global().GetGauge("mle.rows_per_partition");
  static obs::Histogram* const fit_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "mle.partition_fit_seconds");
  obs::Span estimate_span("mle.estimate");

  const std::size_t m = table.num_columns();
  const auto n = static_cast<std::int64_t>(table.num_rows());
  if (m < 2) {
    return Status::InvalidArgument("MLE estimator needs >= 2 columns");
  }
  if (!(epsilon2 > 0.0)) {
    return Status::InvalidArgument("epsilon2 must be > 0");
  }

  std::int64_t l = options.num_partitions;
  if (l <= 0) {
    l = PaperMlePartitionCount(m, epsilon2);
    // The paper's rule presumes a very large n; clamp so each partition
    // keeps enough rows to fit a copula at all.
    const std::int64_t max_l =
        std::max<std::int64_t>(1, n / std::max<std::int64_t>(
                                          2, options.min_partition_rows));
    l = std::clamp<std::int64_t>(l, 1, max_l);
  }
  const std::int64_t b = n / l;  // Rows per partition; remainder dropped.
  if (b < 2) {
    return Status::InvalidArgument(
        "MLE estimator: fewer than 2 rows per partition (n=" +
        std::to_string(n) + ", l=" + std::to_string(l) + ")");
  }
  // The trailing n mod l rows belong to no partition and never influence
  // the estimate (see DESIGN.md §9). That is a deliberate simplification —
  // the paper assumes l | n — but it must not be silent.
  static obs::Counter* const rows_dropped_counter =
      obs::MetricsRegistry::Global().GetCounter("mle.rows_dropped");
  const std::int64_t rows_dropped = n - b * l;
  if (rows_dropped > 0) {
    rows_dropped_counter->Add(rows_dropped);
    obs::Log(obs::LogLevel::kWarn, "mle.rows_dropped")
        .Field("dropped", rows_dropped)
        .Field("rows", n)
        .Field("partitions", l);
  }

  partitions_counter->Add(l);
  rows_per_partition_gauge->Set(static_cast<double>(b));
  obs::Log(obs::LogLevel::kDebug, "mle.estimate")
      .Field("columns", m)
      .Field("partitions", l)
      .Field("rows_per_partition", b)
      .Field("rows_dropped", rows_dropped)
      .Field("epsilon2", epsilon2);

  // Fit the l disjoint partitions concurrently (the fits are RNG-free and
  // touch disjoint row slices), then average sequentially in partition
  // order so the floating-point sum — and thus the released matrix — is
  // identical for every thread count.
  const obs::SpanId estimate_span_id = estimate_span.id();
  std::vector<Result<linalg::Matrix>> fits(
      static_cast<std::size_t>(l),
      Result<linalg::Matrix>(Status::Internal("partition not fitted")));
  ParallelFor(
      0, static_cast<std::size_t>(l), /*grain=*/1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t ti = begin; ti < end; ++ti) {
          obs::Span fit_span(
              "mle.partition_fit[" + std::to_string(ti) + "]",
              estimate_span_id);
          obs::ScopedTimer fit_timer(fit_seconds);
          if (DPC_FAILPOINT_AT("mle.partition_fit", ti)) {
            fits[ti] = failpoint::InjectedFault("mle.partition_fit");
            continue;
          }
          const auto t = static_cast<std::int64_t>(ti);
          // Slice rows [t*b, (t+1)*b) of each column.
          data::Table part = data::Table::Zeros(
              table.schema(), static_cast<std::size_t>(b));
          for (std::size_t j = 0; j < m; ++j) {
            const auto& col = table.column(j);
            auto& dst = part.mutable_column(j);
            for (std::int64_t i = 0; i < b; ++i) {
              dst[static_cast<std::size_t>(i)] =
                  col[static_cast<std::size_t>(t * b + i)];
            }
          }
          auto pseudo = PseudoObservations(part);
          if (!pseudo.ok()) {
            fits[ti] = pseudo.status();
            continue;
          }
          const auto scores = NormalScores(*pseudo);
          fits[ti] = NormalScoresCorrelation(scores);
        }
      },
      options.num_threads);

  // Degradation policy: average the surviving fits (in partition order, for
  // thread-count determinism). A record lives in exactly one partition, so
  // with l_s survivors each averaged coefficient has sensitivity
  // Lambda / l_s — strictly larger than Lambda / l, and the Laplace scale
  // below grows to match, keeping the release epsilon2-DP. The budget
  // notionally spent on failed partitions is charged, never refunded.
  static obs::Counter* const fit_failures_counter =
      obs::MetricsRegistry::Global().GetCounter("mle.partition_fit_failures");
  linalg::Matrix avg(m, m);
  std::int64_t survivors = 0;
  std::int64_t failed = 0;
  Status first_failure = Status::OK();
  for (std::size_t ti = 0; ti < fits.size(); ++ti) {
    if (!fits[ti].ok()) {
      ++failed;
      if (first_failure.ok()) first_failure = fits[ti].status();
      continue;
    }
    avg = avg + *fits[ti];
    ++survivors;
  }
  if (failed > 0) {
    fit_failures_counter->Add(failed);
    obs::Log(obs::LogLevel::kWarn, "mle.partition_fits_failed")
        .Field("failed", failed)
        .Field("partitions", l)
        .Field("max_failed", options.max_failed_partitions);
  }
  if (survivors == 0 || failed > options.max_failed_partitions) {
    return first_failure;  // Fail closed: nothing released.
  }
  avg = avg.Scaled(1.0 / static_cast<double>(survivors));

  // Algorithm 2 step 3: Laplace noise with scale C(m,2) * Lambda / (l_s *
  // epsilon2), Lambda = 2 (diameter of [-1, 1]). Averaging over l_s disjoint
  // partitions reduces each coefficient's sensitivity to Lambda / l_s.
  const double num_pairs = static_cast<double>(m) * (m - 1) / 2.0;
  constexpr double kLambda = 2.0;
  const double scale =
      num_pairs * kLambda / (static_cast<double>(survivors) * epsilon2);

  linalg::Matrix p(m, m);
  for (std::size_t j = 0; j < m; ++j) p(j, j) = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = j + 1; k < m; ++k) {
      double noisy = avg(j, k) + stats::SampleLaplace(rng, scale);
      noisy = std::clamp(noisy, -1.0, 1.0);
      p(j, k) = noisy;
      p(k, j) = noisy;
    }
  }

  MleEstimate est;
  est.num_partitions = l;
  est.rows_per_partition = b;
  est.rows_dropped = rows_dropped;
  est.failed_partitions = failed;
  est.laplace_scale = scale;
  est.repaired = !linalg::IsPositiveDefinite(p);
  {
    obs::Span repair_span("psd_repair");
    if (est.repaired) repairs_counter->Increment();
    DPC_ASSIGN_OR_RETURN(est.correlation,
                         linalg::EnsureCorrelationMatrix(p));
  }
  return est;
}

}  // namespace dpcopula::copula
