#include "copula/mle_estimator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "copula/gaussian_copula.h"
#include "copula/pseudo_obs.h"
#include "linalg/cholesky.h"
#include "linalg/packed_symmetric.h"
#include "linalg/psd_repair.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "stats/distributions.h"
#include "stats/normal.h"

namespace dpcopula::copula {

std::int64_t PaperMlePartitionCount(std::size_t m, double epsilon2) {
  const double md = static_cast<double>(m);
  const double pairs = md * (md - 1.0) / 2.0;
  const double count = std::ceil(pairs / (0.025 * epsilon2));
  // Tiny ε₂ / large m push the count past what int64 can hold (casting an
  // out-of-range double is UB); saturate exactly as
  // AdequateKendallSampleSize does — callers clamp against the actual row
  // count anyway.
  constexpr double kInt64Safe = 9.2e18;
  if (!(count < kInt64Safe)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return static_cast<std::int64_t>(count);
}

namespace {

/// Grow-once scratch for the batched kernel's per-column pseudo-observation
/// pass; one instance per worker thread (same idiom as TauWorkspace).
struct MlePseudoWorkspace {
  std::vector<double> counts;   // Dense path: llround-bin histogram, turned
                                // into its prefix sum in place; restored to
                                // all-zero after every partition.
  std::vector<std::uint32_t> pslot;  // Dense path: eval bin -> pvals slot;
                                     // all-kNoSlot between partitions.
  std::vector<std::int64_t> clean;   // Dense path: pslot entries to restore.
  std::vector<std::int64_t> bins;    // Row slot -> EvaluateMid bin.
  std::vector<std::int64_t> kbuf;    // Sparse path: llround bins, sorted.
  std::vector<std::int64_t> touched;  // Sparse path: distinct bins, asc.
  std::vector<double> cumt;           // Sparse path: cumulative at touched.
  std::vector<std::uint32_t> pslot2;  // Sparse path: (touched idx, exact).
  std::vector<std::uint32_t> pidx;    // Row slot -> pvals index.
  std::vector<double> pvals;          // One p per distinct eval bin.
  std::vector<double> zvals;          // Phi^-1 of pvals, batched.
};

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

Status NonFiniteColumn() {
  return Status::InvalidArgument("MLE kernel: non-finite input");
}

/// A dense domain-sized histogram costs two extra scans of [0, domain) per
/// partition (prefix sum + reset); that beats the sparse path's per-block
/// sort while those scans stay within a few passes over the block itself.
/// Mirrors UseContingencyKernel's shape; the 4096 floor keeps every common
/// discrete-attribute domain on the dense path.
bool UseDenseBins(std::int64_t domain, std::int64_t b) {
  return domain <= std::max<std::int64_t>(4096, 2 * b);
}

/// llround without the libm call: for v >= 0, floor(v + 0.5) rounds half
/// away from zero exactly like llround (v + 0.5 is exact below 2^52). The
/// only disagreement that could change an outcome is v in (-0.5, 0] and the
/// exact half v == -0.5 (floor maps it into bin 0; llround puts it out of
/// domain at -1), so fall back whenever the fast path lands on 0 from a
/// negative value. Anything else negative fails the domain check under
/// both roundings.
std::int64_t LlroundFast(double v) {
  const auto k = static_cast<std::int64_t>(std::floor(v + 0.5));
  if (k == 0 && v < 0.0) return std::llround(v);
  return k;
}

/// Per-partition failure word: the smallest (column, kind) code wins so the
/// reported status matches kLegacy, where PseudoObservations surfaces the
/// first failing column. kind 0 = bad domain_size, 1 = value out of range.
constexpr std::int64_t kPartitionOk = std::numeric_limits<std::int64_t>::max();

void RecordPartitionFailure(std::atomic<std::int64_t>& state,
                            std::int64_t code) {
  std::int64_t cur = state.load(std::memory_order_relaxed);
  while (code < cur && !state.compare_exchange_weak(
                           cur, code, std::memory_order_relaxed)) {
  }
}

Status PartitionFailureStatus(std::int64_t code) {
  // Messages mirror EmpiricalCdf::FromData, which is what fails under
  // kLegacy.
  if (code % 2 == 0) {
    return Status::InvalidArgument("EmpiricalCdf: domain_size must be > 0");
  }
  return Status::OutOfRange("EmpiricalCdf: value outside domain");
}

/// Batched-kernel phase 1 for one column: for every partition, a counting
/// pass over its contiguous row block [t*b, (t+1)*b) yields the same
/// pseudo-observations as EmpiricalCdf::FromData + EvaluateMid on the
/// partition slice, bit for bit. Values are counted by llround bin exactly
/// as FromData counts them; the histogram's prefix sum reproduces
/// FromCounts' cumulative array over the same integers; and for a row whose
/// EvaluateMid bin is e (the clamped floor — k or k-1 for the llround bin
/// k, never less), p = (0.5*(lower+upper) + 0.5) / (b + 1.0) is the same
/// expression over the same doubles. Phi^-1 runs once per distinct eval bin
/// through the batch kernel (scalar and AVX2 paths are bit-identical to
/// NormalInverseCdf) instead of once per row.
///
/// Domains too large for a dense histogram take a sorted sparse route:
/// sort the block's bins, read cumulative counts off the run boundaries,
/// and binary-search each row's eval bin — O(b log b) per partition, with
/// no domain-sized scan or allocation anywhere.
Status BuildColumnScores(const std::vector<double>& col, std::int64_t domain,
                         std::int64_t l, std::int64_t b, std::size_t j,
                         double* col_scores,
                         std::vector<std::atomic<std::int64_t>>& part_fail) {
  const auto rows_used = static_cast<std::size_t>(l * b);
  if (domain <= 0) {
    // kLegacy: every partition's FromData fails before scanning values.
    const auto code = static_cast<std::int64_t>(j) * 2;
    for (auto& state : part_fail) RecordPartitionFailure(state, code);
    return Status::OK();
  }
  if (b >= static_cast<std::int64_t>(kNoSlot)) {
    return Status::InvalidArgument("MLE kernel: partition too long");
  }

  thread_local MlePseudoWorkspace ws;
  const auto bs = static_cast<std::size_t>(b);
  const double bd = static_cast<double>(b);
  const auto ds = static_cast<std::size_t>(domain);
  const bool dense = UseDenseBins(domain, b);
  if (dense) {
    // Grow-only, so the all-zero / all-kNoSlot invariants the per-partition
    // cleanup maintains extend to any newly added tail.
    if (ws.counts.size() < ds) ws.counts.resize(ds, 0.0);
    if (ws.pslot.size() < ds) ws.pslot.resize(ds, kNoSlot);
  } else {
    ws.kbuf.resize(bs);
    ws.touched.resize(bs);
    ws.cumt.resize(bs);
    ws.pslot2.resize(2 * bs);
  }
  ws.bins.resize(bs);
  ws.pidx.resize(bs);
  ws.pvals.resize(bs);
  ws.zvals.resize(bs);

  for (std::int64_t t = 0; t < l; ++t) {
    const std::size_t base = static_cast<std::size_t>(t) * bs;
    bool failed = false;
    std::size_t i = 0;
    for (; i < bs; ++i) {
      const double v = col[base + i];
      if (!std::isfinite(v)) {
        if (dense) std::fill(ws.counts.begin(), ws.counts.begin() + ds, 0.0);
        return NonFiniteColumn();
      }
      const std::int64_t k = LlroundFast(v);
      if (k < 0 || k >= domain) {
        RecordPartitionFailure(part_fail[static_cast<std::size_t>(t)],
                               static_cast<std::int64_t>(j) * 2 + 1);
        failed = true;
        break;
      }
      if (dense) {
        ws.counts[static_cast<std::size_t>(k)] += 1.0;
      } else {
        ws.kbuf[i] = k;
      }
      const double fv = std::floor(v);
      std::int64_t e = k;
      if (fv != v) {
        e = (fv < 0.0) ? 0 : static_cast<std::int64_t>(fv);
        if (e >= domain) e = domain - 1;
      }
      ws.bins[i] = e;
    }
    if (failed) {
      if (dense) std::fill(ws.counts.begin(), ws.counts.begin() + ds, 0.0);
      // The whole-column non-finite contract covers rows after the failing
      // one, so keep scanning the rest of the block.
      for (++i; i < bs; ++i) {
        if (!std::isfinite(col[base + i])) return NonFiniteColumn();
      }
      continue;
    }

    std::size_t np = 0;
    if (dense) {
      // In-place prefix sum: counts[k] becomes the cumulative count through
      // bin k — FromCounts' accumulation over the same integers.
      double acc = 0.0;
      for (std::size_t kk = 0; kk < ds; ++kk) {
        acc += ws.counts[kk];
        ws.counts[kk] = acc;
      }
      if (ds <= bs) {
        // Bin-table variant: with no more bins than block rows, Phi^-1 of
        // every bin costs no more than deduplicating the rows' eval bins,
        // and the per-row dedup pass disappears entirely.
        double lower = 0.0;
        for (std::size_t kk = 0; kk < ds; ++kk) {
          const double upper = ws.counts[kk];
          ws.pvals[kk] = (0.5 * (lower + upper) + 0.5) / (bd + 1.0);
          lower = upper;
        }
        stats::NormalInverseCdfBatch(ws.pvals.data(), ws.zvals.data(), ds);
        for (std::size_t q = 0; q < bs; ++q) {
          col_scores[base + q] =
              ws.zvals[static_cast<std::size_t>(ws.bins[q])];
        }
        std::fill(ws.counts.begin(), ws.counts.begin() + ds, 0.0);
        continue;
      }
      ws.clean.clear();
      for (std::size_t q = 0; q < bs; ++q) {
        const auto e = static_cast<std::size_t>(ws.bins[q]);
        std::uint32_t s = ws.pslot[e];
        if (s == kNoSlot) {
          const double upper = ws.counts[e];
          const double lower = (e == 0) ? 0.0 : ws.counts[e - 1];
          ws.pvals[np] = (0.5 * (lower + upper) + 0.5) / (bd + 1.0);
          s = static_cast<std::uint32_t>(np++);
          ws.pslot[e] = s;
          ws.clean.push_back(static_cast<std::int64_t>(e));
        }
        ws.pidx[q] = s;
      }
      for (const std::int64_t e : ws.clean) {
        ws.pslot[static_cast<std::size_t>(e)] = kNoSlot;
      }
      std::fill(ws.counts.begin(), ws.counts.begin() + ds, 0.0);
    } else {
      std::sort(ws.kbuf.begin(), ws.kbuf.begin() + bs);
      std::size_t nt = 0;
      double acc = 0.0;
      std::size_t q = 0;
      while (q < bs) {
        std::size_t q_end = q + 1;
        while (q_end < bs && ws.kbuf[q_end] == ws.kbuf[q]) ++q_end;
        // Empty bins between runs contribute 0.0, which leaves the
        // accumulator bit-unchanged, so skipping them matches FromCounts.
        acc += static_cast<double>(q_end - q);
        ws.touched[nt] = ws.kbuf[q];
        ws.cumt[nt] = acc;
        ++nt;
        q = q_end;
      }
      std::fill(ws.pslot2.begin(), ws.pslot2.begin() + 2 * nt, kNoSlot);
      std::uint32_t below_slot = kNoSlot;  // Eval bin below all mass.
      for (std::size_t r = 0; r < bs; ++r) {
        const std::int64_t e = ws.bins[r];
        const auto it = std::upper_bound(ws.touched.begin(),
                                         ws.touched.begin() + nt, e);
        if (it == ws.touched.begin()) {
          // No mass at or below e: lower = upper = 0.
          if (below_slot == kNoSlot) {
            ws.pvals[np] = 0.5 / (bd + 1.0);
            below_slot = static_cast<std::uint32_t>(np++);
          }
          ws.pidx[r] = below_slot;
          continue;
        }
        const auto qi = static_cast<std::size_t>(it - ws.touched.begin()) - 1;
        const bool exact = ws.touched[qi] == e;
        // Non-exact means bin e itself is empty: cumulative through e and
        // through e-1 are both cumt[qi].
        const std::size_t key = 2 * qi + (exact ? 1 : 0);
        std::uint32_t s = ws.pslot2[key];
        if (s == kNoSlot) {
          const double upper = ws.cumt[qi];
          const double lower =
              exact ? ((qi == 0) ? 0.0 : ws.cumt[qi - 1]) : upper;
          ws.pvals[np] = (0.5 * (lower + upper) + 0.5) / (bd + 1.0);
          s = static_cast<std::uint32_t>(np++);
          ws.pslot2[key] = s;
        }
        ws.pidx[r] = s;
      }
    }
    stats::NormalInverseCdfBatch(ws.pvals.data(), ws.zvals.data(), np);
    for (std::size_t q = 0; q < bs; ++q) {
      col_scores[base + q] = ws.zvals[ws.pidx[q]];
    }
  }

  // The dropped n mod l remainder rows are part of the whole-column
  // non-finite contract too.
  for (std::size_t r = rows_used; r < col.size(); ++r) {
    if (!std::isfinite(col[r])) return NonFiniteColumn();
  }
  return Status::OK();
}

}  // namespace

Result<MleEstimate> EstimateMleCorrelation(const data::Table& table,
                                           double epsilon2, Rng* rng,
                                           const MleEstimatorOptions& options) {
  static obs::Counter* const partitions_counter =
      obs::MetricsRegistry::Global().GetCounter("mle.partitions_fit");
  static obs::Counter* const repairs_counter =
      obs::MetricsRegistry::Global().GetCounter("mle.psd_repairs");
  static obs::Gauge* const rows_per_partition_gauge =
      obs::MetricsRegistry::Global().GetGauge("mle.rows_per_partition");
  static obs::Histogram* const fit_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "mle.partition_fit_seconds");
  obs::Span estimate_span("mle.estimate");

  const std::size_t m = table.num_columns();
  const auto n = static_cast<std::int64_t>(table.num_rows());
  if (m < 2) {
    return Status::InvalidArgument("MLE estimator needs >= 2 columns");
  }
  if (!(epsilon2 > 0.0)) {
    return Status::InvalidArgument("epsilon2 must be > 0");
  }

  std::int64_t l = options.num_partitions;
  if (l <= 0) {
    l = PaperMlePartitionCount(m, epsilon2);
    // The paper's rule presumes a very large n; clamp so each partition
    // keeps enough rows to fit a copula at all.
    const std::int64_t max_l =
        std::max<std::int64_t>(1, n / std::max<std::int64_t>(
                                          2, options.min_partition_rows));
    l = std::clamp<std::int64_t>(l, 1, max_l);
  }
  const std::int64_t b = n / l;  // Rows per partition; remainder dropped.
  if (b < 2) {
    return Status::InvalidArgument(
        "MLE estimator: fewer than 2 rows per partition (n=" +
        std::to_string(n) + ", l=" + std::to_string(l) + ")");
  }
  // The trailing n mod l rows belong to no partition and never influence
  // the estimate (see DESIGN.md §9). That is a deliberate simplification —
  // the paper assumes l | n — but it must not be silent.
  static obs::Counter* const rows_dropped_counter =
      obs::MetricsRegistry::Global().GetCounter("mle.rows_dropped");
  const std::int64_t rows_dropped = n - b * l;
  if (rows_dropped > 0) {
    rows_dropped_counter->Add(rows_dropped);
    obs::Log(obs::LogLevel::kWarn, "mle.rows_dropped")
        .Field("dropped", rows_dropped)
        .Field("rows", n)
        .Field("partitions", l);
  }

  partitions_counter->Add(l);
  rows_per_partition_gauge->Set(static_cast<double>(b));
  obs::Log(obs::LogLevel::kDebug, "mle.estimate")
      .Field("columns", m)
      .Field("partitions", l)
      .Field("rows_per_partition", b)
      .Field("rows_dropped", rows_dropped)
      .Field("epsilon2", epsilon2);

  // Fit the l disjoint partitions concurrently (the fits are RNG-free and
  // touch disjoint row slices), then average sequentially in partition
  // order so the floating-point sum — and thus the released matrix — is
  // identical for every thread count.
  const obs::SpanId estimate_span_id = estimate_span.id();
  // Per-partition fits are held (and averaged) in packed lower-triangular
  // form: one stored entry per coefficient, so the l-way accumulation pass
  // below touches half the memory of the dense mirror-writing layout.
  std::vector<Result<linalg::PackedSymmetric>> fits(
      static_cast<std::size_t>(l),
      Result<linalg::PackedSymmetric>(Status::Internal("partition not fitted")));
  std::vector<double> scores;  // kBatched: column-major normal scores.

  if (options.kernel == MleKernel::kLegacy) {
    ParallelFor(
        0, static_cast<std::size_t>(l), /*grain=*/1,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t ti = begin; ti < end; ++ti) {
            obs::Span fit_span(
                "mle.partition_fit[" + std::to_string(ti) + "]",
                estimate_span_id);
            obs::ScopedTimer fit_timer(fit_seconds);
            obs::StageScope fit_stage(obs::Stage::kMlePartitionFit);
            if (DPC_FAILPOINT_AT("mle.partition_fit", ti)) {
              fits[ti] = failpoint::InjectedFault("mle.partition_fit");
              continue;
            }
            const auto t = static_cast<std::int64_t>(ti);
            // Slice rows [t*b, (t+1)*b) of each column.
            data::Table part = data::Table::Zeros(
                table.schema(), static_cast<std::size_t>(b));
            for (std::size_t j = 0; j < m; ++j) {
              const auto& col = table.column(j);
              auto& dst = part.mutable_column(j);
              for (std::int64_t i = 0; i < b; ++i) {
                dst[static_cast<std::size_t>(i)] =
                    col[static_cast<std::size_t>(t * b + i)];
              }
            }
            auto pseudo = PseudoObservations(part);
            if (!pseudo.ok()) {
              fits[ti] = pseudo.status();
              continue;
            }
            const auto scores_l = NormalScores(*pseudo);
            Result<linalg::Matrix> fit = NormalScoresCorrelation(scores_l);
            fits[ti] =
                fit.ok() ? Result<linalg::PackedSymmetric>(
                               linalg::PackedSymmetric::FromLowerTriangleOf(
                                   *fit))
                         : Result<linalg::PackedSymmetric>(fit.status());
          }
        },
        options.num_threads);
  } else {
    // Batched kernel. Phase 1 (per column): a counting pass per partition
    // block derives the pseudo-observations from histogram prefix sums,
    // batched Phi^-1 per distinct value bin, normal scores written into a
    // flat column-major buffer. Phase 2 (per partition): blocked
    // correlation over zero-copy column slices. Both phases are
    // deterministic for any thread count, and the failpoint/failure
    // semantics mirror the legacy loop (see MleKernel).
    const auto rows_used = static_cast<std::size_t>(l * b);
    scores.resize(m * rows_used);
    std::vector<std::atomic<std::int64_t>> part_fail(
        static_cast<std::size_t>(l));
    for (auto& state : part_fail) {
      state.store(kPartitionOk, std::memory_order_relaxed);
    }
    std::vector<Status> col_status(m, Status::OK());
    {
      obs::Span pseudo_span("mle.pseudo_obs", estimate_span_id);
      ParallelFor(
          0, m, /*grain=*/1,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t j = begin; j < end; ++j) {
              col_status[j] = BuildColumnScores(
                  table.column(j), table.schema().attribute(j).domain_size,
                  l, b, j, scores.data() + j * rows_used, part_fail);
            }
          },
          options.num_threads);
    }
    for (std::size_t j = 0; j < m; ++j) {
      // Whole-estimate failure (non-finite or oversized column): nothing
      // rank-based can be computed. Deterministic: first column wins.
      if (!col_status[j].ok()) return col_status[j];
    }

    ParallelFor(
        0, static_cast<std::size_t>(l), /*grain=*/1,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t ti = begin; ti < end; ++ti) {
            obs::Span fit_span(
                "mle.partition_fit[" + std::to_string(ti) + "]",
                estimate_span_id);
            obs::ScopedTimer fit_timer(fit_seconds);
            obs::StageScope fit_stage(obs::Stage::kMlePartitionFit);
            // Failpoint first — the legacy loop injects before any
            // per-partition work, so an armed fault shadows a data error.
            if (DPC_FAILPOINT_AT("mle.partition_fit", ti)) {
              fits[ti] = failpoint::InjectedFault("mle.partition_fit");
              continue;
            }
            const std::int64_t code = part_fail[ti].load(
                std::memory_order_relaxed);
            if (code != kPartitionOk) {
              fits[ti] = PartitionFailureStatus(code);
              continue;
            }
            thread_local std::vector<const double*> ptrs;
            ptrs.resize(m);
            for (std::size_t j = 0; j < m; ++j) {
              ptrs[j] = scores.data() + j * rows_used +
                        ti * static_cast<std::size_t>(b);
            }
            fits[ti] = NormalScoresCorrelationTiledPacked(
                ptrs.data(), m, static_cast<std::size_t>(b));
          }
        },
        options.num_threads);
  }

  // Degradation policy: average the surviving fits (in partition order, for
  // thread-count determinism). A record lives in exactly one partition, so
  // with l_s survivors each averaged coefficient has sensitivity
  // Lambda / l_s — strictly larger than Lambda / l, and the Laplace scale
  // below grows to match, keeping the release epsilon2-DP. The budget
  // notionally spent on failed partitions is charged, never refunded.
  static obs::Counter* const fit_failures_counter =
      obs::MetricsRegistry::Global().GetCounter("mle.partition_fit_failures");
  linalg::PackedSymmetric avg(m);
  std::int64_t survivors = 0;
  std::int64_t failed = 0;
  Status first_failure = Status::OK();
  for (std::size_t ti = 0; ti < fits.size(); ++ti) {
    if (!fits[ti].ok()) {
      ++failed;
      if (first_failure.ok()) first_failure = fits[ti].status();
      continue;
    }
    avg.AddInPlace(*fits[ti]);
    ++survivors;
  }
  if (failed > 0) {
    fit_failures_counter->Add(failed);
    obs::Log(obs::LogLevel::kWarn, "mle.partition_fits_failed")
        .Field("failed", failed)
        .Field("partitions", l)
        .Field("max_failed", options.max_failed_partitions);
  }
  if (survivors == 0 || failed > options.max_failed_partitions) {
    return first_failure;  // Fail closed: nothing released.
  }
  avg.ScaleInPlace(1.0 / static_cast<double>(survivors));

  // Algorithm 2 step 3: Laplace noise with scale C(m,2) * Lambda / (l_s *
  // epsilon2), Lambda = 2 (diameter of [-1, 1]). Averaging over l_s disjoint
  // partitions reduces each coefficient's sensitivity to Lambda / l_s.
  const double num_pairs = static_cast<double>(m) * (m - 1) / 2.0;
  constexpr double kLambda = 2.0;
  const double scale =
      num_pairs * kLambda / (static_cast<double>(survivors) * epsilon2);

  // The noisy matrix is likewise built packed — one store per coefficient
  // — and expanded to dense form once, at the PSD-repair boundary.
  linalg::PackedSymmetric noisy_packed(m);
  for (std::size_t j = 0; j < m; ++j) noisy_packed.at(j, j) = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = j + 1; k < m; ++k) {
      double noisy = avg(j, k) + stats::SampleLaplace(rng, scale);
      noisy = std::clamp(noisy, -1.0, 1.0);
      noisy_packed.at(k, j) = noisy;
    }
  }
  linalg::Matrix p = noisy_packed.ToMatrix();

  MleEstimate est;
  est.num_partitions = l;
  est.rows_per_partition = b;
  est.rows_dropped = rows_dropped;
  est.failed_partitions = failed;
  est.laplace_scale = scale;
  est.repaired = !linalg::IsPositiveDefinite(p);
  {
    obs::Span repair_span("psd_repair");
    if (est.repaired) repairs_counter->Increment();
    linalg::PsdRepairOptions repair_options;
    repair_options.eigen_kernel = options.eigen_kernel;
    repair_options.num_threads = options.num_threads;
    DPC_ASSIGN_OR_RETURN(est.correlation,
                         linalg::EnsureCorrelationMatrix(p, repair_options));
  }
  return est;
}

}  // namespace dpcopula::copula
