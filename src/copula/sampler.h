#ifndef DPCOPULA_COPULA_SAMPLER_H_
#define DPCOPULA_COPULA_SAMPLER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "linalg/matrix.h"
#include "stats/empirical_cdf.h"

namespace dpcopula::copula {

/// Algorithm 3 — sampling DP synthetic data:
///  1a. draw z ~ N(0, correlation) (Cholesky of the DP correlation matrix);
///  1b. map to the unit cube via the standard normal CDF, t = Phi(z);
///  2.  map through the inverse DP empirical marginal CDFs,
///      x_j = F~_j^{-1}(t_j), landing in the original attribute domains.
/// `schema` supplies names/domains of the output columns; `marginal_cdfs`
/// must contain one CDF per attribute (built from the DP marginal
/// histograms). This is pure post-processing of DP outputs, so it consumes
/// no privacy budget.
Result<data::Table> SampleSyntheticData(
    const data::Schema& schema,
    const std::vector<stats::EmpiricalCdf>& marginal_cdfs,
    const linalg::Matrix& correlation, std::size_t num_rows, Rng* rng);

/// t-copula variant of Algorithm 3 (the paper's future-work extension):
/// draws x ~ t_dof(0, correlation), maps through the univariate t CDF, then
/// through the inverse DP marginal CDFs. Captures symmetric tail dependence
/// the Gaussian copula cannot express.
Result<data::Table> SampleSyntheticDataT(
    const data::Schema& schema,
    const std::vector<stats::EmpiricalCdf>& marginal_cdfs,
    const linalg::Matrix& correlation, double dof, std::size_t num_rows,
    Rng* rng);

}  // namespace dpcopula::copula

#endif  // DPCOPULA_COPULA_SAMPLER_H_
