#ifndef DPCOPULA_COPULA_SAMPLER_H_
#define DPCOPULA_COPULA_SAMPLER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "linalg/matrix.h"
#include "stats/empirical_cdf.h"

namespace dpcopula::copula {

/// Fixed row-shard size for parallel sampling. The shard decomposition
/// (and therefore the per-shard RNG split sequence) depends only on
/// `num_rows`, never on the thread count, so sampled tables are
/// bit-identical for any `num_threads`.
inline constexpr std::size_t kSamplerShardRows = 4096;

/// Rows per tile of the blocked sampling kernel. A tile's working set is
/// 2 * m * kSamplerTileRows doubles (the Gaussian block and the correlated
/// block), ~40 KB at m = 10 — sized to stay cache-resident while keeping
/// the per-tile loop overhead negligible. Divides kSamplerShardRows so only
/// the final shard ever sees a partial tile.
inline constexpr std::size_t kSamplerTileRows = 256;

/// Which row-sampling kernel to run. kTiled is the production path: a
/// ziggurat-filled kSamplerTileRows x m Gaussian block, the Cholesky factor
/// applied as a blocked lower-triangular mat-mul over contiguous columns,
/// and guide-table CDF inversion (InverseCdfTable). kLegacy is the pre-tile
/// scalar loop (per-row triangular multiply + per-cell std::lower_bound),
/// kept for golden fixtures and old-vs-new equivalence tests.
enum class SamplerKernel { kTiled, kLegacy };

/// Algorithm 3 — sampling DP synthetic data:
///  1a. draw z ~ N(0, correlation) (Cholesky of the DP correlation matrix);
///  1b. map to the unit cube via the standard normal CDF, t = Phi(z);
///  2.  map through the inverse DP empirical marginal CDFs,
///      x_j = F~_j^{-1}(t_j), landing in the original attribute domains.
/// `schema` supplies names/domains of the output columns; `marginal_cdfs`
/// must contain one CDF per attribute (built from the DP marginal
/// histograms). This is pure post-processing of DP outputs, so it consumes
/// no privacy budget.
///
/// The row loop runs on the shared thread pool: rows are cut into
/// kSamplerShardRows-sized shards, each with its own RNG split off `*rng`
/// in shard order (1 thread and N threads give byte-identical tables).
/// `num_threads`: 0 = hardware concurrency, <= 1 = sequential.
Result<data::Table> SampleSyntheticData(
    const data::Schema& schema,
    const std::vector<stats::EmpiricalCdf>& marginal_cdfs,
    const linalg::Matrix& correlation, std::size_t num_rows, Rng* rng,
    int num_threads = 1, SamplerKernel kernel = SamplerKernel::kTiled);

/// t-copula variant of Algorithm 3 (the paper's future-work extension):
/// draws x ~ t_dof(0, correlation), maps through the univariate t CDF, then
/// through the inverse DP marginal CDFs. Captures symmetric tail dependence
/// the Gaussian copula cannot express. Parallelized identically to
/// SampleSyntheticData (thread-count invariant output).
Result<data::Table> SampleSyntheticDataT(
    const data::Schema& schema,
    const std::vector<stats::EmpiricalCdf>& marginal_cdfs,
    const linalg::Matrix& correlation, double dof, std::size_t num_rows,
    Rng* rng, int num_threads = 1, SamplerKernel kernel = SamplerKernel::kTiled);

}  // namespace dpcopula::copula

#endif  // DPCOPULA_COPULA_SAMPLER_H_
