#include "copula/t_copula.h"

#include <cmath>

#include "copula/gaussian_copula.h"
#include "dp/mechanisms.h"
#include "linalg/cholesky.h"
#include "stats/distributions.h"

namespace dpcopula::copula {

namespace {
const std::vector<double> kDefaultDofGrid = {2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}  // namespace

Result<TCopula> TCopula::Create(const linalg::Matrix& correlation,
                                double dof) {
  if (!(dof > 0.0)) {
    return Status::InvalidArgument("t copula: dof must be > 0");
  }
  if (correlation.rows() != correlation.cols() || correlation.rows() == 0) {
    return Status::InvalidArgument("correlation matrix must be square");
  }
  for (std::size_t i = 0; i < correlation.rows(); ++i) {
    if (std::fabs(correlation(i, i) - 1.0) > 1e-8) {
      return Status::InvalidArgument(
          "correlation matrix must have unit diagonal");
    }
  }
  TCopula c;
  c.correlation_ = correlation;
  c.dof_ = dof;
  DPC_ASSIGN_OR_RETURN(c.cholesky_, linalg::CholeskyDecompose(correlation));
  DPC_ASSIGN_OR_RETURN(c.precision_, linalg::CholeskyInverse(c.cholesky_));
  c.log_det_ = linalg::CholeskyLogDet(c.cholesky_);
  return c;
}

Result<double> TCopula::LogDensity(const std::vector<double>& u) const {
  const std::size_t m = dims();
  if (u.size() != m) {
    return Status::InvalidArgument("LogDensity: dimension mismatch");
  }
  std::vector<double> x(m);
  for (std::size_t j = 0; j < m; ++j) {
    if (!(u[j] > 0.0 && u[j] < 1.0)) {
      return Status::OutOfRange("pseudo-observation outside (0, 1)");
    }
    x[j] = stats::StudentTInverseCdf(u[j], dof_);
  }
  // Quadratic form x^T P^{-1} x.
  double quad = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < m; ++j) row += precision_(i, j) * x[j];
    quad += x[i] * row;
  }
  const double md = static_cast<double>(m);
  // log multivariate-t density constant terms minus the product of the
  // univariate t densities.
  // stats::LogGamma, not std::lgamma: this runs inside concurrently
  // executing hybrid partitions and must not touch the signgam global.
  double log_c = stats::LogGamma((dof_ + md) / 2.0) +
                 (md - 1.0) * stats::LogGamma(dof_ / 2.0) -
                 md * stats::LogGamma((dof_ + 1.0) / 2.0) - 0.5 * log_det_;
  log_c -= (dof_ + md) / 2.0 * std::log1p(quad / dof_);
  for (std::size_t j = 0; j < m; ++j) {
    log_c += (dof_ + 1.0) / 2.0 * std::log1p(x[j] * x[j] / dof_);
  }
  return log_c;
}

Result<double> TCopula::LogLikelihood(
    const std::vector<std::vector<double>>& pseudo) const {
  if (pseudo.size() != dims()) {
    return Status::InvalidArgument("LogLikelihood: dimension mismatch");
  }
  const std::size_t n = pseudo.empty() ? 0 : pseudo[0].size();
  std::vector<double> u(dims());
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dims(); ++j) u[j] = pseudo[j][i];
    DPC_ASSIGN_OR_RETURN(double ld, LogDensity(u));
    acc += ld;
  }
  return acc;
}

Result<double> TCopula::Aic(
    const std::vector<std::vector<double>>& pseudo) const {
  DPC_ASSIGN_OR_RETURN(double ll, LogLikelihood(pseudo));
  const double m = static_cast<double>(dims());
  const double num_params = m * (m - 1.0) / 2.0 + 1.0;  // + dof.
  return 2.0 * num_params - 2.0 * ll;
}

std::vector<double> TCopula::SampleUniforms(Rng* rng) const {
  const std::size_t m = dims();
  std::vector<double> z(m), u(m);
  for (double& v : z) v = rng->NextGaussian();
  const double w = stats::SampleChiSquared(rng, dof_);
  const double scale = std::sqrt(dof_ / w);
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i; ++k) acc += cholesky_(i, k) * z[k];
    u[i] = stats::StudentTCdf(acc * scale, dof_);
  }
  return u;
}

Result<double> EstimateTCopulaDof(
    const std::vector<std::vector<double>>& pseudo,
    const linalg::Matrix& correlation, std::vector<double> grid) {
  if (grid.empty()) grid = kDefaultDofGrid;
  double best_dof = grid[0];
  double best_ll = -1e300;
  for (double dof : grid) {
    DPC_ASSIGN_OR_RETURN(TCopula c, TCopula::Create(correlation, dof));
    DPC_ASSIGN_OR_RETURN(double ll, c.LogLikelihood(pseudo));
    if (ll > best_ll) {
      best_ll = ll;
      best_dof = dof;
    }
  }
  return best_dof;
}

namespace {

// Splits column-major pseudo-observations into `parts` disjoint row blocks.
std::vector<std::vector<std::vector<double>>> SplitPseudo(
    const std::vector<std::vector<double>>& pseudo, std::size_t parts) {
  const std::size_t m = pseudo.size();
  const std::size_t n = pseudo.empty() ? 0 : pseudo[0].size();
  const std::size_t block = n / parts;
  std::vector<std::vector<std::vector<double>>> out;
  for (std::size_t p = 0; p < parts; ++p) {
    std::vector<std::vector<double>> chunk(m);
    for (std::size_t j = 0; j < m; ++j) {
      chunk[j].assign(
          pseudo[j].begin() + static_cast<std::ptrdiff_t>(p * block),
          pseudo[j].begin() + static_cast<std::ptrdiff_t>((p + 1) * block));
    }
    out.push_back(std::move(chunk));
  }
  return out;
}

}  // namespace

Result<double> EstimateTCopulaDofPrivate(
    const std::vector<std::vector<double>>& pseudo,
    const linalg::Matrix& correlation, double epsilon, Rng* rng,
    std::size_t num_partitions, std::vector<double> grid) {
  if (grid.empty()) grid = kDefaultDofGrid;
  if (pseudo.empty() || pseudo[0].size() < num_partitions * 4) {
    return Status::InvalidArgument(
        "t dof estimation: too few rows for the requested partitions");
  }
  std::vector<double> votes(grid.size(), 0.0);
  for (const auto& chunk : SplitPseudo(pseudo, num_partitions)) {
    DPC_ASSIGN_OR_RETURN(double dof,
                         EstimateTCopulaDof(chunk, correlation, grid));
    for (std::size_t g = 0; g < grid.size(); ++g) {
      if (grid[g] == dof) {
        votes[g] += 1.0;
        break;
      }
    }
  }
  // One record lives in exactly one partition, so it moves one vote:
  // vote-count score sensitivity 1.
  DPC_ASSIGN_OR_RETURN(std::size_t pick,
                       dp::ExponentialMechanism(rng, votes, epsilon, 1.0));
  return grid[pick];
}

Result<bool> TCopulaFitsBetter(const std::vector<std::vector<double>>& pseudo,
                               const linalg::Matrix& correlation) {
  DPC_ASSIGN_OR_RETURN(double dof, EstimateTCopulaDof(pseudo, correlation));
  DPC_ASSIGN_OR_RETURN(TCopula t, TCopula::Create(correlation, dof));
  DPC_ASSIGN_OR_RETURN(GaussianCopula g, GaussianCopula::Create(correlation));
  DPC_ASSIGN_OR_RETURN(double aic_t, t.Aic(pseudo));
  DPC_ASSIGN_OR_RETURN(double aic_g, g.Aic(pseudo));
  return aic_t < aic_g;
}

Result<bool> TCopulaFitsBetterPrivate(
    const std::vector<std::vector<double>>& pseudo,
    const linalg::Matrix& correlation, double epsilon, Rng* rng,
    std::size_t num_partitions) {
  if (pseudo.empty() || pseudo[0].size() < num_partitions * 4) {
    return Status::InvalidArgument(
        "family selection: too few rows for the requested partitions");
  }
  std::vector<double> votes(2, 0.0);  // [gaussian, t].
  for (const auto& chunk : SplitPseudo(pseudo, num_partitions)) {
    DPC_ASSIGN_OR_RETURN(bool t_wins, TCopulaFitsBetter(chunk, correlation));
    votes[t_wins ? 1 : 0] += 1.0;
  }
  DPC_ASSIGN_OR_RETURN(std::size_t pick,
                       dp::ExponentialMechanism(rng, votes, epsilon, 1.0));
  return pick == 1;
}

}  // namespace dpcopula::copula
