#ifndef DPCOPULA_COPULA_T_COPULA_H_
#define DPCOPULA_COPULA_T_COPULA_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace dpcopula::copula {

/// The Student-t copula — the paper's §3.2/§6 "future work" extension for
/// data with tail dependence that the Gaussian copula cannot express.
///
/// For correlation matrix P and degrees of freedom nu, the density is
///   c(u) = f_{P,nu}(x) / prod_j f_nu(x_j),   x_j = T_nu^{-1}(u_j),
/// where f_{P,nu} is the multivariate and f_nu the univariate t density.
/// As nu -> infinity it converges to the Gaussian copula; small nu adds
/// symmetric tail dependence.
class TCopula {
 public:
  /// Builds from a valid correlation matrix and dof > 0.
  static Result<TCopula> Create(const linalg::Matrix& correlation,
                                double dof);

  const linalg::Matrix& correlation() const { return correlation_; }
  double dof() const { return dof_; }
  std::size_t dims() const { return correlation_.rows(); }

  /// log c(u) for one pseudo-observation u in (0,1)^m.
  Result<double> LogDensity(const std::vector<double>& u) const;

  /// Sum of LogDensity over column-major pseudo-observations.
  Result<double> LogLikelihood(
      const std::vector<std::vector<double>>& pseudo) const;

  /// AIC with C(m,2) + 1 parameters (correlations + dof).
  Result<double> Aic(const std::vector<std::vector<double>>& pseudo) const;

  /// Draws one m-vector of copula uniforms: z ~ N(0, P), w ~ chi2(nu),
  /// u_j = T_nu(z_j / sqrt(w / nu)).
  std::vector<double> SampleUniforms(Rng* rng) const;

 private:
  linalg::Matrix correlation_;
  linalg::Matrix cholesky_;
  linalg::Matrix precision_;
  double log_det_ = 0.0;
  double dof_ = 4.0;
};

/// Profile estimate of the t-copula dof: evaluates the t-copula
/// log-likelihood (with `correlation` fixed, e.g. from Kendall's tau, which
/// is valid for every elliptical copula) on a dof grid and returns the
/// maximizer. `grid` defaults to {2,4,8,16,32,64}.
Result<double> EstimateTCopulaDof(
    const std::vector<std::vector<double>>& pseudo,
    const linalg::Matrix& correlation, std::vector<double> grid = {});

/// Differentially private dof estimation by sample-and-aggregate voting:
/// split the pseudo-observations into `num_partitions` disjoint blocks,
/// let each block vote for its profile-ML dof on the grid, and select the
/// winner with the exponential mechanism (one record moves one vote, so the
/// count score has sensitivity 1). Consumes `epsilon`.
Result<double> EstimateTCopulaDofPrivate(
    const std::vector<std::vector<double>>& pseudo,
    const linalg::Matrix& correlation, double epsilon, Rng* rng,
    std::size_t num_partitions = 10, std::vector<double> grid = {});

/// Which elliptical copula family fits the data better by AIC — the
/// goodness-of-fit test the paper leaves as future work. Returns true when
/// the t copula (at its profile dof) improves on the Gaussian.
Result<bool> TCopulaFitsBetter(const std::vector<std::vector<double>>& pseudo,
                               const linalg::Matrix& correlation);

/// DP variant of the family choice: per-partition AIC votes + exponential
/// mechanism (vote-count score, sensitivity 1). Consumes `epsilon`.
Result<bool> TCopulaFitsBetterPrivate(
    const std::vector<std::vector<double>>& pseudo,
    const linalg::Matrix& correlation, double epsilon, Rng* rng,
    std::size_t num_partitions = 10);

}  // namespace dpcopula::copula

#endif  // DPCOPULA_COPULA_T_COPULA_H_
