#ifndef DPCOPULA_COPULA_KENDALL_ESTIMATOR_H_
#define DPCOPULA_COPULA_KENDALL_ESTIMATOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"
#include "stats/kendall.h"

namespace dpcopula::copula {

/// Options for the DP Kendall's-tau correlation estimator (Algorithm 5).
struct KendallEstimatorOptions {
  /// If true and the data is larger than the adequate sample size n_hat >
  /// 50 m (m-1) / epsilon2 - 1 (paper §4.2, complexity discussion), the tau
  /// coefficients are computed on a random subsample of that size with the
  /// noise enlarged from 4/(n+1) to 4/(n_hat+1).
  bool subsample = true;

  /// Overrides the automatic n_hat when > 0 (must still be <= n).
  std::int64_t subsample_size_override = 0;

  /// Worker threads (shared ThreadPool) for the rank-cache builds and the
  /// C(m,2) pairwise tau computations — the dominant cost at high m. Each
  /// pair derives its own RNG stream from the caller's generator by pair
  /// index, so results are bit-identical regardless of thread count. 0 =
  /// hardware concurrency, <= 1 = sequential.
  int num_threads = 1;

  /// Which pairwise tau kernel to run. kRankCache (production) builds one
  /// rank structure per column — O(m n log n) total — and serves every
  /// pair from the shared caches; kLegacy re-sorts per pair (O(m^2
  /// n log n)) and is kept for old-vs-new equivalence tests. Both produce
  /// bit-identical noisy output (the exact taus and the per-pair noise
  /// streams agree).
  stats::TauKernel kernel = stats::TauKernel::kRankCache;

  /// Eigensolver kernel for the PSD-repair step (see linalg::EigenKernel).
  /// kTridiagQL is the high-dimension production path; kJacobi is the
  /// verbatim legacy solver kept for agreement tests. The repair also
  /// inherits `num_threads` above.
  linalg::EigenKernel eigen_kernel = linalg::EigenKernel::kTridiagQL;
};

/// Diagnostics reported alongside the private correlation matrix.
struct KendallEstimate {
  linalg::Matrix correlation;     // The DP correlation matrix P~ (valid).
  std::int64_t rows_used = 0;     // n or n_hat.
  double per_pair_epsilon = 0.0;  // epsilon2 / C(m,2).
  double laplace_scale = 0.0;     // Noise scale applied to each tau.
  bool repaired = false;          // True if eigenvalue PSD repair fired.
  /// Pairs served by the contingency-table kernel (the rest took the
  /// merge-count path). Always 0 under TauKernel::kLegacy.
  std::int64_t contingency_pairs = 0;
};

/// Computes the differentially private correlation matrix of Algorithm 5:
/// noisy pairwise Kendall's tau (sensitivity 4/(n+1), Lemma 4.1), the
/// sin(pi/2 * tau) transform (Eq. 4), and the Rousseeuw–Molenberghs
/// eigenvalue repair when the noisy matrix is not positive definite.
/// Consumes `epsilon2` in total across all C(m,2) coefficients.
Result<KendallEstimate> EstimateKendallCorrelation(
    const data::Table& table, double epsilon2, Rng* rng,
    const KendallEstimatorOptions& options = {});

/// The paper's adequate subsample size: ceil(50 m (m-1) / epsilon2).
std::int64_t AdequateKendallSampleSize(std::size_t m, double epsilon2);

}  // namespace dpcopula::copula

#endif  // DPCOPULA_COPULA_KENDALL_ESTIMATOR_H_
