#include "copula/kendall_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "linalg/cholesky.h"
#include "linalg/packed_symmetric.h"
#include "linalg/psd_repair.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "stats/distributions.h"
#include "stats/kendall.h"

namespace dpcopula::copula {

std::int64_t AdequateKendallSampleSize(std::size_t m, double epsilon2) {
  const double md = static_cast<double>(m);
  // Paper §4.2: the sample is adequate once n̂ > 50·m(m−1)/ε₂ − 1, so the
  // smallest adequate size is the smallest integer strictly greater than
  // that bound.
  const double bound = 50.0 * md * (md - 1.0) / epsilon2 - 1.0;
  // Tiny ε₂ pushes the bound past what int64 can hold (casting an
  // out-of-range double is UB); saturate instead — callers min() against
  // the actual row count anyway.
  constexpr double kInt64Safe = 9.2e18;
  if (!(bound < kInt64Safe)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  const double ceiled = std::ceil(bound);
  // ceil() of an integral bound returns the bound itself, which does not
  // satisfy the strict inequality.
  return static_cast<std::int64_t>(ceiled) + (ceiled == bound ? 1 : 0);
}

namespace {

/// First failure across a deterministic index space: the recorded status is
/// the one with the lowest index, independent of which thread saw it first
/// (and therefore independent of the thread count).
class FirstFailure {
 public:
  void Record(std::size_t index, Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (index < index_) {
      index_ = index;
      status_ = std::move(status);
    }
  }
  bool failed() const { return index_ != kNone; }
  const Status& status() const { return status_; }

 private:
  static constexpr std::size_t kNone =
      std::numeric_limits<std::size_t>::max();
  std::mutex mu_;
  std::size_t index_ = kNone;
  Status status_ = Status::OK();
};

}  // namespace

Result<KendallEstimate> EstimateKendallCorrelation(
    const data::Table& table, double epsilon2, Rng* rng,
    const KendallEstimatorOptions& options) {
  static obs::Counter* const pairs_counter =
      obs::MetricsRegistry::Global().GetCounter("kendall.pairs_computed");
  static obs::Counter* const contingency_counter =
      obs::MetricsRegistry::Global().GetCounter("kendall.contingency_pairs");
  static obs::Counter* const subsampled_runs =
      obs::MetricsRegistry::Global().GetCounter("kendall.subsampled_runs");
  static obs::Counter* const repairs_counter =
      obs::MetricsRegistry::Global().GetCounter("kendall.psd_repairs");
  static obs::Gauge* const subsample_gauge =
      obs::MetricsRegistry::Global().GetGauge("kendall.subsample_rows");
  obs::Span estimate_span("kendall.estimate");

  const std::size_t m = table.num_columns();
  const auto n = static_cast<std::int64_t>(table.num_rows());
  if (m < 2) {
    return Status::InvalidArgument("Kendall estimator needs >= 2 columns");
  }
  if (n < 2) {
    return Status::InvalidArgument("Kendall estimator needs >= 2 rows");
  }
  if (!(epsilon2 > 0.0)) {
    return Status::InvalidArgument("epsilon2 must be > 0");
  }

  // Decide the working sample.
  std::int64_t n_used = n;
  if (options.subsample_size_override > 0) {
    n_used = std::min(n, options.subsample_size_override);
  } else if (options.subsample) {
    n_used = std::min(n, AdequateKendallSampleSize(m, epsilon2));
  }
  n_used = std::max<std::int64_t>(n_used, 2);
  subsample_gauge->Set(static_cast<double>(n_used));
  if (n_used < n) subsampled_runs->Increment();
  obs::Log(obs::LogLevel::kDebug, "kendall.estimate")
      .Field("columns", m)
      .Field("rows", n)
      .Field("rows_used", n_used)
      .Field("epsilon2", epsilon2);

  // Columns restricted to the subsample (a single shared subsample keeps
  // the pairwise estimates mutually consistent). At full size the table's
  // columns are referenced in place — no copy.
  std::vector<std::vector<double>> subsample_storage;
  std::vector<const std::vector<double>*> cols(m);
  if (n_used == n) {
    for (std::size_t j = 0; j < m; ++j) cols[j] = &table.column(j);
  } else {
    // Partial Fisher–Yates to draw n_used distinct row indices.
    std::vector<std::size_t> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    for (std::int64_t i = 0; i < n_used; ++i) {
      const auto j = static_cast<std::size_t>(
          rng->NextInt64InRange(i, n - 1));
      std::swap(idx[static_cast<std::size_t>(i)], idx[j]);
    }
    subsample_storage.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      subsample_storage[j].resize(static_cast<std::size_t>(n_used));
      for (std::int64_t i = 0; i < n_used; ++i) {
        subsample_storage[j][static_cast<std::size_t>(i)] =
            table.column(j)[idx[static_cast<std::size_t>(i)]];
      }
      cols[j] = &subsample_storage[j];
    }
  }

  // Shared per-column rank caches (production kernel): one O(n log n) sort
  // per column, reused by all m-1 pairs touching it — O(m n log n) total
  // against the legacy kernel's sort-per-pair O(m^2 n log n). Columns are
  // independent, so the builds run on the pool.
  std::vector<stats::RankColumn> ranks;
  if (options.kernel == stats::TauKernel::kRankCache) {
    obs::Span rank_span("kendall.rank_build");
    ranks.resize(m);
    FirstFailure rank_failure;
    ParallelFor(
        0, m, /*grain=*/1,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t j = begin; j < end; ++j) {
            obs::StageScope stage(obs::Stage::kRankCacheBuild);
            auto built = stats::BuildRankColumn(*cols[j]);
            if (!built.ok()) {
              rank_failure.Record(j, built.status());
              continue;
            }
            ranks[j] = std::move(built).ValueOrDie();
          }
        },
        options.num_threads);
    if (rank_failure.failed()) return rank_failure.status();
  }

  // Lemma 4.1: sensitivity of one pairwise tau is 4 / (n_used + 1); each of
  // the C(m,2) coefficients receives epsilon2 / C(m,2) (Theorem 4.2).
  const double num_pairs = static_cast<double>(m) * (m - 1) / 2.0;
  const double sensitivity = 4.0 / (static_cast<double>(n_used) + 1.0);
  const double scale = num_pairs * sensitivity / epsilon2;

  // Enumerate the C(m,2) pairs and pre-derive one RNG stream per pair from
  // the caller's generator; the result is then independent of the thread
  // count (bit-identical sequential vs parallel).
  struct Pair {
    std::size_t j, k;
    Rng rng;
  };
  std::vector<Pair> pairs;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = j + 1; k < m; ++k) {
      pairs.push_back({j, k, rng->Split()});
    }
  }

  // One pair per shard on the shared pool: each pair already owns its split
  // RNG, so the result is bit-identical for any thread count. On failure
  // every pair still runs (no early exit) so the propagated status — the
  // lowest-index pair's — is the same at every thread count.
  std::vector<double> rhos(pairs.size(), 0.0);
  std::int64_t contingency_pairs = 0;
  if (options.kernel == stats::TauKernel::kRankCache) {
    for (const Pair& pair : pairs) {
      if (stats::UseContingencyKernel(
              static_cast<std::uint64_t>(n_used),
              ranks[pair.j].num_distinct, ranks[pair.k].num_distinct)) {
        ++contingency_pairs;
      }
    }
  }
  FirstFailure pair_failure;
  ParallelFor(
      0, pairs.size(), /*grain=*/1,
      [&](std::size_t begin, std::size_t end) {
        // Per-thread reusable workspace: grows to the high-water mark on
        // the first pair this worker sees, then every later pair (in this
        // call and any future estimate) runs allocation-free.
        static thread_local stats::TauWorkspace workspace;
        for (std::size_t i = begin; i < end; ++i) {
          Pair& pair = pairs[i];
          Result<double> tau = [&]() -> Result<double> {
            obs::StageScope stage(obs::Stage::kTauPairs);
            return DPC_FAILPOINT_AT("kendall.pair_tau", i)
                       ? Result<double>(
                             failpoint::InjectedFault("kendall.pair_tau"))
                       : (options.kernel == stats::TauKernel::kRankCache
                              ? stats::KendallTauFromRanks(
                                    ranks[pair.j], ranks[pair.k], &workspace)
                              : stats::KendallTau(*cols[pair.j],
                                                  *cols[pair.k]));
          }();
          if (!tau.ok()) {
            pair_failure.Record(i, tau.status());
            continue;
          }
          obs::StageScope noise_stage(obs::Stage::kLaplaceNoise);
          double noisy_tau = *tau + stats::SampleLaplace(&pair.rng, scale);
          // Clamping into the valid tau range is post-processing and costs
          // no privacy.
          noisy_tau = std::clamp(noisy_tau, -1.0, 1.0);
          rhos[i] = std::sin(M_PI / 2.0 * noisy_tau);  // Eq. (4).
        }
      },
      options.num_threads);
  if (pair_failure.failed()) return pair_failure.status();
  pairs_counter->Add(static_cast<std::int64_t>(pairs.size()));
  contingency_counter->Add(contingency_pairs);

  // Accumulate the correlation build in packed lower-triangular form —
  // one store per coefficient instead of a mirrored pair — and expand to
  // dense form once, at the PSD-repair boundary.
  linalg::PackedSymmetric packed(m);
  for (std::size_t j = 0; j < m; ++j) packed.at(j, j) = 1.0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    packed.at(pairs[i].k, pairs[i].j) = rhos[i];  // Pairs have j < k.
  }
  linalg::Matrix p = packed.ToMatrix();

  KendallEstimate est;
  est.rows_used = n_used;
  est.per_pair_epsilon = epsilon2 / num_pairs;
  est.laplace_scale = scale;
  est.contingency_pairs = contingency_pairs;
  est.repaired = !linalg::IsPositiveDefinite(p);
  {
    obs::Span repair_span("psd_repair");
    if (est.repaired) repairs_counter->Increment();
    linalg::PsdRepairOptions repair_options;
    repair_options.eigen_kernel = options.eigen_kernel;
    repair_options.num_threads = options.num_threads;
    DPC_ASSIGN_OR_RETURN(est.correlation,
                         linalg::EnsureCorrelationMatrix(p, repair_options));
  }
  return est;
}

}  // namespace dpcopula::copula
