#ifndef DPCOPULA_COPULA_GAUSSIAN_COPULA_H_
#define DPCOPULA_COPULA_GAUSSIAN_COPULA_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/packed_symmetric.h"

namespace dpcopula::copula {

/// The Gaussian copula density of Definition 3.4 / Eq. (1):
///   c_P(u) = |P|^{-1/2} exp{ -1/2 z^T (P^{-1} - I) z },  z = Phi^{-1}(u).
/// Precomputes the Cholesky factorization of the correlation matrix so that
/// repeated density evaluations are O(m^2).
class GaussianCopula {
 public:
  /// Builds from a valid correlation matrix (unit diagonal, positive
  /// definite). Fails with NumericalError otherwise.
  static Result<GaussianCopula> Create(const linalg::Matrix& correlation);

  const linalg::Matrix& correlation() const { return correlation_; }
  std::size_t dims() const { return correlation_.rows(); }

  /// log c_P(u) for one pseudo-observation u in (0,1)^m.
  Result<double> LogDensity(const std::vector<double>& u) const;

  /// Same but on precomputed normal scores z = Phi^{-1}(u).
  double LogDensityFromScores(const std::vector<double>& z) const;

  /// Sum of LogDensity over the rows of column-major pseudo-observations
  /// (pseudo[j][i] = u_ij); the objective maximized by Algorithm 2.
  Result<double> LogLikelihood(
      const std::vector<std::vector<double>>& pseudo) const;

  /// Akaike Information Criterion for this fit: 2 * C(m,2) - 2 * loglik —
  /// the copula-selection score the paper's §3.2 mentions as future work.
  Result<double> Aic(const std::vector<std::vector<double>>& pseudo) const;

 private:
  linalg::Matrix correlation_;
  linalg::Matrix cholesky_;
  linalg::Matrix precision_;  // P^{-1}
  double log_det_ = 0.0;
};

/// Normal-scores (pseudo-)maximum-likelihood estimate of the Gaussian copula
/// correlation: the sample correlation matrix of z = Phi^{-1}(u). This is
/// the stationary point of the Gaussian-copula log-likelihood under the
/// unit-diagonal constraint and the estimator used per partition by
/// DPCopula-MLE (see DESIGN.md §3, substitution 5).
/// `scores[j]` is the j-th column's normal scores; all columns must share a
/// common positive length.
Result<linalg::Matrix> NormalScoresCorrelation(
    const std::vector<std::vector<double>>& scores);

/// The same estimator over raw column pointers — `cols[j]` points at `n`
/// contiguous scores — blocked over 256-row tiles so all C(m,2)+m pair
/// accumulations read each tile while it is still cache-hot, instead of
/// streaming two full columns per pair. Each pair's accumulator is carried
/// across tiles in row order, so the sequence of floating-point additions
/// (and therefore the result) is bit-identical to NormalScoresCorrelation
/// on the same data. Reuses a thread_local workspace: no allocations after
/// the first call on a thread beyond the returned matrix.
Result<linalg::Matrix> NormalScoresCorrelationTiled(const double* const* cols,
                                                    std::size_t m,
                                                    std::size_t n);

/// The tiled estimator emitting packed lower-triangular storage directly —
/// the kernel's pair accumulators are already one-per-coefficient, so the
/// packed form halves the output memory traffic (no mirror writes). Entry
/// for entry bit-identical to NormalScoresCorrelationTiled (and therefore
/// to NormalScoresCorrelation) on the same data; used by the MLE
/// estimator's partition-fit averaging.
Result<linalg::PackedSymmetric> NormalScoresCorrelationTiledPacked(
    const double* const* cols, std::size_t m, std::size_t n);

}  // namespace dpcopula::copula

#endif  // DPCOPULA_COPULA_GAUSSIAN_COPULA_H_
