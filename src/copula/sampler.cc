#include "copula/sampler.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "linalg/cholesky.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "stats/distributions.h"
#include "stats/normal.h"

namespace dpcopula::copula {

namespace {

// Rows emitted across both samplers: with sampler.shard_seconds this gives
// the rows/sec of Algorithm 3 (the report divides counter by histogram
// sum). Updated once per shard, never per row.
obs::Counter* RowsEmittedCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("sampler.rows_emitted");
  return counter;
}

obs::Counter* TRowsEmittedCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("sampler.t_rows_emitted");
  return counter;
}

obs::Histogram* ShardSecondsHistogram() {
  static obs::Histogram* const histogram =
      obs::MetricsRegistry::Global().GetHistogram("sampler.shard_seconds");
  return histogram;
}

Status ValidateSamplerInputs(
    const data::Schema& schema,
    const std::vector<stats::EmpiricalCdf>& marginal_cdfs,
    const linalg::Matrix& correlation) {
  const std::size_t m = schema.num_attributes();
  if (m == 0) return Status::InvalidArgument("empty schema");
  if (marginal_cdfs.size() != m) {
    return Status::InvalidArgument("need one marginal CDF per attribute");
  }
  if (correlation.rows() != m || correlation.cols() != m) {
    return Status::InvalidArgument("correlation shape mismatch");
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (marginal_cdfs[j].domain_size() != schema.attribute(j).domain_size) {
      return Status::InvalidArgument("CDF domain mismatch for attribute '" +
                                     schema.attribute(j).name + "'");
    }
  }
  return Status::OK();
}

/// One inversion table per marginal, built once before the row loop and
/// shared read-only by every shard.
std::vector<stats::InverseCdfTable> BuildInverseTables(
    const std::vector<stats::EmpiricalCdf>& marginal_cdfs) {
  std::vector<stats::InverseCdfTable> tables;
  tables.reserve(marginal_cdfs.size());
  for (const auto& cdf : marginal_cdfs) tables.emplace_back(cdf);
  return tables;
}

/// Scratch buffers for one tile: the raw Gaussian block and the correlated
/// block, both column-major (column j of the tile at [j * tile_rows]), so
/// the triangular mat-mul and the output stores run over contiguous runs of
/// kSamplerTileRows doubles.
struct TileScratch {
  explicit TileScratch(std::size_t m)
      : z(m * kSamplerTileRows), w(m * kSamplerTileRows) {}
  std::vector<double> z;
  std::vector<double> w;
};

/// w[i][:] = sum_{k <= i} L(i,k) * z[k][:] — the Cholesky factor applied as
/// a blocked lower-triangular mat-mul. Each (i, k) pair is one axpy over a
/// contiguous tile column, which the compiler vectorizes; compare the
/// legacy kernel's per-row `k <= i` dot product with stride-m accesses.
void ApplyCholeskyTile(const linalg::Matrix& chol, std::size_t m,
                       std::size_t tile_rows, const double* z, double* w) {
  for (std::size_t i = 0; i < m; ++i) {
    double* wi = w + i * kSamplerTileRows;
    const double l0 = chol(i, 0);
    const double* z0 = z;
    for (std::size_t r = 0; r < tile_rows; ++r) wi[r] = l0 * z0[r];
    for (std::size_t k = 1; k <= i; ++k) {
      const double lk = chol(i, k);
      const double* zk = z + k * kSamplerTileRows;
      for (std::size_t r = 0; r < tile_rows; ++r) wi[r] += lk * zk[r];
    }
  }
}

}  // namespace

Result<data::Table> SampleSyntheticData(
    const data::Schema& schema,
    const std::vector<stats::EmpiricalCdf>& marginal_cdfs,
    const linalg::Matrix& correlation, std::size_t num_rows, Rng* rng,
    int num_threads, SamplerKernel kernel) {
  const std::size_t m = schema.num_attributes();
  DPC_RETURN_NOT_OK(ValidateSamplerInputs(schema, marginal_cdfs, correlation));
  // The factorization is profiled here rather than inside linalg: PSD
  // repair also runs CholeskyDecompose internally (the PD probe), and
  // stages must stay disjoint.
  DPC_ASSIGN_OR_RETURN(linalg::Matrix chol, [&] {
    obs::StageScope stage(obs::Stage::kCholesky);
    return linalg::CholeskyDecompose(correlation);
  }());

  const std::vector<stats::InverseCdfTable> tables =
      kernel == SamplerKernel::kTiled ? BuildInverseTables(marginal_cdfs)
                                      : std::vector<stats::InverseCdfTable>{};

  data::Table out = data::Table::Zeros(schema, num_rows);
  // Fail-closed flag: a row-level fault anywhere aborts the whole sample —
  // a partially-filled table must never be released.
  std::atomic<bool> injected_failure{false};
  // Rows are sharded with a fixed grain and one split RNG per shard, so the
  // output is bit-identical for every thread count (including 1). Each shard
  // writes a disjoint row range of the column vectors — no synchronization
  // needed.
  ParallelForSharded(
      0, num_rows, kSamplerShardRows, rng,
      [&](std::size_t row_begin, std::size_t row_end, Rng* shard_rng) {
        obs::ScopedTimer shard_timer(ShardSecondsHistogram());
        RowsEmittedCounter()->Add(
            static_cast<std::int64_t>(row_end - row_begin));
        if (kernel == SamplerKernel::kLegacy) {
          std::vector<double> z(m), corr_z(m);
          for (std::size_t r = row_begin; r < row_end; ++r) {
            if (DPC_FAILPOINT_AT("sampler.row", r)) {
              injected_failure.store(true, std::memory_order_relaxed);
              break;
            }
            for (std::size_t j = 0; j < m; ++j) {
              z[j] = shard_rng->NextGaussian();
            }
            for (std::size_t i = 0; i < m; ++i) {
              double acc = 0.0;
              for (std::size_t k = 0; k <= i; ++k) acc += chol(i, k) * z[k];
              corr_z[i] = acc;
            }
            for (std::size_t j = 0; j < m; ++j) {
              const double t = stats::NormalCdf(corr_z[j]);
              out.set(r, j,
                      static_cast<double>(marginal_cdfs[j].InverseCdf(t)));
            }
          }
          return;
        }
        TileScratch scratch(m);
        for (std::size_t tile = row_begin; tile < row_end;
             tile += kSamplerTileRows) {
          const std::size_t tile_rows =
              std::min(kSamplerTileRows, row_end - tile);
          for (std::size_t r = 0; r < tile_rows; ++r) {
            if (DPC_FAILPOINT_AT("sampler.row", tile + r)) {
              injected_failure.store(true, std::memory_order_relaxed);
              return;
            }
          }
          {
            obs::StageScope stage(obs::Stage::kGaussianFill);
            shard_rng->FillGaussian(scratch.z.data(), m * tile_rows);
          }
          {
            obs::StageScope stage(obs::Stage::kCholeskyApply);
            ApplyCholeskyTile(chol, m, tile_rows, scratch.z.data(),
                              scratch.w.data());
          }
          obs::StageScope stage(obs::Stage::kInverseCdf);
          for (std::size_t j = 0; j < m; ++j) {
            double* col = out.mutable_column(j).data() + tile;
            const double* wj = scratch.w.data() + j * kSamplerTileRows;
            const stats::InverseCdfTable& table = tables[j];
            for (std::size_t r = 0; r < tile_rows; ++r) {
              col[r] = static_cast<double>(table.LookupGaussian(wj[r]));
            }
          }
        }
      },
      num_threads);
  if (injected_failure.load(std::memory_order_relaxed)) {
    return failpoint::InjectedFault("sampler.row");
  }
  return out;
}

Result<data::Table> SampleSyntheticDataT(
    const data::Schema& schema,
    const std::vector<stats::EmpiricalCdf>& marginal_cdfs,
    const linalg::Matrix& correlation, double dof, std::size_t num_rows,
    Rng* rng, int num_threads, SamplerKernel kernel) {
  const std::size_t m = schema.num_attributes();
  DPC_RETURN_NOT_OK(ValidateSamplerInputs(schema, marginal_cdfs, correlation));
  if (!(dof > 0.0)) {
    return Status::InvalidArgument("t sampler: dof must be > 0");
  }
  DPC_ASSIGN_OR_RETURN(linalg::Matrix chol, [&] {
    obs::StageScope stage(obs::Stage::kCholesky);
    return linalg::CholeskyDecompose(correlation);
  }());

  const std::vector<stats::InverseCdfTable> tables =
      kernel == SamplerKernel::kTiled ? BuildInverseTables(marginal_cdfs)
                                      : std::vector<stats::InverseCdfTable>{};

  data::Table out = data::Table::Zeros(schema, num_rows);
  std::atomic<bool> injected_failure{false};
  ParallelForSharded(
      0, num_rows, kSamplerShardRows, rng,
      [&](std::size_t row_begin, std::size_t row_end, Rng* shard_rng) {
        obs::ScopedTimer shard_timer(ShardSecondsHistogram());
        RowsEmittedCounter()->Add(
            static_cast<std::int64_t>(row_end - row_begin));
        TRowsEmittedCounter()->Add(
            static_cast<std::int64_t>(row_end - row_begin));
        if (kernel == SamplerKernel::kLegacy) {
          std::vector<double> z(m);
          for (std::size_t r = row_begin; r < row_end; ++r) {
            if (DPC_FAILPOINT_AT("sampler.row", r)) {
              injected_failure.store(true, std::memory_order_relaxed);
              break;
            }
            for (std::size_t j = 0; j < m; ++j) {
              z[j] = shard_rng->NextGaussian();
            }
            // One chi-squared mixing variable per record gives the joint t.
            const double w = stats::SampleChiSquared(shard_rng, dof);
            const double scale = std::sqrt(dof / w);
            for (std::size_t i = 0; i < m; ++i) {
              double acc = 0.0;
              for (std::size_t k = 0; k <= i; ++k) acc += chol(i, k) * z[k];
              const double t = stats::StudentTCdf(acc * scale, dof);
              out.set(r, i,
                      static_cast<double>(marginal_cdfs[i].InverseCdf(t)));
            }
          }
          return;
        }
        TileScratch scratch(m);
        std::vector<double> scale(kSamplerTileRows);
        for (std::size_t tile = row_begin; tile < row_end;
             tile += kSamplerTileRows) {
          const std::size_t tile_rows =
              std::min(kSamplerTileRows, row_end - tile);
          for (std::size_t r = 0; r < tile_rows; ++r) {
            if (DPC_FAILPOINT_AT("sampler.row", tile + r)) {
              injected_failure.store(true, std::memory_order_relaxed);
              return;
            }
          }
          {
            // Draw order within a tile is fixed: the Gaussian block first,
            // then one chi-squared mixing variable per record.
            obs::StageScope stage(obs::Stage::kGaussianFill);
            shard_rng->FillGaussian(scratch.z.data(), m * tile_rows);
            for (std::size_t r = 0; r < tile_rows; ++r) {
              const double w = stats::SampleChiSquared(shard_rng, dof);
              scale[r] = std::sqrt(dof / w);
            }
          }
          {
            obs::StageScope stage(obs::Stage::kCholeskyApply);
            ApplyCholeskyTile(chol, m, tile_rows, scratch.z.data(),
                              scratch.w.data());
          }
          obs::StageScope stage(obs::Stage::kInverseCdf);
          for (std::size_t j = 0; j < m; ++j) {
            double* col = out.mutable_column(j).data() + tile;
            const double* wj = scratch.w.data() + j * kSamplerTileRows;
            const stats::InverseCdfTable& table = tables[j];
            for (std::size_t r = 0; r < tile_rows; ++r) {
              const double t = stats::StudentTCdf(wj[r] * scale[r], dof);
              col[r] = static_cast<double>(table.Lookup(t));
            }
          }
        }
      },
      num_threads);
  if (injected_failure.load(std::memory_order_relaxed)) {
    return failpoint::InjectedFault("sampler.row");
  }
  return out;
}

}  // namespace dpcopula::copula
