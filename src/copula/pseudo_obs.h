#ifndef DPCOPULA_COPULA_PSEUDO_OBS_H_
#define DPCOPULA_COPULA_PSEUDO_OBS_H_

#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "stats/empirical_cdf.h"

namespace dpcopula::copula {

/// Pseudo-copula observations (paper Eq. 2–3): each column of the input is
/// pushed through its empirical marginal CDF with the n+1 normalization, so
/// every output value lies strictly in (0, 1). Output is column-major:
/// result[j][i] = F_j_hat(X_ij).
Result<std::vector<std::vector<double>>> PseudoObservations(
    const data::Table& table);

/// Same transform but through externally supplied (e.g. differentially
/// private) marginal CDFs — one per column.
Result<std::vector<std::vector<double>>> PseudoObservationsWithCdfs(
    const data::Table& table, const std::vector<stats::EmpiricalCdf>& cdfs);

/// Normal scores: z[j][i] = Phi^{-1}(u[j][i]) for pseudo-observations u.
std::vector<std::vector<double>> NormalScores(
    const std::vector<std::vector<double>>& pseudo);

}  // namespace dpcopula::copula

#endif  // DPCOPULA_COPULA_PSEUDO_OBS_H_
