#ifndef DPCOPULA_COPULA_EMPIRICAL_COPULA_H_
#define DPCOPULA_COPULA_EMPIRICAL_COPULA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "hist/histogram.h"

namespace dpcopula::copula {

/// Empirical (checkerboard) copula — the non-parametric dependence model
/// §3.2 mentions for data whose dependence is not Gaussian at all (e.g.
/// asymmetric or multi-modal dependence no elliptical family captures).
///
/// The unit cube is partitioned into grid_size^m cells; cell probabilities
/// are estimated from the pseudo-observations (optionally under DP: one
/// record occupies exactly one cell, so the cell-count histogram has
/// sensitivity 1 and Lap(1/epsilon) noise plus a simplex projection gives
/// an epsilon-DP copula). Sampling draws a cell by probability and a
/// uniform point inside it.
///
/// The grid has grid_size^m cells, so this is a low-m tool (the guard
/// refuses grids beyond the histogram cell budget) — exactly why the paper
/// prefers parametric copulas for high dimensions.
class EmpiricalCopula {
 public:
  /// Non-private fit from column-major pseudo-observations in (0,1).
  static Result<EmpiricalCopula> Fit(
      const std::vector<std::vector<double>>& pseudo,
      std::int64_t grid_size);

  /// epsilon-DP fit: Laplace noise on the cell counts + simplex projection.
  static Result<EmpiricalCopula> FitDp(
      const std::vector<std::vector<double>>& pseudo, std::int64_t grid_size,
      double epsilon, Rng* rng);

  std::size_t dims() const { return dims_; }
  std::int64_t grid_size() const { return grid_size_; }

  /// Copula density at u (piecewise constant: cell prob * grid_size^m).
  Result<double> Density(const std::vector<double>& u) const;

  /// Draws one vector of copula uniforms.
  std::vector<double> SampleUniforms(Rng* rng) const;

  /// Probability mass of the cell containing u (exposed for tests).
  Result<double> CellProbability(const std::vector<double>& u) const;

 private:
  std::size_t dims_ = 0;
  std::int64_t grid_size_ = 0;
  std::vector<double> cell_probs_;       // Flat row-major grid.
  std::vector<double> cell_cumulative_;  // Prefix sums for sampling.

  std::uint64_t CellIndex(const std::vector<double>& u) const;
  static Result<EmpiricalCopula> FromCounts(std::vector<double> counts,
                                            std::size_t dims,
                                            std::int64_t grid_size);
};

}  // namespace dpcopula::copula

#endif  // DPCOPULA_COPULA_EMPIRICAL_COPULA_H_
