#include "stats/distributions.h"

#include <cassert>
#include <cmath>
#include <limits>

#if defined(__GLIBC__) || defined(__APPLE__)
// Not declared under strict-ANSI C++ modes, but always present in libm.
extern "C" double lgamma_r(double, int*);
#define DPCOPULA_HAVE_LGAMMA_R 1
#endif

namespace dpcopula::stats {

double LogGamma(double x) {
#ifdef DPCOPULA_HAVE_LGAMMA_R
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);  // MT-Unsafe fallback (races on signgam).
#endif
}

double SampleLaplace(Rng* rng, double scale) {
  assert(scale > 0.0);
  // Inverse CDF: u uniform on (-1/2, 1/2), x = -scale * sgn(u) * ln(1-2|u|).
  const double u = rng->NextDoubleOpen() - 0.5;
  const double sign = (u >= 0.0) ? 1.0 : -1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double SampleExponential(Rng* rng, double rate) {
  assert(rate > 0.0);
  return -std::log(rng->NextDoubleOpen()) / rate;
}

double SampleGamma(Rng* rng, double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = rng->NextDoubleOpen();
    return SampleGamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng->NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->NextDoubleOpen();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double SampleStudentT(Rng* rng, double dof) {
  assert(dof > 0.0);
  const double z = rng->NextGaussian();
  const double chi2 = 2.0 * SampleGamma(rng, dof / 2.0, 1.0);
  return z / std::sqrt(chi2 / dof);
}

std::vector<double> MakeZipfCdf(std::size_t n, double s) {
  assert(n > 0);
  std::vector<double> cdf(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    cdf[k - 1] = acc;
  }
  for (double& v : cdf) v /= acc;
  cdf[n - 1] = 1.0;  // Guard against round-off at the tail.
  return cdf;
}

std::size_t SampleZipf(Rng* rng, const std::vector<double>& zipf_cdf) {
  const double u = rng->NextDouble();
  // Binary search for the first index with cdf >= u.
  std::size_t lo = 0, hi = zipf_cdf.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (zipf_cdf[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;  // Ranks are 1-based.
}

double LaplaceCdf(double x, double scale) {
  if (x < 0.0) return 0.5 * std::exp(x / scale);
  return 1.0 - 0.5 * std::exp(-x / scale);
}

double ExponentialCdf(double x, double rate) {
  return (x <= 0.0) ? 0.0 : 1.0 - std::exp(-rate * x);
}

double RegularizedGammaP(double shape, double x) {
  if (x <= 0.0) return 0.0;
  const double lg = LogGamma(shape);
  if (x < shape + 1.0) {
    // Series expansion.
    double term = 1.0 / shape;
    double sum = term;
    double a = shape;
    for (int i = 0; i < 500; ++i) {
      a += 1.0;
      term *= x / a;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
    }
    return sum * std::exp(-x + shape * std::log(x) - lg);
  }
  // Continued fraction for Q = 1 - P (Lentz's algorithm).
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - shape;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - shape);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  const double q = std::exp(-x + shape * std::log(x) - lg) * h;
  return 1.0 - q;
}

double GammaCdf(double x, double shape, double scale) {
  return RegularizedGammaP(shape, x / scale);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta =
      LogGamma(a) + LogGamma(b) - LogGamma(a + b);
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - ln_beta);

  // Use the symmetry relation for faster convergence.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x);
  }

  // Lentz continued fraction.
  constexpr double kTiny = 1e-300;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m < 500; ++m) {
    const double dm = static_cast<double>(m);
    // Even step.
    double num = dm * (b - dm) * x / ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
    d = 1.0 + num * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + num / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    num = -(a + dm) * (a + b + dm) * x /
          ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
    d = 1.0 + num * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + num / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return front * h / a;
}

double StudentTCdf(double x, double dof) {
  if (x == 0.0) return 0.5;
  const double t2 = x * x;
  const double ib =
      RegularizedIncompleteBeta(dof / 2.0, 0.5, dof / (dof + t2));
  return (x > 0.0) ? 1.0 - 0.5 * ib : 0.5 * ib;
}

double StudentTPdf(double x, double dof) {
  const double c = LogGamma((dof + 1.0) / 2.0) - LogGamma(dof / 2.0) -
                   0.5 * std::log(dof * M_PI);
  return std::exp(c - (dof + 1.0) / 2.0 * std::log1p(x * x / dof));
}

double StudentTInverseCdf(double p, double dof) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p == 0.0) return -std::numeric_limits<double>::infinity();
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  if (p == 0.5) return 0.0;
  // Symmetry: solve in the upper half only.
  if (p < 0.5) return -StudentTInverseCdf(1.0 - p, dof);

  // Bracket [0, hi] by doubling, then bisect; a couple of Newton steps
  // polish to near machine precision.
  double lo = 0.0, hi = 1.0;
  while (StudentTCdf(hi, dof) < p && hi < 1e300) hi *= 2.0;
  for (int i = 0; i < 200 && hi - lo > 1e-14 * (1.0 + hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, dof) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double x = 0.5 * (lo + hi);
  for (int i = 0; i < 3; ++i) {
    const double f = StudentTCdf(x, dof) - p;
    // Keep the bisection bracket current so a wild step can be caught.
    if (f < 0.0) {
      lo = x;
    } else {
      hi = x;
    }
    const double d = StudentTPdf(x, dof);
    if (d <= 0.0) break;
    const double next = x - f / d;
    // For small dof and p near 1 the density is nearly flat, and an
    // unclamped Newton step can fly out of the bracket and land on a worse
    // root than bisection alone; fall back to the bracket midpoint.
    x = (next > lo && next < hi) ? next : 0.5 * (lo + hi);
  }
  return x;
}

double SampleChiSquared(Rng* rng, double dof) {
  return 2.0 * SampleGamma(rng, dof / 2.0, 1.0);
}

}  // namespace dpcopula::stats
