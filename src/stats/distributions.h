#ifndef DPCOPULA_STATS_DISTRIBUTIONS_H_
#define DPCOPULA_STATS_DISTRIBUTIONS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace dpcopula::stats {

/// Samplers and distribution functions used for synthetic margins (paper
/// Figs. 3 and 9) and for the Laplace mechanism. All samplers take an
/// explicit Rng so experiments are reproducible.

/// Laplace(0, scale) deviate via inverse-CDF; scale > 0.
double SampleLaplace(Rng* rng, double scale);

/// Exponential(rate) deviate; rate > 0.
double SampleExponential(Rng* rng, double rate);

/// Gamma(shape, scale) deviate via Marsaglia–Tsang (with Ahrens-style
/// boosting for shape < 1); shape > 0, scale > 0.
double SampleGamma(Rng* rng, double shape, double scale);

/// Student-t deviate with `dof` degrees of freedom (normal / sqrt(chi2/dof)).
double SampleStudentT(Rng* rng, double dof);

/// Zipf-distributed integer in [1, n] with exponent `s` (P(k) ~ k^-s),
/// sampled by inverting the discrete CDF (precompute with MakeZipfCdf for
/// bulk sampling).
std::vector<double> MakeZipfCdf(std::size_t n, double s);
std::size_t SampleZipf(Rng* rng, const std::vector<double>& zipf_cdf);

/// CDFs of the continuous margins above (needed when tests validate
/// probability-integral transforms).
double LaplaceCdf(double x, double scale);
double ExponentialCdf(double x, double rate);

/// Thread-safe log-gamma. std::lgamma writes the process-global `signgam`
/// (POSIX marks it MT-Unsafe), which races once CDF evaluations run on the
/// shared thread pool; this wraps the reentrant lgamma_r where available.
double LogGamma(double x);

/// Regularized lower incomplete gamma P(shape, x); used by GammaCdf.
double RegularizedGammaP(double shape, double x);
double GammaCdf(double x, double shape, double scale);

/// Student-t CDF with `dof` degrees of freedom via the regularized
/// incomplete beta function.
double StudentTCdf(double x, double dof);

/// Inverse Student-t CDF for p in (0, 1): bisection on StudentTCdf refined
/// with Newton steps; accurate to ~1e-12. Returns +/-inf at p = 1 / 0.
double StudentTInverseCdf(double p, double dof);

/// Student-t density with `dof` degrees of freedom.
double StudentTPdf(double x, double dof);

/// Chi-squared(dof) deviate (2 * Gamma(dof/2, 1)).
double SampleChiSquared(Rng* rng, double dof);

/// Regularized incomplete beta I_x(a, b) (continued fraction expansion).
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace dpcopula::stats

#endif  // DPCOPULA_STATS_DISTRIBUTIONS_H_
