#include "stats/empirical_cdf.h"

#include <algorithm>
#include <cmath>

namespace dpcopula::stats {

Result<EmpiricalCdf> EmpiricalCdf::FromCounts(
    const std::vector<double>& counts) {
  if (counts.empty()) {
    return Status::InvalidArgument("EmpiricalCdf: empty count vector");
  }
  EmpiricalCdf cdf;
  cdf.cumulative_.resize(counts.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    acc += std::max(0.0, counts[i]);  // Clamp noisy negatives.
    cdf.cumulative_[i] = acc;
  }
  cdf.total_ = acc;
  if (acc <= 0.0) {
    // Degenerate histogram: fall back to uniform so downstream sampling
    // stays well-defined.
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cdf.cumulative_[i] = static_cast<double>(i + 1);
    }
    cdf.total_ = static_cast<double>(counts.size());
  }
  return cdf;
}

Result<EmpiricalCdf> EmpiricalCdf::FromData(const std::vector<double>& values,
                                            std::int64_t domain_size) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("EmpiricalCdf: domain_size must be > 0");
  }
  std::vector<double> counts(static_cast<std::size_t>(domain_size), 0.0);
  for (double v : values) {
    const auto idx = static_cast<std::int64_t>(std::llround(v));
    if (idx < 0 || idx >= domain_size) {
      return Status::OutOfRange("EmpiricalCdf: value outside domain");
    }
    counts[static_cast<std::size_t>(idx)] += 1.0;
  }
  return FromCounts(counts);
}

double EmpiricalCdf::Evaluate(double x) const {
  if (x < 0.0) return 0.0;
  auto idx = static_cast<std::int64_t>(std::floor(x));
  if (idx >= domain_size()) idx = domain_size() - 1;
  return cumulative_[static_cast<std::size_t>(idx)] / (total_ + 1.0);
}

double EmpiricalCdf::EvaluateMid(double x) const {
  auto idx = static_cast<std::int64_t>(std::floor(x));
  idx = std::clamp<std::int64_t>(idx, 0, domain_size() - 1);
  const double upper = cumulative_[static_cast<std::size_t>(idx)];
  const double lower =
      (idx == 0) ? 0.0 : cumulative_[static_cast<std::size_t>(idx - 1)];
  const double mid = 0.5 * (lower + upper);
  // (mid + 0.5) / (total + 1) lies strictly in (0, 1) even for boundary
  // values of a one-bin histogram.
  return (mid + 0.5) / (total_ + 1.0);
}

std::int64_t EmpiricalCdf::InverseCdf(double u) const {
  const double target = std::clamp(u, 0.0, 1.0) * (total_ + 1.0);
  // First index with cumulative >= target.
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.end()) return domain_size() - 1;
  return static_cast<std::int64_t>(it - cumulative_.begin());
}

}  // namespace dpcopula::stats
