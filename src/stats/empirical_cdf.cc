#include "stats/empirical_cdf.h"

#include <algorithm>
#include <cmath>

#include "stats/normal.h"

namespace dpcopula::stats {

namespace {

/// Last bin with positive mass: the first index whose cumulative count has
/// already reached the grand total (every later bin adds zero).
std::int64_t LastPositiveBin(const std::vector<double>& cumulative,
                             double total) {
  const auto it =
      std::lower_bound(cumulative.begin(), cumulative.end(), total);
  if (it == cumulative.end()) {
    return static_cast<std::int64_t>(cumulative.size()) - 1;
  }
  return static_cast<std::int64_t>(it - cumulative.begin());
}

}  // namespace

Result<EmpiricalCdf> EmpiricalCdf::FromCounts(
    const std::vector<double>& counts) {
  if (counts.empty()) {
    return Status::InvalidArgument("EmpiricalCdf: empty count vector");
  }
  EmpiricalCdf cdf;
  cdf.cumulative_.resize(counts.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    acc += std::max(0.0, counts[i]);  // Clamp noisy negatives.
    cdf.cumulative_[i] = acc;
  }
  cdf.total_ = acc;
  if (acc <= 0.0) {
    // Degenerate histogram: fall back to uniform so downstream sampling
    // stays well-defined.
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cdf.cumulative_[i] = static_cast<double>(i + 1);
    }
    cdf.total_ = static_cast<double>(counts.size());
  }
  cdf.max_bin_ = LastPositiveBin(cdf.cumulative_, cdf.total_);
  return cdf;
}

Result<EmpiricalCdf> EmpiricalCdf::FromData(const std::vector<double>& values,
                                            std::int64_t domain_size) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("EmpiricalCdf: domain_size must be > 0");
  }
  std::vector<double> counts(static_cast<std::size_t>(domain_size), 0.0);
  for (double v : values) {
    const auto idx = static_cast<std::int64_t>(std::llround(v));
    if (idx < 0 || idx >= domain_size) {
      return Status::OutOfRange("EmpiricalCdf: value outside domain");
    }
    counts[static_cast<std::size_t>(idx)] += 1.0;
  }
  DPC_ASSIGN_OR_RETURN(EmpiricalCdf cdf, FromCounts(counts));
  cdf.fitted_rows_ = values.size();
  return cdf;
}

double EmpiricalCdf::Evaluate(double x) const {
  if (x < 0.0) return 0.0;
  auto idx = static_cast<std::int64_t>(std::floor(x));
  if (idx >= domain_size()) idx = domain_size() - 1;
  return cumulative_[static_cast<std::size_t>(idx)] / (total_ + 1.0);
}

double EmpiricalCdf::EvaluateMid(double x) const {
  auto idx = static_cast<std::int64_t>(std::floor(x));
  idx = std::clamp<std::int64_t>(idx, 0, domain_size() - 1);
  const double upper = cumulative_[static_cast<std::size_t>(idx)];
  const double lower =
      (idx == 0) ? 0.0 : cumulative_[static_cast<std::size_t>(idx - 1)];
  const double mid = 0.5 * (lower + upper);
  // (mid + 0.5) / (total + 1) lies strictly in (0, 1) even for boundary
  // values of a one-bin histogram.
  return (mid + 0.5) / (total_ + 1.0);
}

std::int64_t EmpiricalCdf::InverseCdf(double u) const {
  const double target = std::clamp(u, 0.0, 1.0) * (total_ + 1.0);
  // First index with cumulative >= target.
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
  // Past the attainable maximum (u > total/(total+1)): the answer is the
  // last bin with positive mass, not the raw domain end — a zero-count
  // (clamped-negative) tail must never be emitted by the sampler.
  if (it == cumulative_.end()) return max_bin_;
  return static_cast<std::int64_t>(it - cumulative_.begin());
}

InverseCdfTable::InverseCdfTable(const EmpiricalCdf& cdf)
    : cumulative_(cdf.cumulative_),
      total_(cdf.total_),
      max_bin_(cdf.max_bin_) {
  const std::size_t bins = cumulative_.size();
  const double total_plus_1 = total_ + 1.0;

  // Standard-normal quantiles of the bin edges for the Gaussian shortcut.
  // Leading zero-mass bins map to -inf, which no finite deviate reaches —
  // exactly mirroring lower_bound skipping them for any u > 0. The edges
  // go through the batched Phi^-1 (AVX2 when available, bit-identical to
  // the scalar kernel either way) — for census-scale domains this is the
  // sampler's whole per-marginal setup cost.
  zcut_.resize(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    zcut_[i] = cumulative_[i] / total_plus_1;
  }
  NormalInverseCdfBatch(zcut_.data(), zcut_.data(), bins);

  // Guide tables: ~2 buckets per bin (min 64, capped so a huge domain
  // cannot blow up the table) makes the expected forward scan O(1). Each
  // entry is lower_bound of the bucket's left edge, stepped back by one so
  // edge-rounding in the bucket-index arithmetic can never start the scan
  // past the true answer.
  const std::size_t buckets =
      std::clamp<std::size_t>(2 * bins, 64, 1u << 16);
  num_buckets_ = static_cast<double>(buckets);
  guide_u_.resize(buckets);
  for (std::size_t k = 0; k < buckets; ++k) {
    const double edge_target =
        (static_cast<double>(k) / num_buckets_) * total_plus_1;
    auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), edge_target);
    std::size_t g = static_cast<std::size_t>(it - cumulative_.begin());
    if (g > 0) --g;
    if (g >= bins) g = bins - 1;
    guide_u_[k] = static_cast<std::uint32_t>(g);
  }

  // z-space guide over [-8, 8] — beyond that the clamped end buckets still
  // give a correct (just slightly longer) scan start.
  z_lo_ = -8.0;
  z_inv_width_ = num_buckets_ / 16.0;
  guide_z_.resize(buckets);
  for (std::size_t k = 0; k < buckets; ++k) {
    const double edge_z = z_lo_ + static_cast<double>(k) / z_inv_width_;
    auto it = std::lower_bound(zcut_.begin(), zcut_.end(), edge_z);
    std::size_t g = static_cast<std::size_t>(it - zcut_.begin());
    if (g > 0) --g;
    if (g >= bins) g = bins - 1;
    guide_z_[k] = static_cast<std::uint32_t>(g);
  }
}

std::int64_t InverseCdfTable::Lookup(double u) const {
  const double uc = std::clamp(u, 0.0, 1.0);
  const double target = uc * (total_ + 1.0);
  if (target > total_) return max_bin_;
  auto k = static_cast<std::size_t>(uc * num_buckets_);
  if (k >= guide_u_.size()) k = guide_u_.size() - 1;
  std::size_t i = guide_u_[k];
  // target <= total_ == cumulative_.back(), so the scan terminates.
  while (cumulative_[i] < target) ++i;
  return static_cast<std::int64_t>(i);
}

std::int64_t InverseCdfTable::LookupGaussian(double z) const {
  if (!(z <= zcut_.back())) return max_bin_;  // Also catches NaN.
  double pos = (z - z_lo_) * z_inv_width_;
  if (pos < 0.0) pos = 0.0;
  auto k = static_cast<std::size_t>(pos);
  if (k >= guide_z_.size()) k = guide_z_.size() - 1;
  std::size_t i = guide_z_[k];
  // z <= zcut_.back(), so the scan terminates.
  while (zcut_[i] < z) ++i;
  return static_cast<std::int64_t>(i);
}

}  // namespace dpcopula::stats
