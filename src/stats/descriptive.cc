#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dpcopula::stats {

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

double Variance(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double mu = Mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(x.size() - 1);
}

double StdDev(const std::vector<double>& x) { return std::sqrt(Variance(x)); }

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("PearsonCorrelation: size mismatch");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("PearsonCorrelation: need >= 2 points");
  }
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return Status::NumericalError("PearsonCorrelation: constant input");
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && x[order[j]] == x[order[i]]) ++j;
    // Positions i..j-1 share the average of ranks i+1..j.
    const double avg = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) ranks[order[k]] = avg;
    i = j;
  }
  return ranks;
}

Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("SpearmanCorrelation: size mismatch");
  }
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

Result<double> Quantile(std::vector<double> x, double p) {
  if (x.empty()) return Status::InvalidArgument("Quantile: empty input");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("Quantile: p outside [0, 1]");
  }
  std::sort(x.begin(), x.end());
  const double pos = p * static_cast<double>(x.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

}  // namespace dpcopula::stats
