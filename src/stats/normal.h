#ifndef DPCOPULA_STATS_NORMAL_H_
#define DPCOPULA_STATS_NORMAL_H_

namespace dpcopula::stats {

/// Standard normal density phi(x).
double NormalPdf(double x);

/// Standard normal CDF Phi(x), accurate to ~1e-15 via erfc.
double NormalCdf(double x);

/// Inverse standard normal CDF Phi^{-1}(p) for p in (0, 1).
/// Acklam's rational approximation refined with one Halley step, giving
/// ~1e-15 relative accuracy over the full open interval. Returns +/-inf at
/// p = 1 / p = 0 and NaN outside [0, 1].
double NormalInverseCdf(double p);

}  // namespace dpcopula::stats

#endif  // DPCOPULA_STATS_NORMAL_H_
