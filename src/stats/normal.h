#ifndef DPCOPULA_STATS_NORMAL_H_
#define DPCOPULA_STATS_NORMAL_H_

#include <cstddef>

namespace dpcopula::stats {

/// Standard normal density phi(x).
double NormalPdf(double x);

/// Standard normal CDF Phi(x), accurate to ~1e-15 via erfc.
double NormalCdf(double x);

/// Inverse standard normal CDF Phi^{-1}(p) for p in (0, 1).
/// Acklam's rational approximation refined with one Halley step, giving
/// ~1e-15 relative accuracy over the full open interval. Returns +/-inf at
/// p = 1 / p = 0 and NaN outside [0, 1].
double NormalInverseCdf(double p);

/// Batch forms of the three functions above, shared by every hot path that
/// evaluates Phi / Phi^{-1} over arrays (the sampler's InverseCdfTable
/// z-edge construction, the batched MLE normal-score build, and the
/// synthetic-data generator). Dispatch at runtime to an AVX2 kernel when
/// the build compiled one (DPCOPULA_SIMD=ON), the CPU supports AVX2, and
/// the DPCOPULA_SIMD environment variable does not disable it; otherwise a
/// scalar loop over the functions above runs. Both paths are bit-identical
/// element for element — the vector kernel performs the same
/// correctly-rounded IEEE operation sequence and defers to the scalar
/// libm transcendentals lane by lane — so flipping the dispatch can never
/// change a released result.
///
/// `in` and `out` may alias only if identical; n may be 0.
void NormalInverseCdfBatch(const double* p, double* z, std::size_t n);
void NormalCdfBatch(const double* x, double* out, std::size_t n);
void NormalPdfBatch(const double* x, double* out, std::size_t n);

/// True when the AVX2 batch kernels were compiled into this binary.
bool NormalBatchAvx2Compiled();

/// True when the batch entry points above will actually dispatch to the
/// AVX2 kernels at runtime (compiled in + CPU support + not disabled via
/// the DPCOPULA_SIMD environment variable).
bool NormalBatchAvx2Active();

namespace internal {

/// Scalar reference loops (exactly the batch fallback), exposed so tests
/// and microbenchmarks can pin the non-SIMD path regardless of dispatch.
void NormalInverseCdfBatchScalar(const double* p, double* z, std::size_t n);
void NormalCdfBatchScalar(const double* x, double* out, std::size_t n);
void NormalPdfBatchScalar(const double* x, double* out, std::size_t n);

/// AVX2 kernels. When the build did not compile them (DPCOPULA_SIMD=OFF or
/// no -mavx2 support) these symbols are defined as forwards to the scalar
/// loops, so tests may always reference them; NormalBatchAvx2Compiled()
/// says which implementation is behind the name.
void NormalInverseCdfBatchAvx2(const double* p, double* z, std::size_t n);
void NormalCdfBatchAvx2(const double* x, double* out, std::size_t n);
void NormalPdfBatchAvx2(const double* x, double* out, std::size_t n);

}  // namespace internal

}  // namespace dpcopula::stats

#endif  // DPCOPULA_STATS_NORMAL_H_
