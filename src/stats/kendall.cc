#include "stats/kendall.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dpcopula::stats {

namespace {

std::uint64_t MergeCountInversions(std::vector<double>* values,
                                   std::vector<double>* scratch,
                                   std::size_t lo, std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::uint64_t count = MergeCountInversions(values, scratch, lo, mid) +
                        MergeCountInversions(values, scratch, mid, hi);
  std::size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if ((*values)[j] < (*values)[i]) {
      // Element from the right half precedes mid - i remaining left
      // elements: each forms an inversion.
      count += mid - i;
      (*scratch)[k++] = (*values)[j++];
    } else {
      (*scratch)[k++] = (*values)[i++];
    }
  }
  while (i < mid) (*scratch)[k++] = (*values)[i++];
  while (j < hi) (*scratch)[k++] = (*values)[j++];
  std::copy(scratch->begin() + static_cast<std::ptrdiff_t>(lo),
            scratch->begin() + static_cast<std::ptrdiff_t>(hi),
            values->begin() + static_cast<std::ptrdiff_t>(lo));
  return count;
}

// Sum over groups of equal values of C(group_size, 2). `values` must be
// sorted (or grouped) by the caller.
std::uint64_t TiedPairs(const std::vector<double>& sorted) {
  std::uint64_t ties = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    const std::uint64_t g = j - i;
    ties += g * (g - 1) / 2;
    i = j;
  }
  return ties;
}

}  // namespace

std::uint64_t CountInversions(std::vector<double> values) {
  std::vector<double> scratch(values.size());
  return MergeCountInversions(&values, &scratch, 0, values.size());
}

Result<double> KendallTau(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("KendallTau: size mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) {
    return Status::InvalidArgument("KendallTau needs at least 2 points");
  }

  // Sort indices by (x, y).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = x[order[i]];
    ys[i] = y[order[i]];
  }

  // Pairs tied on x (including tied on both).
  std::uint64_t ties_x = 0;
  std::uint64_t ties_xy = 0;
  {
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && xs[j] == xs[i]) ++j;
      const std::uint64_t g = j - i;
      ties_x += g * (g - 1) / 2;
      // Within an x-group, count pairs also tied on y.
      std::vector<double> group(ys.begin() + static_cast<std::ptrdiff_t>(i),
                                ys.begin() + static_cast<std::ptrdiff_t>(j));
      std::sort(group.begin(), group.end());
      ties_xy += TiedPairs(group);
      i = j;
    }
  }

  // Discordant pairs among x-distinct pairs = inversions of y in x-order
  // (pairs with equal x contribute no inversion because their y's are sorted
  // ascending within the group). The merge sort leaves `y_sorted` fully
  // sorted, which the tie count below reuses — one O(n log n) sort instead
  // of two per pair.
  std::vector<double> y_sorted = ys;
  std::uint64_t inversions = 0;
  {
    std::vector<double> scratch(n);
    inversions = MergeCountInversions(&y_sorted, &scratch, 0, n);
  }

  // Pairs tied on y overall.
  const std::uint64_t ties_y = TiedPairs(y_sorted);

  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  // Concordant + discordant = total - (tied on x only) - (tied on y only)
  //                         - (tied on both); inclusion–exclusion:
  const std::uint64_t tied_any = ties_x + ties_y - ties_xy;
  const std::uint64_t discordant = inversions;
  const std::uint64_t concordant = total - tied_any - discordant;

  // tau-a denominator C(n, 2) per the paper's Definition 3.5.
  const double tau = (static_cast<double>(concordant) -
                      static_cast<double>(discordant)) /
                     static_cast<double>(total);
  return tau;
}

Result<double> KendallTauBruteForce(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("KendallTau: size mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) {
    return Status::InvalidArgument("KendallTau needs at least 2 points");
  }
  std::int64_t net = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      const double prod = dx * dy;
      if (prod > 0.0) ++net;
      if (prod < 0.0) --net;
    }
  }
  const double total = static_cast<double>(n) * (n - 1) / 2.0;
  return static_cast<double>(net) / total;
}

}  // namespace dpcopula::stats
