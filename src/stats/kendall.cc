#include "stats/kendall.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace dpcopula::stats {

namespace {

template <typename T>
std::uint64_t MergeCountInversions(std::vector<T>* values,
                                   std::vector<T>* scratch,
                                   std::size_t lo, std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::uint64_t count = MergeCountInversions(values, scratch, lo, mid) +
                        MergeCountInversions(values, scratch, mid, hi);
  std::size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if ((*values)[j] < (*values)[i]) {
      // Element from the right half precedes mid - i remaining left
      // elements: each forms an inversion.
      count += mid - i;
      (*scratch)[k++] = (*values)[j++];
    } else {
      (*scratch)[k++] = (*values)[i++];
    }
  }
  while (i < mid) (*scratch)[k++] = (*values)[i++];
  while (j < hi) (*scratch)[k++] = (*values)[j++];
  std::copy(scratch->begin() + static_cast<std::ptrdiff_t>(lo),
            scratch->begin() + static_cast<std::ptrdiff_t>(hi),
            values->begin() + static_cast<std::ptrdiff_t>(lo));
  return count;
}

// Sum over groups of equal values of C(group_size, 2). `values` must be
// sorted (or grouped) by the caller.
std::uint64_t TiedPairs(const std::vector<double>& sorted) {
  std::uint64_t ties = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    const std::uint64_t g = j - i;
    ties += g * (g - 1) / 2;
    i = j;
  }
  return ties;
}

Status NonFiniteInput() {
  // Deliberately data-independent: no values, no positions.
  return Status::InvalidArgument("KendallTau: non-finite input");
}

bool AllFinite(const std::vector<double>& values) {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

std::uint64_t CountInversions(std::vector<double> values) {
  std::vector<double> scratch(values.size());
  return MergeCountInversions(&values, &scratch, 0, values.size());
}

Result<RankColumn> BuildRankColumn(const std::vector<double>& values) {
  const std::size_t n = values.size();
  if (n >= std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument("rank column: too many rows");
  }
  if (!AllFinite(values)) return NonFiniteInput();

  RankColumn col;
  col.order.resize(n);
  std::iota(col.order.begin(), col.order.end(), 0);
  // Tie-break on the row index so the permutation is deterministic (the
  // rank codes do not depend on it, but downstream consumers of `order`
  // should see one canonical order).
  std::sort(col.order.begin(), col.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (values[a] != values[b]) return values[a] < values[b];
              return a < b;
            });

  col.rank.resize(n);
  std::uint32_t code = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && values[col.order[j]] == values[col.order[i]]) ++j;
    for (std::size_t k = i; k < j; ++k) col.rank[col.order[k]] = code;
    const std::uint64_t g = j - i;
    col.tied_pairs += g * (g - 1) / 2;
    ++code;
    i = j;
  }
  col.num_distinct = code;
  return col;
}

bool UseContingencyKernel(std::uint64_t n, std::uint32_t dx,
                          std::uint32_t dy) {
  // Contingency costs O(n + dx*dy) against the merge path's O(n log n);
  // the table wins comfortably while its zero/scan cost stays within a
  // couple of passes over the data. The 4096 floor keeps genuinely small
  // domain products (the common discrete-attribute case) on the table
  // path even for tiny n.
  const std::uint64_t cells =
      static_cast<std::uint64_t>(dx) * static_cast<std::uint64_t>(dy);
  return cells <= std::max<std::uint64_t>(4096, 2 * n);
}

Result<double> KendallTauFromRanks(const RankColumn& x, const RankColumn& y,
                                   TauWorkspace* ws) {
  if (x.rank.size() != y.rank.size()) {
    return Status::InvalidArgument("KendallTau: size mismatch");
  }
  const std::size_t n = x.rank.size();
  if (n < 2) {
    return Status::InvalidArgument("KendallTau needs at least 2 points");
  }
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const std::uint32_t dx = x.num_distinct;
  const std::uint32_t dy = y.num_distinct;

  std::uint64_t concordant = 0;
  std::uint64_t discordant = 0;
  if (UseContingencyKernel(n, dx, dy)) {
    // Contingency-table kernel: count the joint cells in one pass, then
    // accumulate concordant/discordant pairs over the d_x * d_y grid. For
    // cell (a, b), `cum[b']` holds the rows with x code < a and y code b',
    // so `lt` (codes < b) pairs concordantly and `S - lt - cum[b]`
    // (codes > b) discordantly; equal-x and equal-y pairs never enter.
    ws->cells.assign(static_cast<std::size_t>(dx) * dy, 0);
    for (std::size_t r = 0; r < n; ++r) {
      ++ws->cells[static_cast<std::size_t>(x.rank[r]) * dy + y.rank[r]];
    }
    ws->cum.assign(dy, 0);
    std::uint64_t seen = 0;  // Rows in x-groups before the current one.
    for (std::uint32_t a = 0; a < dx; ++a) {
      const std::uint32_t* row = ws->cells.data() +
                                 static_cast<std::size_t>(a) * dy;
      std::uint64_t lt = 0;
      for (std::uint32_t b = 0; b < dy; ++b) {
        const std::uint64_t c = row[b];
        if (c != 0) {
          concordant += c * lt;
          discordant += c * (seen - lt - ws->cum[b]);
        }
        lt += ws->cum[b];
      }
      for (std::uint32_t b = 0; b < dy; ++b) {
        ws->cum[b] += row[b];
        seen += row[b];
      }
    }
  } else {
    // Merge-count kernel. A stable counting sort of the y-sorted
    // permutation by x rank code yields the rows in (x, y) order in O(n +
    // d_x) — the per-pair comparator sort the legacy path paid is gone.
    ws->starts.assign(dx + 1, 0);
    for (std::size_t r = 0; r < n; ++r) ++ws->starts[x.rank[r] + 1];
    for (std::uint32_t c = 0; c < dx; ++c) {
      ws->starts[c + 1] += ws->starts[c];
    }
    ws->cursor.assign(ws->starts.begin(), ws->starts.end());
    ws->codes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = y.order[i];
      ws->codes[ws->cursor[x.rank[r]]++] = y.rank[r];
    }

    // Pairs tied on both coordinates: runs of equal y codes within each
    // x-group (the codes are ascending within a group by construction).
    std::uint64_t ties_xy = 0;
    for (std::uint32_t g = 0; g < dx; ++g) {
      std::size_t i = ws->starts[g];
      const std::size_t end = ws->starts[g + 1];
      while (i < end) {
        std::size_t j = i + 1;
        while (j < end && ws->codes[j] == ws->codes[i]) ++j;
        const std::uint64_t run = j - i;
        ties_xy += run * (run - 1) / 2;
        i = j;
      }
    }

    // Discordant pairs among x-distinct pairs = inversions of the y codes
    // in (x, y) order (within an x-group the codes ascend, contributing
    // none).
    ws->scratch.resize(n);
    discordant = MergeCountInversions(&ws->codes, &ws->scratch, 0, n);

    const std::uint64_t tied_any = x.tied_pairs + y.tied_pairs - ties_xy;
    concordant = total - tied_any - discordant;
  }

  // Same final expression as KendallTau: identical integer counts divide
  // to a bit-identical tau.
  return (static_cast<double>(concordant) -
          static_cast<double>(discordant)) /
         static_cast<double>(total);
}

Result<double> KendallTau(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("KendallTau: size mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) {
    return Status::InvalidArgument("KendallTau needs at least 2 points");
  }
  // A NaN in either column makes the (x, y) comparator below a non-strict
  // weak order — UB in std::sort — so fail closed first.
  if (!AllFinite(x) || !AllFinite(y)) return NonFiniteInput();

  // Sort indices by (x, y).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = x[order[i]];
    ys[i] = y[order[i]];
  }

  // Pairs tied on x (including tied on both).
  std::uint64_t ties_x = 0;
  std::uint64_t ties_xy = 0;
  {
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && xs[j] == xs[i]) ++j;
      const std::uint64_t g = j - i;
      ties_x += g * (g - 1) / 2;
      // Within an x-group, count pairs also tied on y.
      std::vector<double> group(ys.begin() + static_cast<std::ptrdiff_t>(i),
                                ys.begin() + static_cast<std::ptrdiff_t>(j));
      std::sort(group.begin(), group.end());
      ties_xy += TiedPairs(group);
      i = j;
    }
  }

  // Discordant pairs among x-distinct pairs = inversions of y in x-order
  // (pairs with equal x contribute no inversion because their y's are sorted
  // ascending within the group). The merge sort leaves `y_sorted` fully
  // sorted, which the tie count below reuses — one O(n log n) sort instead
  // of two per pair.
  std::vector<double> y_sorted = ys;
  std::uint64_t inversions = 0;
  {
    std::vector<double> scratch(n);
    inversions = MergeCountInversions(&y_sorted, &scratch, 0, n);
  }

  // Pairs tied on y overall.
  const std::uint64_t ties_y = TiedPairs(y_sorted);

  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  // Concordant + discordant = total - (tied on x only) - (tied on y only)
  //                         - (tied on both); inclusion–exclusion:
  const std::uint64_t tied_any = ties_x + ties_y - ties_xy;
  const std::uint64_t discordant = inversions;
  const std::uint64_t concordant = total - tied_any - discordant;

  // tau-a denominator C(n, 2) per the paper's Definition 3.5.
  const double tau = (static_cast<double>(concordant) -
                      static_cast<double>(discordant)) /
                     static_cast<double>(total);
  return tau;
}

Result<double> KendallTauBruteForce(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("KendallTau: size mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) {
    return Status::InvalidArgument("KendallTau needs at least 2 points");
  }
  // NaN differences compare false against both 0.0 inequalities, silently
  // dropping those pairs; reject loudly instead, mirroring the fast path.
  if (!AllFinite(x) || !AllFinite(y)) return NonFiniteInput();
  std::int64_t net = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      const double prod = dx * dy;
      if (prod > 0.0) ++net;
      if (prod < 0.0) --net;
    }
  }
  const double total = static_cast<double>(n) * (n - 1) / 2.0;
  return static_cast<double>(net) / total;
}

}  // namespace dpcopula::stats
