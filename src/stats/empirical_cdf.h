#ifndef DPCOPULA_STATS_EMPIRICAL_CDF_H_
#define DPCOPULA_STATS_EMPIRICAL_CDF_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace dpcopula::stats {

/// Empirical distribution of a discrete attribute with domain {0, ..., A-1},
/// represented by (possibly noisy, possibly negative) per-value histogram
/// counts. Supports the two operations DPCopula needs:
///   - Evaluate(x): F(x) = P(X <= x), with the paper's n+1 normalization so
///     pseudo-copula values stay strictly inside (0, 1) (Eq. 2);
///   - InverseCdf(u): smallest domain value x with F(x) >= u (Alg. 3 step 2).
///
/// Noisy counts are clamped at zero during construction (consistency
/// post-processing); an all-zero histogram degenerates to the uniform
/// distribution so sampling stays well-defined.
class EmpiricalCdf {
 public:
  /// Builds from per-value counts over domain {0, ..., counts.size()-1}.
  static Result<EmpiricalCdf> FromCounts(const std::vector<double>& counts);

  /// Builds from raw data values in [0, domain_size).
  static Result<EmpiricalCdf> FromData(const std::vector<double>& values,
                                       std::int64_t domain_size);

  /// Domain size A.
  std::int64_t domain_size() const {
    return static_cast<std::int64_t>(cumulative_.size());
  }

  /// Total (clamped) mass the CDF was built from.
  double total_count() const { return total_; }

  /// F(x) with the n+1 convention: sum_{v <= x} count(v) / (total + 1).
  /// Values below the domain map to 0, above to total/(total+1).
  double Evaluate(double x) const;

  /// Midpoint variant used to build pseudo-copula observations with better
  /// centering for discrete data: (C(x-1) + C(x)) / 2 / (total + 1) where C
  /// is the cumulative count. Guaranteed in (0, 1).
  double EvaluateMid(double x) const;

  /// Smallest x in the domain with F(x) >= u, for u in [0, 1]. u above the
  /// attainable maximum total/(total+1) returns the largest domain value
  /// that carries positive mass — NOT domain_size()-1, which may sit in a
  /// run of zero-count (clamped-negative) tail bins the distribution can
  /// never legitimately emit.
  std::int64_t InverseCdf(double u) const;

  /// Largest domain value with positive mass (== domain_size()-1 unless the
  /// histogram has a zero tail).
  std::int64_t max_value() const { return max_bin_; }

  /// Number of raw observations this CDF was fitted from when built via
  /// FromData; 0 when built from (possibly noisy) counts, where no row
  /// count exists. Lets consumers that pair a CDF with a data column
  /// (PseudoObservationsWithCdfs) reject a column whose length no longer
  /// matches the fit.
  std::size_t fitted_rows() const { return fitted_rows_; }

 private:
  friend class InverseCdfTable;

  std::vector<double> cumulative_;  // cumulative_[i] = sum counts[0..i]
  double total_ = 0.0;
  std::int64_t max_bin_ = 0;  // Last bin with positive mass.
  std::size_t fitted_rows_ = 0;  // Rows behind FromData; 0 for FromCounts.
};

/// Precomputed inversion table for one marginal, built once per
/// EmpiricalCdf and shared by every sampling hot path (the Gaussian/t tile
/// kernels of Algorithm 3 and the empirical-copula uniform path). Replaces
/// the per-cell O(log A) `std::lower_bound` with O(1) expected work:
///
///  - `Lookup(u)`: a flat guide table over u-quantized buckets maps any u
///    straight to a first-candidate bin, from which a short forward scan
///    (expected O(1) steps when buckets >= bins) finds the answer. Agrees
///    with EmpiricalCdf::InverseCdf bit-for-bit on every input.
///  - `LookupGaussian(z)`: the Gaussian-copula shortcut. Bin edges are
///    precomputed as standard-normal quantiles zcut[i] = Phi^{-1}(F(i)),
///    so inverting a correlated normal deviate needs no per-cell erfc at
///    all — just a guided scan over zcut. Equivalent to
///    Lookup(NormalCdf(z)) up to the rounding of the precomputed edges.
class InverseCdfTable {
 public:
  explicit InverseCdfTable(const EmpiricalCdf& cdf);

  /// Same contract (and same answers) as EmpiricalCdf::InverseCdf(u).
  std::int64_t Lookup(double u) const;

  /// Smallest x with Phi^{-1}(F(x)) >= z; u above the attainable maximum
  /// returns the last positive-mass bin, mirroring Lookup.
  std::int64_t LookupGaussian(double z) const;

  std::int64_t domain_size() const {
    return static_cast<std::int64_t>(cumulative_.size());
  }

 private:
  std::vector<double> cumulative_;   // Copy of the CDF's cumulative counts.
  std::vector<double> zcut_;         // Phi^{-1}(cumulative / (total + 1)).
  std::vector<std::uint32_t> guide_u_;  // u-bucket -> first candidate bin.
  std::vector<std::uint32_t> guide_z_;  // z-bucket -> first candidate bin.
  double total_ = 0.0;
  double num_buckets_ = 0.0;  // As double: bucket index is one multiply.
  double z_lo_ = 0.0;         // Left edge of the z-bucket grid.
  double z_inv_width_ = 0.0;  // Buckets per unit z.
  std::int64_t max_bin_ = 0;
};

}  // namespace dpcopula::stats

#endif  // DPCOPULA_STATS_EMPIRICAL_CDF_H_
