#ifndef DPCOPULA_STATS_EMPIRICAL_CDF_H_
#define DPCOPULA_STATS_EMPIRICAL_CDF_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace dpcopula::stats {

/// Empirical distribution of a discrete attribute with domain {0, ..., A-1},
/// represented by (possibly noisy, possibly negative) per-value histogram
/// counts. Supports the two operations DPCopula needs:
///   - Evaluate(x): F(x) = P(X <= x), with the paper's n+1 normalization so
///     pseudo-copula values stay strictly inside (0, 1) (Eq. 2);
///   - InverseCdf(u): smallest domain value x with F(x) >= u (Alg. 3 step 2).
///
/// Noisy counts are clamped at zero during construction (consistency
/// post-processing); an all-zero histogram degenerates to the uniform
/// distribution so sampling stays well-defined.
class EmpiricalCdf {
 public:
  /// Builds from per-value counts over domain {0, ..., counts.size()-1}.
  static Result<EmpiricalCdf> FromCounts(const std::vector<double>& counts);

  /// Builds from raw data values in [0, domain_size).
  static Result<EmpiricalCdf> FromData(const std::vector<double>& values,
                                       std::int64_t domain_size);

  /// Domain size A.
  std::int64_t domain_size() const {
    return static_cast<std::int64_t>(cumulative_.size());
  }

  /// Total (clamped) mass the CDF was built from.
  double total_count() const { return total_; }

  /// F(x) with the n+1 convention: sum_{v <= x} count(v) / (total + 1).
  /// Values below the domain map to 0, above to total/(total+1).
  double Evaluate(double x) const;

  /// Midpoint variant used to build pseudo-copula observations with better
  /// centering for discrete data: (C(x-1) + C(x)) / 2 / (total + 1) where C
  /// is the cumulative count. Guaranteed in (0, 1).
  double EvaluateMid(double x) const;

  /// Smallest x in the domain with F(x) >= u, for u in [0, 1]. u above the
  /// attainable maximum returns the largest domain value.
  std::int64_t InverseCdf(double u) const;

 private:
  std::vector<double> cumulative_;  // cumulative_[i] = sum counts[0..i]
  double total_ = 0.0;
};

}  // namespace dpcopula::stats

#endif  // DPCOPULA_STATS_EMPIRICAL_CDF_H_
