#ifndef DPCOPULA_STATS_KENDALL_H_
#define DPCOPULA_STATS_KENDALL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace dpcopula::stats {

/// Sample Kendall's tau-a rank correlation (Definition 3.5 of the paper):
///   tau = (n_c - n_d) / C(n, 2)
/// where n_c / n_d count concordant / discordant pairs; tied pairs count as
/// neither. This is the estimator whose sensitivity the paper bounds by
/// 4/(n+1) (Lemma 4.1).

/// O(n log n) implementation (Knight's algorithm: sort by x, count
/// discordant pairs as merge-sort inversions on y, correct for ties).
Result<double> KendallTau(const std::vector<double>& x,
                          const std::vector<double>& y);

/// O(n^2) brute-force reference; used in tests and for tiny inputs.
Result<double> KendallTauBruteForce(const std::vector<double>& x,
                                    const std::vector<double>& y);

/// Counts inversions in `values` by merge sort (exposed for testing).
std::uint64_t CountInversions(std::vector<double> values);

}  // namespace dpcopula::stats

#endif  // DPCOPULA_STATS_KENDALL_H_
