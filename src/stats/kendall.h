#ifndef DPCOPULA_STATS_KENDALL_H_
#define DPCOPULA_STATS_KENDALL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace dpcopula::stats {

/// Sample Kendall's tau-a rank correlation (Definition 3.5 of the paper):
///   tau = (n_c - n_d) / C(n, 2)
/// where n_c / n_d count concordant / discordant pairs; tied pairs count as
/// neither. This is the estimator whose sensitivity the paper bounds by
/// 4/(n+1) (Lemma 4.1).

/// Which pairwise tau kernel the Kendall estimator runs (mirrors
/// SamplerKernel). kRankCache is the production path: per-column rank
/// structures built once and shared by every pair (contingency table for
/// small domain products, rank-code merge count otherwise). kLegacy is the
/// original one-sort-per-pair KendallTau, kept as the reference
/// implementation for old-vs-new equivalence tests.
enum class TauKernel { kRankCache, kLegacy };

/// Per-column rank structures, computed once in O(n log n) and reused by
/// every pair touching the column: dense rank codes (0 .. num_distinct-1,
/// order-preserving, equal values share a code), the sorted permutation,
/// and the column's tied-pair count sum_g C(g, 2).
struct RankColumn {
  std::vector<std::uint32_t> rank;   // Dense rank code per row.
  std::vector<std::uint32_t> order;  // Row indices sorted by value (stable).
  std::uint32_t num_distinct = 0;
  std::uint64_t tied_pairs = 0;      // Pairs tied on this column.
};

/// Builds the rank structures for one column. Rejects non-finite values
/// (NaN would break the sort's strict weak order) and columns longer than
/// uint32 can index.
Result<RankColumn> BuildRankColumn(const std::vector<double>& values);

/// Reusable scratch for the pairwise rank-cache kernels. One instance per
/// worker thread: buffers grow to the high-water mark once and every
/// subsequent pair reuses them — no per-pair allocations on the hot path.
struct TauWorkspace {
  std::vector<std::uint32_t> codes;    // y rank codes in (x, y) order.
  std::vector<std::uint32_t> scratch;  // Merge-count scratch.
  std::vector<std::uint32_t> starts;   // x-group start offsets (d_x + 1).
  std::vector<std::uint32_t> cursor;   // Counting-sort write cursors.
  std::vector<std::uint32_t> cells;    // Contingency counts (d_x * d_y).
  std::vector<std::uint64_t> cum;      // Earlier-x row counts per y code.
};

/// True when the contingency-table kernel (O(n + d_x * d_y) per pair) beats
/// the merge-count kernel (O(n log n) per pair) for this pair's distinct
/// counts — i.e. when the domain product is small relative to n.
bool UseContingencyKernel(std::uint64_t n, std::uint32_t dx, std::uint32_t dy);

/// Pairwise tau from shared rank columns (the kRankCache kernel). Picks the
/// contingency-table path when UseContingencyKernel() says so, otherwise a
/// counting-sort + merge-count path; both produce integer pair counts
/// identical to KendallTau's, so the returned tau is bit-identical to the
/// legacy kernel on the same data.
Result<double> KendallTauFromRanks(const RankColumn& x, const RankColumn& y,
                                   TauWorkspace* ws);

/// O(n log n) implementation (Knight's algorithm: sort by x, count
/// discordant pairs as merge-sort inversions on y, correct for ties).
/// Rejects non-finite input: a NaN in either column would make the (x, y)
/// comparator a non-strict weak order, which is UB in std::sort.
Result<double> KendallTau(const std::vector<double>& x,
                          const std::vector<double>& y);

/// O(n^2) brute-force reference; used in tests and for tiny inputs.
/// Rejects non-finite input like KendallTau (NaN comparisons would
/// silently drop pairs instead of failing loudly).
Result<double> KendallTauBruteForce(const std::vector<double>& x,
                                    const std::vector<double>& y);

/// Counts inversions in `values` by merge sort (exposed for testing).
std::uint64_t CountInversions(std::vector<double> values);

}  // namespace dpcopula::stats

#endif  // DPCOPULA_STATS_KENDALL_H_
