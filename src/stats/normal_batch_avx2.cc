// AVX2 batch kernels for Phi / Phi^{-1} / phi. Compiled with -mavx2 (and
// deliberately WITHOUT -mfma: a fused multiply-add rounds once where the
// scalar code rounds twice, which would break the bit-identity contract).
//
// Bit-identity with the scalar path is the design constraint, not an
// accident: every arithmetic step is a correctly-rounded IEEE-754
// operation (+, -, *, /, sqrt) issued in exactly the scalar evaluation
// order, and the libm transcendentals (log, erfc, exp) — whose rounding
// glibc does not guarantee across implementations — are invoked lane by
// lane through the very same scalar entry points normal.cc uses. A
// four-lane group whose elements do not all fall in the same Acklam branch
// (or that contains a special value: NaN, 0, 1, out-of-range) is delegated
// to the scalar NormalInverseCdf wholesale. The vector win is the rational
// polynomial, divide, sqrt and Halley arithmetic; the transcendental calls
// are shared with — and therefore identical to — the scalar kernel.
#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "stats/normal.h"
#include "stats/normal_acklam.h"

namespace dpcopula::stats::internal {

namespace {

constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kInvSqrt2Pi = 0.3989422804014327;

/// ((((c0*q + c1)*q + c2)*q + c3)*q + c4)*q + c5 — Acklam tail numerator,
/// same Horner order as the scalar kernel.
inline __m256d TailNumerator(__m256d q) {
  __m256d acc = _mm256_set1_pd(kAcklamC[0]);
  for (int i = 1; i < 6; ++i) {
    acc = _mm256_add_pd(_mm256_mul_pd(acc, q), _mm256_set1_pd(kAcklamC[i]));
  }
  return acc;
}

/// (((d0*q + d1)*q + d2)*q + d3)*q + 1.0 — Acklam tail denominator.
inline __m256d TailDenominator(__m256d q) {
  __m256d acc = _mm256_set1_pd(kAcklamD[0]);
  for (int i = 1; i < 4; ++i) {
    acc = _mm256_add_pd(_mm256_mul_pd(acc, q), _mm256_set1_pd(kAcklamD[i]));
  }
  return _mm256_add_pd(_mm256_mul_pd(acc, q), _mm256_set1_pd(1.0));
}

/// One Halley refinement step on a 4-lane candidate vector, identical to
/// the scalar epilogue: e = Phi(x) - p, u = e / phi(x),
/// x <- x - u / (1 + 0.5 * x * u). Phi and phi are evaluated through the
/// scalar entry points so their erfc/exp rounding matches exactly.
inline __m256d HalleyStep(__m256d x, __m256d p) {
  alignas(32) double xs[4], cdf[4], pdf[4];
  _mm256_store_pd(xs, x);
  for (int k = 0; k < 4; ++k) {
    cdf[k] = NormalCdf(xs[k]);
    pdf[k] = NormalPdf(xs[k]);
  }
  const __m256d e = _mm256_sub_pd(_mm256_load_pd(cdf), p);
  const __m256d u = _mm256_div_pd(e, _mm256_load_pd(pdf));
  const __m256d hxu =
      _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), x), u);
  return _mm256_sub_pd(
      x, _mm256_div_pd(u, _mm256_add_pd(_mm256_set1_pd(1.0), hxu)));
}

/// q = sqrt(-2 * log(t)) with the log taken lane by lane through libm —
/// the only transcendental in the tail branches.
inline __m256d TailQ(__m256d t) {
  alignas(32) double ts[4];
  _mm256_store_pd(ts, t);
  for (int k = 0; k < 4; ++k) ts[k] = std::log(ts[k]);
  return _mm256_sqrt_pd(
      _mm256_mul_pd(_mm256_set1_pd(-2.0), _mm256_load_pd(ts)));
}

}  // namespace

void NormalInverseCdfBatchAvx2(const double* p, double* z, std::size_t n) {
  const __m256d p_low = _mm256_set1_pd(kAcklamPLow);
  const __m256d p_high = _mm256_set1_pd(1.0 - kAcklamPLow);
  const __m256d zero = _mm256_set1_pd(0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vp = _mm256_loadu_pd(p + i);
    // Branch classification with ordered compares: a NaN lane fails every
    // mask and the group falls through to the scalar kernel, which owns
    // all special values.
    const int central = _mm256_movemask_pd(
        _mm256_and_pd(_mm256_cmp_pd(vp, p_low, _CMP_GE_OQ),
                      _mm256_cmp_pd(vp, p_high, _CMP_LE_OQ)));
    const int low = _mm256_movemask_pd(
        _mm256_and_pd(_mm256_cmp_pd(vp, zero, _CMP_GT_OQ),
                      _mm256_cmp_pd(vp, p_low, _CMP_LT_OQ)));
    const int high = _mm256_movemask_pd(
        _mm256_and_pd(_mm256_cmp_pd(vp, p_high, _CMP_GT_OQ),
                      _mm256_cmp_pd(vp, one, _CMP_LT_OQ)));

    __m256d x;
    if (central == 0xF) {
      // x = A(r) * q / B(r), q = p - 0.5, r = q^2.
      const __m256d q = _mm256_sub_pd(vp, _mm256_set1_pd(0.5));
      const __m256d r = _mm256_mul_pd(q, q);
      __m256d num = _mm256_set1_pd(kAcklamA[0]);
      for (int k = 1; k < 6; ++k) {
        num = _mm256_add_pd(_mm256_mul_pd(num, r),
                            _mm256_set1_pd(kAcklamA[k]));
      }
      __m256d den = _mm256_set1_pd(kAcklamB[0]);
      for (int k = 1; k < 5; ++k) {
        den = _mm256_add_pd(_mm256_mul_pd(den, r),
                            _mm256_set1_pd(kAcklamB[k]));
      }
      den = _mm256_add_pd(_mm256_mul_pd(den, r), one);
      x = _mm256_div_pd(_mm256_mul_pd(num, q), den);
    } else if (low == 0xF) {
      // x = C(q) / D(q), q = sqrt(-2 log p).
      const __m256d q = TailQ(vp);
      x = _mm256_div_pd(TailNumerator(q), TailDenominator(q));
    } else if (high == 0xF) {
      // x = -C(q) / D(q), q = sqrt(-2 log(1 - p)).
      const __m256d q = TailQ(_mm256_sub_pd(one, vp));
      x = _mm256_xor_pd(
          _mm256_div_pd(TailNumerator(q), TailDenominator(q)), sign_mask);
    } else {
      // Mixed branches or special values: the scalar kernel is the one
      // source of truth for NaN / 0 / 1 / out-of-range handling.
      for (int k = 0; k < 4; ++k) z[i + k] = NormalInverseCdf(p[i + k]);
      continue;
    }
    _mm256_storeu_pd(z + i, HalleyStep(x, vp));
  }
  for (; i < n; ++i) z[i] = NormalInverseCdf(p[i]);
}

void NormalCdfBatchAvx2(const double* x, double* out, std::size_t n) {
  // 0.5 * erfc(-x / sqrt2): the division and scaling are vector ops; erfc
  // itself goes through libm lane by lane (bit-identity with the scalar
  // path requires its exact rounding).
  const __m256d sqrt2 = _mm256_set1_pd(kSqrt2);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    alignas(32) double t[4];
    _mm256_store_pd(t, _mm256_div_pd(_mm256_xor_pd(vx, sign_mask), sqrt2));
    for (int k = 0; k < 4; ++k) t[k] = std::erfc(t[k]);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(half, _mm256_load_pd(t)));
  }
  for (; i < n; ++i) out[i] = NormalCdf(x[i]);
}

void NormalPdfBatchAvx2(const double* x, double* out, std::size_t n) {
  // kInvSqrt2Pi * exp(-0.5 x^2), exp through libm lane by lane.
  const __m256d mhalf = _mm256_set1_pd(-0.5);
  const __m256d scale = _mm256_set1_pd(kInvSqrt2Pi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    alignas(32) double t[4];
    _mm256_store_pd(t, _mm256_mul_pd(_mm256_mul_pd(mhalf, vx), vx));
    for (int k = 0; k < 4; ++k) t[k] = std::exp(t[k]);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(scale, _mm256_load_pd(t)));
  }
  for (; i < n; ++i) out[i] = NormalPdf(x[i]);
}

}  // namespace dpcopula::stats::internal
