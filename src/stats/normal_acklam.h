#ifndef DPCOPULA_STATS_NORMAL_ACKLAM_H_
#define DPCOPULA_STATS_NORMAL_ACKLAM_H_

/// Coefficients of Acklam's rational approximation to the inverse standard
/// normal CDF, shared by the scalar kernel (normal.cc) and the AVX2 batch
/// kernel (normal_batch_avx2.cc). Both evaluate the identical Horner
/// sequence over these values, which is what makes the vector path
/// bit-identical to the scalar one: every step is a correctly-rounded IEEE
/// multiply/add/divide in the same operand order.

namespace dpcopula::stats::internal {

inline constexpr double kAcklamA[6] = {
    -3.969683028665376e+01, 2.209460984245205e+02,  -2.759285104469687e+02,
    1.383577518672690e+02,  -3.066479806614716e+01, 2.506628277459239e+00};
inline constexpr double kAcklamB[5] = {
    -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
    6.680131188771972e+01, -1.328068155288572e+01};
inline constexpr double kAcklamC[6] = {
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
    -2.549732539343734e+00, 4.374664141464968e+00,  2.938163982698783e+00};
inline constexpr double kAcklamD[4] = {
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
    3.754408661907416e+00};

/// Central/tail split point of the approximation.
inline constexpr double kAcklamPLow = 0.02425;

}  // namespace dpcopula::stats::internal

#endif  // DPCOPULA_STATS_NORMAL_ACKLAM_H_
