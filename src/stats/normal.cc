#include "stats/normal.h"

#include <cmath>
#include <limits>

#include "common/cpuinfo.h"
#include "stats/normal_acklam.h"

#ifndef DPCOPULA_SIMD_COMPILED
#define DPCOPULA_SIMD_COMPILED 0
#endif

namespace dpcopula::stats {

namespace {
constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}  // namespace

double NormalPdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double NormalInverseCdf(double p) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p == 0.0) return -std::numeric_limits<double>::infinity();
  if (p == 1.0) return std::numeric_limits<double>::infinity();

  // Coefficients for Acklam's rational approximation (shared with the AVX2
  // batch kernel — see normal_acklam.h).
  const double* a = internal::kAcklamA;
  const double* b = internal::kAcklamB;
  const double* c = internal::kAcklamC;
  const double* d = internal::kAcklamD;
  constexpr double p_low = internal::kAcklamPLow;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step pushes the error to near machine precision.
  const double e = NormalCdf(x) - p;
  const double u = e / NormalPdf(x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

namespace internal {

void NormalInverseCdfBatchScalar(const double* p, double* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = NormalInverseCdf(p[i]);
}

void NormalCdfBatchScalar(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = NormalCdf(x[i]);
}

void NormalPdfBatchScalar(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = NormalPdf(x[i]);
}

#if !DPCOPULA_SIMD_COMPILED
// The AVX2 translation unit is not part of this build; keep the symbols
// defined (as scalar forwards) so tests can reference them unconditionally.
void NormalInverseCdfBatchAvx2(const double* p, double* z, std::size_t n) {
  NormalInverseCdfBatchScalar(p, z, n);
}
void NormalCdfBatchAvx2(const double* x, double* out, std::size_t n) {
  NormalCdfBatchScalar(x, out, n);
}
void NormalPdfBatchAvx2(const double* x, double* out, std::size_t n) {
  NormalPdfBatchScalar(x, out, n);
}
#endif

}  // namespace internal

bool NormalBatchAvx2Compiled() { return DPCOPULA_SIMD_COMPILED != 0; }

bool NormalBatchAvx2Active() {
  // Resolved once: CPU features and the environment cannot change mid
  // process, and a stable answer keeps every batch call's dispatch to one
  // predictable branch.
  static const bool active = NormalBatchAvx2Compiled() &&
                             common::CpuSupportsAvx2() &&
                             !common::SimdDisabledByEnv();
  return active;
}

void NormalInverseCdfBatch(const double* p, double* z, std::size_t n) {
  if (NormalBatchAvx2Active()) {
    internal::NormalInverseCdfBatchAvx2(p, z, n);
  } else {
    internal::NormalInverseCdfBatchScalar(p, z, n);
  }
}

void NormalCdfBatch(const double* x, double* out, std::size_t n) {
  if (NormalBatchAvx2Active()) {
    internal::NormalCdfBatchAvx2(x, out, n);
  } else {
    internal::NormalCdfBatchScalar(x, out, n);
  }
}

void NormalPdfBatch(const double* x, double* out, std::size_t n) {
  if (NormalBatchAvx2Active()) {
    internal::NormalPdfBatchAvx2(x, out, n);
  } else {
    internal::NormalPdfBatchScalar(x, out, n);
  }
}

}  // namespace dpcopula::stats
