#ifndef DPCOPULA_STATS_DESCRIPTIVE_H_
#define DPCOPULA_STATS_DESCRIPTIVE_H_

#include <vector>

#include "common/result.h"

namespace dpcopula::stats {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& x);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double Variance(const std::vector<double>& x);

double StdDev(const std::vector<double>& x);

/// Pearson product-moment correlation; error if sizes differ, n < 2, or a
/// vector is constant.
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Spearman rank correlation (Pearson over average ranks).
Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Average ranks (1-based, ties get the mean of the ranks they span).
std::vector<double> AverageRanks(const std::vector<double>& x);

/// p-quantile via linear interpolation of the sorted sample, p in [0, 1].
Result<double> Quantile(std::vector<double> x, double p);

}  // namespace dpcopula::stats

#endif  // DPCOPULA_STATS_DESCRIPTIVE_H_
