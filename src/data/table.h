#ifndef DPCOPULA_DATA_TABLE_H_
#define DPCOPULA_DATA_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/schema.h"

namespace dpcopula::data {

/// Column-oriented in-memory table. Values are stored as doubles but are
/// integral points of the attribute's discrete domain [0, domain_size).
/// Column orientation matches every access pattern in this library (margins,
/// pairwise correlations, per-attribute transforms).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  /// Creates a table with `num_rows` zero-initialized rows.
  static Table Zeros(Schema schema, std::size_t num_rows);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }

  const std::vector<double>& column(std::size_t j) const {
    return columns_[j];
  }
  std::vector<double>& mutable_column(std::size_t j) { return columns_[j]; }

  double at(std::size_t row, std::size_t col) const {
    return columns_[col][row];
  }
  void set(std::size_t row, std::size_t col, double v) {
    columns_[col][row] = v;
  }

  /// Appends one row; the span length must equal num_columns.
  Status AppendRow(const std::vector<double>& row);

  /// Validates that every value lies in its attribute's domain.
  Status Validate() const;

  /// Rows whose column `col` equals `value` (used by the hybrid partitioner).
  Table Filter(std::size_t col, double value) const;

  /// New table containing only the listed columns (schema is projected too).
  Result<Table> Project(const std::vector<std::size_t>& cols) const;

  /// Appends all rows of `other` (schemas must match).
  Status Concat(const Table& other);

  /// Counts rows with lo[j] <= value_j <= hi[j] for all j — the paper's
  /// range-count query primitive.
  std::int64_t RangeCount(const std::vector<double>& lo,
                          const std::vector<double>& hi) const;

 private:
  Schema schema_;
  std::size_t num_rows_ = 0;
  std::vector<std::vector<double>> columns_;
};

}  // namespace dpcopula::data

#endif  // DPCOPULA_DATA_TABLE_H_
