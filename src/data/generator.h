#ifndef DPCOPULA_DATA_GENERATOR_H_
#define DPCOPULA_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "linalg/matrix.h"

namespace dpcopula::data {

/// Shape of one synthetic margin over the discrete domain [0, domain_size).
/// The generator turns each spec into an explicit per-value probability
/// vector, so generated margins are exact (no discretization drift).
enum class MarginFamily {
  kUniform,
  kGaussian,     // pdf ~ phi((v - mean)/stddev)
  kZipf,         // pdf ~ (v+1)^{-exponent}
  kExponential,  // pdf ~ exp(-rate * v)
  kGamma,        // pdf ~ Gamma(shape, scale) density at v + 0.5
  kBernoulli,    // domain_size must be 2; P(1) = p_one
  kPiecewise,    // explicit relative weights (size == domain_size)
};

struct MarginSpec {
  std::string name;
  MarginFamily family = MarginFamily::kGaussian;
  std::int64_t domain_size = 1000;
  // Family parameters (only those relevant to the family are read).
  double mean = 0.0;        // kGaussian; default: domain_size / 2
  double stddev = 0.0;      // kGaussian; default: domain_size / 6
  double exponent = 1.0;    // kZipf
  double rate = 0.0;        // kExponential; default: 5 / domain_size
  double shape = 2.0;       // kGamma
  double scale = 0.0;       // kGamma; default: domain_size / 8
  double p_one = 0.5;       // kBernoulli
  std::vector<double> weights;  // kPiecewise

  /// Convenience factories with the defaults the experiments use.
  static MarginSpec Uniform(std::string name, std::int64_t domain);
  static MarginSpec Gaussian(std::string name, std::int64_t domain);
  static MarginSpec Zipf(std::string name, std::int64_t domain,
                         double exponent = 1.0);
  static MarginSpec Bernoulli(std::string name, double p_one);
  static MarginSpec Piecewise(std::string name, std::vector<double> weights);
};

/// Resolves a spec into a normalized probability vector over its domain.
Result<std::vector<double>> MarginProbabilities(const MarginSpec& spec);

/// Synthetic multi-dimensional data with *Gaussian dependence* (the structure
/// the paper's Gaussian copula models): draws z ~ N(0, correlation),
/// transforms each coordinate through Phi, then through the inverse CDF of
/// its margin (the NORTA construction). `correlation` must be a valid m x m
/// correlation matrix for m = specs.size().
Result<Table> GenerateGaussianDependent(const std::vector<MarginSpec>& specs,
                                        const linalg::Matrix& correlation,
                                        std::size_t num_rows, Rng* rng);

/// AR(1)-style correlation matrix P_ij = base^{|i-j|}; positive definite for
/// |base| < 1. This is the default dependence used by the synthetic-data
/// experiments.
linalg::Matrix Ar1Correlation(std::size_t m, double base);

/// Equicorrelation matrix with off-diagonal rho (PD for rho in
/// (-1/(m-1), 1)).
Result<linalg::Matrix> Equicorrelation(std::size_t m, double rho);

}  // namespace dpcopula::data

#endif  // DPCOPULA_DATA_GENERATOR_H_
