#include "data/census.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "data/generator.h"
#include "linalg/psd_repair.h"

namespace dpcopula::data {

namespace {

// Piecewise population-pyramid weights for an age attribute on [0, domain):
// near-flat through working ages with a declining tail, resembling census
// age pyramids.
std::vector<double> AgePyramidWeights(std::int64_t domain) {
  std::vector<double> w(static_cast<std::size_t>(domain));
  for (std::int64_t v = 0; v < domain; ++v) {
    const double age = static_cast<double>(v);
    double weight;
    if (age < 20.0) {
      weight = 1.0 + 0.01 * age;  // Slight rise through childhood.
    } else if (age < 55.0) {
      weight = 1.2;  // Plateau through working ages.
    } else {
      // Exponential decline after 55.
      weight = 1.2 * std::exp(-(age - 55.0) / 14.0);
    }
    w[static_cast<std::size_t>(v)] = weight;
  }
  return w;
}

// Discretized log-normal weights over [0, domain): density of
// LogNormal(mu, sigma) evaluated at bin midpoints scaled into the domain,
// with "heaping" at round values — census respondents report incomes
// rounded to multiples of 50 and 100, producing the spiky margins real
// extracts show (smooth margins would unrealistically flatter methods that
// assume within-bucket uniformity).
std::vector<double> LogNormalWeights(std::int64_t domain, double mu,
                                     double sigma) {
  std::vector<double> w(static_cast<std::size_t>(domain));
  for (std::int64_t v = 0; v < domain; ++v) {
    const double x = (static_cast<double>(v) + 0.5);
    const double lx = std::log(x);
    const double z = (lx - mu) / sigma;
    double weight = std::exp(-0.5 * z * z) / x;
    if (v > 0 && v % 100 == 0) {
      weight *= 3.0;
    } else if (v > 0 && v % 50 == 0) {
      weight *= 2.0;
    } else if (v > 0 && v % 10 == 0) {
      weight *= 1.4;
    }
    w[static_cast<std::size_t>(v)] = weight;
  }
  return w;
}

// Deterministically permutes weights so that frequency is not monotone in
// the code value — occupation/education codes are arbitrary labels, so the
// real histograms over code order are jagged.
std::vector<double> PermuteWeights(const std::vector<double>& w) {
  const std::size_t n = w.size();
  // Deterministic permutation via Fibonacci-hash sort ranks (bijective).
  std::vector<std::pair<std::uint64_t, std::size_t>> keyed(n);
  for (std::size_t i = 0; i < n; ++i) {
    keyed[i] = {i * 0x9e3779b97f4a7c15ULL, i};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[keyed[i].second] = w[i];
  }
  return out;
}

// Normal bump centered at `center` with spread `sd`, plus a small floor so
// every value has support.
std::vector<double> BumpWeights(std::int64_t domain, double center, double sd,
                                double floor) {
  std::vector<double> w(static_cast<std::size_t>(domain));
  for (std::int64_t v = 0; v < domain; ++v) {
    const double z = (static_cast<double>(v) - center) / sd;
    w[static_cast<std::size_t>(v)] = std::exp(-0.5 * z * z) + floor;
  }
  return w;
}

}  // namespace

Schema UsCensusSchema() {
  return Schema({{"age", 96}, {"income", 1020}, {"occupation", 511},
                 {"gender", 2}});
}

Schema BrazilCensusSchema() {
  return Schema({{"age", 95},
                 {"gender", 2},
                 {"disability", 2},
                 {"nativity", 2},
                 {"num_years", 31},
                 {"education", 140},
                 {"working_hours", 95},
                 {"annual_income", 586}});
}

Result<Table> GenerateUsCensus(std::size_t num_rows, Rng* rng) {
  std::vector<MarginSpec> specs;
  specs.push_back(MarginSpec::Piecewise("age", AgePyramidWeights(96)));
  specs.push_back(
      MarginSpec::Piecewise("income", LogNormalWeights(1020, 5.3, 0.9)));
  // Zipf exponent 0.8 (largest occupation holds ~5% of workers, matching
  // real census occupation tables), permuted because occupation codes are
  // arbitrary labels — frequency is jagged in code order.
  {
    MarginSpec zipf = MarginSpec::Zipf("occupation", 511, 0.8);
    std::vector<double> probs = *MarginProbabilities(zipf);
    specs.push_back(
        MarginSpec::Piecewise("occupation", PermuteWeights(probs)));
  }
  specs.push_back(MarginSpec::Bernoulli("gender", 0.51));

  // Latent Gaussian dependence: income correlates with age and occupation;
  // gender weakly with occupation/income (realistic wage-gap style skew).
  linalg::Matrix corr = linalg::Matrix::FromRows({
      {1.00, 0.35, 0.12, 0.02},
      {0.35, 1.00, 0.30, -0.10},
      {0.12, 0.30, 1.00, 0.08},
      {0.02, -0.10, 0.08, 1.00},
  });
  DPC_ASSIGN_OR_RETURN(corr, linalg::EnsureCorrelationMatrix(corr));
  return GenerateGaussianDependent(specs, corr, num_rows, rng);
}

Result<Table> GenerateBrazilCensus(std::size_t num_rows, Rng* rng) {
  std::vector<MarginSpec> specs;
  specs.push_back(MarginSpec::Piecewise("age", AgePyramidWeights(95)));
  specs.push_back(MarginSpec::Bernoulli("gender", 0.51));
  specs.push_back(MarginSpec::Bernoulli("disability", 0.06));
  specs.push_back(MarginSpec::Bernoulli("nativity", 0.12));
  {
    MarginSpec years = MarginSpec::Gaussian("num_years", 31);
    years.family = MarginFamily::kExponential;
    years.rate = 0.12;
    specs.push_back(years);
  }
  {
    // Education: bimodal (primary completion + higher education).
    std::vector<double> edu(140);
    for (std::size_t v = 0; v < edu.size(); ++v) {
      const double x = static_cast<double>(v);
      const double z1 = (x - 35.0) / 18.0;
      const double z2 = (x - 95.0) / 14.0;
      edu[v] = std::exp(-0.5 * z1 * z1) + 0.45 * std::exp(-0.5 * z2 * z2) +
               0.02;
    }
    specs.push_back(MarginSpec::Piecewise("education", std::move(edu)));
  }
  specs.push_back(MarginSpec::Piecewise(
      "working_hours", BumpWeights(95, 42.0, 11.0, 0.03)));
  specs.push_back(MarginSpec::Piecewise(
      "annual_income", LogNormalWeights(586, 4.8, 1.0)));

  // Dependence: income ~ education ~ age, hours ~ gender, disability lowers
  // hours/income; kept moderate and repaired to the nearest correlation
  // matrix.
  linalg::Matrix corr = linalg::Matrix::FromRows({
      // age  gen   dis   nat   yrs   edu   hrs   inc
      {1.00, 0.02, 0.18, 0.05, 0.30, -0.05, -0.05, 0.25},   // age
      {0.02, 1.00, 0.00, 0.00, 0.00, 0.03, -0.15, -0.12},   // gender
      {0.18, 0.00, 1.00, 0.02, 0.05, -0.10, -0.20, -0.15},  // disability
      {0.05, 0.00, 0.02, 1.00, -0.25, 0.05, 0.02, 0.05},    // nativity
      {0.30, 0.00, 0.05, -0.25, 1.00, -0.05, 0.00, 0.08},   // num_years
      {-0.05, 0.03, -0.10, 0.05, -0.05, 1.00, 0.10, 0.40},  // education
      {-0.05, -0.15, -0.20, 0.02, 0.00, 0.10, 1.00, 0.30},  // hours
      {0.25, -0.12, -0.15, 0.05, 0.08, 0.40, 0.30, 1.00},   // income
  });
  DPC_ASSIGN_OR_RETURN(corr, linalg::EnsureCorrelationMatrix(corr));
  return GenerateGaussianDependent(specs, corr, num_rows, rng);
}

}  // namespace dpcopula::data
