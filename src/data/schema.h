#ifndef DPCOPULA_DATA_SCHEMA_H_
#define DPCOPULA_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dpcopula::data {

/// One attribute of a dataset. All attributes are ordinal with the discrete
/// domain {0, 1, ..., domain_size - 1}; nominal attributes are assumed to
/// have been converted by imposing a total order on their domain, exactly as
/// the paper does for the census data (§5.1, following [39]).
struct Attribute {
  std::string name;
  std::int64_t domain_size = 0;

  bool operator==(const Attribute&) const = default;
};

/// Ordered attribute list describing a table's columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or -1 if absent.
  int IndexOf(const std::string& name) const {
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
      if (attributes_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Product of all domain sizes (the paper's domain space), saturating at
  /// the double range — used only for reporting.
  double DomainSpace() const {
    double prod = 1.0;
    for (const auto& a : attributes_) {
      prod *= static_cast<double>(a.domain_size);
    }
    return prod;
  }

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace dpcopula::data

#endif  // DPCOPULA_DATA_SCHEMA_H_
