#ifndef DPCOPULA_DATA_CENSUS_H_
#define DPCOPULA_DATA_CENSUS_H_

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace dpcopula::data {

/// Simulators for the paper's two real datasets (§5.1, Table 2). The IPUMS
/// extracts are registration-gated, so we reproduce their *schemas* exactly
/// (attribute count and domain sizes) with realistic skewed margins coupled
/// through a Gaussian copula — which is precisely the information the
/// evaluation consumes. See DESIGN.md §3 (substitutions).

/// US Census simulator — 4 attributes:
///   age (96), income (1020), occupation (511), gender (2).
/// Margins: age = population-pyramid piecewise shape; income = discretized
/// log-normal; occupation = zipf(1.05); gender = Bernoulli(0.51).
/// Dependence: Gaussian copula with moderate age/income/occupation structure.
Result<Table> GenerateUsCensus(std::size_t num_rows, Rng* rng);

/// Brazil Census simulator — 8 attributes:
///   age (95), gender (2), disability (2), nativity (2),
///   num_years (31), education (140), working_hours (95),
///   annual_income (586).
Result<Table> GenerateBrazilCensus(std::size_t num_rows, Rng* rng);

/// The paper's Table 2 schemas (no data), for reporting and schema checks.
Schema UsCensusSchema();
Schema BrazilCensusSchema();

}  // namespace dpcopula::data

#endif  // DPCOPULA_DATA_CENSUS_H_
