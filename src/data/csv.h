#ifndef DPCOPULA_DATA_CSV_H_
#define DPCOPULA_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/table.h"

namespace dpcopula::data {

/// Writes `table` to `path` as CSV with a header row of attribute names.
/// Values are written as integers.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV written by WriteCsv (numeric cells, header row). Domain sizes
/// in the schema are inferred as max(value)+1 per column unless a schema is
/// supplied.
Result<Table> ReadCsv(const std::string& path);
Result<Table> ReadCsvWithSchema(const std::string& path, const Schema& schema);

}  // namespace dpcopula::data

#endif  // DPCOPULA_DATA_CSV_H_
