#ifndef DPCOPULA_DATA_CSV_H_
#define DPCOPULA_DATA_CSV_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "data/table.h"

namespace dpcopula::data {

/// Writes `table` to `path` as CSV with a header row of attribute names.
/// Values are written as integers. The write is crash-safe: content goes
/// to `<path>.tmp` and is fsync'ed before an atomic rename onto `path`, so
/// an interrupted write never leaves a truncated CSV behind.
Status WriteCsv(const Table& table, const std::string& path);

/// Knobs for tolerant CSV ingestion.
struct ReadCsvOptions {
  /// Maximum number of malformed/non-finite data rows to quarantine (drop
  /// and count) before the read fails. 0 reproduces the strict behavior:
  /// the first bad row fails the whole read.
  std::size_t max_bad_rows = 0;
};

/// Per-reason tally of quarantined rows. The counts (and the line numbers
/// in error messages) are positions and structural defects only — cell
/// *values* never appear in statuses or logs.
struct CsvReadStats {
  std::size_t rows_kept = 0;
  std::size_t bad_rows = 0;            // Sum of the per-reason counts.
  std::size_t bad_too_many_cells = 0;
  std::size_t bad_too_few_cells = 0;
  std::size_t bad_non_numeric = 0;
  std::size_t bad_non_finite = 0;      // Cells parsed to NaN/inf.
  std::size_t bad_injected = 0;        // "csv.read.row" fail-point hits.
  std::size_t first_bad_line = 0;      // 1-based file line; 0 = none.
};

struct CsvReadResult {
  Table table;
  CsvReadStats stats;
};

/// Reads a CSV written by WriteCsv (numeric cells, header row). Domain
/// sizes in the schema are inferred as max(value)+1 per column unless a
/// schema is supplied. Strict: any malformed row fails the read.
Result<Table> ReadCsv(const std::string& path);
Result<Table> ReadCsvWithSchema(const std::string& path, const Schema& schema);

/// Tolerant variants: rows that fail to parse (wrong arity, non-numeric or
/// non-finite cells) are quarantined and counted per reason instead of
/// failing the read, up to `options.max_bad_rows`; one bad row past that
/// fails closed. With max_bad_rows == 0 these behave exactly like the
/// strict readers (plus the non-finite check).
Result<CsvReadResult> ReadCsvTolerant(const std::string& path,
                                      const ReadCsvOptions& options);
Result<CsvReadResult> ReadCsvTolerantWithSchema(const std::string& path,
                                                const Schema& schema,
                                                const ReadCsvOptions& options);

}  // namespace dpcopula::data

#endif  // DPCOPULA_DATA_CSV_H_
