#include "data/table.h"

#include <cmath>

namespace dpcopula::data {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Table Table::Zeros(Schema schema, std::size_t num_rows) {
  Table t(std::move(schema));
  t.num_rows_ = num_rows;
  for (auto& col : t.columns_) col.assign(num_rows, 0.0);
  return t;
}

Status Table::AppendRow(const std::vector<double>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("AppendRow: arity mismatch");
  }
  for (std::size_t j = 0; j < row.size(); ++j) columns_[j].push_back(row[j]);
  ++num_rows_;
  return Status::OK();
}

Status Table::Validate() const {
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    const auto domain = schema_.attribute(j).domain_size;
    for (double v : columns_[j]) {
      if (!(v >= 0.0) || v >= static_cast<double>(domain) ||
          v != std::floor(v)) {
        return Status::OutOfRange("column '" + schema_.attribute(j).name +
                                  "' has value " + std::to_string(v) +
                                  " outside domain [0, " +
                                  std::to_string(domain) + ")");
      }
    }
  }
  return Status::OK();
}

Table Table::Filter(std::size_t col, double value) const {
  Table out(schema_);
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < num_rows_; ++r) {
    if (columns_[col][r] == value) keep.push_back(r);
  }
  out.num_rows_ = keep.size();
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    out.columns_[j].reserve(keep.size());
    for (std::size_t r : keep) out.columns_[j].push_back(columns_[j][r]);
  }
  return out;
}

Result<Table> Table::Project(const std::vector<std::size_t>& cols) const {
  std::vector<Attribute> attrs;
  attrs.reserve(cols.size());
  for (std::size_t c : cols) {
    if (c >= columns_.size()) {
      return Status::OutOfRange("Project: column index out of range");
    }
    attrs.push_back(schema_.attribute(c));
  }
  Table out{Schema(std::move(attrs))};
  out.num_rows_ = num_rows_;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    out.columns_[i] = columns_[cols[i]];
  }
  return out;
}

Status Table::Concat(const Table& other) {
  if (!(other.schema_ == schema_)) {
    return Status::InvalidArgument("Concat: schema mismatch");
  }
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    columns_[j].insert(columns_[j].end(), other.columns_[j].begin(),
                       other.columns_[j].end());
  }
  num_rows_ += other.num_rows_;
  return Status::OK();
}

std::int64_t Table::RangeCount(const std::vector<double>& lo,
                               const std::vector<double>& hi) const {
  std::int64_t count = 0;
  for (std::size_t r = 0; r < num_rows_; ++r) {
    bool inside = true;
    for (std::size_t j = 0; j < columns_.size() && inside; ++j) {
      const double v = columns_[j][r];
      inside = (v >= lo[j] && v <= hi[j]);
    }
    count += inside ? 1 : 0;
  }
  return count;
}

}  // namespace dpcopula::data
