#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"
#include "stats/normal.h"

namespace dpcopula::data {

MarginSpec MarginSpec::Uniform(std::string name, std::int64_t domain) {
  MarginSpec s;
  s.name = std::move(name);
  s.family = MarginFamily::kUniform;
  s.domain_size = domain;
  return s;
}

MarginSpec MarginSpec::Gaussian(std::string name, std::int64_t domain) {
  MarginSpec s;
  s.name = std::move(name);
  s.family = MarginFamily::kGaussian;
  s.domain_size = domain;
  return s;
}

MarginSpec MarginSpec::Zipf(std::string name, std::int64_t domain,
                            double exponent) {
  MarginSpec s;
  s.name = std::move(name);
  s.family = MarginFamily::kZipf;
  s.domain_size = domain;
  s.exponent = exponent;
  return s;
}

MarginSpec MarginSpec::Bernoulli(std::string name, double p_one) {
  MarginSpec s;
  s.name = std::move(name);
  s.family = MarginFamily::kBernoulli;
  s.domain_size = 2;
  s.p_one = p_one;
  return s;
}

MarginSpec MarginSpec::Piecewise(std::string name,
                                 std::vector<double> weights) {
  MarginSpec s;
  s.name = std::move(name);
  s.family = MarginFamily::kPiecewise;
  s.domain_size = static_cast<std::int64_t>(weights.size());
  s.weights = std::move(weights);
  return s;
}

Result<std::vector<double>> MarginProbabilities(const MarginSpec& spec) {
  if (spec.domain_size <= 0) {
    return Status::InvalidArgument("margin '" + spec.name +
                                   "': domain_size must be > 0");
  }
  const auto a = static_cast<std::size_t>(spec.domain_size);
  std::vector<double> p(a, 0.0);
  switch (spec.family) {
    case MarginFamily::kUniform:
      std::fill(p.begin(), p.end(), 1.0);
      break;
    case MarginFamily::kGaussian: {
      const double mean =
          (spec.mean != 0.0) ? spec.mean : static_cast<double>(a) / 2.0;
      const double sd =
          (spec.stddev != 0.0) ? spec.stddev : static_cast<double>(a) / 6.0;
      for (std::size_t v = 0; v < a; ++v) {
        const double z = (static_cast<double>(v) - mean) / sd;
        p[v] = std::exp(-0.5 * z * z);
      }
      break;
    }
    case MarginFamily::kZipf:
      for (std::size_t v = 0; v < a; ++v) {
        p[v] = std::pow(static_cast<double>(v + 1), -spec.exponent);
      }
      break;
    case MarginFamily::kExponential: {
      const double rate =
          (spec.rate != 0.0) ? spec.rate : 5.0 / static_cast<double>(a);
      for (std::size_t v = 0; v < a; ++v) {
        p[v] = std::exp(-rate * static_cast<double>(v));
      }
      break;
    }
    case MarginFamily::kGamma: {
      const double scale =
          (spec.scale != 0.0) ? spec.scale : static_cast<double>(a) / 8.0;
      for (std::size_t v = 0; v < a; ++v) {
        const double x = (static_cast<double>(v) + 0.5) / scale;
        p[v] = std::pow(x, spec.shape - 1.0) * std::exp(-x);
      }
      break;
    }
    case MarginFamily::kBernoulli:
      if (a != 2) {
        return Status::InvalidArgument("Bernoulli margin needs domain 2");
      }
      if (!(spec.p_one >= 0.0 && spec.p_one <= 1.0)) {
        return Status::InvalidArgument("Bernoulli p_one outside [0, 1]");
      }
      p[0] = 1.0 - spec.p_one;
      p[1] = spec.p_one;
      break;
    case MarginFamily::kPiecewise:
      if (spec.weights.size() != a) {
        return Status::InvalidArgument(
            "piecewise weights size != domain_size");
      }
      p = spec.weights;
      for (double w : p) {
        if (w < 0.0) {
          return Status::InvalidArgument("piecewise weight < 0");
        }
      }
      break;
  }
  double total = 0.0;
  for (double v : p) total += v;
  if (total <= 0.0) {
    return Status::NumericalError("margin '" + spec.name +
                                  "' has zero total mass");
  }
  for (double& v : p) v /= total;
  return p;
}

namespace {

// Inverse discrete CDF: smallest index with cumulative >= u.
std::size_t InverseDiscreteCdf(const std::vector<double>& cumulative,
                               double u) {
  const auto it =
      std::lower_bound(cumulative.begin(), cumulative.end(), u);
  if (it == cumulative.end()) return cumulative.size() - 1;
  return static_cast<std::size_t>(it - cumulative.begin());
}

}  // namespace

Result<Table> GenerateGaussianDependent(const std::vector<MarginSpec>& specs,
                                        const linalg::Matrix& correlation,
                                        std::size_t num_rows, Rng* rng) {
  const std::size_t m = specs.size();
  if (m == 0) return Status::InvalidArgument("no margins given");
  if (correlation.rows() != m || correlation.cols() != m) {
    return Status::InvalidArgument("correlation matrix shape mismatch");
  }
  DPC_ASSIGN_OR_RETURN(linalg::Matrix chol,
                       linalg::CholeskyDecompose(correlation));

  // Resolve margins into cumulative distributions.
  std::vector<std::vector<double>> cdfs(m);
  std::vector<Attribute> attrs(m);
  for (std::size_t j = 0; j < m; ++j) {
    DPC_ASSIGN_OR_RETURN(std::vector<double> probs,
                         MarginProbabilities(specs[j]));
    cdfs[j].resize(probs.size());
    double acc = 0.0;
    for (std::size_t v = 0; v < probs.size(); ++v) {
      acc += probs[v];
      cdfs[j][v] = acc;
    }
    cdfs[j].back() = 1.0;
    attrs[j] = {specs[j].name, specs[j].domain_size};
  }

  Table table = Table::Zeros(Schema(std::move(attrs)), num_rows);
  std::vector<double> z(m), corr_z(m);
  for (std::size_t r = 0; r < num_rows; ++r) {
    for (std::size_t j = 0; j < m; ++j) z[j] = rng->NextGaussian();
    // corr_z = L z has correlation `correlation`.
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= i; ++k) acc += chol(i, k) * z[k];
      corr_z[i] = acc;
    }
    for (std::size_t j = 0; j < m; ++j) {
      const double u = stats::NormalCdf(corr_z[j]);
      table.set(r, j, static_cast<double>(InverseDiscreteCdf(cdfs[j], u)));
    }
  }
  return table;
}

linalg::Matrix Ar1Correlation(std::size_t m, double base) {
  linalg::Matrix p(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      p(i, j) = std::pow(base, std::fabs(static_cast<double>(i) -
                                         static_cast<double>(j)));
    }
  }
  return p;
}

Result<linalg::Matrix> Equicorrelation(std::size_t m, double rho) {
  if (m >= 2 && !(rho > -1.0 / static_cast<double>(m - 1) && rho < 1.0)) {
    return Status::InvalidArgument("equicorrelation rho out of PD range");
  }
  linalg::Matrix p(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) p(i, j) = (i == j) ? 1.0 : rho;
  }
  return p;
}

}  // namespace dpcopula::data
