#include "data/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dpcopula::data {

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const auto& schema = table.schema();
  for (std::size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j) out << ',';
    out << schema.attribute(j).name;
  }
  out << '\n';
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t j = 0; j < table.num_columns(); ++j) {
      if (j) out << ',';
      out << static_cast<long long>(std::llround(table.at(r, j)));
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

namespace {

Result<Table> ReadCsvImpl(const std::string& path, const Schema* schema) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);

  std::string line;
  if (!std::getline(in, line)) return Status::IOError("empty file: " + path);

  std::vector<std::string> names;
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) names.push_back(cell);
  }
  if (names.empty()) return Status::IOError("no header columns: " + path);

  std::vector<std::vector<double>> cols(names.size());
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::size_t j = 0;
    while (std::getline(ss, cell, ',')) {
      if (j >= cols.size()) {
        return Status::IOError("too many cells at line " +
                               std::to_string(line_no));
      }
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::IOError("non-numeric cell at line " +
                               std::to_string(line_no));
      }
      cols[j++].push_back(v);
    }
    if (j != cols.size()) {
      return Status::IOError("too few cells at line " +
                             std::to_string(line_no));
    }
  }

  Schema result_schema;
  if (schema != nullptr) {
    if (schema->num_attributes() != names.size()) {
      return Status::InvalidArgument("schema arity does not match CSV header");
    }
    result_schema = *schema;
  } else {
    std::vector<Attribute> attrs;
    for (std::size_t j = 0; j < names.size(); ++j) {
      double mx = 0.0;
      for (double v : cols[j]) mx = std::max(mx, v);
      attrs.push_back({names[j], static_cast<std::int64_t>(mx) + 1});
    }
    result_schema = Schema(std::move(attrs));
  }

  const std::size_t n = cols[0].size();
  Table table = Table::Zeros(result_schema, n);
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (cols[j].size() != n) {
      return Status::Internal("ragged column lengths");
    }
    table.mutable_column(j) = std::move(cols[j]);
  }
  return table;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path) {
  return ReadCsvImpl(path, nullptr);
}

Result<Table> ReadCsvWithSchema(const std::string& path,
                                const Schema& schema) {
  return ReadCsvImpl(path, &schema);
}

}  // namespace dpcopula::data
