#include "data/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace dpcopula::data {

Status WriteCsv(const Table& table, const std::string& path) {
  obs::StageScope stage(obs::Stage::kCsvWrite);
  return WriteFileAtomic(path, [&](std::ostream& out) -> Status {
    const auto& schema = table.schema();
    for (std::size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j) out << ',';
      out << schema.attribute(j).name;
    }
    out << '\n';
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      for (std::size_t j = 0; j < table.num_columns(); ++j) {
        if (j) out << ',';
        out << static_cast<long long>(std::llround(table.at(r, j)));
      }
      out << '\n';
    }
    if (!out) return Status::IOError("write failed: " + path);
    return Status::OK();
  });
}

namespace {

/// Why one data row failed to parse. Reasons are structural — they never
/// depend on what the offending cells contained.
enum class RowDefect {
  kNone,
  kTooManyCells,
  kTooFewCells,
  kNonNumeric,
  kNonFinite,
  kInjected,
};

const char* RowDefectName(RowDefect defect) {
  switch (defect) {
    case RowDefect::kNone: return "none";
    case RowDefect::kTooManyCells: return "too many cells";
    case RowDefect::kTooFewCells: return "too few cells";
    case RowDefect::kNonNumeric: return "non-numeric cell";
    case RowDefect::kNonFinite: return "non-finite cell";
    case RowDefect::kInjected: return "injected fault (csv.read.row)";
  }
  return "unknown";
}

/// Parses one data row into `cells` (resized to the column count).
/// `check_non_finite` is off for the legacy strict readers, whose behavior
/// must stay bit-for-bit unchanged.
RowDefect ParseRow(const std::string& line, std::size_t num_columns,
                   std::size_t row_index, bool check_non_finite,
                   std::vector<double>* cells) {
  if (DPC_FAILPOINT_AT("csv.read.row", row_index)) {
    return RowDefect::kInjected;
  }
  std::stringstream ss(line);
  std::string cell;
  std::size_t j = 0;
  RowDefect defect = RowDefect::kNone;
  while (std::getline(ss, cell, ',')) {
    if (j >= num_columns) return RowDefect::kTooManyCells;
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str()) return RowDefect::kNonNumeric;
    if (check_non_finite && !std::isfinite(v)) {
      defect = RowDefect::kNonFinite;  // Keep scanning for arity defects.
    }
    (*cells)[j++] = v;
  }
  if (j != num_columns) return RowDefect::kTooFewCells;
  return defect;
}

Result<CsvReadResult> ReadCsvImpl(const std::string& path,
                                  const Schema* schema,
                                  const ReadCsvOptions& options,
                                  bool check_non_finite) {
  obs::StageScope stage(obs::Stage::kCsvRead);
  static obs::Counter* const quarantined_counter =
      obs::MetricsRegistry::Global().GetCounter("csv.rows_quarantined");

  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  if (DPC_FAILPOINT("csv.read.open")) {
    return failpoint::InjectedFault("csv.read.open");
  }

  std::string line;
  if (!std::getline(in, line)) return Status::IOError("empty file: " + path);

  std::vector<std::string> names;
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) names.push_back(cell);
  }
  if (names.empty()) return Status::IOError("no header columns: " + path);

  CsvReadStats stats;
  std::vector<std::vector<double>> cols(names.size());
  std::vector<double> cells(names.size());
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const RowDefect defect =
        ParseRow(line, names.size(), /*row_index=*/line_no - 2,
                 check_non_finite, &cells);
    if (defect == RowDefect::kNone) {
      for (std::size_t j = 0; j < names.size(); ++j) {
        cols[j].push_back(cells[j]);
      }
      ++stats.rows_kept;
      continue;
    }
    ++stats.bad_rows;
    if (stats.first_bad_line == 0) stats.first_bad_line = line_no;
    switch (defect) {
      case RowDefect::kNone: break;
      case RowDefect::kTooManyCells: ++stats.bad_too_many_cells; break;
      case RowDefect::kTooFewCells: ++stats.bad_too_few_cells; break;
      case RowDefect::kNonNumeric: ++stats.bad_non_numeric; break;
      case RowDefect::kNonFinite: ++stats.bad_non_finite; break;
      case RowDefect::kInjected: ++stats.bad_injected; break;
    }
    if (stats.bad_rows > options.max_bad_rows) {
      return Status::IOError(
          std::string(RowDefectName(defect)) + " at line " +
          std::to_string(line_no) + " (" + std::to_string(stats.bad_rows) +
          " bad rows exceeds max_bad_rows=" +
          std::to_string(options.max_bad_rows) + ")");
    }
    quarantined_counter->Increment();
  }
  if (stats.bad_rows > 0) {
    obs::Log(obs::LogLevel::kWarn, "csv.rows_quarantined")
        .Field("path", path)
        .Field("bad_rows", stats.bad_rows)
        .Field("rows_kept", stats.rows_kept)
        .Field("first_bad_line", stats.first_bad_line);
  }

  Schema result_schema;
  if (schema != nullptr) {
    if (schema->num_attributes() != names.size()) {
      return Status::InvalidArgument("schema arity does not match CSV header");
    }
    result_schema = *schema;
  } else {
    std::vector<Attribute> attrs;
    for (std::size_t j = 0; j < names.size(); ++j) {
      double mx = 0.0;
      for (double v : cols[j]) mx = std::max(mx, v);
      attrs.push_back({names[j], static_cast<std::int64_t>(mx) + 1});
    }
    result_schema = Schema(std::move(attrs));
  }

  const std::size_t n = cols[0].size();
  Table table = Table::Zeros(result_schema, n);
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (cols[j].size() != n) {
      return Status::Internal("ragged column lengths");
    }
    table.mutable_column(j) = std::move(cols[j]);
  }
  CsvReadResult result;
  result.table = std::move(table);
  result.stats = stats;
  return result;
}

/// Legacy strict error shape: the per-defect message without the
/// max_bad_rows suffix, as the pre-tolerant reader produced.
Result<Table> StrictRead(const std::string& path, const Schema* schema) {
  auto result = ReadCsvImpl(path, schema, ReadCsvOptions{},
                            /*check_non_finite=*/false);
  if (!result.ok()) return result.status();
  return std::move(result->table);
}

}  // namespace

Result<Table> ReadCsv(const std::string& path) {
  return StrictRead(path, nullptr);
}

Result<Table> ReadCsvWithSchema(const std::string& path,
                                const Schema& schema) {
  return StrictRead(path, &schema);
}

Result<CsvReadResult> ReadCsvTolerant(const std::string& path,
                                      const ReadCsvOptions& options) {
  return ReadCsvImpl(path, nullptr, options, /*check_non_finite=*/true);
}

Result<CsvReadResult> ReadCsvTolerantWithSchema(
    const std::string& path, const Schema& schema,
    const ReadCsvOptions& options) {
  return ReadCsvImpl(path, &schema, options, /*check_non_finite=*/true);
}

}  // namespace dpcopula::data
