#ifndef DPCOPULA_MARGINALS_STRUCTUREFIRST_H_
#define DPCOPULA_MARGINALS_STRUCTUREFIRST_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace dpcopula::marginals {

/// StructureFirst (Xu et al., ICDE 2012 [41]) — the dual of NoiseFirst:
/// first choose the histogram *structure* (bucket boundaries) privately,
/// then add noise to the bucket totals.
///
/// Structure: recursive bisection of the count vector; each cut is chosen
/// by the exponential mechanism scoring the negative within-part L1
/// deviation from the part means (sensitivity 2 — one record moves one
/// count by 1, which moves the deviation sum by at most 2), with the
/// structure budget split evenly over the recursion levels (cuts at one
/// level act on disjoint intervals => parallel composition within a level).
/// Counts: each final bucket total gets Lap(1/eps_count) (buckets disjoint
/// => parallel composition) and is spread uniformly over its bins.
struct StructureFirstOptions {
  /// Recursion depth (final buckets <= 2^depth); 0 selects
  /// ceil(log2(n / 8)) clamped to [1, 8].
  int depth = 0;
  /// Fraction of the budget spent on the structure.
  double structure_budget_fraction = 0.5;
};

Result<std::vector<double>> PublishStructureFirstHistogram(
    const std::vector<double>& counts, double epsilon, Rng* rng,
    const StructureFirstOptions& options = {});

}  // namespace dpcopula::marginals

#endif  // DPCOPULA_MARGINALS_STRUCTUREFIRST_H_
