#ifndef DPCOPULA_MARGINALS_POSTPROCESS_H_
#define DPCOPULA_MARGINALS_POSTPROCESS_H_

#include <vector>

namespace dpcopula::marginals {

/// Consistency post-processing for noisy histograms (costs no privacy):
/// Euclidean projection onto { c >= 0, sum(c) = total }. Naively clamping
/// negative noisy counts at zero injects a large positive bias — at low
/// epsilon the phantom mass can exceed the real mass — whereas the
/// projection shifts all counts by a common threshold tau with
/// c_i' = max(0, c_i - tau) chosen so the mass matches `total`.
///
/// If `total` < 0 it is clamped to 0; if the noisy counts cannot reach
/// `total` even at tau = 0 (their positive part is too small), the positive
/// part is scaled up to match.
std::vector<double> ProjectToSimplex(const std::vector<double>& counts,
                                     double total);

/// Convenience: projects onto the simplex whose total is the (unbiased)
/// sum of the noisy counts themselves.
std::vector<double> ProjectToNoisyTotal(const std::vector<double>& counts);

}  // namespace dpcopula::marginals

#endif  // DPCOPULA_MARGINALS_POSTPROCESS_H_
