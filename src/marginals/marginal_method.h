#ifndef DPCOPULA_MARGINALS_MARGINAL_METHOD_H_
#define DPCOPULA_MARGINALS_MARGINAL_METHOD_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace dpcopula::marginals {

/// Which DP 1-d histogram publisher DPCopula uses for its margins. The paper
/// defaults to EFPA ("superior to other methods", §4.1) but notes any
/// 1-d method can be plugged in; Dwork's baseline is provided for ablations.
enum class MarginalMethod {
  kEfpa,
  kDwork,
  kNoiseFirst,
  kStructureFirst,
};

/// Lower-case method name ("efpa", "dwork", ...), used for metric names and
/// CLI diagnostics.
const char* MarginalMethodName(MarginalMethod method);

/// Publishes `counts` with `epsilon`-DP using the selected method.
Result<std::vector<double>> PublishMarginal(MarginalMethod method,
                                            const std::vector<double>& counts,
                                            double epsilon, Rng* rng);

}  // namespace dpcopula::marginals

#endif  // DPCOPULA_MARGINALS_MARGINAL_METHOD_H_
