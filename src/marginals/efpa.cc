#include "marginals/efpa.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanisms.h"
#include "hist/dct.h"
#include "stats/distributions.h"

namespace dpcopula::marginals {

double EfpaExpectedError(const std::vector<double>& spectrum_sq_tail,
                         std::size_t k, double epsilon_noise) {
  // spectrum_sq_tail[k] = sum_{i >= k} F_i^2 (energy discarded when keeping
  // the first k coefficients). Each kept coefficient carries Laplace noise
  // with scale sqrt(k)/eps => variance 2k/eps^2; k of them total 2k^2/eps^2.
  const double tail = spectrum_sq_tail[k];
  const double kd = static_cast<double>(k);
  const double noise = 2.0 * kd * kd / (epsilon_noise * epsilon_noise);
  return tail + noise;
}

Result<std::vector<double>> PublishEfpaHistogram(
    const std::vector<double>& counts, double epsilon, Rng* rng,
    const EfpaOptions& options) {
  if (counts.empty()) {
    return Status::InvalidArgument("EFPA: empty input");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("EFPA: epsilon must be > 0");
  }
  if (!(options.selection_fraction > 0.0 &&
        options.selection_fraction < 1.0)) {
    return Status::InvalidArgument("EFPA: selection_fraction in (0, 1)");
  }
  const double eps_select = epsilon * options.selection_fraction;
  const double eps_noise = epsilon - eps_select;
  const std::size_t n = counts.size();

  const std::vector<double> spectrum = hist::ForwardDct(counts);

  // Suffix energies: tail[k] = sum_{i >= k} F_i^2.
  std::vector<double> tail(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    tail[i] = tail[i + 1] + spectrum[i] * spectrum[i];
  }

  // Score for keeping k coefficients: negative RMSE of the expected
  // reconstruction. Using the square root bounds the score's sensitivity:
  // one record moves the spectrum by <= 1 in L2, so sqrt(tail(k)) moves by
  // <= 1 and the noise term is data-independent.
  //
  // Candidate n+1 is the *identity* release (per-bin Laplace with
  // sensitivity 1, expected squared error 2n/eps^2, data-independent
  // score): spiky, incompressible histograms — e.g. zipf-distributed
  // attributes — are served far better by identity noise than by any
  // frequency-domain truncation, and letting the exponential mechanism
  // make that choice keeps the whole selection private.
  std::vector<double> scores(n + 1);
  for (std::size_t k = 1; k <= n; ++k) {
    scores[k - 1] = -std::sqrt(EfpaExpectedError(tail, k, eps_noise));
  }
  scores[n] =
      -std::sqrt(2.0 * static_cast<double>(n)) / eps_noise;  // Identity.
  DPC_ASSIGN_OR_RETURN(
      std::size_t k_index,
      dp::ExponentialMechanism(rng, scores, eps_select, /*sensitivity=*/1.0));

  if (k_index == n) {
    // Identity branch: Lap(1/eps_noise) per bin in the count domain.
    std::vector<double> noisy(n);
    for (std::size_t i = 0; i < n; ++i) {
      noisy[i] = counts[i] + stats::SampleLaplace(rng, 1.0 / eps_noise);
    }
    return noisy;
  }
  const std::size_t k = k_index + 1;

  // Perturb the first k coefficients with Lap(sqrt(k)/eps_noise); drop the
  // rest (keeping the *prefix* avoids leaking which indices were largest).
  std::vector<double> noisy(n, 0.0);
  const double scale = std::sqrt(static_cast<double>(k)) / eps_noise;
  for (std::size_t i = 0; i < k; ++i) {
    noisy[i] = spectrum[i] + stats::SampleLaplace(rng, scale);
  }
  return hist::InverseDct(noisy);
}

}  // namespace dpcopula::marginals
