#ifndef DPCOPULA_MARGINALS_DWORK_H_
#define DPCOPULA_MARGINALS_DWORK_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace dpcopula::marginals {

/// Dwork's baseline histogram mechanism [13]: adds independent Lap(1/epsilon)
/// noise to every bin count. Adding/removing one record changes exactly one
/// bin by 1, so the histogram's L1 sensitivity is 1. Returns the noisy
/// counts (possibly negative; callers decide whether to post-process).
Result<std::vector<double>> PublishDworkHistogram(
    const std::vector<double>& counts, double epsilon, Rng* rng);

}  // namespace dpcopula::marginals

#endif  // DPCOPULA_MARGINALS_DWORK_H_
