#include "marginals/structurefirst.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanisms.h"
#include "stats/distributions.h"

namespace dpcopula::marginals {

namespace {

// Sum of |x_i - mean| over [a, b) using the prefix sums for the mean.
double IntervalL1Error(const std::vector<double>& x,
                       const std::vector<double>& prefix, std::size_t a,
                       std::size_t b) {
  const double len = static_cast<double>(b - a);
  if (len <= 1.0) return 0.0;
  const double mean = (prefix[b] - prefix[a]) / len;
  double err = 0.0;
  for (std::size_t i = a; i < b; ++i) err += std::fabs(x[i] - mean);
  return err;
}

struct Interval {
  std::size_t lo, hi;  // [lo, hi)
  int level;
};

}  // namespace

Result<std::vector<double>> PublishStructureFirstHistogram(
    const std::vector<double>& counts, double epsilon, Rng* rng,
    const StructureFirstOptions& options) {
  if (counts.empty()) {
    return Status::InvalidArgument("StructureFirst: empty input");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("StructureFirst: epsilon must be > 0");
  }
  if (!(options.structure_budget_fraction > 0.0 &&
        options.structure_budget_fraction < 1.0)) {
    return Status::InvalidArgument(
        "StructureFirst: structure_budget_fraction must be in (0, 1)");
  }
  const std::size_t n = counts.size();
  int depth = options.depth;
  if (depth <= 0) {
    depth = static_cast<int>(
        std::ceil(std::log2(std::max(2.0, static_cast<double>(n) / 8.0))));
    depth = std::clamp(depth, 1, 8);
  }
  const double eps_structure = epsilon * options.structure_budget_fraction;
  const double eps_count = epsilon - eps_structure;
  const double eps_per_level = eps_structure / static_cast<double>(depth);

  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + counts[i];

  std::vector<Interval> work = {{0, n, 0}};
  std::vector<Interval> buckets;
  while (!work.empty()) {
    Interval iv = work.back();
    work.pop_back();
    if (iv.level >= depth || iv.hi - iv.lo <= 1) {
      buckets.push_back(iv);
      continue;
    }
    // Score every interior cut (1-d margins are small, so the quadratic
    // cost is fine here, unlike the multi-dim P-HP case).
    std::vector<double> scores(iv.hi - iv.lo - 1);
    for (std::size_t c = iv.lo + 1; c < iv.hi; ++c) {
      scores[c - iv.lo - 1] = -(IntervalL1Error(counts, prefix, iv.lo, c) +
                                IntervalL1Error(counts, prefix, c, iv.hi));
    }
    DPC_ASSIGN_OR_RETURN(std::size_t pick,
                         dp::ExponentialMechanism(rng, scores, eps_per_level,
                                                  /*sensitivity=*/2.0));
    const std::size_t cut = iv.lo + 1 + pick;
    work.push_back({iv.lo, cut, iv.level + 1});
    work.push_back({cut, iv.hi, iv.level + 1});
  }

  std::vector<double> out(n, 0.0);
  for (const Interval& b : buckets) {
    const double total = prefix[b.hi] - prefix[b.lo];
    const double noisy = total + stats::SampleLaplace(rng, 1.0 / eps_count);
    const double per_bin = noisy / static_cast<double>(b.hi - b.lo);
    for (std::size_t i = b.lo; i < b.hi; ++i) out[i] = per_bin;
  }
  return out;
}

}  // namespace dpcopula::marginals
