#include "marginals/postprocess.h"

#include <algorithm>
#include <numeric>

namespace dpcopula::marginals {

std::vector<double> ProjectToSimplex(const std::vector<double>& counts,
                                     double total) {
  total = std::max(0.0, total);
  const std::size_t n = counts.size();
  if (n == 0) return {};

  // Find tau >= 0 with sum_i max(0, c_i - tau) = total via binary search
  // over the sorted counts (exact breakpoint search).
  std::vector<double> sorted = counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  // Positive part at tau = 0.
  double positive = 0.0;
  for (double c : sorted) positive += std::max(0.0, c);
  std::vector<double> out(n);
  if (positive <= total) {
    // Cannot shed mass; scale the positive part up to the target instead.
    const double scale = (positive > 0.0) ? total / positive : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::max(0.0, counts[i]) * scale;
    }
    return out;
  }

  // Walk the sorted counts accumulating prefix sums; for tau between
  // sorted[k] and sorted[k-1], mass(tau) = prefix_k - k * tau.
  double prefix = 0.0;
  double tau = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    prefix += sorted[k - 1];
    const double next = (k < n) ? std::max(0.0, sorted[k]) : 0.0;
    // Candidate tau solving prefix - k * tau = total on this segment.
    const double candidate = (prefix - total) / static_cast<double>(k);
    if (candidate >= next && candidate <= sorted[k - 1]) {
      tau = candidate;
      break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::max(0.0, counts[i] - tau);
  }
  return out;
}

std::vector<double> ProjectToNoisyTotal(const std::vector<double>& counts) {
  const double total =
      std::accumulate(counts.begin(), counts.end(), 0.0);
  return ProjectToSimplex(counts, total);
}

}  // namespace dpcopula::marginals
