#ifndef DPCOPULA_MARGINALS_EFPA_H_
#define DPCOPULA_MARGINALS_EFPA_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace dpcopula::marginals {

/// EFPA — Enhanced Fourier Perturbation Algorithm (Acs, Castelluccia &
/// Chen [1]) — the method DPCopula uses to publish its DP marginal
/// histograms (paper §4.1 step 1).
///
/// The histogram is moved into an orthonormal frequency basis (we use
/// DCT-II; see DESIGN.md §3 on this substitution), the number k of retained
/// low-frequency coefficients is chosen *privately* with the exponential
/// mechanism scoring the expected reconstruction error (compression tail
/// energy + Laplace noise energy), the k retained coefficients get
/// Lap(sqrt(k)/epsilon_noise) noise (the L1 sensitivity of k orthonormal
/// coefficients is at most sqrt(k) because one record changes the
/// coefficient vector by at most 1 in L2), and the inverse transform
/// reconstructs the histogram.
///
/// Budget split: epsilon/2 for selecting k, epsilon/2 for the noise.
///
/// The private selection additionally considers the *identity* release
/// (per-bin Laplace, Dwork's method) as a candidate, whose expected-error
/// score is data-independent: for spiky, incompressible histograms (e.g.
/// zipf margins) identity noise dominates any frequency truncation, and
/// the exponential mechanism will pick it.
struct EfpaOptions {
  /// Fraction of the budget spent on the private selection of k.
  double selection_fraction = 0.5;
};

/// Publishes a noisy histogram with `epsilon`-DP. Output may contain
/// negative values; callers clamp as needed.
Result<std::vector<double>> PublishEfpaHistogram(
    const std::vector<double>& counts, double epsilon, Rng* rng,
    const EfpaOptions& options = {});

/// Expected squared reconstruction error if k coefficients are kept:
/// tail energy + k Laplace variances (exposed for tests/ablation).
double EfpaExpectedError(const std::vector<double>& spectrum_sq_tail,
                         std::size_t k, double epsilon_noise);

}  // namespace dpcopula::marginals

#endif  // DPCOPULA_MARGINALS_EFPA_H_
