#include "marginals/dwork.h"

#include "dp/mechanisms.h"

namespace dpcopula::marginals {

Result<std::vector<double>> PublishDworkHistogram(
    const std::vector<double>& counts, double epsilon, Rng* rng) {
  if (counts.empty()) {
    return Status::InvalidArgument("Dwork histogram: empty input");
  }
  DPC_ASSIGN_OR_RETURN(dp::LaplaceMechanism mech,
                       dp::LaplaceMechanism::Create(epsilon, 1.0));
  return mech.PerturbVector(rng, counts);
}

}  // namespace dpcopula::marginals
