#ifndef DPCOPULA_MARGINALS_NOISEFIRST_H_
#define DPCOPULA_MARGINALS_NOISEFIRST_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace dpcopula::marginals {

/// NoiseFirst (Xu et al., ICDE 2012 [41]) — one of the 1-d DP histogram
/// publishers the paper lists as pluggable into DPCopula's step 1.
///
/// Perturbs every bin with Lap(1/epsilon) first, then — as pure
/// post-processing — merges adjacent bins into B buckets by dynamic
/// programming and replaces each bucket with its mean. Merging k noisy bins
/// averages their Laplace noise (variance / k) at the cost of within-bucket
/// structure error, so the optimal B balances noise against histogram
/// detail. The bucket count is chosen by minimizing the DP objective
///   sum_buckets [ within-bucket SSE of noisy counts - |bucket| * 2/eps^2 ]
/// which is the standard unbiased estimate of the true reconstruction
/// error (subtracting the known noise variance 2/eps^2 per merged bin).
struct NoiseFirstOptions {
  /// Maximum bucket count explored by the dynamic program; 0 picks
  /// min(n, 64). The DP is O(n^2 * max_buckets).
  std::size_t max_buckets = 0;
};

Result<std::vector<double>> PublishNoiseFirstHistogram(
    const std::vector<double>& counts, double epsilon, Rng* rng,
    const NoiseFirstOptions& options = {});

/// The post-processing half (exposed for tests): optimal contiguous
/// partition of `noisy` into at most `max_buckets` buckets under the
/// noise-corrected SSE objective, each bucket replaced by its mean.
std::vector<double> MergeNoisyHistogram(const std::vector<double>& noisy,
                                        double noise_variance,
                                        std::size_t max_buckets);

}  // namespace dpcopula::marginals

#endif  // DPCOPULA_MARGINALS_NOISEFIRST_H_
