#include "marginals/marginal_method.h"

#include "marginals/dwork.h"
#include "marginals/efpa.h"
#include "marginals/noisefirst.h"
#include "marginals/structurefirst.h"

namespace dpcopula::marginals {

Result<std::vector<double>> PublishMarginal(MarginalMethod method,
                                            const std::vector<double>& counts,
                                            double epsilon, Rng* rng) {
  switch (method) {
    case MarginalMethod::kEfpa:
      return PublishEfpaHistogram(counts, epsilon, rng);
    case MarginalMethod::kDwork:
      return PublishDworkHistogram(counts, epsilon, rng);
    case MarginalMethod::kNoiseFirst:
      return PublishNoiseFirstHistogram(counts, epsilon, rng);
    case MarginalMethod::kStructureFirst:
      return PublishStructureFirstHistogram(counts, epsilon, rng);
  }
  return Status::InvalidArgument("unknown marginal method");
}

}  // namespace dpcopula::marginals
