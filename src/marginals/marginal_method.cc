#include "marginals/marginal_method.h"

#include "marginals/dwork.h"
#include "marginals/efpa.h"
#include "marginals/noisefirst.h"
#include "marginals/structurefirst.h"
#include "obs/metrics.h"

namespace dpcopula::marginals {

namespace {

// One publish counter + latency histogram per method, created lazily on the
// first publish and cached for the process lifetime. Indexed by the enum so
// the hot path never builds a metric-name string.
struct MethodMetrics {
  obs::Counter* publishes;
  obs::Histogram* publish_seconds;
};

MethodMetrics& MetricsFor(MarginalMethod method) {
  static MethodMetrics efpa = {
      obs::MetricsRegistry::Global().GetCounter("marginals.efpa.publishes"),
      obs::MetricsRegistry::Global().GetHistogram(
          "marginals.efpa.publish_seconds")};
  static MethodMetrics dwork = {
      obs::MetricsRegistry::Global().GetCounter("marginals.dwork.publishes"),
      obs::MetricsRegistry::Global().GetHistogram(
          "marginals.dwork.publish_seconds")};
  static MethodMetrics noisefirst = {
      obs::MetricsRegistry::Global().GetCounter(
          "marginals.noisefirst.publishes"),
      obs::MetricsRegistry::Global().GetHistogram(
          "marginals.noisefirst.publish_seconds")};
  static MethodMetrics structurefirst = {
      obs::MetricsRegistry::Global().GetCounter(
          "marginals.structurefirst.publishes"),
      obs::MetricsRegistry::Global().GetHistogram(
          "marginals.structurefirst.publish_seconds")};
  switch (method) {
    case MarginalMethod::kDwork:
      return dwork;
    case MarginalMethod::kNoiseFirst:
      return noisefirst;
    case MarginalMethod::kStructureFirst:
      return structurefirst;
    case MarginalMethod::kEfpa:
      break;
  }
  return efpa;
}

}  // namespace

const char* MarginalMethodName(MarginalMethod method) {
  switch (method) {
    case MarginalMethod::kEfpa:
      return "efpa";
    case MarginalMethod::kDwork:
      return "dwork";
    case MarginalMethod::kNoiseFirst:
      return "noisefirst";
    case MarginalMethod::kStructureFirst:
      return "structurefirst";
  }
  return "unknown";
}

Result<std::vector<double>> PublishMarginal(MarginalMethod method,
                                            const std::vector<double>& counts,
                                            double epsilon, Rng* rng) {
  MethodMetrics& metrics = MetricsFor(method);
  metrics.publishes->Increment();
  obs::ScopedTimer timer(metrics.publish_seconds);
  switch (method) {
    case MarginalMethod::kEfpa:
      return PublishEfpaHistogram(counts, epsilon, rng);
    case MarginalMethod::kDwork:
      return PublishDworkHistogram(counts, epsilon, rng);
    case MarginalMethod::kNoiseFirst:
      return PublishNoiseFirstHistogram(counts, epsilon, rng);
    case MarginalMethod::kStructureFirst:
      return PublishStructureFirstHistogram(counts, epsilon, rng);
  }
  return Status::InvalidArgument("unknown marginal method");
}

}  // namespace dpcopula::marginals
