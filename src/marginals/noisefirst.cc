#include "marginals/noisefirst.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "marginals/dwork.h"

namespace dpcopula::marginals {

std::vector<double> MergeNoisyHistogram(const std::vector<double>& noisy,
                                        double noise_variance,
                                        std::size_t max_buckets) {
  const std::size_t n = noisy.size();
  if (n == 0) return {};
  max_buckets = std::max<std::size_t>(1, std::min(max_buckets, n));

  // Prefix sums for O(1) bucket SSE: SSE(a, b) = sum y^2 - (sum y)^2 / len.
  std::vector<double> sum(n + 1, 0.0), sum_sq(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i + 1] = sum[i] + noisy[i];
    sum_sq[i + 1] = sum_sq[i] + noisy[i] * noisy[i];
  }
  auto sse = [&](std::size_t a, std::size_t b) {  // [a, b)
    const double s = sum[b] - sum[a];
    const double len = static_cast<double>(b - a);
    return (sum_sq[b] - sum_sq[a]) - s * s / len;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[j] for the current bucket count; cut[k][j] = best last cut.
  std::vector<double> prev(n + 1, kInf), cur(n + 1, kInf);
  std::vector<std::vector<std::size_t>> cut(
      max_buckets + 1, std::vector<std::size_t>(n + 1, 0));
  prev[0] = 0.0;
  double best_objective = kInf;
  std::size_t best_buckets = 1;
  std::vector<double> best_dp;

  for (std::size_t k = 1; k <= max_buckets; ++k) {
    std::fill(cur.begin(), cur.end(), kInf);
    for (std::size_t j = k; j <= n; ++j) {
      for (std::size_t a = k - 1; a < j; ++a) {
        if (prev[a] == kInf) continue;
        const double cand = prev[a] + sse(a, j);
        if (cand < cur[j]) {
          cur[j] = cand;
          cut[k][j] = a;
        }
      }
    }
    // Model-selection objective: within-bucket SSE of the noisy counts plus
    // a per-bucket penalty. The unbiased correction alone (2 * var) is too
    // weak because the DP minimizes over ~n cut positions per bucket, whose
    // extreme-order SSE gain scales with var * log n; the log factor
    // compensates for that selection bias (BIC-style).
    const double penalty =
        2.0 * noise_variance *
        std::log(std::max<double>(3.0, static_cast<double>(n)));
    const double objective = cur[n] + penalty * static_cast<double>(k);
    if (objective < best_objective) {
      best_objective = objective;
      best_buckets = k;
    }
    std::swap(prev, cur);
  }

  // Recover the best segmentation by re-running the DP up to best_buckets
  // (cut[][] already holds every level's argmins).
  std::vector<std::size_t> boundaries;  // Descending cut positions.
  {
    std::size_t j = n;
    for (std::size_t k = best_buckets; k >= 1; --k) {
      boundaries.push_back(j);
      j = cut[k][j];
    }
    boundaries.push_back(0);
    std::reverse(boundaries.begin(), boundaries.end());
  }

  std::vector<double> out(n);
  for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
    const std::size_t a = boundaries[b];
    const std::size_t e = boundaries[b + 1];
    const double mean =
        (sum[e] - sum[a]) / static_cast<double>(e - a);
    for (std::size_t i = a; i < e; ++i) out[i] = mean;
  }
  return out;
}

Result<std::vector<double>> PublishNoiseFirstHistogram(
    const std::vector<double>& counts, double epsilon, Rng* rng,
    const NoiseFirstOptions& options) {
  if (counts.empty()) {
    return Status::InvalidArgument("NoiseFirst: empty input");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("NoiseFirst: epsilon must be > 0");
  }
  // Noise first: the entire budget goes into per-bin Laplace noise; the
  // merge is post-processing.
  DPC_ASSIGN_OR_RETURN(std::vector<double> noisy,
                       PublishDworkHistogram(counts, epsilon, rng));
  const double noise_variance = 2.0 / (epsilon * epsilon);
  std::size_t max_buckets = options.max_buckets;
  if (max_buckets == 0) {
    max_buckets = std::min<std::size_t>(counts.size(), 64);
  }
  return MergeNoisyHistogram(noisy, noise_variance, max_buckets);
}

}  // namespace dpcopula::marginals
