#include "hist/histogram.h"

#include <algorithm>
#include <cmath>

namespace dpcopula::hist {

Result<Histogram> Histogram::Create(std::vector<std::int64_t> dims,
                                    std::uint64_t max_cells) {
  if (dims.empty()) {
    return Status::InvalidArgument("histogram needs >= 1 dimension");
  }
  std::uint64_t cells = 1;
  for (std::int64_t d : dims) {
    if (d <= 0) return Status::InvalidArgument("dimension size must be > 0");
    if (cells > max_cells / static_cast<std::uint64_t>(d)) {
      return Status::ResourceExhausted(
          "histogram would exceed the cell budget (" +
          std::to_string(max_cells) +
          " cells); dense-histogram methods do not scale to this domain");
    }
    cells *= static_cast<std::uint64_t>(d);
  }
  Histogram h;
  h.dims_ = std::move(dims);
  h.strides_.resize(h.dims_.size());
  std::uint64_t stride = 1;
  for (std::size_t j = h.dims_.size(); j-- > 0;) {
    h.strides_[j] = stride;
    stride *= static_cast<std::uint64_t>(h.dims_[j]);
  }
  h.data_.assign(cells, 0.0);
  return h;
}

Result<Histogram> Histogram::FromTable(const data::Table& table,
                                       std::uint64_t max_cells) {
  std::vector<std::int64_t> dims;
  dims.reserve(table.schema().num_attributes());
  for (const auto& attr : table.schema().attributes()) {
    dims.push_back(attr.domain_size);
  }
  DPC_ASSIGN_OR_RETURN(Histogram h, Create(std::move(dims), max_cells));
  std::vector<std::int64_t> idx(table.num_columns());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t j = 0; j < table.num_columns(); ++j) {
      idx[j] = static_cast<std::int64_t>(std::llround(table.at(r, j)));
    }
    h.Add(idx, 1.0);
  }
  return h;
}

Result<Histogram> Histogram::FromColumn(const data::Table& table,
                                        std::size_t col) {
  if (col >= table.num_columns()) {
    return Status::OutOfRange("FromColumn: column index out of range");
  }
  DPC_ASSIGN_OR_RETURN(
      Histogram h, Create({table.schema().attribute(col).domain_size}));
  for (double v : table.column(col)) {
    h.mutable_data()[static_cast<std::size_t>(std::llround(v))] += 1.0;
  }
  return h;
}

std::uint64_t Histogram::FlatIndex(
    const std::vector<std::int64_t>& index) const {
  std::uint64_t flat = 0;
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    flat += static_cast<std::uint64_t>(index[j]) * strides_[j];
  }
  return flat;
}

double Histogram::At(const std::vector<std::int64_t>& index) const {
  return data_[FlatIndex(index)];
}

void Histogram::Set(const std::vector<std::int64_t>& index, double value) {
  data_[FlatIndex(index)] = value;
}

void Histogram::Add(const std::vector<std::int64_t>& index, double delta) {
  data_[FlatIndex(index)] += delta;
}

double Histogram::RangeSum(const std::vector<std::int64_t>& lo,
                           const std::vector<std::int64_t>& hi) const {
  const std::size_t m = dims_.size();
  std::vector<std::int64_t> clo(m), chi(m);
  for (std::size_t j = 0; j < m; ++j) {
    clo[j] = std::clamp<std::int64_t>(lo[j], 0, dims_[j] - 1);
    chi[j] = std::clamp<std::int64_t>(hi[j], 0, dims_[j] - 1);
    if (clo[j] > chi[j]) return 0.0;
  }
  // Odometer over dimensions 0..m-2; the last dimension is summed as a
  // contiguous run per odometer position.
  const std::size_t last = m - 1;
  std::vector<std::int64_t> cursor(clo.begin(), clo.end());
  double total = 0.0;
  for (;;) {
    std::uint64_t base = 0;
    for (std::size_t j = 0; j < last; ++j) {
      base += static_cast<std::uint64_t>(cursor[j]) * strides_[j];
    }
    for (std::int64_t v = clo[last]; v <= chi[last]; ++v) {
      total += data_[base + static_cast<std::uint64_t>(v)];
    }
    if (last == 0) return total;
    // Advance, carrying from the least significant odometer digit.
    bool carried = true;
    for (std::size_t t = last; t-- > 0;) {
      if (++cursor[t] <= chi[t]) {
        carried = false;
        break;
      }
      cursor[t] = clo[t];
    }
    if (carried) return total;
  }
}

double Histogram::Total() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

void Histogram::ClampNonNegative() {
  for (double& v : data_) v = std::max(0.0, v);
}

}  // namespace dpcopula::hist
