#include "hist/wavelet.h"

#include <cmath>

namespace dpcopula::hist {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865476;

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// In-place full orthonormal Haar decomposition of x[0..n), n a power of two.
void HaarForwardInPlace(std::vector<double>* x) {
  const std::size_t n = x->size();
  std::vector<double> tmp(n);
  for (std::size_t len = n; len >= 2; len >>= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[i] = ((*x)[2 * i] + (*x)[2 * i + 1]) * kInvSqrt2;
      tmp[half + i] = ((*x)[2 * i] - (*x)[2 * i + 1]) * kInvSqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(len),
              x->begin());
  }
}

void HaarInverseInPlace(std::vector<double>* x) {
  const std::size_t n = x->size();
  std::vector<double> tmp(n);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[2 * i] = ((*x)[i] + (*x)[half + i]) * kInvSqrt2;
      tmp[2 * i + 1] = ((*x)[i] - (*x)[half + i]) * kInvSqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(len),
              x->begin());
  }
}

// Applies `op` to every 1-d line of `h` along axis `ax`.
void ForEachLine(Histogram* h, std::size_t ax,
                 void (*op)(std::vector<double>*)) {
  const auto& dims = h->dims();
  const std::size_t m = dims.size();
  const auto axis_len = static_cast<std::size_t>(dims[ax]);

  // Stride of axis `ax` in the flat layout (row-major, last fastest).
  std::vector<std::uint64_t> strides(m);
  std::uint64_t stride = 1;
  for (std::size_t j = m; j-- > 0;) {
    strides[j] = stride;
    stride *= static_cast<std::uint64_t>(dims[j]);
  }

  std::vector<std::int64_t> cursor(m, 0);
  std::vector<double> line(axis_len);
  auto& data = h->mutable_data();
  for (;;) {
    std::uint64_t base = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (j != ax) base += static_cast<std::uint64_t>(cursor[j]) * strides[j];
    }
    for (std::size_t i = 0; i < axis_len; ++i) {
      line[i] = data[base + i * strides[ax]];
    }
    op(&line);
    for (std::size_t i = 0; i < axis_len; ++i) {
      data[base + i * strides[ax]] = line[i];
    }
    // Odometer over all axes except `ax`.
    bool carried = true;
    for (std::size_t t = m; t-- > 0;) {
      if (t == ax) continue;
      if (++cursor[t] < dims[t]) {
        carried = false;
        break;
      }
      cursor[t] = 0;
    }
    if (carried) return;
  }
}

// Copies the overlapping region of `src` into `dst` (both histograms, dims
// may differ per axis).
void CopyOverlap(const Histogram& src, Histogram* dst) {
  const std::size_t m = src.num_dims();
  std::vector<std::int64_t> extent(m);
  for (std::size_t j = 0; j < m; ++j) {
    extent[j] = std::min(src.dims()[j], dst->dims()[j]);
  }
  std::vector<std::int64_t> cursor(m, 0);
  for (;;) {
    dst->Set(cursor, src.At(cursor));
    bool carried = true;
    for (std::size_t t = m; t-- > 0;) {
      if (++cursor[t] < extent[t]) {
        carried = false;
        break;
      }
      cursor[t] = 0;
    }
    if (carried) return;
  }
}

}  // namespace

std::vector<double> ForwardHaar(const std::vector<double>& input) {
  std::vector<double> x = input;
  x.resize(NextPowerOfTwo(std::max<std::size_t>(1, x.size())), 0.0);
  HaarForwardInPlace(&x);
  return x;
}

std::vector<double> InverseHaar(const std::vector<double>& coeffs) {
  std::vector<double> x = coeffs;
  HaarInverseInPlace(&x);
  return x;
}

int HaarLevels(std::size_t padded_length) {
  int levels = 0;
  while (padded_length > 1) {
    padded_length >>= 1;
    ++levels;
  }
  return levels;
}

int HaarCoefficientLevel(std::size_t index) {
  if (index == 0) return 0;
  int level = 0;
  while (index > 0) {
    index >>= 1;
    ++level;
  }
  return level;
}

Result<Histogram> ForwardHaarMultiDim(const Histogram& h) {
  return ForwardHaarMultiDim(h, std::vector<bool>(h.num_dims(), true));
}

Result<Histogram> InverseHaarMultiDim(
    const Histogram& coeffs, const std::vector<std::int64_t>& original_dims) {
  return InverseHaarMultiDim(coeffs, original_dims,
                             std::vector<bool>(coeffs.num_dims(), true));
}

Result<Histogram> ForwardHaarMultiDim(
    const Histogram& h, const std::vector<bool>& transform_axis) {
  if (transform_axis.size() != h.num_dims()) {
    return Status::InvalidArgument("transform_axis size mismatch");
  }
  std::vector<std::int64_t> padded(h.num_dims());
  for (std::size_t j = 0; j < h.num_dims(); ++j) {
    padded[j] = transform_axis[j]
                    ? static_cast<std::int64_t>(NextPowerOfTwo(
                          static_cast<std::size_t>(h.dims()[j])))
                    : h.dims()[j];
  }
  DPC_ASSIGN_OR_RETURN(Histogram out, Histogram::Create(padded));
  CopyOverlap(h, &out);
  for (std::size_t ax = 0; ax < out.num_dims(); ++ax) {
    if (transform_axis[ax]) ForEachLine(&out, ax, &HaarForwardInPlace);
  }
  return out;
}

Result<Histogram> InverseHaarMultiDim(
    const Histogram& coeffs, const std::vector<std::int64_t>& original_dims,
    const std::vector<bool>& transform_axis) {
  if (transform_axis.size() != coeffs.num_dims()) {
    return Status::InvalidArgument("transform_axis size mismatch");
  }
  Histogram work = coeffs;
  for (std::size_t ax = 0; ax < work.num_dims(); ++ax) {
    if (transform_axis[ax]) ForEachLine(&work, ax, &HaarInverseInPlace);
  }
  DPC_ASSIGN_OR_RETURN(Histogram out, Histogram::Create(original_dims));
  CopyOverlap(work, &out);
  return out;
}

}  // namespace dpcopula::hist
