#ifndef DPCOPULA_HIST_DCT_H_
#define DPCOPULA_HIST_DCT_H_

#include <vector>

namespace dpcopula::hist {

/// Orthonormal DCT-II and its inverse (DCT-III). For input x of length N:
///   X_k = s_k * sum_n x_n cos(pi (n + 1/2) k / N),  s_0 = sqrt(1/N),
///   s_k = sqrt(2/N) for k > 0.
/// Orthonormality gives Parseval's identity, which the EFPA error analysis
/// relies on. Direct O(N^2) evaluation — domains in this library are at
/// most ~1000 bins, where the quadratic cost is negligible and avoids FFT
/// round-off subtleties for non-power-of-two lengths.
std::vector<double> ForwardDct(const std::vector<double>& x);
std::vector<double> InverseDct(const std::vector<double>& coeffs);

}  // namespace dpcopula::hist

#endif  // DPCOPULA_HIST_DCT_H_
