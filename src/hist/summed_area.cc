#include "hist/summed_area.h"

#include <algorithm>

namespace dpcopula::hist {

Result<SummedAreaTable> SummedAreaTable::Build(const Histogram& h) {
  if (h.num_dims() == 0) {
    return Status::InvalidArgument("summed-area: empty histogram");
  }
  SummedAreaTable table;
  table.dims_ = h.dims();
  table.strides_.resize(table.dims_.size());
  std::uint64_t stride = 1;
  for (std::size_t j = table.dims_.size(); j-- > 0;) {
    table.strides_[j] = stride;
    stride *= static_cast<std::uint64_t>(table.dims_[j]);
  }
  table.prefix_ = h.data();

  // Standard per-axis prefix pass: after processing axis j, prefix_[idx]
  // holds the sum over all cells with coordinate_j' <= coordinate_j and
  // previous axes already accumulated.
  const std::uint64_t cells = table.prefix_.size();
  for (std::size_t ax = 0; ax < table.dims_.size(); ++ax) {
    const std::uint64_t ax_stride = table.strides_[ax];
    const auto ax_len = static_cast<std::uint64_t>(table.dims_[ax]);
    for (std::uint64_t base = 0; base < cells; ++base) {
      // Only process cells whose ax coordinate is 0 to start each run.
      const std::uint64_t coord = (base / ax_stride) % ax_len;
      if (coord != 0) continue;
      for (std::uint64_t k = 1; k < ax_len; ++k) {
        table.prefix_[base + k * ax_stride] +=
            table.prefix_[base + (k - 1) * ax_stride];
      }
    }
  }
  return table;
}

double SummedAreaTable::RangeSum(const std::vector<std::int64_t>& lo,
                                 const std::vector<std::int64_t>& hi) const {
  const std::size_t m = dims_.size();
  std::vector<std::int64_t> clo(m), chi(m);
  for (std::size_t j = 0; j < m; ++j) {
    clo[j] = std::clamp<std::int64_t>(lo[j], 0, dims_[j] - 1);
    chi[j] = std::clamp<std::int64_t>(hi[j], 0, dims_[j] - 1);
    if (clo[j] > chi[j]) return 0.0;
  }
  // Inclusion–exclusion over the 2^m corners: corner bit j picks hi_j
  // (sign +) or lo_j - 1 (sign -, skip if < 0).
  double total = 0.0;
  const std::uint64_t corners = 1ULL << m;
  for (std::uint64_t mask = 0; mask < corners; ++mask) {
    std::uint64_t flat = 0;
    int sign = 1;
    bool skip = false;
    for (std::size_t j = 0; j < m && !skip; ++j) {
      if (mask & (1ULL << j)) {
        flat += static_cast<std::uint64_t>(chi[j]) * strides_[j];
      } else {
        if (clo[j] == 0) {
          skip = true;  // Empty lower part contributes nothing.
          break;
        }
        flat += static_cast<std::uint64_t>(clo[j] - 1) * strides_[j];
        sign = -sign;
      }
    }
    if (!skip) total += sign * prefix_[flat];
  }
  return total;
}

}  // namespace dpcopula::hist
