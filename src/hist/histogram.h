#ifndef DPCOPULA_HIST_HISTOGRAM_H_
#define DPCOPULA_HIST_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace dpcopula::hist {

/// Dense m-dimensional histogram over the product domain of a schema's
/// attributes. Used by the histogram-input baselines (Privelet+, FP, P-HP)
/// and, in 1-d form, by the DP marginal publishers.
///
/// Materializing the full product domain is exactly the scalability weakness
/// the paper attributes to these methods; `Create` therefore enforces an
/// explicit cell budget and fails loudly instead of exhausting memory.
class Histogram {
 public:
  /// Maximum number of cells `Create` will materialize by default (2^26
  /// doubles = 512 MiB is far above this; 2^26 cells = 64M).
  static constexpr std::uint64_t kDefaultMaxCells = 1ULL << 26;

  /// Builds an all-zero histogram for the given per-dimension sizes.
  static Result<Histogram> Create(std::vector<std::int64_t> dims,
                                  std::uint64_t max_cells = kDefaultMaxCells);

  /// Builds the frequency histogram of `table` (every attribute becomes one
  /// dimension).
  static Result<Histogram> FromTable(
      const data::Table& table, std::uint64_t max_cells = kDefaultMaxCells);

  /// Builds the 1-d frequency histogram of column `col` of `table`.
  static Result<Histogram> FromColumn(const data::Table& table,
                                      std::size_t col);

  std::size_t num_dims() const { return dims_.size(); }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::uint64_t num_cells() const { return data_.size(); }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Cell accessors by multi-index.
  double At(const std::vector<std::int64_t>& index) const;
  void Set(const std::vector<std::int64_t>& index, double value);
  void Add(const std::vector<std::int64_t>& index, double delta);

  /// Flat offset of a multi-index (row-major, last dimension fastest).
  std::uint64_t FlatIndex(const std::vector<std::int64_t>& index) const;

  /// Sum over the axis-aligned box lo[j] <= v_j <= hi[j] (inclusive).
  /// Indices are clamped to the domain.
  double RangeSum(const std::vector<std::int64_t>& lo,
                  const std::vector<std::int64_t>& hi) const;

  /// Total mass.
  double Total() const;

  /// Clamps negative cells to zero (standard non-negativity
  /// post-processing; does not affect privacy).
  void ClampNonNegative();

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::uint64_t> strides_;
  std::vector<double> data_;
};

}  // namespace dpcopula::hist

#endif  // DPCOPULA_HIST_HISTOGRAM_H_
