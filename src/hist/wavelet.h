#ifndef DPCOPULA_HIST_WAVELET_H_
#define DPCOPULA_HIST_WAVELET_H_

#include <vector>

#include "common/result.h"
#include "hist/histogram.h"

namespace dpcopula::hist {

/// Orthonormal 1-d Haar wavelet transform. `ForwardHaar` pads the input
/// with zeros to the next power of two (the padded length is returned via
/// the output size); `InverseHaar` inverts exactly. The transform is
/// orthonormal (1/sqrt(2) butterflies), so Parseval holds and independent
/// per-coefficient noise maps back to bounded per-cell noise — the property
/// Privelet exploits.
std::vector<double> ForwardHaar(const std::vector<double>& input);
std::vector<double> InverseHaar(const std::vector<double>& coeffs);

/// Number of levels in a length-n (power of two) Haar transform: log2(n).
int HaarLevels(std::size_t padded_length);

/// Level of coefficient `index` in the standard layout produced by
/// ForwardHaar: index 0 is the scaling (average) coefficient (level 0);
/// detail coefficients at positions [2^{l-1}, 2^l) belong to level l.
int HaarCoefficientLevel(std::size_t index);

/// Nested (separable) multi-dimensional Haar transform of a histogram:
/// applies the 1-d transform along each axis in turn. Each axis is padded
/// to a power of two, so the returned histogram's dims may exceed the
/// input's; `InverseHaarMultiDim` undoes both transform and padding given
/// the original dims.
Result<Histogram> ForwardHaarMultiDim(const Histogram& h);
Result<Histogram> InverseHaarMultiDim(const Histogram& coeffs,
                                      const std::vector<std::int64_t>&
                                          original_dims);

/// Selective variants: axis j is transformed only when transform_axis[j] is
/// true (untransformed axes keep their original length — no padding).
/// Privelet+ uses this to leave tiny dimensions in the count domain.
Result<Histogram> ForwardHaarMultiDim(const Histogram& h,
                                      const std::vector<bool>& transform_axis);
Result<Histogram> InverseHaarMultiDim(const Histogram& coeffs,
                                      const std::vector<std::int64_t>&
                                          original_dims,
                                      const std::vector<bool>& transform_axis);

}  // namespace dpcopula::hist

#endif  // DPCOPULA_HIST_WAVELET_H_
