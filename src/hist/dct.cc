#include "hist/dct.h"

#include <cmath>

namespace dpcopula::hist {

std::vector<double> ForwardDct(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  const double pi_over_n = M_PI / static_cast<double>(n);
  const double s0 = std::sqrt(1.0 / static_cast<double>(n));
  const double sk = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(pi_over_n * (static_cast<double>(i) + 0.5) *
                             static_cast<double>(k));
    }
    out[k] = (k == 0 ? s0 : sk) * acc;
  }
  return out;
}

std::vector<double> InverseDct(const std::vector<double>& coeffs) {
  const std::size_t n = coeffs.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  const double pi_over_n = M_PI / static_cast<double>(n);
  const double s0 = std::sqrt(1.0 / static_cast<double>(n));
  const double sk = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    double acc = s0 * coeffs[0];
    for (std::size_t k = 1; k < n; ++k) {
      acc += sk * coeffs[k] *
             std::cos(pi_over_n * (static_cast<double>(i) + 0.5) *
                      static_cast<double>(k));
    }
    out[i] = acc;
  }
  return out;
}

}  // namespace dpcopula::hist
