#ifndef DPCOPULA_HIST_SUMMED_AREA_H_
#define DPCOPULA_HIST_SUMMED_AREA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "hist/histogram.h"

namespace dpcopula::hist {

/// Summed-area table (m-dimensional prefix sums) over a histogram: answers
/// any axis-aligned range sum in O(2^m) lookups instead of O(|range|)
/// cell visits. Build cost O(m * cells). This is the classic database
/// prefix-aggregate structure; the evaluation harness uses it to keep
/// dense-histogram baselines queryable at 10^6+ cells.
class SummedAreaTable {
 public:
  /// Builds prefix sums over `h` (O(m * cells)).
  static Result<SummedAreaTable> Build(const Histogram& h);

  /// Sum over the inclusive box [lo, hi] via inclusion–exclusion; indices
  /// are clamped to the domain. Matches Histogram::RangeSum up to
  /// floating-point round-off.
  double RangeSum(const std::vector<std::int64_t>& lo,
                  const std::vector<std::int64_t>& hi) const;

  const std::vector<std::int64_t>& dims() const { return dims_; }

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::uint64_t> strides_;
  std::vector<double> prefix_;  // prefix[i...] = sum of cells <= i (per axis).
};

}  // namespace dpcopula::hist

#endif  // DPCOPULA_HIST_SUMMED_AREA_H_
