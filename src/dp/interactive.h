#ifndef DPCOPULA_DP_INTERACTIVE_H_
#define DPCOPULA_DP_INTERACTIVE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "dp/budget.h"

namespace dpcopula::dp {

/// Interactive differentially private query answering — the alternative the
/// paper's introduction contrasts DPCopula against: each range-count query
/// is answered with fresh Laplace noise and permanently consumes part of
/// the privacy budget (sequential composition); once the budget is
/// exhausted the engine refuses further queries, while a synthetic dataset
/// can be queried forever.
class InteractiveEngine {
 public:
  /// Serves queries over `table` under a lifetime budget of `epsilon`.
  /// The table is copied; the engine owns its data.
  InteractiveEngine(data::Table table, double epsilon);

  /// Answers SELECT COUNT(*) WHERE lo <= A <= hi (inclusive per attribute)
  /// spending `query_epsilon` of the remaining budget. A range count has
  /// sensitivity 1, so the noise is Lap(1/query_epsilon). Returns
  /// PrivacyBudgetExceeded once the lifetime budget cannot cover the
  /// charge.
  Result<double> AnswerRangeCount(const std::vector<std::int64_t>& lo,
                                  const std::vector<std::int64_t>& hi,
                                  double query_epsilon, Rng* rng);

  double remaining_budget() const { return accountant_.remaining(); }
  std::size_t queries_answered() const { return queries_answered_; }

  /// Number of further queries affordable at `query_epsilon` each.
  std::size_t QueriesRemaining(double query_epsilon) const;

 private:
  data::Table table_;
  BudgetAccountant accountant_;
  std::size_t queries_answered_ = 0;
};

}  // namespace dpcopula::dp

#endif  // DPCOPULA_DP_INTERACTIVE_H_
