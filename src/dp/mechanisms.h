#ifndef DPCOPULA_DP_MECHANISMS_H_
#define DPCOPULA_DP_MECHANISMS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace dpcopula::dp {

/// Laplace mechanism (Dwork et al. [16]): releases value + Lap(sensitivity /
/// epsilon). `sensitivity` is the L1 sensitivity of the released quantity.
class LaplaceMechanism {
 public:
  LaplaceMechanism(double epsilon, double sensitivity);

  /// Noise scale b = sensitivity / epsilon.
  double scale() const { return scale_; }
  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }

  /// One perturbed scalar.
  double Perturb(Rng* rng, double value) const;

  /// Element-wise perturbation (the vector must be released under this
  /// epsilon as a whole, i.e. `sensitivity` must bound the L1 change of the
  /// entire vector).
  std::vector<double> PerturbVector(Rng* rng,
                                    const std::vector<double>& values) const;

  /// Validates parameters; factory used by public entry points.
  static Result<LaplaceMechanism> Create(double epsilon, double sensitivity);

 private:
  double epsilon_;
  double sensitivity_;
  double scale_;
};

/// Exponential mechanism (McSherry & Talwar [29]): samples index i with
/// probability proportional to exp(epsilon * score_i / (2 * sensitivity)).
/// Scores are shifted by max for numerical stability. Returns an error for
/// empty score vectors or non-positive epsilon.
Result<std::size_t> ExponentialMechanism(Rng* rng,
                                         const std::vector<double>& scores,
                                         double epsilon, double sensitivity);

/// Geometric mechanism: integer-valued two-sided geometric noise with the
/// same epsilon/sensitivity calibration as Laplace; used where integral
/// counts are released.
double SampleTwoSidedGeometric(Rng* rng, double epsilon, double sensitivity);

}  // namespace dpcopula::dp

#endif  // DPCOPULA_DP_MECHANISMS_H_
