#include "dp/mechanisms.h"

#include <cassert>
#include <cmath>

#include "stats/distributions.h"

namespace dpcopula::dp {

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon),
      sensitivity_(sensitivity),
      scale_(sensitivity / epsilon) {
  assert(epsilon > 0.0 && sensitivity >= 0.0);
}

Result<LaplaceMechanism> LaplaceMechanism::Create(double epsilon,
                                                  double sensitivity) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("Laplace mechanism: epsilon must be > 0");
  }
  if (sensitivity < 0.0 || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument(
        "Laplace mechanism: sensitivity must be >= 0");
  }
  return LaplaceMechanism(epsilon, sensitivity);
}

double LaplaceMechanism::Perturb(Rng* rng, double value) const {
  if (scale_ == 0.0) return value;  // Zero sensitivity => exact release.
  return value + stats::SampleLaplace(rng, scale_);
}

std::vector<double> LaplaceMechanism::PerturbVector(
    Rng* rng, const std::vector<double>& values) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = Perturb(rng, values[i]);
  }
  return out;
}

Result<std::size_t> ExponentialMechanism(Rng* rng,
                                         const std::vector<double>& scores,
                                         double epsilon, double sensitivity) {
  if (scores.empty()) {
    return Status::InvalidArgument("exponential mechanism: empty scores");
  }
  if (!(epsilon > 0.0) || !(sensitivity > 0.0)) {
    return Status::InvalidArgument(
        "exponential mechanism: epsilon and sensitivity must be > 0");
  }
  double max_score = scores[0];
  for (double s : scores) max_score = std::max(max_score, s);
  const double beta = epsilon / (2.0 * sensitivity);

  std::vector<double> weights(scores.size());
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    weights[i] = std::exp(beta * (scores[i] - max_score));
    total += weights[i];
  }
  double u = rng->NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // Round-off fallthrough.
}

double SampleTwoSidedGeometric(Rng* rng, double epsilon, double sensitivity) {
  assert(epsilon > 0.0 && sensitivity > 0.0);
  const double alpha = std::exp(-epsilon / sensitivity);
  // Two-sided geometric = difference of two geometric(1 - alpha) variables;
  // sample via inverse CDF on each side.
  auto sample_geometric = [&]() {
    const double u = rng->NextDoubleOpen();
    return std::floor(std::log(u) / std::log(alpha));
  };
  return sample_geometric() - sample_geometric();
}

}  // namespace dpcopula::dp
