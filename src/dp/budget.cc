#include "dp/budget.h"

#include <cmath>

namespace dpcopula::dp {

namespace {
// Tolerance for floating-point accumulation across many small charges (e.g.
// epsilon/m charged m times).
constexpr double kSlack = 1e-9;
}  // namespace

BudgetAccountant::BudgetAccountant(double epsilon, std::string label)
    : total_(epsilon), label_(std::move(label)) {}

Status BudgetAccountant::Charge(double epsilon, const std::string& what,
                                double sensitivity) {
  if (epsilon < 0.0 || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("budget charge must be finite and >= 0");
  }
  if (spent_ + epsilon > total_ + kSlack) {
    return Status::PrivacyBudgetExceeded(
        label_ + ": charge " + std::to_string(epsilon) + " for '" + what +
        "' exceeds remaining " + std::to_string(remaining()));
  }
  spent_ += epsilon;
  entries_.push_back({epsilon, /*parallel=*/false, what, sensitivity});
  return Status::OK();
}

Status BudgetAccountant::ChargeParallel(double epsilon,
                                        const std::string& what,
                                        double sensitivity) {
  if (epsilon < 0.0 || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("budget charge must be finite and >= 0");
  }
  if (spent_ + epsilon > total_ + kSlack) {
    return Status::PrivacyBudgetExceeded(
        label_ + ": parallel charge " + std::to_string(epsilon) + " for '" +
        what + "' exceeds remaining " + std::to_string(remaining()));
  }
  spent_ += epsilon;
  entries_.push_back({epsilon, /*parallel=*/true, what, sensitivity});
  return Status::OK();
}

void BudgetAccountant::AnnotateLastChargeSensitivity(double sensitivity) {
  if (entries_.empty()) return;
  entries_.back().sensitivity = sensitivity;
}

}  // namespace dpcopula::dp
