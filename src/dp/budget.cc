#include "dp/budget.h"

#include <cmath>

namespace dpcopula::dp {

namespace {
// Tolerance for floating-point accumulation across many small charges (e.g.
// epsilon/m charged m times).
constexpr double kSlack = 1e-9;
}  // namespace

BudgetAccountant::BudgetAccountant(double epsilon, std::string label)
    : total_(epsilon), label_(std::move(label)) {}

BudgetAccountant::BudgetAccountant(const BudgetAccountant& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  total_ = other.total_;
  spent_ = other.spent_;
  label_ = other.label_;
  entries_ = other.entries_;
}

BudgetAccountant& BudgetAccountant::operator=(const BudgetAccountant& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  total_ = other.total_;
  spent_ = other.spent_;
  label_ = other.label_;
  entries_ = other.entries_;
  return *this;
}

BudgetAccountant::BudgetAccountant(BudgetAccountant&& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  total_ = other.total_;
  spent_ = other.spent_;
  label_ = std::move(other.label_);
  entries_ = std::move(other.entries_);
}

BudgetAccountant& BudgetAccountant::operator=(BudgetAccountant&& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  total_ = other.total_;
  spent_ = other.spent_;
  label_ = std::move(other.label_);
  entries_ = std::move(other.entries_);
  return *this;
}

double BudgetAccountant::spent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spent_;
}

double BudgetAccountant::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - spent_;
}

Status BudgetAccountant::ChargeLocked(double epsilon, bool parallel,
                                      const std::string& what,
                                      double sensitivity) {
  if (epsilon < 0.0 || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("budget charge must be finite and >= 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spent_ + epsilon > total_ + kSlack) {
    return Status::PrivacyBudgetExceeded(
        label_ + (parallel ? ": parallel charge " : ": charge ") +
        std::to_string(epsilon) + " for '" + what + "' exceeds remaining " +
        std::to_string(total_ - spent_));
  }
  spent_ += epsilon;
  entries_.push_back({epsilon, parallel, what, sensitivity});
  return Status::OK();
}

Status BudgetAccountant::Charge(double epsilon, const std::string& what,
                                double sensitivity) {
  return ChargeLocked(epsilon, /*parallel=*/false, what, sensitivity);
}

Status BudgetAccountant::ChargeParallel(double epsilon,
                                        const std::string& what,
                                        double sensitivity) {
  return ChargeLocked(epsilon, /*parallel=*/true, what, sensitivity);
}

void BudgetAccountant::AnnotateLastChargeSensitivity(double sensitivity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return;
  entries_.back().sensitivity = sensitivity;
}

}  // namespace dpcopula::dp
