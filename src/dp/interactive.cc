#include "dp/interactive.h"

#include <cmath>

#include "stats/distributions.h"

namespace dpcopula::dp {

InteractiveEngine::InteractiveEngine(data::Table table, double epsilon)
    : table_(std::move(table)), accountant_(epsilon, "interactive") {}

Result<double> InteractiveEngine::AnswerRangeCount(
    const std::vector<std::int64_t>& lo, const std::vector<std::int64_t>& hi,
    double query_epsilon, Rng* rng) {
  if (!(query_epsilon > 0.0)) {
    return Status::InvalidArgument("query epsilon must be > 0");
  }
  if (lo.size() != table_.num_columns() || hi.size() != lo.size()) {
    return Status::InvalidArgument("query arity mismatch");
  }
  DPC_RETURN_NOT_OK(accountant_.Charge(query_epsilon, "range-count"));
  std::vector<double> dlo(lo.begin(), lo.end());
  std::vector<double> dhi(hi.begin(), hi.end());
  const double truth = static_cast<double>(table_.RangeCount(dlo, dhi));
  ++queries_answered_;
  return truth + stats::SampleLaplace(rng, 1.0 / query_epsilon);
}

std::size_t InteractiveEngine::QueriesRemaining(double query_epsilon) const {
  if (!(query_epsilon > 0.0)) return 0;
  return static_cast<std::size_t>(
      std::floor(accountant_.remaining() / query_epsilon + 1e-9));
}

}  // namespace dpcopula::dp
