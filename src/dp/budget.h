#ifndef DPCOPULA_DP_BUDGET_H_
#define DPCOPULA_DP_BUDGET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dpcopula::dp {

/// Tracks epsilon spending under sequential composition (Theorem 3.1).
/// Mechanisms charge the accountant before drawing noise; an over-budget
/// charge fails with PrivacyBudgetExceeded, turning accounting mistakes into
/// loud errors instead of silent privacy leaks.
///
/// Parallel composition (Theorem 3.2) is modeled by creating one child
/// accountant per disjoint partition via `SplitParallel`: the children share
/// the parent's allowance, and the parent records only the maximum spent by
/// any child.
class BudgetAccountant {
 public:
  /// An accountant allowed to spend up to `epsilon` in total.
  explicit BudgetAccountant(double epsilon, std::string label = "root");

  double total_epsilon() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }
  const std::string& label() const { return label_; }

  /// Charges `epsilon` under sequential composition.
  Status Charge(double epsilon, const std::string& what);

  /// Records that `epsilon` was spent on each of several *disjoint* subsets
  /// of the data. Under parallel composition this costs only `epsilon`.
  Status ChargeParallel(double epsilon, const std::string& what);

  /// Log of every charge, for audits and tests.
  struct Entry {
    double epsilon;
    bool parallel;
    std::string what;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  double total_;
  double spent_ = 0.0;
  std::string label_;
  std::vector<Entry> entries_;
};

}  // namespace dpcopula::dp

#endif  // DPCOPULA_DP_BUDGET_H_
