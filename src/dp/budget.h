#ifndef DPCOPULA_DP_BUDGET_H_
#define DPCOPULA_DP_BUDGET_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dpcopula::dp {

/// Tracks epsilon spending under sequential composition (Theorem 3.1).
/// Mechanisms charge the accountant before drawing noise; an over-budget
/// charge fails with PrivacyBudgetExceeded, turning accounting mistakes into
/// loud errors instead of silent privacy leaks.
///
/// Parallel composition (Theorem 3.2) is modeled by creating one child
/// accountant per disjoint partition via `SplitParallel`: the children share
/// the parent's allowance, and the parent records only the maximum spent by
/// any child.
///
/// Thread safety: Charge/ChargeParallel are atomic check-and-spend
/// operations guarded by an internal mutex, so concurrent chargers can never
/// both pass the admission check and jointly overspend `total_` — the
/// serving path charges one shared per-tenant accountant from many request
/// threads. spent()/remaining()/AnnotateLastChargeSensitivity take the same
/// lock. entries()/Entries() return a reference to the charge log and are
/// safe only once concurrent charging has quiesced (reports and audits run
/// after workers join).
class BudgetAccountant {
 public:
  /// An accountant allowed to spend up to `epsilon` in total.
  explicit BudgetAccountant(double epsilon, std::string label = "root");

  /// Copy/move duplicate the accounting state; the copy gets its own lock.
  BudgetAccountant(const BudgetAccountant& other);
  BudgetAccountant& operator=(const BudgetAccountant& other);
  BudgetAccountant(BudgetAccountant&& other);
  BudgetAccountant& operator=(BudgetAccountant&& other);

  double total_epsilon() const { return total_; }
  double spent() const;
  double remaining() const;
  const std::string& label() const { return label_; }

  /// Charges `epsilon` under sequential composition. `sensitivity` is the
  /// L1 sensitivity the mechanism's noise is calibrated to; it is recorded
  /// for the audit log only (0 = not recorded) and never affects the
  /// accounting itself.
  Status Charge(double epsilon, const std::string& what,
                double sensitivity = 0.0);

  /// Records that `epsilon` was spent on each of several *disjoint* subsets
  /// of the data. Under parallel composition this costs only `epsilon`.
  Status ChargeParallel(double epsilon, const std::string& what,
                        double sensitivity = 0.0);

  /// Back-fills the sensitivity of the most recent charge. For mechanisms
  /// whose sensitivity is only known after they run (e.g. the Kendall
  /// estimator's 4/(n_hat+1) depends on the subsample size it picks) while
  /// the charge must still precede the noise draw. No-op on an empty log.
  void AnnotateLastChargeSensitivity(double sensitivity);

  /// Log of every charge, for audits and tests.
  struct Entry {
    double epsilon;
    bool parallel;
    std::string what;         // Mechanism name, e.g. "correlation:kendall".
    double sensitivity = 0.0; // L1 sensitivity; 0 = not recorded.
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Audit-facing alias for the charge log: one (mechanism, epsilon,
  /// sensitivity) record per mechanism invocation, in charge order.
  const std::vector<Entry>& Entries() const { return entries_; }

 private:
  Status ChargeLocked(double epsilon, bool parallel, const std::string& what,
                      double sensitivity);

  mutable std::mutex mu_;
  double total_;
  double spent_ = 0.0;
  std::string label_;
  std::vector<Entry> entries_;
};

}  // namespace dpcopula::dp

#endif  // DPCOPULA_DP_BUDGET_H_
