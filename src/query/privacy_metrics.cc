#include "query/privacy_metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/parallel.h"

namespace dpcopula::query {

namespace {

// Normalized L1 distance between row r1 of a and row r2 of b; attributes
// are scaled by their domain sizes so each contributes in [0, 1].
double RowDistance(const data::Table& a, std::size_t r1, const data::Table& b,
                   std::size_t r2, const std::vector<double>& inv_domain,
                   std::size_t skip_column = static_cast<std::size_t>(-1)) {
  double d = 0.0;
  for (std::size_t j = 0; j < a.num_columns(); ++j) {
    if (j == skip_column) continue;
    d += std::fabs(a.at(r1, j) - b.at(r2, j)) * inv_domain[j];
  }
  return d;
}

std::vector<double> InverseDomains(const data::Schema& schema) {
  std::vector<double> inv(schema.num_attributes());
  for (std::size_t j = 0; j < inv.size(); ++j) {
    inv[j] = 1.0 / static_cast<double>(
                       std::max<std::int64_t>(1, schema.attribute(j)
                                                     .domain_size - 1));
  }
  return inv;
}

// Evenly spaced row subsample of size <= max_rows.
std::vector<std::size_t> SubsampleRows(std::size_t n, std::size_t max_rows) {
  std::vector<std::size_t> rows;
  if (n <= max_rows) {
    rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    rows.resize(max_rows);
    for (std::size_t i = 0; i < max_rows; ++i) {
      rows[i] = i * n / max_rows;
    }
  }
  return rows;
}

}  // namespace

Result<DcrStats> DistanceToClosestRecord(const data::Table& synthetic,
                                         const data::Table& reference,
                                         std::size_t max_rows,
                                         int num_threads) {
  if (!(synthetic.schema() == reference.schema())) {
    return Status::InvalidArgument("DCR: schema mismatch");
  }
  if (synthetic.num_rows() == 0 || reference.num_rows() == 0) {
    return Status::InvalidArgument("DCR: empty table");
  }
  const auto inv = InverseDomains(synthetic.schema());
  const auto synth_rows = SubsampleRows(synthetic.num_rows(), max_rows);
  const auto ref_rows = SubsampleRows(reference.num_rows(), max_rows);

  std::vector<double> dcr(synth_rows.size(), 0.0);
  ParallelFor(
      0, synth_rows.size(), /*grain=*/64,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t s = synth_rows[i];
          double best = 1e300;
          for (std::size_t r : ref_rows) {
            best =
                std::min(best, RowDistance(synthetic, s, reference, r, inv));
            if (best == 0.0) break;
          }
          dcr[i] = best;
        }
      },
      num_threads);
  std::sort(dcr.begin(), dcr.end());
  DcrStats stats;
  for (double d : dcr) {
    stats.mean += d;
    if (d == 0.0) stats.frac_zero += 1.0;
  }
  stats.mean /= static_cast<double>(dcr.size());
  stats.frac_zero /= static_cast<double>(dcr.size());
  stats.median = dcr[dcr.size() / 2];
  stats.p05 = dcr[static_cast<std::size_t>(
      0.05 * static_cast<double>(dcr.size() - 1))];
  return stats;
}

Result<double> AttributeDisclosureRisk(const data::Table& synthetic,
                                       const data::Table& original,
                                       std::size_t target_column,
                                       std::size_t max_rows) {
  if (!(synthetic.schema() == original.schema())) {
    return Status::InvalidArgument("disclosure: schema mismatch");
  }
  if (target_column >= original.num_columns()) {
    return Status::OutOfRange("disclosure: target column out of range");
  }
  if (synthetic.num_rows() == 0 || original.num_rows() == 0) {
    return Status::InvalidArgument("disclosure: empty table");
  }
  const auto inv = InverseDomains(original.schema());
  const auto victims = SubsampleRows(original.num_rows(), max_rows);
  const auto synth_rows = SubsampleRows(synthetic.num_rows(), max_rows);

  double hits = 0.0;
  for (std::size_t v : victims) {
    double best = 1e300;
    double guess = 0.0;
    for (std::size_t s : synth_rows) {
      const double d =
          RowDistance(original, v, synthetic, s, inv, target_column);
      if (d < best) {
        best = d;
        guess = synthetic.at(s, target_column);
      }
    }
    if (guess == original.at(v, target_column)) hits += 1.0;
  }
  return hits / static_cast<double>(victims.size());
}

Result<double> MajorityGuessAccuracy(const data::Table& original,
                                     std::size_t target_column) {
  if (target_column >= original.num_columns()) {
    return Status::OutOfRange("majority: target column out of range");
  }
  if (original.num_rows() == 0) {
    return Status::InvalidArgument("majority: empty table");
  }
  std::map<double, std::size_t> counts;
  for (double v : original.column(target_column)) ++counts[v];
  std::size_t best = 0;
  for (const auto& [value, count] : counts) best = std::max(best, count);
  return static_cast<double>(best) /
         static_cast<double>(original.num_rows());
}

}  // namespace dpcopula::query
