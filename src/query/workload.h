#ifndef DPCOPULA_QUERY_WORKLOAD_H_
#define DPCOPULA_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/schema.h"

namespace dpcopula::query {

/// One random range-count query: inclusive per-attribute intervals covering
/// all attributes (§5.1 Metrics).
struct RangeQuery {
  std::vector<std::int64_t> lo;
  std::vector<std::int64_t> hi;
};

/// Generates `count` queries with each interval drawn uniformly at random
/// from the attribute's domain (endpoints sorted).
std::vector<RangeQuery> RandomWorkload(const data::Schema& schema,
                                       std::size_t count, Rng* rng);

/// Generates queries whose per-attribute interval length is fixed to
/// `range_fraction` of each domain (position random) — used by Fig. 8 where
/// the product of the query ranges is controlled.
Result<std::vector<RangeQuery>> FixedSizeWorkload(const data::Schema& schema,
                                                  double range_fraction,
                                                  std::size_t count, Rng* rng);

/// Generates 1-d marginal queries: a random interval on attribute
/// `target_attribute` with every other attribute unconstrained (full
/// domain). Useful for attributing error to individual margins.
Result<std::vector<RangeQuery>> MarginalWorkload(const data::Schema& schema,
                                                 std::size_t target_attribute,
                                                 std::size_t count, Rng* rng);

}  // namespace dpcopula::query

#endif  // DPCOPULA_QUERY_WORKLOAD_H_
