#include "query/evaluator.h"

#include <algorithm>

#include "query/metrics.h"

namespace dpcopula::query {

Result<std::vector<double>> ComputeTrueAnswers(
    const data::Table& original, const std::vector<RangeQuery>& workload) {
  std::vector<double> answers;
  answers.reserve(workload.size());
  for (const RangeQuery& q : workload) {
    if (q.lo.size() != original.num_columns()) {
      return Status::InvalidArgument("query arity does not match table");
    }
    std::vector<double> dlo(q.lo.begin(), q.lo.end());
    std::vector<double> dhi(q.hi.begin(), q.hi.end());
    answers.push_back(static_cast<double>(original.RangeCount(dlo, dhi)));
  }
  return answers;
}

Result<EvaluationResult> EvaluateWorkloadWithTruth(
    const std::vector<double>& true_answers,
    const baselines::RangeCountEstimator& estimator,
    const std::vector<RangeQuery>& workload, double sanity_bound) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  if (true_answers.size() != workload.size()) {
    return Status::InvalidArgument("truth/workload size mismatch");
  }
  EvaluationResult result;
  result.num_queries = workload.size();
  std::vector<double> rel_errors;
  rel_errors.reserve(workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const double actual = true_answers[i];
    const double noisy =
        estimator.EstimateRangeCount(workload[i].lo, workload[i].hi);
    rel_errors.push_back(RelativeError(actual, noisy, sanity_bound));
    result.mean_absolute_error += AbsoluteError(actual, noisy);
  }
  for (double re : rel_errors) result.mean_relative_error += re;
  result.mean_relative_error /= static_cast<double>(workload.size());
  result.mean_absolute_error /= static_cast<double>(workload.size());
  std::nth_element(rel_errors.begin(),
                   rel_errors.begin() + static_cast<std::ptrdiff_t>(
                                            rel_errors.size() / 2),
                   rel_errors.end());
  result.median_relative_error = rel_errors[rel_errors.size() / 2];
  return result;
}

Result<EvaluationResult> EvaluateWorkload(
    const data::Table& original,
    const baselines::RangeCountEstimator& estimator,
    const std::vector<RangeQuery>& workload, double sanity_bound) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  DPC_ASSIGN_OR_RETURN(std::vector<double> truth,
                       ComputeTrueAnswers(original, workload));
  return EvaluateWorkloadWithTruth(truth, estimator, workload, sanity_bound);
}

}  // namespace dpcopula::query
