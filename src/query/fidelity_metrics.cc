#include "query/fidelity_metrics.h"

#include <cmath>

#include "stats/kendall.h"

namespace dpcopula::query {

Result<double> MarginalTotalVariation(const data::Table& original,
                                      const data::Table& synthetic,
                                      std::size_t col) {
  if (!(original.schema() == synthetic.schema())) {
    return Status::InvalidArgument("fidelity: schema mismatch");
  }
  if (col >= original.num_columns()) {
    return Status::OutOfRange("fidelity: column out of range");
  }
  if (original.num_rows() == 0 || synthetic.num_rows() == 0) {
    return Status::InvalidArgument("fidelity: empty table");
  }
  const auto domain = static_cast<std::size_t>(
      original.schema().attribute(col).domain_size);
  std::vector<double> po(domain, 0.0), ps(domain, 0.0);
  for (double v : original.column(col)) po[static_cast<std::size_t>(v)] += 1.0;
  for (double v : synthetic.column(col)) {
    ps[static_cast<std::size_t>(v)] += 1.0;
  }
  const double no = static_cast<double>(original.num_rows());
  const double ns = static_cast<double>(synthetic.num_rows());
  double tv = 0.0;
  for (std::size_t v = 0; v < domain; ++v) {
    tv += std::fabs(po[v] / no - ps[v] / ns);
  }
  return 0.5 * tv;
}

Result<double> MeanMarginalTotalVariation(const data::Table& original,
                                          const data::Table& synthetic) {
  double total = 0.0;
  for (std::size_t j = 0; j < original.num_columns(); ++j) {
    DPC_ASSIGN_OR_RETURN(double tv,
                         MarginalTotalVariation(original, synthetic, j));
    total += tv;
  }
  return total / static_cast<double>(original.num_columns());
}

Result<linalg::Matrix> KendallMatrix(const data::Table& table) {
  const std::size_t m = table.num_columns();
  if (m == 0) return Status::InvalidArgument("fidelity: no columns");
  linalg::Matrix tau(m, m);
  for (std::size_t j = 0; j < m; ++j) tau(j, j) = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = j + 1; k < m; ++k) {
      DPC_ASSIGN_OR_RETURN(
          double t, stats::KendallTau(table.column(j), table.column(k)));
      tau(j, k) = t;
      tau(k, j) = t;
    }
  }
  return tau;
}

Result<double> DependenceDistance(const data::Table& original,
                                  const data::Table& synthetic) {
  if (!(original.schema() == synthetic.schema())) {
    return Status::InvalidArgument("fidelity: schema mismatch");
  }
  if (original.num_columns() < 2) return 0.0;
  DPC_ASSIGN_OR_RETURN(linalg::Matrix to, KendallMatrix(original));
  DPC_ASSIGN_OR_RETURN(linalg::Matrix ts, KendallMatrix(synthetic));
  return to.MaxAbsDiff(ts);
}

Result<FidelityReport> EvaluateFidelity(const data::Table& original,
                                        const data::Table& synthetic) {
  FidelityReport report;
  for (std::size_t j = 0; j < original.num_columns(); ++j) {
    DPC_ASSIGN_OR_RETURN(double tv,
                         MarginalTotalVariation(original, synthetic, j));
    report.marginal_tv.push_back(tv);
    report.mean_marginal_tv += tv;
  }
  report.mean_marginal_tv /=
      static_cast<double>(original.num_columns());
  DPC_ASSIGN_OR_RETURN(report.dependence_distance,
                       DependenceDistance(original, synthetic));
  return report;
}

}  // namespace dpcopula::query
