#ifndef DPCOPULA_QUERY_PRIVACY_METRICS_H_
#define DPCOPULA_QUERY_PRIVACY_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace dpcopula::query {

/// Empirical privacy sanity metrics for synthetic data releases. DPCopula's
/// guarantee is analytic (epsilon-DP), but release pipelines conventionally
/// also report empirical record-linkage metrics; these implement the two
/// standard ones.

/// Distance-to-closest-record statistics: for each synthetic row, the
/// normalized L1 distance (per attribute, scaled by domain size) to its
/// nearest original row. A healthy synthesizer has a DCR distribution
/// similar to that of a disjoint holdout sample — synthetic rows sitting at
/// distance ~0 would indicate memorization.
struct DcrStats {
  double mean = 0.0;
  double median = 0.0;
  double p05 = 0.0;       // 5th percentile — small values flag copying.
  double frac_zero = 0.0; // Fraction of exact-match rows.
};

/// Computes DCR of `synthetic` rows against `reference` rows. O(|synthetic|
/// * |reference| * m); cap sizes accordingly (both are subsampled to
/// `max_rows` rows if larger). The per-synthetic-row nearest-neighbour
/// scans are RNG-free and independent, so they run on the shared
/// ThreadPool; `num_threads`: 0 = hardware concurrency, <= 1 = sequential
/// (identical result either way).
Result<DcrStats> DistanceToClosestRecord(const data::Table& synthetic,
                                         const data::Table& reference,
                                         std::size_t max_rows = 2000,
                                         int num_threads = 1);

/// Attribute-disclosure risk: an adversary knowing all attributes except
/// `target_column` finds the nearest synthetic row on the known attributes
/// and guesses its target value. Returns the adversary's accuracy on
/// `victims` (subsampled original rows). Values near the marginal-majority
/// baseline indicate low disclosure risk; values near 1 indicate leakage.
Result<double> AttributeDisclosureRisk(const data::Table& synthetic,
                                       const data::Table& original,
                                       std::size_t target_column,
                                       std::size_t max_rows = 1000);

/// Baseline for AttributeDisclosureRisk: accuracy of always guessing the
/// most frequent value of `target_column` in `original`.
Result<double> MajorityGuessAccuracy(const data::Table& original,
                                     std::size_t target_column);

}  // namespace dpcopula::query

#endif  // DPCOPULA_QUERY_PRIVACY_METRICS_H_
