#ifndef DPCOPULA_QUERY_EXPERIMENT_CONFIG_H_
#define DPCOPULA_QUERY_EXPERIMENT_CONFIG_H_

#include <cstdint>
#include <string>

namespace dpcopula::query {

/// The paper's Table 3 defaults plus the harness scaling profile. Every
/// bench binary reads one of these and prints which profile is active, so
/// reported numbers are always attributable to a parameter set.
struct ExperimentConfig {
  std::int64_t num_tuples = 50000;   // n
  double epsilon = 1.0;              // privacy budget
  std::size_t num_dimensions = 8;    // m
  double sanity_bound = 1.0;         // s
  double budget_ratio_k = 8.0;       // k = eps1/eps2
  std::int64_t domain_size = 1000;   // |A_i|
  std::size_t queries_per_run = 1000;
  std::size_t num_runs = 5;
  std::uint64_t seed = 20140324;     // EDBT 2014 start date.

  /// Paper-scale configuration (Table 3).
  static ExperimentConfig Paper();

  /// Scaled-down profile for quick bench runs: fewer queries/runs and a
  /// smaller n, preserving error *trends* (see DESIGN.md §3.4).
  static ExperimentConfig Fast();

  /// Fast() unless the environment variable DPCOPULA_BENCH_FULL=1 selects
  /// Paper().
  static ExperimentConfig FromEnvironment();

  std::string ProfileName() const;
};

}  // namespace dpcopula::query

#endif  // DPCOPULA_QUERY_EXPERIMENT_CONFIG_H_
