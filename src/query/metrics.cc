#include "query/metrics.h"

#include <algorithm>
#include <cmath>

namespace dpcopula::query {

double RelativeError(double actual, double noisy, double sanity_bound) {
  return std::fabs(noisy - actual) / std::max(actual, sanity_bound);
}

double AbsoluteError(double actual, double noisy) {
  return std::fabs(noisy - actual);
}

double DefaultSanityBound() { return 1.0; }

double UsCensusSanityBound(std::int64_t cardinality) {
  return 0.0005 * static_cast<double>(cardinality);
}

double BrazilSanityBound() { return 10.0; }

}  // namespace dpcopula::query
