#ifndef DPCOPULA_QUERY_EVALUATOR_H_
#define DPCOPULA_QUERY_EVALUATOR_H_

#include <vector>

#include "baselines/range_estimator.h"
#include "common/result.h"
#include "data/table.h"
#include "query/workload.h"

namespace dpcopula::query {

/// Aggregate accuracy of one estimator over a workload.
struct EvaluationResult {
  double mean_relative_error = 0.0;
  double mean_absolute_error = 0.0;
  double median_relative_error = 0.0;
  std::size_t num_queries = 0;
};

/// Runs every query in `workload` against the ground-truth `original` table
/// and the private `estimator`, and aggregates the paper's error metrics
/// with sanity bound `sanity_bound`.
Result<EvaluationResult> EvaluateWorkload(
    const data::Table& original,
    const baselines::RangeCountEstimator& estimator,
    const std::vector<RangeQuery>& workload, double sanity_bound);

/// Ground-truth answers for a workload (O(rows) per query). Compute once
/// and reuse via EvaluateWorkloadWithTruth when scoring several mechanisms
/// against the same workload — the evaluation harness's dominant cost.
Result<std::vector<double>> ComputeTrueAnswers(
    const data::Table& original, const std::vector<RangeQuery>& workload);

/// Same as EvaluateWorkload but with precomputed true answers.
Result<EvaluationResult> EvaluateWorkloadWithTruth(
    const std::vector<double>& true_answers,
    const baselines::RangeCountEstimator& estimator,
    const std::vector<RangeQuery>& workload, double sanity_bound);

}  // namespace dpcopula::query

#endif  // DPCOPULA_QUERY_EVALUATOR_H_
