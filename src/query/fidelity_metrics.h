#ifndef DPCOPULA_QUERY_FIDELITY_METRICS_H_
#define DPCOPULA_QUERY_FIDELITY_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "linalg/matrix.h"

namespace dpcopula::query {

/// Statistical-fidelity metrics for synthetic data: how closely the release
/// matches the original's margins and dependence structure. These are the
/// standard "quality report" numbers synthetic-data tooling publishes next
/// to the workload-accuracy metrics in evaluator.h.

/// Total variation distance between the empirical margins of column `col`:
/// 0 = identical distributions, 1 = disjoint supports.
Result<double> MarginalTotalVariation(const data::Table& original,
                                      const data::Table& synthetic,
                                      std::size_t col);

/// Mean marginal TV distance across all columns.
Result<double> MeanMarginalTotalVariation(const data::Table& original,
                                          const data::Table& synthetic);

/// Pairwise Kendall-tau matrix of a table (diagonal 1). O(m^2 n log n).
Result<linalg::Matrix> KendallMatrix(const data::Table& table);

/// Max |tau_orig(j,k) - tau_synth(j,k)| over all attribute pairs — how much
/// of the dependence structure survived the release.
Result<double> DependenceDistance(const data::Table& original,
                                  const data::Table& synthetic);

/// Full report combining the above.
struct FidelityReport {
  std::vector<double> marginal_tv;  // Per column.
  double mean_marginal_tv = 0.0;
  double dependence_distance = 0.0;
};

Result<FidelityReport> EvaluateFidelity(const data::Table& original,
                                        const data::Table& synthetic);

}  // namespace dpcopula::query

#endif  // DPCOPULA_QUERY_FIDELITY_METRICS_H_
