#include "query/experiment_config.h"

#include <cstdlib>
#include <cstring>

namespace dpcopula::query {

ExperimentConfig ExperimentConfig::Paper() { return ExperimentConfig{}; }

ExperimentConfig ExperimentConfig::Fast() {
  ExperimentConfig cfg;
  cfg.num_tuples = 20000;
  cfg.queries_per_run = 200;
  cfg.num_runs = 3;
  return cfg;
}

ExperimentConfig ExperimentConfig::FromEnvironment() {
  const char* full = std::getenv("DPCOPULA_BENCH_FULL");
  if (full != nullptr && std::strcmp(full, "1") == 0) return Paper();
  return Fast();
}

std::string ExperimentConfig::ProfileName() const {
  return (num_tuples == 50000 && queries_per_run == 1000) ? "paper" : "fast";
}

}  // namespace dpcopula::query
