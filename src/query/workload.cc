#include "query/workload.h"

#include <algorithm>
#include <cmath>

namespace dpcopula::query {

std::vector<RangeQuery> RandomWorkload(const data::Schema& schema,
                                       std::size_t count, Rng* rng) {
  const std::size_t m = schema.num_attributes();
  std::vector<RangeQuery> queries(count);
  for (auto& q : queries) {
    q.lo.resize(m);
    q.hi.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      const std::int64_t domain = schema.attribute(j).domain_size;
      std::int64_t a = rng->NextInt64InRange(0, domain - 1);
      std::int64_t b = rng->NextInt64InRange(0, domain - 1);
      if (a > b) std::swap(a, b);
      q.lo[j] = a;
      q.hi[j] = b;
    }
  }
  return queries;
}

Result<std::vector<RangeQuery>> FixedSizeWorkload(const data::Schema& schema,
                                                  double range_fraction,
                                                  std::size_t count,
                                                  Rng* rng) {
  if (!(range_fraction > 0.0 && range_fraction <= 1.0)) {
    return Status::InvalidArgument("range_fraction must be in (0, 1]");
  }
  const std::size_t m = schema.num_attributes();
  std::vector<RangeQuery> queries(count);
  for (auto& q : queries) {
    q.lo.resize(m);
    q.hi.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      const std::int64_t domain = schema.attribute(j).domain_size;
      auto width = static_cast<std::int64_t>(
          std::llround(range_fraction * static_cast<double>(domain)));
      width = std::clamp<std::int64_t>(width, 1, domain);
      const std::int64_t start =
          rng->NextInt64InRange(0, domain - width);
      q.lo[j] = start;
      q.hi[j] = start + width - 1;
    }
  }
  return queries;
}

Result<std::vector<RangeQuery>> MarginalWorkload(const data::Schema& schema,
                                                 std::size_t target_attribute,
                                                 std::size_t count, Rng* rng) {
  const std::size_t m = schema.num_attributes();
  if (target_attribute >= m) {
    return Status::OutOfRange("MarginalWorkload: attribute out of range");
  }
  std::vector<RangeQuery> queries(count);
  for (auto& q : queries) {
    q.lo.resize(m);
    q.hi.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      q.lo[j] = 0;
      q.hi[j] = schema.attribute(j).domain_size - 1;
    }
    const std::int64_t domain =
        schema.attribute(target_attribute).domain_size;
    std::int64_t a = rng->NextInt64InRange(0, domain - 1);
    std::int64_t b = rng->NextInt64InRange(0, domain - 1);
    if (a > b) std::swap(a, b);
    q.lo[target_attribute] = a;
    q.hi[target_attribute] = b;
  }
  return queries;
}

}  // namespace dpcopula::query
