#ifndef DPCOPULA_QUERY_METRICS_H_
#define DPCOPULA_QUERY_METRICS_H_

#include <cstdint>

namespace dpcopula::query {

/// Relative error with the paper's sanity bound s (§5.1):
///   RE(q) = |noisy - actual| / max(actual, s).
double RelativeError(double actual, double noisy, double sanity_bound);

/// Absolute error |noisy - actual|.
double AbsoluteError(double actual, double noisy);

/// The paper's sanity bound conventions: 1 for most datasets, 0.05% of the
/// cardinality for the US census, 10 for the Brazil census.
double DefaultSanityBound();
double UsCensusSanityBound(std::int64_t cardinality);
double BrazilSanityBound();

}  // namespace dpcopula::query

#endif  // DPCOPULA_QUERY_METRICS_H_
