#include "baselines/filter_priority.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/distributions.h"

namespace dpcopula::baselines {

Result<std::unique_ptr<FilterPrioritySummary>> FilterPrioritySummary::Build(
    const data::Table& table, double epsilon, Rng* rng,
    const FilterPriorityOptions& options) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("FP: epsilon must be > 0");
  }
  const std::size_t m = table.num_columns();
  if (m == 0) return Status::InvalidArgument("FP: table has no columns");

  // Sparse histogram: map multi-index -> count.
  std::map<std::vector<std::int64_t>, double> sparse;
  {
    std::vector<std::int64_t> idx(m);
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      for (std::size_t j = 0; j < m; ++j) {
        idx[j] = static_cast<std::int64_t>(std::llround(table.at(r, j)));
      }
      sparse[idx] += 1.0;
    }
  }
  const double num_nonzero = static_cast<double>(sparse.size());
  const double domain_cells = table.schema().DomainSpace();
  const double num_zero = std::max(0.0, domain_cells - num_nonzero);

  // Calibrate theta so that the expected number of *zero* cells whose
  // Lap(1/eps) noise exceeds theta is ~ size_factor * M:
  //   num_zero * 0.5 * exp(-eps * theta) = size_factor * M
  //   theta = ln(num_zero / (2 * size_factor * M)) / eps   (clamped >= 0).
  const double target = std::max(1.0, options.size_factor * num_nonzero);
  double theta = 0.0;
  if (num_zero > 2.0 * target) {
    theta = std::log(num_zero / (2.0 * target)) / epsilon;
  }

  auto summary = std::make_unique<FilterPrioritySummary>();
  summary->threshold_ = theta;
  summary->epsilon_ = epsilon;
  for (std::size_t j = 0; j < m; ++j) {
    summary->domain_sizes_.push_back(table.schema().attribute(j).domain_size);
  }

  // Filter the non-zero cells.
  for (const auto& [index, count] : sparse) {
    const double noisy = count + stats::SampleLaplace(rng, 1.0 / epsilon);
    if (noisy > theta) {
      summary->cells_.push_back({index, noisy});
    }
  }

  // Implicit zero cells: Poisson(num_zero * p_pass) of them pass; each gets
  // value theta + Exp(eps) (a Laplace conditioned on exceeding theta >= 0
  // is exponential beyond theta).
  const double p_pass = 0.5 * std::exp(-epsilon * theta);
  const double expected = num_zero * p_pass;
  std::int64_t k = 0;
  if (expected > 0.0) {
    if (expected < 1e6) {
      // Poisson via exponential inter-arrivals for small means, normal
      // approximation otherwise.
      if (expected < 50.0) {
        double t = 0.0;
        while (true) {
          t += stats::SampleExponential(rng, 1.0);
          if (t > expected) break;
          ++k;
        }
      } else {
        k = static_cast<std::int64_t>(std::llround(
            expected + std::sqrt(expected) * rng->NextGaussian()));
        k = std::max<std::int64_t>(0, k);
      }
    } else {
      k = options.max_materialized_zero_cells;
    }
  }
  k = std::min<std::int64_t>(k, options.max_materialized_zero_cells);

  // Materialize k random zero cells (collisions with non-zero cells are
  // vanishingly rare in sparse domains; re-draw on collision).
  const auto& schema = table.schema();
  std::vector<std::int64_t> idx(m);
  for (std::int64_t i = 0; i < k; ++i) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      for (std::size_t j = 0; j < m; ++j) {
        idx[j] = rng->NextInt64InRange(0, schema.attribute(j).domain_size - 1);
      }
      if (sparse.find(idx) == sparse.end()) break;
    }
    const double value = theta + stats::SampleExponential(rng, epsilon);
    summary->cells_.push_back({idx, value});
  }
  summary->num_phantom_ = k;

  // Consistency: values below zero cannot occur (theta >= 0 filter), but
  // clamp defensively for theta == 0 summaries.
  for (auto& cell : summary->cells_) {
    cell.value = std::max(0.0, cell.value);
  }
  return summary;
}

double FilterPrioritySummary::EstimateRangeCount(
    const std::vector<std::int64_t>& lo,
    const std::vector<std::int64_t>& hi) const {
  double total = 0.0;
  for (const auto& cell : cells_) {
    bool inside = true;
    for (std::size_t j = 0; j < cell.index.size() && inside; ++j) {
      inside = cell.index[j] >= lo[j] && cell.index[j] <= hi[j];
    }
    if (inside) total += cell.value;
  }
  // Consistency: subtract the expected phantom contribution. The phantom
  // cells are uniform over the domain with mean value theta + 1/epsilon, so
  // a query covering a fraction f of the domain catches f * num_phantom of
  // them in expectation — a quantity that depends only on public mechanism
  // parameters (post-processing).
  double fraction = 1.0;
  for (std::size_t j = 0; j < domain_sizes_.size(); ++j) {
    const std::int64_t clo = std::max<std::int64_t>(lo[j], 0);
    const std::int64_t chi = std::min<std::int64_t>(hi[j],
                                                    domain_sizes_[j] - 1);
    if (clo > chi) return 0.0;
    fraction *= static_cast<double>(chi - clo + 1) /
                static_cast<double>(domain_sizes_[j]);
  }
  const double phantom_mean = threshold_ + 1.0 / epsilon_;
  total -= fraction * static_cast<double>(num_phantom_) * phantom_mean;
  return std::max(0.0, total);
}

}  // namespace dpcopula::baselines
