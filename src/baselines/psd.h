#ifndef DPCOPULA_BASELINES_PSD_H_
#define DPCOPULA_BASELINES_PSD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/range_estimator.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace dpcopula::baselines {

/// PSD — Private Spatial Decomposition, KD-hybrid variant (Cormode,
/// Procopiuc, Srivastava, Shen & Yu, ICDE 2012 [9]).
///
/// Builds a KD-tree over the data *points* (never materializing the product
/// domain, which is why the paper can run PSD where every histogram-input
/// method is infeasible): split dimensions round-robin, split values chosen
/// as differentially private medians via the exponential mechanism (rank
/// score, sensitivity 1), and a noisy count released at every node with
/// geometric budget allocation across levels. Range queries descend the
/// tree, use node counts for fully-covered boxes and a uniformity estimate
/// inside partially-covered leaves.
struct PsdOptions {
  /// Tree height; 0 selects ceil(log2(n / leaf_target)) clamped to
  /// [1, max_depth_cap].
  int depth = 0;
  int max_depth_cap = 12;
  /// Auto-depth aims at roughly this many points per leaf.
  std::int64_t leaf_target = 100;
  /// Fraction of epsilon used for the private medians (the rest goes to the
  /// noisy node counts).
  double median_budget_fraction = 0.3;
  /// Geometric factor for per-level count budgets: level i of D gets budget
  /// proportional to ratio^i (deeper levels get more, as in [9]).
  double count_budget_ratio = 1.26;  // 2^(1/3), the paper's choice.
};

class PsdTree : public RangeCountEstimator {
 public:
  /// Builds a PSD over `table` consuming `epsilon` in total.
  static Result<std::unique_ptr<PsdTree>> Build(const data::Table& table,
                                                double epsilon, Rng* rng,
                                                const PsdOptions& options = {});

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override;

  std::string name() const override { return "PSD"; }

  int depth() const { return depth_; }
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    std::vector<std::int64_t> box_lo, box_hi;  // Inclusive domain box.
    double noisy_count = 0.0;
    int split_dim = -1;            // -1 for leaves.
    std::int64_t split_value = 0;  // Left: <= split_value; right: >.
    int left = -1, right = -1;     // Child indices; -1 for leaves.
  };

  double QueryNode(int node_index, const std::vector<std::int64_t>& lo,
                   const std::vector<std::int64_t>& hi) const;

  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace dpcopula::baselines

#endif  // DPCOPULA_BASELINES_PSD_H_
