#include "baselines/psd.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanisms.h"
#include "stats/distributions.h"

namespace dpcopula::baselines {

namespace {

struct BuildContext {
  const data::Table* table;
  Rng* rng;
  int depth;
  double median_eps_per_level;
  std::vector<double> count_eps_per_level;  // Indexed by level (0 = root).
};

}  // namespace

Result<std::unique_ptr<PsdTree>> PsdTree::Build(const data::Table& table,
                                                double epsilon, Rng* rng,
                                                const PsdOptions& options) {
  const std::size_t m = table.num_columns();
  if (m == 0) return Status::InvalidArgument("PSD: table has no columns");
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("PSD: epsilon must be > 0");
  }
  if (!(options.median_budget_fraction > 0.0 &&
        options.median_budget_fraction < 1.0)) {
    return Status::InvalidArgument(
        "PSD: median_budget_fraction must be in (0, 1)");
  }

  auto tree = std::make_unique<PsdTree>();
  int depth = options.depth;
  if (depth <= 0) {
    const double n = std::max<double>(1.0, static_cast<double>(table.num_rows()));
    const double target = std::max<double>(1.0, static_cast<double>(options.leaf_target));
    depth = static_cast<int>(std::ceil(std::log2(std::max(2.0, n / target))));
    depth = std::clamp(depth, 1, options.max_depth_cap);
  }
  tree->depth_ = depth;

  const double eps_median = epsilon * options.median_budget_fraction;
  const double eps_count = epsilon - eps_median;

  // Geometric per-level count budgets (levels 0..depth; leaves get the
  // largest share). A root-to-leaf path sees each level once (sequential
  // composition); nodes within a level are disjoint (parallel composition).
  std::vector<double> level_eps(static_cast<std::size_t>(depth) + 1);
  double norm = 0.0;
  for (std::size_t i = 0; i < level_eps.size(); ++i) {
    level_eps[i] = std::pow(options.count_budget_ratio,
                            static_cast<double>(i));
    norm += level_eps[i];
  }
  for (double& e : level_eps) e *= eps_count / norm;

  // Root box = full domain.
  std::vector<std::int64_t> lo(m, 0), hi(m);
  for (std::size_t j = 0; j < m; ++j) {
    hi[j] = table.schema().attribute(j).domain_size - 1;
  }
  std::vector<std::size_t> all_rows(table.num_rows());
  for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;

  // Iterative DFS with an explicit stack to avoid deep recursion.
  struct Frame {
    std::vector<std::size_t> rows;
    std::vector<std::int64_t> lo, hi;
    int level;
    int parent;     // Node index of parent, -1 for root.
    bool is_left;   // Which child slot of the parent to fill.
  };
  const double median_eps = eps_median / static_cast<double>(depth);

  std::vector<Frame> stack;
  stack.push_back({std::move(all_rows), lo, hi, 0, -1, true});

  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();

    Node node;
    node.box_lo = f.lo;
    node.box_hi = f.hi;
    const double true_count = static_cast<double>(f.rows.size());
    node.noisy_count =
        true_count +
        stats::SampleLaplace(
            rng, 1.0 / level_eps[static_cast<std::size_t>(f.level)]);

    // Decide whether to split: depth budget left and a splittable axis.
    int split_dim = -1;
    if (f.level < depth) {
      for (std::size_t probe = 0; probe < m; ++probe) {
        const auto d = (static_cast<std::size_t>(f.level) + probe) % m;
        if (f.hi[d] > f.lo[d]) {
          split_dim = static_cast<int>(d);
          break;
        }
      }
    }

    const int node_index = static_cast<int>(tree->nodes_.size());
    if (split_dim >= 0) {
      const auto d = static_cast<std::size_t>(split_dim);
      // Private median along d via the exponential mechanism. Candidates
      // are split values v in [lo_d, hi_d); left takes values <= v. Score
      // = -|rank(v) - n/2| with sensitivity 1.
      std::vector<double> vals;
      vals.reserve(f.rows.size());
      for (std::size_t r : f.rows) vals.push_back(table.at(r, d));
      std::sort(vals.begin(), vals.end());
      const double half = static_cast<double>(vals.size()) / 2.0;

      const std::int64_t cand_lo = f.lo[d];
      const std::int64_t cand_hi = f.hi[d] - 1;
      std::vector<double> scores(
          static_cast<std::size_t>(cand_hi - cand_lo + 1));
      for (std::int64_t v = cand_lo; v <= cand_hi; ++v) {
        const auto rank = static_cast<double>(
            std::upper_bound(vals.begin(), vals.end(),
                             static_cast<double>(v)) -
            vals.begin());
        scores[static_cast<std::size_t>(v - cand_lo)] =
            -std::fabs(rank - half);
      }
      DPC_ASSIGN_OR_RETURN(std::size_t pick,
                           dp::ExponentialMechanism(rng, scores, median_eps,
                                                    /*sensitivity=*/1.0));
      const std::int64_t split_value =
          cand_lo + static_cast<std::int64_t>(pick);

      node.split_dim = split_dim;
      node.split_value = split_value;

      // Partition rows.
      std::vector<std::size_t> left_rows, right_rows;
      for (std::size_t r : f.rows) {
        if (table.at(r, d) <= static_cast<double>(split_value)) {
          left_rows.push_back(r);
        } else {
          right_rows.push_back(r);
        }
      }
      std::vector<std::int64_t> left_hi = f.hi;
      left_hi[d] = split_value;
      std::vector<std::int64_t> right_lo = f.lo;
      right_lo[d] = split_value + 1;

      tree->nodes_.push_back(std::move(node));
      // Children are filled when their frames pop; record linkage via
      // parent pointers in the frames.
      stack.push_back({std::move(right_rows), right_lo, f.hi, f.level + 1,
                       node_index, false});
      stack.push_back({std::move(left_rows), f.lo, left_hi, f.level + 1,
                       node_index, true});
    } else {
      tree->nodes_.push_back(std::move(node));
    }

    if (f.parent >= 0) {
      Node& parent = tree->nodes_[static_cast<std::size_t>(f.parent)];
      if (f.is_left) {
        parent.left = node_index;
      } else {
        parent.right = node_index;
      }
    }
  }
  return tree;
}

double PsdTree::QueryNode(int node_index, const std::vector<std::int64_t>& lo,
                          const std::vector<std::int64_t>& hi) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  // Intersection of the query box with the node box.
  double node_volume = 1.0;
  double overlap_volume = 1.0;
  bool contained = true;
  for (std::size_t j = 0; j < node.box_lo.size(); ++j) {
    const std::int64_t olo = std::max(lo[j], node.box_lo[j]);
    const std::int64_t ohi = std::min(hi[j], node.box_hi[j]);
    if (olo > ohi) return 0.0;  // Disjoint.
    overlap_volume *= static_cast<double>(ohi - olo + 1);
    node_volume *=
        static_cast<double>(node.box_hi[j] - node.box_lo[j] + 1);
    if (olo != node.box_lo[j] || ohi != node.box_hi[j]) contained = false;
  }
  if (contained) return node.noisy_count;
  if (node.left < 0) {
    // Partially covered leaf: uniformity assumption within the box.
    return node.noisy_count * overlap_volume / node_volume;
  }
  return QueryNode(node.left, lo, hi) + QueryNode(node.right, lo, hi);
}

double PsdTree::EstimateRangeCount(const std::vector<std::int64_t>& lo,
                                   const std::vector<std::int64_t>& hi) const {
  if (nodes_.empty()) return 0.0;
  return QueryNode(0, lo, hi);
}

}  // namespace dpcopula::baselines
