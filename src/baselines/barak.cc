#include "baselines/barak.h"

#include <bit>
#include <cmath>

#include "marginals/postprocess.h"
#include "stats/distributions.h"

namespace dpcopula::baselines {

void BarakMechanism::WalshHadamard(std::vector<double>* x) {
  const std::size_t n = x->size();
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; ++j) {
        const double a = (*x)[j];
        const double b = (*x)[j + len];
        (*x)[j] = a + b;
        (*x)[j + len] = a - b;
      }
    }
  }
  // Orthonormal scaling: divide by sqrt(n) so the transform is its own
  // inverse and Parseval holds.
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (double& v : *x) v *= scale;
}

std::uint64_t BarakMechanism::NumRetainedCoefficients(std::size_t m,
                                                      int order) {
  std::uint64_t total = 0;
  std::uint64_t binom = 1;  // C(m, 0).
  for (int k = 0; k <= order && k <= static_cast<int>(m); ++k) {
    total += binom;
    binom = binom * (m - static_cast<std::size_t>(k)) /
            (static_cast<std::uint64_t>(k) + 1);
  }
  return total;
}

Result<std::unique_ptr<HistogramEstimator>> BarakMechanism::Release(
    const data::Table& table, double epsilon, Rng* rng,
    const BarakOptions& options) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("Barak: epsilon must be > 0");
  }
  const std::size_t m = table.num_columns();
  if (m == 0 || m > options.max_attributes) {
    return Status::InvalidArgument(
        "Barak: attribute count outside supported range");
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (table.schema().attribute(j).domain_size != 2) {
      return Status::InvalidArgument(
          "Barak: all attributes must be binary (domain size 2)");
    }
  }
  if (options.order < 0) {
    return Status::InvalidArgument("Barak: order must be >= 0");
  }

  // Dense joint histogram over {0,1}^m, bit j of the cell index = value of
  // attribute j.
  const std::size_t cells = 1ULL << m;
  std::vector<double> joint(cells, 0.0);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::size_t idx = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (table.at(r, j) > 0.5) idx |= 1ULL << j;
    }
    joint[idx] += 1.0;
  }

  // Forward transform; coefficient index S (as a bitmask) corresponds to
  // the character chi_S, and |S| = popcount(S) is its marginal order.
  WalshHadamard(&joint);

  // One record moves one cell by 1, i.e. every orthonormal coefficient by
  // exactly 2^{-m/2}; retaining C coefficients gives L1 sensitivity
  // C * 2^{-m/2}.
  const std::uint64_t retained = NumRetainedCoefficients(m, options.order);
  const double scale = static_cast<double>(retained) /
                       std::sqrt(static_cast<double>(cells)) / epsilon;
  for (std::size_t s = 0; s < cells; ++s) {
    if (std::popcount(s) <= options.order) {
      joint[s] += stats::SampleLaplace(rng, scale);
    } else {
      joint[s] = 0.0;
    }
  }

  // Inverse transform (self-inverse) and consistency projection.
  WalshHadamard(&joint);
  joint = marginals::ProjectToNoisyTotal(joint);

  std::vector<std::int64_t> dims(m, 2);
  DPC_ASSIGN_OR_RETURN(hist::Histogram out, hist::Histogram::Create(dims));
  // Histogram uses row-major with the LAST attribute fastest; our bit
  // layout uses bit j for attribute j. Remap.
  std::vector<std::int64_t> index(m);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    for (std::size_t j = 0; j < m; ++j) {
      index[j] = (cell >> j) & 1ULL;
    }
    out.Set(index, joint[cell]);
  }
  return std::make_unique<HistogramEstimator>(std::move(out), "Barak");
}

}  // namespace dpcopula::baselines
