#ifndef DPCOPULA_BASELINES_BARAK_H_
#define DPCOPULA_BASELINES_BARAK_H_

#include <memory>

#include "baselines/range_estimator.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace dpcopula::baselines {

/// Barak et al. (PODS 2007 [2]) — Fourier-domain contingency-table release
/// for binary attributes. The paper's related work discusses it but
/// excludes it from experiments because of its computational cost; we
/// include a faithful scoped implementation for completeness.
///
/// The joint histogram over {0,1}^m is moved into the Walsh–Hadamard
/// (Fourier) basis; the coefficients indexed by subsets S with |S| <=
/// `order` determine every `order`-way marginal. Each retained coefficient
/// gets Laplace noise calibrated to the full release (one record changes
/// every retained orthonormal-basis coefficient by 2^{-m/2}, so the L1
/// sensitivity is C * 2^{-m/2} for C retained coefficients); dropped
/// coefficients are zeroed; the inverse transform reconstructs a joint
/// table whose low-order marginals match the noisy release. Barak et al.
/// restore non-negativity/integrality with linear programming; we use the
/// simplex projection (same guarantees, no LP dependency — documented
/// substitution).
struct BarakOptions {
  /// Marginal order to preserve (coefficients with |S| <= order kept).
  int order = 3;
  /// Hard cap on the attribute count (the dense 2^m table).
  std::size_t max_attributes = 20;
};

class BarakMechanism {
 public:
  /// Releases a noisy joint-histogram estimator for an all-binary `table`
  /// with `epsilon`-DP.
  static Result<std::unique_ptr<HistogramEstimator>> Release(
      const data::Table& table, double epsilon, Rng* rng,
      const BarakOptions& options = {});

  /// In-place orthonormal Walsh–Hadamard transform of a length-2^m vector
  /// (its own inverse). Exposed for tests.
  static void WalshHadamard(std::vector<double>* x);

  /// Number of subsets of an m-element set with size <= order.
  static std::uint64_t NumRetainedCoefficients(std::size_t m, int order);
};

}  // namespace dpcopula::baselines

#endif  // DPCOPULA_BASELINES_BARAK_H_
