#ifndef DPCOPULA_BASELINES_DPCUBE_H_
#define DPCOPULA_BASELINES_DPCUBE_H_

#include <memory>

#include "baselines/range_estimator.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace dpcopula::baselines {

/// DPCube (Xiao, Gardner & Xiong, ICDE 2012 [40]) — the two-phase KD-
/// partitioning histogram mechanism the paper discusses alongside PSD
/// ("shown in [9] that these two methods are comparable").
///
/// Phase 1 spends epsilon/2 on a Dwork cell histogram; a KD-tree is then
/// carved over the *noisy* cells (pure post-processing) by recursively
/// picking the axis/cut that minimizes within-partition SSE, stopping when
/// a partition looks uniform relative to the noise level. Phase 2 spends
/// the remaining epsilon/2 on one fresh noisy count per final partition
/// (disjoint => parallel composition); each partition's released value is
/// the inverse-variance combination of its phase-1 sum and phase-2 count,
/// spread uniformly over its cells.
///
/// Requires the dense histogram, so like every histogram-input method it
/// fails with ResourceExhausted on domains beyond the cell budget.
struct DpCubeOptions {
  /// Maximum KD depth; 0 selects ceil(log2(num_cells)) clamped to [1, 16].
  int max_depth = 0;
  /// A partition is split while its noisy SSE exceeds this multiple of the
  /// expected SSE of pure noise (2/eps1^2 per cell).
  double split_threshold = 2.0;
  std::uint64_t max_cells = hist::Histogram::kDefaultMaxCells;
};

class DpCubeMechanism {
 public:
  /// Releases a noisy histogram estimator for `table` with `epsilon`-DP.
  static Result<std::unique_ptr<HistogramEstimator>> Release(
      const data::Table& table, double epsilon, Rng* rng,
      const DpCubeOptions& options = {});
};

}  // namespace dpcopula::baselines

#endif  // DPCOPULA_BASELINES_DPCUBE_H_
