#ifndef DPCOPULA_BASELINES_GRIDS_H_
#define DPCOPULA_BASELINES_GRIDS_H_

#include <memory>

#include "baselines/range_estimator.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace dpcopula::baselines {

/// UG / AG — uniform and adaptive grids for two-dimensional data (Qardaji,
/// Yang & Li, ICDE 2013 [33]), the 2-D specialist mechanism the paper's
/// related work cites. Both partition the 2-D domain into rectangular
/// cells, release one noisy count per cell (cells are disjoint, so parallel
/// composition charges epsilon once), and answer range queries with
/// within-cell uniformity.
///
/// UG picks the grid granularity g = ceil(sqrt(n * epsilon / c)) that
/// balances noise error (grows with g^2 cells touched) against uniformity
/// error (shrinks with g); c ~ 10 from [33].
struct UniformGridOptions {
  double c = 10.0;
  std::int64_t max_cells_per_axis = 1024;
};

class UniformGrid {
 public:
  /// Builds a UG over a 2-attribute table consuming `epsilon`.
  static Result<std::unique_ptr<UniformGrid>> Build(
      const data::Table& table, double epsilon, Rng* rng,
      const UniformGridOptions& options = {});

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const;

  /// Cells per axis (may be clamped by the attribute domains).
  std::int64_t granularity_x() const { return gx_; }
  std::int64_t granularity_y() const { return gy_; }

 private:
  friend class AdaptiveGrid;
  std::int64_t gx_ = 0, gy_ = 0;  // Cells per axis.
  std::int64_t wx_ = 1, wy_ = 1;  // Cell widths in domain units.
  std::vector<std::int64_t> domain_ = {0, 0};
  std::vector<double> cells_;  // gx x gy noisy counts, row-major.
};

/// AG: a coarse first-level grid with alpha * epsilon, then each first-
/// level cell is subdivided adaptively based on its noisy count, with the
/// remaining budget on the sub-cells (again parallel composition).
struct AdaptiveGridOptions {
  double alpha = 0.5;  // Budget share of the first level.
  double c1 = 10.0;    // First-level granularity constant.
  double c2 = 5.0;     // Second-level granularity constant ([33] uses c/2).
  std::int64_t max_cells_per_axis = 1024;
};

class AdaptiveGrid : public RangeCountEstimator {
 public:
  static Result<std::unique_ptr<AdaptiveGrid>> Build(
      const data::Table& table, double epsilon, Rng* rng,
      const AdaptiveGridOptions& options = {});

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override;

  std::string name() const override { return "AG"; }

  std::size_t num_level2_regions() const { return regions_.size(); }

 private:
  struct Region {
    std::vector<std::int64_t> lo, hi;  // Inclusive box.
    std::int64_t g = 1;                // Sub-grid granularity.
    std::vector<double> cells;         // g x g noisy sub-counts.
  };
  std::vector<Region> regions_;
};

/// RangeCountEstimator adapter for UniformGrid (kept separate so UG can be
/// embedded in AG without virtual overhead).
class UniformGridEstimator : public RangeCountEstimator {
 public:
  explicit UniformGridEstimator(std::unique_ptr<UniformGrid> grid)
      : grid_(std::move(grid)) {}
  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override {
    return grid_->EstimateRangeCount(lo, hi);
  }
  std::string name() const override { return "UG"; }
  const UniformGrid& grid() const { return *grid_; }

 private:
  std::unique_ptr<UniformGrid> grid_;
};

}  // namespace dpcopula::baselines

#endif  // DPCOPULA_BASELINES_GRIDS_H_
