#ifndef DPCOPULA_BASELINES_FILTER_PRIORITY_H_
#define DPCOPULA_BASELINES_FILTER_PRIORITY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/range_estimator.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace dpcopula::baselines {

/// FP — the Filter-Priority mechanism for sparse data (Cormode, Procopiuc,
/// Srivastava & Tran, ICDT 2012 [10]), with consistency post-processing.
///
/// The data is a sparse histogram with M non-zero cells inside a possibly
/// astronomically large product domain. FP releases a compact summary:
///  - every non-zero cell gets Laplace noise and is kept only if the noisy
///    value exceeds a threshold theta;
///  - zero cells are handled *implicitly*: the number that would pass the
///    threshold is drawn from the corresponding binomial (Poisson
///    approximation for huge domains) and that many random cells are
///    materialized with values drawn from the Laplace tail above theta.
/// theta is calibrated so the expected summary size is ~`size_factor * M`.
/// Queries sum the retained cells inside the range (absent cells count 0),
/// then apply the consistency correction: the phantom zero cells were
/// placed uniformly at random with known mean value theta + 1/eps, so their
/// expected contribution to a query covering a fraction f of the domain —
/// f * num_phantom * (theta + 1/eps), a data-independent quantity — is
/// subtracted, removing the systematic positive bias of the filter step.
struct FilterPriorityOptions {
  /// Target summary size as a multiple of the number of non-zero cells.
  double size_factor = 2.0;
  /// Hard cap on materialized zero cells (guards astronomically large
  /// domains against a mis-calibrated threshold).
  std::int64_t max_materialized_zero_cells = 1000000;
};

class FilterPrioritySummary : public RangeCountEstimator {
 public:
  static Result<std::unique_ptr<FilterPrioritySummary>> Build(
      const data::Table& table, double epsilon, Rng* rng,
      const FilterPriorityOptions& options = {});

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override;

  std::string name() const override { return "FP"; }

  std::size_t summary_size() const { return cells_.size(); }
  double threshold() const { return threshold_; }
  std::int64_t num_phantom_cells() const { return num_phantom_; }

 private:
  struct Cell {
    std::vector<std::int64_t> index;
    double value;
  };
  std::vector<Cell> cells_;
  std::vector<std::int64_t> domain_sizes_;
  double threshold_ = 0.0;
  double epsilon_ = 1.0;
  std::int64_t num_phantom_ = 0;
};

}  // namespace dpcopula::baselines

#endif  // DPCOPULA_BASELINES_FILTER_PRIORITY_H_
