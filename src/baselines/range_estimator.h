#ifndef DPCOPULA_BASELINES_RANGE_ESTIMATOR_H_
#define DPCOPULA_BASELINES_RANGE_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/table.h"
#include "hist/histogram.h"
#include "hist/summed_area.h"

namespace dpcopula::baselines {

/// Common interface every private release mechanism exposes for evaluation:
/// estimate the answer to the paper's range-count query (§5.1)
///   SELECT COUNT(*) WHERE A_1 in [lo_1, hi_1] AND ... AND A_m in [lo_m, hi_m]
/// with inclusive bounds.
class RangeCountEstimator {
 public:
  virtual ~RangeCountEstimator() = default;

  virtual double EstimateRangeCount(
      const std::vector<std::int64_t>& lo,
      const std::vector<std::int64_t>& hi) const = 0;

  /// Short method name for reports ("DPCopula", "PSD", ...).
  virtual std::string name() const = 0;
};

/// Adapter: answers by counting rows of a (synthetic) table — how DPCopula's
/// released dataset is queried.
class TableEstimator : public RangeCountEstimator {
 public:
  TableEstimator(data::Table table, std::string name)
      : table_(std::move(table)), name_(std::move(name)) {}

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override {
    std::vector<double> dlo(lo.begin(), lo.end());
    std::vector<double> dhi(hi.begin(), hi.end());
    return static_cast<double>(table_.RangeCount(dlo, dhi));
  }

  std::string name() const override { return name_; }

  const data::Table& table() const { return table_; }

 private:
  data::Table table_;
  std::string name_;
};

/// Adapter for oversampled synthetic tables: counts rows and scales by
/// `count_scale` (= original_rows / synthetic_rows). Used with
/// DpCopulaOptions::oversample_factor, which shrinks the binomial sampling
/// noise of the released table at zero privacy cost.
class ScaledTableEstimator : public RangeCountEstimator {
 public:
  ScaledTableEstimator(data::Table table, double count_scale,
                       std::string name)
      : inner_(std::move(table), std::move(name)), scale_(count_scale) {}

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override {
    return scale_ * inner_.EstimateRangeCount(lo, hi);
  }

  std::string name() const override { return inner_.name(); }

 private:
  TableEstimator inner_;
  double scale_;
};

/// Adapter: answers by summing a (noisy) dense histogram.
class HistogramEstimator : public RangeCountEstimator {
 public:
  HistogramEstimator(hist::Histogram histogram, std::string name)
      : histogram_(std::move(histogram)), name_(std::move(name)) {}

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override {
    return histogram_.RangeSum(lo, hi);
  }

  std::string name() const override { return name_; }

  const hist::Histogram& histogram() const { return histogram_; }

 private:
  hist::Histogram histogram_;
  std::string name_;
};

/// Adapter: answers from a summed-area table built over a (noisy) dense
/// histogram — O(2^m) per query instead of O(|range|) cell visits. Use for
/// large dense-histogram releases under heavy query volume.
class SummedAreaEstimator : public RangeCountEstimator {
 public:
  /// Builds the prefix-sum structure eagerly from `histogram`.
  static Result<std::unique_ptr<SummedAreaEstimator>> Create(
      const hist::Histogram& histogram, std::string name) {
    auto table = hist::SummedAreaTable::Build(histogram);
    if (!table.ok()) return table.status();
    return std::unique_ptr<SummedAreaEstimator>(new SummedAreaEstimator(
        std::move(table).ValueOrDie(), std::move(name)));
  }

  double EstimateRangeCount(const std::vector<std::int64_t>& lo,
                            const std::vector<std::int64_t>& hi) const override {
    return table_.RangeSum(lo, hi);
  }

  std::string name() const override { return name_; }

 private:
  SummedAreaEstimator(hist::SummedAreaTable table, std::string name)
      : table_(std::move(table)), name_(std::move(name)) {}

  hist::SummedAreaTable table_;
  std::string name_;
};

}  // namespace dpcopula::baselines

#endif  // DPCOPULA_BASELINES_RANGE_ESTIMATOR_H_
