#include "baselines/privelet.h"

#include <cmath>

#include "hist/wavelet.h"
#include "stats/distributions.h"

namespace dpcopula::baselines {

double PriveletMechanism::HaarL1Sensitivity(std::size_t padded_length) {
  // One unit change in one cell touches, per level s = 1..L (finest to
  // coarsest), exactly one detail coefficient with basis magnitude 2^{-s/2},
  // plus the scaling coefficient with magnitude 2^{-L/2}.
  const int levels = hist::HaarLevels(padded_length);
  double delta = std::pow(2.0, -static_cast<double>(levels) / 2.0);
  for (int s = 1; s <= levels; ++s) {
    delta += std::pow(2.0, -static_cast<double>(s) / 2.0);
  }
  return delta;
}

namespace {

// Per-axis noise weight u_j(i) for orthonormal Haar coefficient index i of a
// length-n_j (power of two) axis, following Privelet's generalized
// sensitivity calibration mapped into the orthonormal basis:
//   u_j(0)      = (L_j + 1) / sqrt(n_j)            (scaling coefficient)
//   u_j(detail) = (L_j + 1) / sqrt(support)        (support = 2^{L-l+1})
// where L_j = log2(n_j) and l is the coefficient's layout level. A one-cell
// change moves coefficient i by at most w_j(i) = u_j(i)/(L_j+1), and exactly
// L_j + 1 coefficients per axis overlap any cell, so with per-coefficient
// Laplace scale prod_j u_j(i_j) / epsilon the release is epsilon-DP:
//   sum_c prod_j w_j(c_j) / lambda_c = epsilon.
// Range queries then see only O(prod_j (L_j+1)^{3/2}) noise — the polylog
// property of [39] — because at most two detail coefficients per level
// overlap a range with reconstruction factor <= sqrt(support)/2.
std::vector<double> AxisNoiseWeights(std::size_t n) {
  const int levels = hist::HaarLevels(n);
  const double lp1 = static_cast<double>(levels) + 1.0;
  std::vector<double> u(n);
  u[0] = lp1 / std::sqrt(static_cast<double>(n));
  for (std::size_t i = 1; i < n; ++i) {
    const int l = hist::HaarCoefficientLevel(i);
    const double support = std::pow(2.0, static_cast<double>(levels - l + 1));
    u[i] = lp1 / std::sqrt(support);
  }
  return u;
}

// The "+" in Privelet+: per-dimension choice between the Haar wavelet and
// the identity (no sub-band decomposition). For tiny domains — e.g. the
// census gender attribute — the wavelet's (L+1) budget split only hurts;
// the identity axis has weight 1 everywhere (a cell change touches exactly
// one coefficient along that axis with magnitude 1).
constexpr std::int64_t kIdentityAxisThreshold = 16;

}  // namespace

Result<std::unique_ptr<HistogramEstimator>> PriveletMechanism::Release(
    const data::Table& table, double epsilon, Rng* rng,
    const PriveletOptions& options) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("Privelet: epsilon must be > 0");
  }
  DPC_ASSIGN_OR_RETURN(hist::Histogram h,
                       hist::Histogram::FromTable(table, options.max_cells));
  std::vector<bool> transform_axis(h.num_dims());
  for (std::size_t j = 0; j < h.num_dims(); ++j) {
    transform_axis[j] = h.dims()[j] >= kIdentityAxisThreshold;
  }
  DPC_ASSIGN_OR_RETURN(hist::Histogram coeffs,
                       hist::ForwardHaarMultiDim(h, transform_axis));

  std::vector<std::vector<double>> axis_weights(coeffs.num_dims());
  for (std::size_t j = 0; j < coeffs.num_dims(); ++j) {
    if (transform_axis[j]) {
      axis_weights[j] =
          AxisNoiseWeights(static_cast<std::size_t>(coeffs.dims()[j]));
    } else {
      axis_weights[j].assign(static_cast<std::size_t>(coeffs.dims()[j]), 1.0);
    }
  }

  // Odometer over all coefficient cells; per-cell Laplace scale is the
  // product of the per-axis weights divided by epsilon.
  const std::size_t m = coeffs.num_dims();
  std::vector<std::int64_t> idx(m, 0);
  auto& data = coeffs.mutable_data();
  std::size_t flat = 0;
  for (;;) {
    double scale = 1.0 / epsilon;
    for (std::size_t j = 0; j < m; ++j) {
      scale *= axis_weights[j][static_cast<std::size_t>(idx[j])];
    }
    data[flat] += stats::SampleLaplace(rng, scale);
    ++flat;
    // Advance (row-major, last axis fastest, matching flat order).
    bool carried = true;
    for (std::size_t t = m; t-- > 0;) {
      if (++idx[t] < coeffs.dims()[t]) {
        carried = false;
        break;
      }
      idx[t] = 0;
    }
    if (carried) break;
  }

  DPC_ASSIGN_OR_RETURN(
      hist::Histogram noisy,
      hist::InverseHaarMultiDim(coeffs, h.dims(), transform_axis));
  return std::make_unique<HistogramEstimator>(std::move(noisy), "Privelet+");
}

}  // namespace dpcopula::baselines
