#include "baselines/php.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanisms.h"
#include "stats/distributions.h"

namespace dpcopula::baselines {

namespace {

// Upper bound on the cut candidates evaluated per interval. The L1 score of
// one candidate costs O(interval length); evaluating every cut would make
// the mechanism quadratic in the bin count (the worst case the paper notes
// for P-HP), so we score an evenly spaced, data-independent subset.
constexpr std::size_t kMaxCutCandidates = 64;

// Sum of |x_i - mean| over [a, b) given the prefix sums of x.
double IntervalL1Error(const std::vector<double>& x,
                       const std::vector<double>& prefix, std::size_t a,
                       std::size_t b) {
  const double len = static_cast<double>(b - a);
  if (len <= 1.0) return 0.0;
  const double mean = (prefix[b] - prefix[a]) / len;
  double err = 0.0;
  for (std::size_t i = a; i < b; ++i) err += std::fabs(x[i] - mean);
  return err;
}

struct Interval {
  std::size_t lo, hi;  // [lo, hi)
  int level;
};

}  // namespace

Result<std::unique_ptr<HistogramEstimator>> PhpMechanism::Release(
    const data::Table& table, double epsilon, Rng* rng,
    const PhpOptions& options) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("P-HP: epsilon must be > 0");
  }
  if (!(options.structure_budget_fraction > 0.0 &&
        options.structure_budget_fraction < 1.0)) {
    return Status::InvalidArgument(
        "P-HP: structure_budget_fraction must be in (0, 1)");
  }
  DPC_ASSIGN_OR_RETURN(hist::Histogram h,
                       hist::Histogram::FromTable(table, options.max_cells));
  const std::vector<double>& x = h.data();
  const std::size_t n = x.size();

  int depth = options.depth;
  if (depth <= 0) {
    depth = static_cast<int>(
        std::ceil(std::log2(std::max(2.0, static_cast<double>(n) / 16.0))));
    depth = std::clamp(depth, 1, 14);
  }
  const double eps_structure = epsilon * options.structure_budget_fraction;
  const double eps_count = epsilon - eps_structure;
  const double eps_per_level = eps_structure / static_cast<double>(depth);

  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + x[i];

  // Recursive bisection (worklist).
  std::vector<Interval> work = {{0, n, 0}};
  std::vector<Interval> buckets;
  while (!work.empty()) {
    Interval iv = work.back();
    work.pop_back();
    if (iv.level >= depth || iv.hi - iv.lo <= 1) {
      buckets.push_back(iv);
      continue;
    }
    // Candidate cuts: evenly spaced interior positions (data-independent).
    const std::size_t len = iv.hi - iv.lo;
    const std::size_t num_cand = std::min(kMaxCutCandidates, len - 1);
    std::vector<std::size_t> cuts(num_cand);
    for (std::size_t c = 0; c < num_cand; ++c) {
      cuts[c] = iv.lo + 1 + c * (len - 1) / num_cand;
    }
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    // Exponential mechanism over cuts: score = -(L1 error of the two
    // halves); changing one record moves one cell by 1, which moves the
    // score by at most 2 (Acs et al.).
    std::vector<double> scores(cuts.size());
    for (std::size_t c = 0; c < cuts.size(); ++c) {
      scores[c] = -(IntervalL1Error(x, prefix, iv.lo, cuts[c]) +
                    IntervalL1Error(x, prefix, cuts[c], iv.hi));
    }
    DPC_ASSIGN_OR_RETURN(std::size_t pick,
                         dp::ExponentialMechanism(rng, scores, eps_per_level,
                                                  /*sensitivity=*/2.0));
    const std::size_t cut = cuts[pick];
    work.push_back({iv.lo, cut, iv.level + 1});
    work.push_back({cut, iv.hi, iv.level + 1});
  }

  // Noisy bucket totals, spread uniformly (buckets are disjoint =>
  // parallel composition at eps_count).
  hist::Histogram out = h;
  auto& data = out.mutable_data();
  for (const Interval& b : buckets) {
    const double total = prefix[b.hi] - prefix[b.lo];
    const double noisy = total + stats::SampleLaplace(rng, 1.0 / eps_count);
    const double per_cell = noisy / static_cast<double>(b.hi - b.lo);
    for (std::size_t i = b.lo; i < b.hi; ++i) data[i] = per_cell;
  }
  return std::make_unique<HistogramEstimator>(std::move(out), "P-HP");
}

}  // namespace dpcopula::baselines
