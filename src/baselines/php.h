#ifndef DPCOPULA_BASELINES_PHP_H_
#define DPCOPULA_BASELINES_PHP_H_

#include <memory>

#include "baselines/range_estimator.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace dpcopula::baselines {

/// P-HP — private hierarchical partitioning (Acs, Castelluccia & Chen,
/// ICDM 2012 [1]).
///
/// Compresses the (flattened, dense) histogram by recursive bisection: at
/// each step the exponential mechanism picks the cut point that minimizes
/// the within-bucket L1 deviation from the bucket means (score sensitivity
/// 2), recursing to a maximum depth; each final bucket then releases a noisy
/// total (Lap(1/eps_count), buckets disjoint => parallel composition) that
/// is spread uniformly over the bucket's cells.
///
/// Like every histogram-input method, this requires materializing the dense
/// domain and fails with ResourceExhausted when it cannot (the
/// scalability wall the paper demonstrates).
struct PhpOptions {
  /// Maximum recursion depth; final bucket count <= 2^depth. 0 selects
  /// ceil(log2(num_cells / 16)) clamped to [1, 14].
  int depth = 0;
  /// Fraction of epsilon spent on choosing the partition structure.
  double structure_budget_fraction = 0.5;
  std::uint64_t max_cells = hist::Histogram::kDefaultMaxCells;
};

class PhpMechanism {
 public:
  /// Releases a noisy histogram estimator for `table` with `epsilon`-DP.
  static Result<std::unique_ptr<HistogramEstimator>> Release(
      const data::Table& table, double epsilon, Rng* rng,
      const PhpOptions& options = {});
};

}  // namespace dpcopula::baselines

#endif  // DPCOPULA_BASELINES_PHP_H_
