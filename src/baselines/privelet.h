#ifndef DPCOPULA_BASELINES_PRIVELET_H_
#define DPCOPULA_BASELINES_PRIVELET_H_

#include <memory>

#include "baselines/range_estimator.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace dpcopula::baselines {

/// Privelet+ — the wavelet mechanism of Xiao, Wang & Gehrke (ICDE 2010
/// [39]): transform the dense frequency histogram with a (nested,
/// separable) Haar wavelet, add Laplace noise in the coefficient domain,
/// and invert. Because one record touches only O(polylog |domain|) wavelet
/// coefficients, range queries see polylogarithmic noise instead of the
/// O(|range|) noise of per-cell perturbation.
///
/// This implementation works in the *orthonormal* Haar basis with
/// Privelet's generalized (per-level weighted) sensitivity calibration:
/// coefficient c receives Lap(prod_j u_j(c_j) / epsilon) where the per-axis
/// weight u_j is (L_j+1)/sqrt(n_j) for the scaling coefficient and
/// (L_j+1)/sqrt(support) for a detail coefficient. A one-cell change meets
/// the epsilon-DP condition with equality, and any range query accumulates
/// only O(prod_j (L_j+1)^{3/2} / epsilon) noise — the polylogarithmic bound
/// of [39] (see privelet.cc for the derivation).
///
/// Requires materializing the dense histogram: like the paper, this method
/// is only applicable when the product domain fits the histogram cell
/// budget, and fails with ResourceExhausted otherwise.
struct PriveletOptions {
  std::uint64_t max_cells = hist::Histogram::kDefaultMaxCells;
};

class PriveletMechanism {
 public:
  /// Builds the noisy histogram estimator for `table` with `epsilon`-DP.
  static Result<std::unique_ptr<HistogramEstimator>> Release(
      const data::Table& table, double epsilon, Rng* rng,
      const PriveletOptions& options = {});

  /// Exact L1 sensitivity of the orthonormal Haar coefficient vector for a
  /// single-cell unit change, for a 1-d transform padded to `padded_length`
  /// (a power of two). Exposed for tests.
  static double HaarL1Sensitivity(std::size_t padded_length);
};

}  // namespace dpcopula::baselines

#endif  // DPCOPULA_BASELINES_PRIVELET_H_
