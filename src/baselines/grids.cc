#include "baselines/grids.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"

namespace dpcopula::baselines {

namespace {

// Overlap length of [a1, b1] and [a2, b2] (inclusive), 0 if disjoint.
double OverlapLength(std::int64_t a1, std::int64_t b1, std::int64_t a2,
                     std::int64_t b2) {
  const std::int64_t lo = std::max(a1, a2);
  const std::int64_t hi = std::min(b1, b2);
  return (lo > hi) ? 0.0 : static_cast<double>(hi - lo + 1);
}

std::int64_t ChooseGranularity(double n, double epsilon, double c,
                               std::int64_t domain,
                               std::int64_t max_per_axis) {
  const double raw = std::sqrt(std::max(1.0, n) * epsilon / c);
  auto g = static_cast<std::int64_t>(std::ceil(raw));
  return std::clamp<std::int64_t>(g, 1, std::min(domain, max_per_axis));
}

}  // namespace

Result<std::unique_ptr<UniformGrid>> UniformGrid::Build(
    const data::Table& table, double epsilon, Rng* rng,
    const UniformGridOptions& options) {
  if (table.num_columns() != 2) {
    return Status::InvalidArgument("UG is defined for 2-dimensional data");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("UG: epsilon must be > 0");
  }
  auto grid = std::make_unique<UniformGrid>();
  grid->domain_ = {table.schema().attribute(0).domain_size,
                   table.schema().attribute(1).domain_size};
  const double n = static_cast<double>(table.num_rows());
  grid->gx_ = ChooseGranularity(n, epsilon, options.c, grid->domain_[0],
                                options.max_cells_per_axis);
  grid->gy_ = ChooseGranularity(n, epsilon, options.c, grid->domain_[1],
                                options.max_cells_per_axis);
  grid->wx_ = (grid->domain_[0] + grid->gx_ - 1) / grid->gx_;
  grid->wy_ = (grid->domain_[1] + grid->gy_ - 1) / grid->gy_;
  // Recompute the exact cell count after rounding the widths.
  grid->gx_ = (grid->domain_[0] + grid->wx_ - 1) / grid->wx_;
  grid->gy_ = (grid->domain_[1] + grid->wy_ - 1) / grid->wy_;

  grid->cells_.assign(
      static_cast<std::size_t>(grid->gx_ * grid->gy_), 0.0);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const auto cx = static_cast<std::int64_t>(table.at(r, 0)) / grid->wx_;
    const auto cy = static_cast<std::int64_t>(table.at(r, 1)) / grid->wy_;
    grid->cells_[static_cast<std::size_t>(cx * grid->gy_ + cy)] += 1.0;
  }
  // Cells are disjoint: parallel composition charges epsilon once overall.
  for (double& c : grid->cells_) {
    c += stats::SampleLaplace(rng, 1.0 / epsilon);
  }
  return grid;
}

double UniformGrid::EstimateRangeCount(
    const std::vector<std::int64_t>& lo,
    const std::vector<std::int64_t>& hi) const {
  double total = 0.0;
  for (std::int64_t cx = 0; cx < gx_; ++cx) {
    const std::int64_t x0 = cx * wx_;
    const std::int64_t x1 = std::min(domain_[0] - 1, x0 + wx_ - 1);
    const double ox = OverlapLength(lo[0], hi[0], x0, x1);
    if (ox == 0.0) continue;
    for (std::int64_t cy = 0; cy < gy_; ++cy) {
      const std::int64_t y0 = cy * wy_;
      const std::int64_t y1 = std::min(domain_[1] - 1, y0 + wy_ - 1);
      const double oy = OverlapLength(lo[1], hi[1], y0, y1);
      if (oy == 0.0) continue;
      const double cell_area =
          static_cast<double>(x1 - x0 + 1) * static_cast<double>(y1 - y0 + 1);
      total += cells_[static_cast<std::size_t>(cx * gy_ + cy)] *
               (ox * oy / cell_area);
    }
  }
  return total;
}

Result<std::unique_ptr<AdaptiveGrid>> AdaptiveGrid::Build(
    const data::Table& table, double epsilon, Rng* rng,
    const AdaptiveGridOptions& options) {
  if (table.num_columns() != 2) {
    return Status::InvalidArgument("AG is defined for 2-dimensional data");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("AG: epsilon must be > 0");
  }
  if (!(options.alpha > 0.0 && options.alpha < 1.0)) {
    return Status::InvalidArgument("AG: alpha must be in (0, 1)");
  }
  const double eps1 = options.alpha * epsilon;
  const double eps2 = epsilon - eps1;

  // Level 1: a coarse UG at half the UG granularity ([33] §4.2).
  UniformGridOptions ug_opts;
  ug_opts.c = options.c1 * 4.0;  // sqrt(n eps / c)/2 == sqrt(n eps / 4c).
  ug_opts.max_cells_per_axis = options.max_cells_per_axis;
  DPC_ASSIGN_OR_RETURN(std::unique_ptr<UniformGrid> level1,
                       UniformGrid::Build(table, eps1, rng, ug_opts));

  auto ag = std::make_unique<AdaptiveGrid>();
  // Level 2: subdivide each level-1 cell based on its noisy count.
  for (std::int64_t cx = 0; cx < level1->gx_; ++cx) {
    for (std::int64_t cy = 0; cy < level1->gy_; ++cy) {
      Region region;
      region.lo = {cx * level1->wx_, cy * level1->wy_};
      region.hi = {
          std::min(level1->domain_[0] - 1, (cx + 1) * level1->wx_ - 1),
          std::min(level1->domain_[1] - 1, (cy + 1) * level1->wy_ - 1)};
      const double noisy_count = std::max(
          0.0, level1->cells_[static_cast<std::size_t>(cx * level1->gy_ +
                                                       cy)]);
      const std::int64_t max_side = std::max<std::int64_t>(
          1, std::min(region.hi[0] - region.lo[0] + 1,
                      region.hi[1] - region.lo[1] + 1));
      region.g = ChooseGranularity(noisy_count, eps2, options.c2, max_side,
                                   options.max_cells_per_axis);

      // Count points of this region into the sub-grid.
      const std::int64_t swx =
          (region.hi[0] - region.lo[0] + region.g) / region.g;
      const std::int64_t swy =
          (region.hi[1] - region.lo[1] + region.g) / region.g;
      region.cells.assign(static_cast<std::size_t>(region.g * region.g),
                          0.0);
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        const auto x = static_cast<std::int64_t>(table.at(r, 0));
        const auto y = static_cast<std::int64_t>(table.at(r, 1));
        if (x < region.lo[0] || x > region.hi[0] || y < region.lo[1] ||
            y > region.hi[1]) {
          continue;
        }
        const std::int64_t sx =
            std::min<std::int64_t>((x - region.lo[0]) / swx, region.g - 1);
        const std::int64_t sy =
            std::min<std::int64_t>((y - region.lo[1]) / swy, region.g - 1);
        region.cells[static_cast<std::size_t>(sx * region.g + sy)] += 1.0;
      }
      // Sub-cells across all regions are disjoint: parallel composition.
      for (double& c : region.cells) {
        c += stats::SampleLaplace(rng, 1.0 / eps2);
      }
      ag->regions_.push_back(std::move(region));
    }
  }
  return ag;
}

double AdaptiveGrid::EstimateRangeCount(
    const std::vector<std::int64_t>& lo,
    const std::vector<std::int64_t>& hi) const {
  double total = 0.0;
  for (const Region& region : regions_) {
    if (lo[0] > region.hi[0] || hi[0] < region.lo[0] ||
        lo[1] > region.hi[1] || hi[1] < region.lo[1]) {
      continue;
    }
    const std::int64_t swx =
        (region.hi[0] - region.lo[0] + region.g) / region.g;
    const std::int64_t swy =
        (region.hi[1] - region.lo[1] + region.g) / region.g;
    for (std::int64_t sx = 0; sx < region.g; ++sx) {
      const std::int64_t x0 = region.lo[0] + sx * swx;
      const std::int64_t x1 = std::min(region.hi[0], x0 + swx - 1);
      if (x0 > region.hi[0]) break;
      const double ox = OverlapLength(lo[0], hi[0], x0, x1);
      if (ox == 0.0) continue;
      for (std::int64_t sy = 0; sy < region.g; ++sy) {
        const std::int64_t y0 = region.lo[1] + sy * swy;
        const std::int64_t y1 = std::min(region.hi[1], y0 + swy - 1);
        if (y0 > region.hi[1]) break;
        const double oy = OverlapLength(lo[1], hi[1], y0, y1);
        if (oy == 0.0) continue;
        const double area = static_cast<double>(x1 - x0 + 1) *
                            static_cast<double>(y1 - y0 + 1);
        total += region.cells[static_cast<std::size_t>(sx * region.g + sy)] *
                 (ox * oy / area);
      }
    }
  }
  return total;
}

}  // namespace dpcopula::baselines
