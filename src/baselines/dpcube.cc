#include "baselines/dpcube.h"

#include <algorithm>
#include <cmath>

#include "marginals/dwork.h"
#include "stats/distributions.h"

namespace dpcopula::baselines {

namespace {

struct Box {
  std::vector<std::int64_t> lo, hi;  // Inclusive.
  int depth;
};

// Applies `fn` to the flat index of every cell in `box`.
template <typename Fn>
void ForEachCell(const hist::Histogram& h, const Box& box, Fn&& fn) {
  const std::size_t m = h.num_dims();
  std::vector<std::int64_t> cursor = box.lo;
  for (;;) {
    fn(h.FlatIndex(cursor));
    bool carried = true;
    for (std::size_t t = m; t-- > 0;) {
      if (++cursor[t] <= box.hi[t]) {
        carried = false;
        break;
      }
      cursor[t] = box.lo[t];
    }
    if (carried) return;
  }
}

double BoxCellCount(const Box& box) {
  double cells = 1.0;
  for (std::size_t j = 0; j < box.lo.size(); ++j) {
    cells *= static_cast<double>(box.hi[j] - box.lo[j] + 1);
  }
  return cells;
}

// Sum and SSE of the noisy cells inside `box`.
void BoxStats(const hist::Histogram& h, const std::vector<double>& cells,
              const Box& box, double* sum, double* sse) {
  double s = 0.0, s2 = 0.0, n = 0.0;
  ForEachCell(h, box, [&](std::uint64_t flat) {
    const double v = cells[flat];
    s += v;
    s2 += v * v;
    n += 1.0;
  });
  *sum = s;
  *sse = s2 - (n > 0.0 ? s * s / n : 0.0);
}

}  // namespace

Result<std::unique_ptr<HistogramEstimator>> DpCubeMechanism::Release(
    const data::Table& table, double epsilon, Rng* rng,
    const DpCubeOptions& options) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("DPCube: epsilon must be > 0");
  }
  DPC_ASSIGN_OR_RETURN(hist::Histogram h,
                       hist::Histogram::FromTable(table, options.max_cells));

  // Phase 1: noisy cell histogram with epsilon / 2.
  const double eps1 = epsilon / 2.0;
  const double eps2 = epsilon - eps1;
  DPC_ASSIGN_OR_RETURN(std::vector<double> noisy_cells,
                       marginals::PublishDworkHistogram(h.data(), eps1, rng));
  const double cell_noise_var = 2.0 / (eps1 * eps1);

  int max_depth = options.max_depth;
  if (max_depth <= 0) {
    max_depth = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(h.num_cells()) + 1.0)));
    max_depth = std::clamp(max_depth, 1, 16);
  }

  // Post-processing KD partitioning over the noisy cells.
  const std::size_t m = h.num_dims();
  Box root;
  root.lo.assign(m, 0);
  root.hi.resize(m);
  for (std::size_t j = 0; j < m; ++j) root.hi[j] = h.dims()[j] - 1;
  root.depth = 0;

  std::vector<Box> work = {root};
  std::vector<Box> leaves;
  while (!work.empty()) {
    Box box = work.back();
    work.pop_back();
    const double cells = BoxCellCount(box);
    double sum, sse;
    BoxStats(h, noisy_cells, box, &sum, &sse);
    const bool looks_uniform =
        sse <= options.split_threshold * cell_noise_var * cells;
    if (box.depth >= max_depth || cells <= 1.0 || looks_uniform) {
      leaves.push_back(box);
      continue;
    }
    // Candidate cut: the midpoint of each splittable axis; keep the axis
    // whose halves have the lowest combined SSE.
    double best_sse = sse;
    int best_axis = -1;
    std::int64_t best_cut = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (box.hi[j] <= box.lo[j]) continue;
      const std::int64_t cut = (box.lo[j] + box.hi[j]) / 2;
      Box left = box, right = box;
      left.hi[j] = cut;
      right.lo[j] = cut + 1;
      double ls, lsse, rs, rsse;
      BoxStats(h, noisy_cells, left, &ls, &lsse);
      BoxStats(h, noisy_cells, right, &rs, &rsse);
      if (lsse + rsse < best_sse) {
        best_sse = lsse + rsse;
        best_axis = static_cast<int>(j);
        best_cut = cut;
      }
    }
    if (best_axis < 0) {
      leaves.push_back(box);
      continue;
    }
    Box left = box, right = box;
    left.hi[static_cast<std::size_t>(best_axis)] = best_cut;
    right.lo[static_cast<std::size_t>(best_axis)] = best_cut + 1;
    left.depth = right.depth = box.depth + 1;
    work.push_back(left);
    work.push_back(right);
  }

  // Phase 2: one fresh noisy count per leaf (disjoint => parallel
  // composition at eps2), combined with the phase-1 sum by inverse
  // variance, then spread uniformly.
  hist::Histogram out = h;
  auto& data = out.mutable_data();
  for (const Box& leaf : leaves) {
    const double cells = BoxCellCount(leaf);
    double phase1_sum, unused_sse;
    BoxStats(h, noisy_cells, leaf, &phase1_sum, &unused_sse);
    double true_sum = 0.0;
    ForEachCell(h, leaf,
                [&](std::uint64_t flat) { true_sum += h.data()[flat]; });
    const double phase2_sum =
        true_sum + stats::SampleLaplace(rng, 1.0 / eps2);
    const double var1 = cells * cell_noise_var;
    const double var2 = 2.0 / (eps2 * eps2);
    const double combined =
        (phase1_sum / var1 + phase2_sum / var2) / (1.0 / var1 + 1.0 / var2);
    const double per_cell = combined / cells;
    ForEachCell(h, leaf,
                [&](std::uint64_t flat) { data[flat] = per_cell; });
  }
  return std::make_unique<HistogramEstimator>(std::move(out), "DPCube");
}

}  // namespace dpcopula::baselines
