#include "linalg/packed_symmetric.h"

#include <cassert>

namespace dpcopula::linalg {

void PackedSymmetric::AddInPlace(const PackedSymmetric& other) {
  assert(other.n_ == n_);
  for (std::size_t p = 0; p < data_.size(); ++p) data_[p] += other.data_[p];
}

void PackedSymmetric::ScaleInPlace(double s) {
  for (double& v : data_) v *= s;
}

PackedSymmetric PackedSymmetric::FromLowerTriangleOf(const Matrix& a) {
  assert(a.rows() == a.cols());
  PackedSymmetric packed(a.rows());
  std::size_t p = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j, ++p) packed.data_[p] = a(i, j);
  }
  return packed;
}

Matrix PackedSymmetric::ToMatrix() const {
  Matrix a(n_, n_);
  std::size_t p = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j, ++p) {
      a(i, j) = data_[p];
      a(j, i) = data_[p];
    }
  }
  return a;
}

}  // namespace dpcopula::linalg
