#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/failpoint.h"

namespace dpcopula::linalg {

namespace {

// Sum of squared off-diagonal magnitudes; the Jacobi convergence criterion.
double OffDiagonalNorm(const Matrix& d) {
  const std::size_t n = d.rows();
  double off = 0.0;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
  return std::sqrt(off);
}

double FrobeniusNorm(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * a(i, j);
  return std::sqrt(acc);
}

}  // namespace

namespace internal {

void SortEigenpairsDescending(EigenDecomposition* ed) {
  const std::size_t n = ed->values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return ed->values[i] > ed->values[j];
  });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = ed->values[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      sorted_vectors(i, j) = ed->vectors(i, order[j]);
  }
  ed->values = std::move(sorted_values);
  ed->vectors = std::move(sorted_vectors);
}

Result<EigenDecomposition> EigenSymJacobi(const Matrix& a, int max_sweeps,
                                          double tol) {
  const std::size_t n = a.rows();
  Matrix d = a;  // Will be driven to diagonal form.
  Matrix v = Matrix::Identity(n);
  // Convergence is declared when the off-diagonal mass is small *relative*
  // to the matrix itself. (The pre-PR-9 absolute test `<= tol` stopped
  // scaling with the input: at m >~ 100 the initial off-diagonal norm is
  // O(m) and round-off alone floors near eps * ||A||_F, so badly scaled
  // input burned the whole sweep budget and failed spuriously.)
  const double threshold = tol * FrobeniusNorm(a);

  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (OffDiagonalNorm(d) <= threshold) {
      converged = true;
      break;
    }

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        // Stable Jacobi rotation parameters.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  // The loop tests convergence *before* each sweep, so after exhausting
  // max_sweeps the final sweep's result still needs checking.
  if (!converged && OffDiagonalNorm(d) > threshold) {
    return Status::NumericalError(
        "EigenSym did not converge within " + std::to_string(max_sweeps) +
        " Jacobi sweeps");
  }

  EigenDecomposition ed;
  ed.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) ed.values[i] = d(i, i);
  ed.vectors = std::move(v);
  SortEigenpairsDescending(&ed);
  return ed;
}

}  // namespace internal

Result<EigenDecomposition> EigenSym(const Matrix& a,
                                    const EigenSymOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("EigenSym requires a square matrix");
  }
  if (!a.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("EigenSym requires a symmetric matrix");
  }
  // This site simulates the iteration budget running out, so it surfaces as
  // the same NumericalError real non-convergence produces — that is what
  // lets the fault exercise callers' retry policies (psd_repair shrinkage).
  // Both kernels share the site: flipping EigenKernel never changes which
  // faults can fire.
  if (DPC_FAILPOINT("linalg.eigen.converge")) {
    return Status::NumericalError(
        "injected fault at fail point 'linalg.eigen.converge'");
  }
  return options.kernel == EigenKernel::kJacobi
             ? internal::EigenSymJacobi(a, options.max_sweeps, options.tol)
             : internal::EigenSymTridiagQL(a, options);
}

Result<EigenDecomposition> EigenSym(const Matrix& a, int max_sweeps,
                                    double tol) {
  EigenSymOptions options;
  options.kernel = EigenKernel::kJacobi;
  options.max_sweeps = max_sweeps;
  options.tol = tol;
  return EigenSym(a, options);
}

Matrix EigenReconstruct(const EigenDecomposition& ed) {
  const std::size_t n = ed.values.size();
  Matrix scaled = ed.vectors;  // V diag(values)
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) scaled(i, j) *= ed.values[j];
  return scaled * ed.vectors.Transpose();
}

}  // namespace dpcopula::linalg
