#ifndef DPCOPULA_LINALG_PSD_REPAIR_H_
#define DPCOPULA_LINALG_PSD_REPAIR_H_

#include "common/result.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"

namespace dpcopula::linalg {

/// Options for the Rousseeuw–Molenberghs eigenvalue repair used by
/// Algorithm 5 step 3 of the paper.
struct PsdRepairOptions {
  /// Negative eigenvalues are replaced by max(|lambda| * use_abs,
  /// min_eigenvalue). With use_abs=false they are clamped to min_eigenvalue
  /// ("small value" variant); with true, to their absolute value.
  bool use_abs = false;
  double min_eigenvalue = 1e-6;
  /// Eigensolver kernel for the decomposition step (see EigenKernel). Both
  /// kernels share the `linalg.eigen.converge` failpoint and the
  /// NumericalError retry contract below.
  EigenKernel eigen_kernel = EigenKernel::kTridiagQL;
  /// Threads for the eigensolver's Householder update loops
  /// (kTridiagQL only); 0 = hardware concurrency, <= 1 sequential. The
  /// repaired matrix is bit-identical for every value.
  int num_threads = 1;
};

/// Transforms a symmetric matrix with possibly negative eigenvalues into a
/// valid correlation matrix (positive definite, unit diagonal, entries in
/// [-1, 1]) via the eigenvalue method of Rousseeuw & Molenberghs (1993):
/// decompose R D R^T, lift negative eigenvalues, reconstruct, then rescale to
/// unit diagonal. Input must be square and symmetric.
Result<Matrix> RepairToCorrelation(const Matrix& a,
                                   const PsdRepairOptions& options = {});

/// Convenience: if `a` is already positive definite it is returned with its
/// diagonal renormalized to 1; otherwise it is repaired.
Result<Matrix> EnsureCorrelationMatrix(const Matrix& a,
                                       const PsdRepairOptions& options = {});

}  // namespace dpcopula::linalg

#endif  // DPCOPULA_LINALG_PSD_REPAIR_H_
