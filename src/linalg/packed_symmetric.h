#ifndef DPCOPULA_LINALG_PACKED_SYMMETRIC_H_
#define DPCOPULA_LINALG_PACKED_SYMMETRIC_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace dpcopula::linalg {

/// Packed lower-triangular storage of a symmetric n x n matrix: the
/// n(n+1)/2 entries (i, j) with i >= j, row by row, entry (i, j) at
/// data[i(i+1)/2 + j]. The estimators accumulate their m x m correlation
/// builds in this layout — each logical entry is stored exactly once, so
/// accumulation passes (the per-partition AddInPlace of the MLE average,
/// the pairwise rho scatter of the Kendall build) touch half the memory of
/// the dense mirror-writing form. Expansion to a dense Matrix happens once,
/// at the PSD-repair boundary.
class PackedSymmetric {
 public:
  PackedSymmetric() = default;
  explicit PackedSymmetric(std::size_t n)
      : n_(n), data_(n * (n + 1) / 2, 0.0) {}

  std::size_t dim() const { return n_; }

  /// The stored (lower-triangle) entry; requires i >= j.
  double& at(std::size_t i, std::size_t j) { return data_[Index(i, j)]; }
  double at(std::size_t i, std::size_t j) const { return data_[Index(i, j)]; }

  /// Symmetric read: (i, j) and (j, i) resolve to the same entry.
  double operator()(std::size_t i, std::size_t j) const {
    return i >= j ? data_[Index(i, j)] : data_[Index(j, i)];
  }

  /// this += other, entry by entry in storage order (one fixed addition
  /// sequence per logical entry — what keeps the MLE's released matrix
  /// bit-identical to the dense accumulation it replaced).
  void AddInPlace(const PackedSymmetric& other);

  /// this *= s, entry by entry.
  void ScaleInPlace(double s);

  /// Packs the lower triangle (incl. diagonal) of a square matrix.
  static PackedSymmetric FromLowerTriangleOf(const Matrix& a);

  /// Expands to the full dense symmetric matrix.
  Matrix ToMatrix() const;

  const std::vector<double>& data() const { return data_; }

 private:
  static std::size_t Index(std::size_t i, std::size_t j) {
    return i * (i + 1) / 2 + j;
  }

  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace dpcopula::linalg

#endif  // DPCOPULA_LINALG_PACKED_SYMMETRIC_H_
