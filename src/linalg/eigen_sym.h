#ifndef DPCOPULA_LINALG_EIGEN_SYM_H_
#define DPCOPULA_LINALG_EIGEN_SYM_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace dpcopula::linalg {

/// Eigendecomposition A = V diag(values) V^T of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Which symmetric eigensolver kernel EigenSym runs (the PR 4/5/6 kernel
/// pattern: production kernel plus the verbatim legacy one for old-vs-new
/// agreement tests).
enum class EigenKernel {
  /// Two-stage solver: Householder tridiagonalization followed by
  /// implicit-shift QL with eigenvector accumulation. O(n^3) total with a
  /// small constant — the high-dimension (m = 100-500) production path.
  /// The Householder update loops run on the shared pool with
  /// bit-identical results for any thread count.
  kTridiagQL,
  /// Cyclic Jacobi sweeps (the pre-PR-9 solver): O(n^3) *per sweep* with
  /// full-matrix rotation updates. Kept verbatim for agreement tests and
  /// small-m fallback.
  kJacobi,
};

struct EigenSymOptions {
  EigenKernel kernel = EigenKernel::kTridiagQL;
  /// Sweep budget (kJacobi only).
  int max_sweeps = 64;
  /// Implicit-shift budget per eigenvalue (kTridiagQL only).
  int max_ql_iterations = 48;
  /// Convergence tolerance, *relative* to ||A||_F. (Pre-PR-9 this was an
  /// absolute threshold, which at m >~ 100 — initial off-diagonal norm
  /// O(m) — declared convergence far too late or, for badly scaled input,
  /// never.)
  double tol = 1e-13;
  /// Threads for the Householder update loops (kTridiagQL only);
  /// 0 = hardware concurrency, <= 1 sequential. The shard decomposition
  /// never changes a released bit.
  int num_threads = 1;
};

/// Symmetric eigensolver. Robust and accurate for the m x m correlation
/// matrices this library handles (m up to a few hundred). Returns
/// InvalidArgument for non-square/non-symmetric input and NumericalError if
/// the iteration budget runs out (callers such as psd_repair treat that as
/// retryable).
Result<EigenDecomposition> EigenSym(const Matrix& a,
                                    const EigenSymOptions& options = {});

/// Legacy entry point, pinned to the Jacobi kernel (callers passing an
/// explicit sweep budget predate EigenSymOptions). `tol` is relative to
/// ||A||_F.
Result<EigenDecomposition> EigenSym(const Matrix& a, int max_sweeps,
                                    double tol = 1e-13);

/// Reconstructs V diag(values) V^T — used by tests and the PSD repair.
Matrix EigenReconstruct(const EigenDecomposition& ed);

namespace internal {

/// Stage 1 of kTridiagQL: Householder reduction of the symmetric matrix in
/// `*z` to tridiagonal form. On return `*d` holds the diagonal, `*e` the
/// subdiagonal in e[1..n-1] (e[0] = 0), and `*z` the accumulated orthogonal
/// transform Q with A = Q T Q^T. Reads/updates only the lower triangle of
/// the shrinking active block; the per-row update loops are sharded over
/// `num_threads` with bit-identical output for any value. Exposed for the
/// kernel tests.
void HouseholderTridiagonalize(Matrix* z, std::vector<double>* d,
                               std::vector<double>* e, int num_threads);

/// Stage 2 of kTridiagQL: implicit-shift QL on the tridiagonal (d, e) with
/// the rotations accumulated into the columns of `*z`. On success `*d`
/// holds the (unsorted) eigenvalues and column k of `*z` the eigenvector
/// for d[k]. `rel_tol` is the deflation threshold relative to the local
/// diagonal magnitude. Returns NumericalError when any eigenvalue exceeds
/// `max_iterations` shifts. Exposed for the kernel tests.
Status TridiagQL(std::vector<double>* d, std::vector<double>* e, Matrix* z,
                 int max_iterations, double rel_tol);

/// Sorts (values[k], column k of vectors) pairs by descending eigenvalue —
/// the output convention both kernels share.
void SortEigenpairsDescending(EigenDecomposition* ed);

/// Kernel bodies (input already validated, failpoint already consulted).
Result<EigenDecomposition> EigenSymJacobi(const Matrix& a, int max_sweeps,
                                          double tol);
Result<EigenDecomposition> EigenSymTridiagQL(const Matrix& a,
                                             const EigenSymOptions& options);

}  // namespace internal

}  // namespace dpcopula::linalg

#endif  // DPCOPULA_LINALG_EIGEN_SYM_H_
