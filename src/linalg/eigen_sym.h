#ifndef DPCOPULA_LINALG_EIGEN_SYM_H_
#define DPCOPULA_LINALG_EIGEN_SYM_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace dpcopula::linalg {

/// Eigendecomposition A = V diag(values) V^T of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Cyclic Jacobi eigensolver for symmetric matrices. Robust and accurate for
/// the m x m correlation matrices this library handles (m up to a few
/// hundred). Returns InvalidArgument for non-square/non-symmetric input.
Result<EigenDecomposition> EigenSym(const Matrix& a, int max_sweeps = 64,
                                    double tol = 1e-13);

/// Reconstructs V diag(values) V^T — used by tests and the PSD repair.
Matrix EigenReconstruct(const EigenDecomposition& ed);

}  // namespace dpcopula::linalg

#endif  // DPCOPULA_LINALG_EIGEN_SYM_H_
