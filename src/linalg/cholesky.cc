#include "linalg/cholesky.h"

#include <cmath>

#include "common/failpoint.h"

namespace dpcopula::linalg {

Result<Matrix> CholeskyDecompose(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (DPC_FAILPOINT("linalg.cholesky")) {
    return failpoint::InjectedFault("linalg.cholesky");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      // The failing pivot's *value* is derived from the data, so it stays
      // out of the message (error text must be data-independent); the
      // pivot index is structural and safe.
      return Status::NumericalError(
          "matrix is not positive definite (pivot " + std::to_string(j) +
          ")");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

Result<std::vector<double>> CholeskySolve(const Matrix& l,
                                          const std::vector<double>& b) {
  if (l.rows() != l.cols()) {
    return Status::InvalidArgument("CholeskySolve requires a square factor");
  }
  const std::size_t n = l.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: size mismatch");
  }
  // A valid Cholesky factor has finite nonzero pivots; dividing by a bad
  // one would silently propagate inf/NaN into every downstream release.
  // The pivot *value* is data-derived and stays out of the message; the
  // index is structural and safe.
  for (std::size_t i = 0; i < n; ++i) {
    const double pivot = l(i, i);
    if (pivot == 0.0 || !std::isfinite(pivot)) {
      return Status::NumericalError(
          "CholeskySolve: zero or non-finite pivot (index " +
          std::to_string(i) + ")");
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Result<Matrix> CholeskyInverse(const Matrix& l) {
  if (l.rows() != l.cols()) {
    return Status::InvalidArgument(
        "CholeskyInverse requires a square factor");
  }
  const std::size_t n = l.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    DPC_ASSIGN_OR_RETURN(std::vector<double> col, CholeskySolve(l, e));
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  // The result is symmetric in exact arithmetic; enforce it to kill
  // round-off asymmetry.
  Symmetrize(&inv);
  return inv;
}

double CholeskyLogDet(const Matrix& l) {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

bool IsPositiveDefinite(const Matrix& a) {
  return CholeskyDecompose(a).ok();
}

}  // namespace dpcopula::linalg
