#include "linalg/psd_repair.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace dpcopula::linalg {

namespace {

// Rescales a symmetric PSD matrix to unit diagonal and clamps off-diagonal
// entries into [-1, 1]. A lifted spectrum makes every reconstructed
// diagonal entry >= min_eigenvalue, so a non-positive (or non-finite) one
// means the reconstruction itself broke down; the pre-PR-9 behavior —
// divide that row by 1.0 and let the [-1, 1] clamp silently distort its
// correlations — released a structurally wrong matrix. Fail closed
// instead. The diagonal *value* is data-derived and stays out of the
// message; the row index is structural.
Status NormalizeToCorrelation(Matrix* a) {
  static obs::Counter* const normalize_failures =
      obs::MetricsRegistry::Global().GetCounter(
          "linalg.psd_normalize_failures");
  const std::size_t n = a->rows();
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double diag = (*a)(i, i);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      normalize_failures->Increment();
      return Status::NumericalError(
          "PSD repair: non-positive diagonal after eigenvalue lift (row " +
          std::to_string(i) + ")");
    }
    d[i] = std::sqrt(diag);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      (*a)(i, j) /= d[i] * d[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    (*a)(i, i) = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) (*a)(i, j) = std::clamp((*a)(i, j), -1.0, 1.0);
    }
  }
  Symmetrize(a);
  return Status::OK();
}

}  // namespace

Result<Matrix> RepairToCorrelation(const Matrix& a,
                                   const PsdRepairOptions& options) {
  static obs::Counter* const eigen_retries =
      obs::MetricsRegistry::Global().GetCounter("linalg.eigen_retries");
  if (DPC_FAILPOINT("linalg.psd_repair")) {
    return failpoint::InjectedFault("linalg.psd_repair");
  }
  EigenSymOptions eigen_options;
  eigen_options.kernel = options.eigen_kernel;
  eigen_options.num_threads = options.num_threads;
  Result<EigenDecomposition> decomp = EigenSym(a, eigen_options);
  if (!decomp.ok() &&
      decomp.status().code() == StatusCode::kNumericalError) {
    // Recovery policy: one retry after diagonal shrinkage toward the
    // identity. The shrunk matrix (1-g)A + gI has the same eigenvectors
    // as A and strictly better-conditioned off-diagonal mass, so a sweep
    // budget that was barely insufficient becomes sufficient; the
    // resulting repaired matrix is an explicitly *worse* (more
    // independent) correlation estimate, which is the accuracy downgrade
    // this degradation trades for availability. A second failure fails
    // closed.
    eigen_retries->Increment();
    obs::Log(obs::LogLevel::kWarn, "psd_repair.eigen_retry")
        .Field("dim", a.rows());
    constexpr double kShrink = 0.05;
    const Matrix shrunk =
        a.Scaled(1.0 - kShrink) + Matrix::Identity(a.rows()).Scaled(kShrink);
    decomp = EigenSym(shrunk, eigen_options);
  }
  DPC_ASSIGN_OR_RETURN(EigenDecomposition ed, std::move(decomp));
  for (double& lambda : ed.values) {
    if (lambda < options.min_eigenvalue) {
      lambda = options.use_abs
                   ? std::max(std::fabs(lambda), options.min_eigenvalue)
                   : options.min_eigenvalue;
    }
  }
  Matrix repaired = EigenReconstruct(ed);
  {
    Status normalized = NormalizeToCorrelation(&repaired);
    if (!normalized.ok()) return normalized;
  }
  // The clamp/renormalize can in principle reintroduce a tiny negative
  // eigenvalue; nudge the diagonal until Cholesky succeeds.
  double jitter = options.min_eigenvalue;
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (IsPositiveDefinite(repaired)) return repaired;
    for (std::size_t i = 0; i < repaired.rows(); ++i) {
      for (std::size_t j = 0; j < repaired.cols(); ++j) {
        if (i != j) repaired(i, j) /= (1.0 + jitter);
      }
    }
    jitter *= 4.0;
  }
  return Status::NumericalError("PSD repair failed to converge");
}

Result<Matrix> EnsureCorrelationMatrix(const Matrix& a,
                                       const PsdRepairOptions& options) {
  // Covers both the PD probe and (when needed) the eigen repair; the
  // sampler's own factorization is profiled separately as "cholesky".
  obs::StageScope stage(obs::Stage::kPsdRepair);
  if (a.rows() != a.cols() || !a.IsSymmetric(1e-9)) {
    return Status::InvalidArgument(
        "EnsureCorrelationMatrix requires a square symmetric matrix");
  }
  Matrix candidate = a;
  bool in_range = true;
  for (std::size_t i = 0; i < a.rows() && in_range; ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double want = (i == j) ? 1.0 : candidate(i, j);
      if (i == j && std::fabs(candidate(i, j) - 1.0) > 1e-9) in_range = false;
      if (std::fabs(want) > 1.0 + 1e-12) in_range = false;
    }
  }
  if (in_range && IsPositiveDefinite(candidate)) return candidate;
  return RepairToCorrelation(candidate, options);
}

}  // namespace dpcopula::linalg
