#ifndef DPCOPULA_LINALG_CHOLESKY_H_
#define DPCOPULA_LINALG_CHOLESKY_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace dpcopula::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T for a symmetric
/// positive-definite A. Returns NumericalError if A is not (numerically)
/// positive definite.
Result<Matrix> CholeskyDecompose(const Matrix& a);

/// Solves A x = b given the Cholesky factor L of A (forward + back
/// substitution).
Result<std::vector<double>> CholeskySolve(const Matrix& l,
                                          const std::vector<double>& b);

/// Inverse of A given its Cholesky factor L.
Result<Matrix> CholeskyInverse(const Matrix& l);

/// log det(A) given the Cholesky factor L of A: 2 * sum log L_ii.
double CholeskyLogDet(const Matrix& l);

/// Convenience: true iff CholeskyDecompose succeeds.
bool IsPositiveDefinite(const Matrix& a);

}  // namespace dpcopula::linalg

#endif  // DPCOPULA_LINALG_CHOLESKY_H_
