#include "linalg/matrix.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace dpcopula::linalg {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scaled(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double mx = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::fabs(data_[i] - other.data_[i]));
  }
  return mx;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "% .*f ", precision, (*this)(r, c));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void Symmetrize(Matrix* a) {
  assert(a->rows() == a->cols());
  for (std::size_t r = 0; r < a->rows(); ++r) {
    for (std::size_t c = r + 1; c < a->cols(); ++c) {
      const double avg = 0.5 * ((*a)(r, c) + (*a)(c, r));
      (*a)(r, c) = avg;
      (*a)(c, r) = avg;
    }
  }
}

}  // namespace dpcopula::linalg
