#ifndef DPCOPULA_LINALG_MATRIX_H_
#define DPCOPULA_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dpcopula::linalg {

/// Dense row-major matrix of doubles. Sized for the correlation-matrix work
/// this library does (m <= a few hundred), not for BLAS-scale workloads.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from a row-major initializer, e.g. {{1,2},{3,4}}.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix Transpose() const;

  /// Matrix product; aborts on shape mismatch in debug, returns error status
  /// via the checked variant below. This unchecked form is for hot paths with
  /// shapes guaranteed by construction.
  Matrix operator*(const Matrix& other) const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;

  /// this += other without allocating a temporary; shapes must match.
  void AddInPlace(const Matrix& other);

  /// Scales every entry.
  Matrix Scaled(double s) const;

  /// y = A * x for a length-cols() vector.
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// True if square and |a_ij - a_ji| <= tol everywhere.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Human-readable dump for diagnostics.
  std::string ToString(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Symmetrizes in place: A <- (A + A^T) / 2. Requires square.
void Symmetrize(Matrix* a);

}  // namespace dpcopula::linalg

#endif  // DPCOPULA_LINALG_MATRIX_H_
