// Stage-1/stage-2 implementation of EigenKernel::kTridiagQL: Householder
// tridiagonalization with deterministic row-sharded update loops, then
// implicit-shift QL on the tridiagonal with eigenvector accumulation.
// Dispatch, validation and the `linalg.eigen.converge` failpoint live in
// eigen_sym.cc; this file assumes a square, symmetric input.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "linalg/eigen_sym.h"

namespace dpcopula::linalg::internal {

namespace {

/// Dimension below which the Householder update loops are not worth
/// sharding: a whole step's rank-2 update is ~l^2 flops, and below this the
/// pool dispatch costs more than it saves. The cutoff depends only on the
/// matrix dimension — never on the data or the thread count — so it cannot
/// perturb determinism.
constexpr std::size_t kParallelMinDim = 96;

/// Rows per shard of the Householder update loops. Row j of the active
/// block costs O(j) flops, so a modest grain amortizes dispatch while
/// keeping the tail balanced.
constexpr std::size_t kHouseholderGrain = 16;

}  // namespace

void HouseholderTridiagonalize(Matrix* z, std::vector<double>* d,
                               std::vector<double>* e, int num_threads) {
  Matrix& q = *z;
  const std::size_t n = q.rows();
  d->assign(n, 0.0);
  e->assign(n, 0.0);
  if (n == 0) return;
  const int threads = (n < kParallelMinDim) ? 1 : num_threads;
  std::vector<double> w(n, 0.0);  // A v / h, then the rank-2 vector w.

  // Reduce rows n-1 .. 1, shrinking the active leading block each step.
  // Only the lower triangle of the active block is read or written; the
  // strict upper triangle of column i stores v/h for the back-accumulation
  // below (the classic tred2 storage scheme).
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(q(i, k));
      if (scale == 0.0) {
        (*e)[i] = q(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          q(i, k) /= scale;  // Row i now holds the scaled Householder v.
          h += q(i, k) * q(i, k);
        }
        double f = q(i, l);
        const double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        (*e)[i] = scale * g;
        h -= f * g;  // h = |v|^2 / 2 up to the sign convention.
        q(i, l) = f - g;
        // w = A v / h over the leading (l+1)-block. Each row j is an
        // independent fixed-order dot product (reading only the lower
        // triangle plus the frozen row i), so the shard decomposition
        // cannot change a single bit of w. The v/h store into column i is
        // disjoint from every read (columns <= l).
        ParallelFor(
            0, l + 1, kHouseholderGrain,
            [&](std::size_t jb, std::size_t je) {
              for (std::size_t j = jb; j < je; ++j) {
                q(j, i) = q(i, j) / h;
                double acc = 0.0;
                for (std::size_t k = 0; k <= j; ++k) acc += q(j, k) * q(i, k);
                for (std::size_t k = j + 1; k <= l; ++k)
                  acc += q(k, j) * q(i, k);
                w[j] = acc / h;
              }
            },
            threads);
        // K = v^T w / 2h: one fixed-order sequential reduction, then
        // w <- w - K v is finalized *before* the rank-2 update so every
        // row reads the same w regardless of sharding.
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) f += w[j] * q(i, j);
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) w[j] -= hh * q(i, j);
        // A <- A - v w^T - w v^T on the lower triangle; row j writes only
        // row j and reads only the frozen v (row i) and w.
        ParallelFor(
            0, l + 1, kHouseholderGrain,
            [&](std::size_t jb, std::size_t je) {
              for (std::size_t j = jb; j < je; ++j) {
                const double vj = q(i, j);
                const double wj = w[j];
                for (std::size_t k = 0; k <= j; ++k) {
                  q(j, k) -= vj * w[k] + wj * q(i, k);
                }
              }
            },
            threads);
      }
    } else {
      (*e)[i] = q(i, l);
    }
    (*d)[i] = h;  // Stashed so the accumulation pass can skip null steps.
  }

  // Back-accumulate Q = P_1 P_2 .. P_{n-1}: apply each stored transform to
  // the growing identity block. Column j of the block is an independent
  // chain (reads the frozen v in row i and v/h in column i, writes only
  // column j), so the shard decomposition is again bit-invisible.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t l = i;
    if ((*d)[i] != 0.0) {
      ParallelFor(
          0, l, kHouseholderGrain,
          [&](std::size_t jb, std::size_t je) {
            for (std::size_t j = jb; j < je; ++j) {
              double g = 0.0;
              for (std::size_t k = 0; k < l; ++k) g += q(i, k) * q(k, j);
              for (std::size_t k = 0; k < l; ++k) q(k, j) -= g * q(k, i);
            }
          },
          threads);
    }
    (*d)[i] = q(i, i);
    q(i, i) = 1.0;
    for (std::size_t j = 0; j < l; ++j) {
      q(i, j) = 0.0;
      q(j, i) = 0.0;
    }
  }
}

Status TridiagQL(std::vector<double>* d_io, std::vector<double>* e_io,
                 Matrix* z, int max_iterations, double rel_tol) {
  std::vector<double>& d = *d_io;
  std::vector<double>& e = *e_io;
  Matrix& q = *z;
  const std::size_t n = d.size();
  if (n == 0) return Status::OK();
  const double rel =
      std::max(rel_tol, std::numeric_limits<double>::epsilon());
  // Renumber the subdiagonal to e[0..n-2] (e arrives in e[1..n-1]).
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      // Deflation scan: a subdiagonal entry negligible relative to its
      // diagonal neighbours splits the problem.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= rel * dd) break;
      }
      if (m != l) {
        if (iter++ == max_iterations) {
          return Status::NumericalError(
              "EigenSym (tridiagonal QL) did not converge within " +
              std::to_string(max_iterations) + " implicit shifts");
        }
        // Wilkinson-style shift from the leading 2x2.
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Rotation annihilated; recover by restarting the deflation
            // scan without finishing the chase.
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          // Accumulate the rotation into eigenvector columns i and i+1.
          for (std::size_t k = 0; k < n; ++k) {
            f = q(k, i + 1);
            q(k, i + 1) = s * q(k, i) + c * f;
            q(k, i) = c * q(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return Status::OK();
}

Result<EigenDecomposition> EigenSymTridiagQL(const Matrix& a,
                                             const EigenSymOptions& options) {
  Matrix q = a;
  std::vector<double> d;
  std::vector<double> e;
  HouseholderTridiagonalize(&q, &d, &e, options.num_threads);
  Status ql = TridiagQL(&d, &e, &q, options.max_ql_iterations, options.tol);
  if (!ql.ok()) return ql;
  EigenDecomposition ed;
  ed.values = std::move(d);
  ed.vectors = std::move(q);
  SortEigenpairsDescending(&ed);
  return ed;
}

}  // namespace dpcopula::linalg::internal
