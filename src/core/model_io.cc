#include "core/model_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "copula/sampler.h"
#include "linalg/psd_repair.h"
#include "stats/empirical_cdf.h"

namespace dpcopula::core {

DpCopulaModel ModelFromSynthesis(const data::Schema& schema,
                                 const SynthesisResult& result) {
  DpCopulaModel model;
  model.schema = schema;
  model.marginal_counts = result.noisy_marginals;
  model.correlation = result.correlation;
  model.family = result.family_used;
  model.t_dof = result.t_dof_used;
  model.fitted_rows = result.synthetic.num_rows();
  return model;
}

Result<data::Table> SampleFromModel(const DpCopulaModel& model,
                                    std::size_t num_rows, Rng* rng) {
  if (model.schema.num_attributes() == 0) {
    return Status::InvalidArgument("model has no attributes");
  }
  if (model.marginal_counts.size() != model.schema.num_attributes()) {
    return Status::InvalidArgument("model margins do not match schema");
  }
  std::vector<stats::EmpiricalCdf> cdfs;
  for (const auto& counts : model.marginal_counts) {
    DPC_ASSIGN_OR_RETURN(stats::EmpiricalCdf cdf,
                         stats::EmpiricalCdf::FromCounts(counts));
    cdfs.push_back(std::move(cdf));
  }
  const std::size_t rows = num_rows > 0 ? num_rows : model.fitted_rows;
  if (model.family == CopulaFamily::kStudentT) {
    return copula::SampleSyntheticDataT(model.schema, cdfs,
                                        model.correlation, model.t_dof, rows,
                                        rng);
  }
  return copula::SampleSyntheticData(model.schema, cdfs, model.correlation,
                                     rows, rng);
}

Status SerializeModel(const DpCopulaModel& model, std::ostream& out) {
  out.precision(17);
  out << "DPCOPULA-MODEL v1\n";
  out << "attributes " << model.schema.num_attributes() << "\n";
  for (const auto& attr : model.schema.attributes()) {
    out << "attribute " << attr.name << " " << attr.domain_size << "\n";
  }
  out << "family "
      << (model.family == CopulaFamily::kStudentT ? "student-t" : "gaussian")
      << "\n";
  out << "t_dof " << model.t_dof << "\n";
  out << "fitted_rows " << model.fitted_rows << "\n";
  for (std::size_t j = 0; j < model.marginal_counts.size(); ++j) {
    out << "margin " << j << " " << model.marginal_counts[j].size() << "\n";
    for (double v : model.marginal_counts[j]) out << v << "\n";
  }
  const std::size_t m = model.correlation.rows();
  out << "correlation " << m << "\n";
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      out << model.correlation(i, j) << (j + 1 < m ? ' ' : '\n');
    }
  }
  if (!out) return Status::IOError("model serialization stream failed");
  return Status::OK();
}

Status SaveModel(const DpCopulaModel& model, const std::string& path) {
  return WriteFileAtomic(path, [&](std::ostream& out) -> Status {
    return SerializeModel(model, out);
  });
}

namespace {

Status ParseError(const std::string& what) {
  return Status::IOError("model parse error: " + what);
}

}  // namespace

Result<DpCopulaModel> LoadModel(const std::string& path,
                                const LoadModelOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  if (DPC_FAILPOINT("model.load.open")) {
    return failpoint::InjectedFault("model.load.open");
  }
  std::string line;
  if (!std::getline(in, line) || line != "DPCOPULA-MODEL v1") {
    return ParseError("bad header");
  }
  DpCopulaModel model;

  std::string token;
  std::size_t num_attrs = 0;
  if (!(in >> token >> num_attrs) || token != "attributes") {
    return ParseError("attributes");
  }
  std::vector<data::Attribute> attrs;
  for (std::size_t i = 0; i < num_attrs; ++i) {
    data::Attribute attr;
    if (!(in >> token >> attr.name >> attr.domain_size) ||
        token != "attribute" || attr.domain_size <= 0) {
      return ParseError("attribute " + std::to_string(i));
    }
    attrs.push_back(std::move(attr));
  }
  model.schema = data::Schema(std::move(attrs));

  std::string family;
  if (!(in >> token >> family) || token != "family") {
    return ParseError("family");
  }
  if (family == "student-t") {
    model.family = CopulaFamily::kStudentT;
  } else if (family == "gaussian") {
    model.family = CopulaFamily::kGaussian;
  } else {
    return ParseError("unknown family '" + family + "'");
  }
  if (!(in >> token >> model.t_dof) || token != "t_dof") {
    return ParseError("t_dof");
  }
  // Non-finite dof fails closed for *both* families: the Gaussian family
  // ignores t_dof when sampling, but a NaN here means the file is corrupt
  // and nothing else in it can be trusted.
  if (!std::isfinite(model.t_dof)) {
    return ParseError("non-finite t_dof");
  }
  if (model.family == CopulaFamily::kStudentT && !(model.t_dof > 0.0)) {
    return ParseError("student-t family requires positive dof");
  }
  if (!(in >> token >> model.fitted_rows) || token != "fitted_rows") {
    return ParseError("fitted_rows");
  }

  model.marginal_counts.resize(num_attrs);
  for (std::size_t j = 0; j < num_attrs; ++j) {
    std::size_t index = 0, size = 0;
    if (!(in >> token >> index >> size) || token != "margin" || index != j) {
      return ParseError("margin header " + std::to_string(j));
    }
    if (size != static_cast<std::size_t>(
                    model.schema.attribute(j).domain_size)) {
      return ParseError("margin size mismatch for attribute " +
                        std::to_string(j));
    }
    model.marginal_counts[j].resize(size);
    for (std::size_t v = 0; v < size; ++v) {
      if (!(in >> model.marginal_counts[j][v]) ||
          !std::isfinite(model.marginal_counts[j][v])) {
        return ParseError("margin values " + std::to_string(j));
      }
    }
  }

  std::size_t m = 0;
  if (!(in >> token >> m) || token != "correlation" || m != num_attrs) {
    return ParseError("correlation header");
  }
  model.correlation = linalg::Matrix(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!(in >> model.correlation(i, j)) ||
          !std::isfinite(model.correlation(i, j))) {
        return ParseError("correlation values");
      }
    }
  }
  // The correlation block is the last section of a model file: any further
  // non-whitespace bytes mean the file is corrupt (appended garbage, a
  // doubled write, or a streaming-state file loaded through the wrong
  // entry point) and the load fails closed.
  if (!options.allow_trailing) {
    std::string trailing;
    if (in >> trailing) {
      return ParseError("trailing data after correlation block");
    }
  }
  // Validate (and gently repair round-tripped) correlation matrices.
  DPC_ASSIGN_OR_RETURN(model.correlation,
                       linalg::EnsureCorrelationMatrix(model.correlation));
  return model;
}

}  // namespace dpcopula::core
