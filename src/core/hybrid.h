#ifndef DPCOPULA_CORE_HYBRID_H_
#define DPCOPULA_CORE_HYBRID_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "data/table.h"
#include "dp/budget.h"

namespace dpcopula::core {

/// Options for DPCopula-Hybrid (Algorithm 6), which handles datasets mixing
/// small-domain attributes (domain < 10, e.g. gender) with large-domain
/// ones: partition on the small-domain attributes, release noisy partition
/// counts, run DPCopula inside each partition.
struct HybridOptions {
  /// Attributes with domain_size < this threshold are treated as
  /// small-domain partitioning attributes (the paper uses 10).
  std::int64_t small_domain_threshold = 10;

  /// Fraction of the total budget spent on the noisy partition counts
  /// (epsilon1 of Algorithm 6). The counts are over disjoint partitions, so
  /// parallel composition applies.
  double partition_count_fraction = 0.1;

  /// Hard cap on the number of partitions (product of small domains);
  /// exceeding it fails loudly instead of exploding.
  std::int64_t max_partitions = 4096;

  /// Options for the per-partition DPCopula runs. `epsilon` and
  /// `num_synthetic_rows` inside are ignored — the hybrid supplies
  /// (1 - partition_count_fraction) * epsilon and the noisy counts.
  DpCopulaOptions inner;

  /// Total privacy budget of the hybrid release.
  double epsilon = 1.0;

  /// Degradation policy: when a partition's inner copula fit fails (its
  /// correlation estimate is degenerate — e.g. the partition is too small
  /// or ill-conditioned), synthesize that partition from its DP margins
  /// alone (identity correlation) instead of failing the whole hybrid run.
  /// The budget story is unchanged: every partition's charges happen up
  /// front and are never refunded, and independent margins are
  /// post-processing of the same release. Degraded partitions are counted
  /// in HybridResult::degraded_partitions. On by default — one bad
  /// partition out of hundreds should cost accuracy there, not the run.
  bool allow_degraded_partitions = true;

  /// Worker threads (shared ThreadPool) for the per-partition DPCopula
  /// runs. Each partition's noise draws come from an RNG pre-split in
  /// partition order, and partitions are concatenated in that same order,
  /// so the release is bit-identical for any thread count. Inner synthesis
  /// calls running on pool workers execute their own loops inline (no
  /// nested oversubscription). 0 = hardware concurrency, <= 1 =
  /// sequential.
  int num_threads = 1;
};

/// Diagnostics of one hybrid run.
struct HybridResult {
  data::Table synthetic;
  std::int64_t num_partitions = 0;
  std::int64_t num_skipped_partitions = 0;  // Noisy count <= 0.
  /// Partitions whose copula fit failed and were synthesized from margins
  /// alone (see HybridOptions::allow_degraded_partitions).
  std::int64_t degraded_partitions = 0;
  double epsilon_counts = 0.0;
  double epsilon_copula = 0.0;
  /// Top-level charge log (total == options.epsilon). Partitions are
  /// disjoint, so both the noisy counts and the per-partition copula runs
  /// appear as single parallel-composition charges; when the run degrades
  /// to plain DPCopula this is that run's full sequential log instead.
  dp::BudgetAccountant budget{0.0};
};

/// Runs Algorithm 6. If the table has no small-domain attributes this
/// degrades to plain DPCopula on the whole table (with the full budget); if
/// it has only small-domain attributes it degrades to a noisy contingency
/// table release. Output columns follow the input schema order.
Result<HybridResult> SynthesizeHybrid(const data::Table& table,
                                      const HybridOptions& options, Rng* rng);

}  // namespace dpcopula::core

#endif  // DPCOPULA_CORE_HYBRID_H_
