#ifndef DPCOPULA_CORE_STREAMING_H_
#define DPCOPULA_CORE_STREAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/model_io.h"
#include "data/table.h"

namespace dpcopula::core {

/// Streaming DPCopula — the paper's second future-work direction
/// ("data synthesization mechanisms for dynamically evolving datasets").
///
/// Records arrive in batches of *new* tuples (each record belongs to
/// exactly one batch). Because batches are disjoint, parallel composition
/// (Theorem 3.2) lets every batch be fitted with the full per-batch budget
/// `epsilon_per_batch`: the released stream of batch models is
/// epsilon_per_batch-DP overall with respect to add/remove of one record.
///
/// The accumulated model is the count-weighted merge of the per-batch DP
/// models: margins add (noisy counts are additive over disjoint data),
/// correlations average with noisy-count weights followed by the usual
/// eigenvalue repair. `CurrentModel` can be sampled at any time via
/// SampleFromModel.
class StreamingSynthesizer {
 public:
  struct Options {
    /// Budget spent on each arriving batch (full, thanks to parallel
    /// composition across disjoint batches).
    double epsilon_per_batch = 1.0;
    /// Options forwarded to the per-batch DPCopula fit (epsilon and row
    /// counts inside are overridden).
    DpCopulaOptions fit;
    /// Exponential decay applied to the accumulated model before each
    /// merge: weight_old *= decay. 1.0 = all history equal; < 1 ages out
    /// old batches, tracking drifting distributions.
    double decay = 1.0;
  };

  /// The synthesizer handles tables with this schema only.
  StreamingSynthesizer(data::Schema schema, Options options);

  /// Validates construction parameters.
  Status Validate() const;

  /// Ingests one batch of new records; fits a DP model on the batch and
  /// merges it into the accumulated model.
  Status Ingest(const data::Table& batch, Rng* rng);

  /// Number of batches merged so far.
  std::size_t num_batches() const { return num_batches_; }

  /// Accumulated weight (decayed noisy record count) in the model.
  double accumulated_weight() const { return weight_; }

  /// The current publishable model (error if nothing was ingested).
  Result<DpCopulaModel> CurrentModel() const;

  /// Convenience: samples `num_rows` (0 = accumulated noisy count) from the
  /// current model.
  Result<data::Table> Synthesize(std::size_t num_rows, Rng* rng) const;

  /// Persists the accumulated state (merged margins/correlation, weight,
  /// batch count) so ingestion can resume after a process restart. The
  /// saved artifact is DP (it is exactly the publishable model plus two
  /// counters derived from noisy quantities).
  Status SaveState(const std::string& path) const;

  /// Restores a synthesizer from SaveState output; `options` supplies the
  /// go-forward ingestion parameters (budget, decay).
  static Result<StreamingSynthesizer> RestoreState(const std::string& path,
                                                   Options options);

 private:
  data::Schema schema_;
  Options options_;
  std::size_t num_batches_ = 0;
  double weight_ = 0.0;  // Decayed sum of noisy batch sizes.
  std::vector<std::vector<double>> merged_margins_;
  linalg::Matrix merged_correlation_;  // Weighted mean (pre-repair).
};

}  // namespace dpcopula::core

#endif  // DPCOPULA_CORE_STREAMING_H_
