#ifndef DPCOPULA_CORE_DPCOPULA_H_
#define DPCOPULA_CORE_DPCOPULA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "copula/mle_estimator.h"
#include "data/table.h"
#include "dp/budget.h"
#include "linalg/matrix.h"
#include "marginals/marginal_method.h"

namespace dpcopula::core {

/// Which DP correlation-matrix estimator drives the Gaussian copula.
enum class CorrelationEstimator {
  kKendall,  // Algorithm 4/5: noisy Kendall's tau (default; paper §5.2 shows
             // it dominates MLE in accuracy).
  kMle,      // Algorithms 1/2: sample-and-aggregate MLE.
};

/// Which elliptical copula family models the dependence. The paper's core
/// method is the Gaussian copula; the t copula and the private AIC-based
/// choice between the two implement its §6 future-work extension. Both
/// non-Gaussian options work with either correlation estimator because
/// Kendall's tau -> sin transform is family-agnostic for elliptical
/// copulas.
enum class CopulaFamily {
  kGaussian,   // Paper default.
  kStudentT,   // Fixed or privately estimated dof (see t_dof).
  kAutoAic,    // Private per-partition AIC vote between Gaussian and t.
  kEmpirical,  // Non-parametric checkerboard copula (low m only: the grid
               // has empirical_grid^m cells). Replaces the correlation
               // matrix entirely; epsilon2 buys the DP copula grid.
};

/// Options for one DPCopula synthesis run. Defaults follow the paper's
/// Table 3.
struct DpCopulaOptions {
  /// Total privacy budget epsilon. Split as epsilon1 = epsilon * k / (k+1)
  /// for the margins and epsilon2 = epsilon / (k+1) for the correlations.
  double epsilon = 1.0;

  /// The ratio k = epsilon1 / epsilon2 (Table 3 default 8; Fig. 5 shows the
  /// method is insensitive to k >= 1).
  double budget_ratio_k = 8.0;

  CorrelationEstimator estimator = CorrelationEstimator::kKendall;

  /// DP 1-d histogram publisher for the margins (paper uses EFPA).
  marginals::MarginalMethod marginal_method =
      marginals::MarginalMethod::kEfpa;

  copula::KendallEstimatorOptions kendall;
  copula::MleEstimatorOptions mle;

  /// Copula family (paper default Gaussian; see CopulaFamily).
  CopulaFamily family = CopulaFamily::kGaussian;

  /// Degrees of freedom for kStudentT. 0 estimates the dof privately
  /// (sample-and-aggregate vote), spending `family_epsilon_fraction` of
  /// epsilon2.
  double t_dof = 0.0;

  /// Share of epsilon2 spent on private dof/family selection when the
  /// family is kStudentT with t_dof == 0 or kAutoAic.
  double family_epsilon_fraction = 0.2;

  /// Cells per axis of the kEmpirical checkerboard grid.
  std::int64_t empirical_grid = 8;

  /// Number of synthetic rows to emit; 0 means "same as the input". (The
  /// hybrid algorithm passes the noisy per-partition counts here.)
  std::size_t num_synthetic_rows = 0;

  /// Worker threads for the whole synthesis pipeline (shared ThreadPool):
  /// Algorithm 3 row sampling plus the correlation estimator (overrides the
  /// `num_threads` inside `kendall` / `mle` when running via Synthesize).
  /// Every parallel path shards work and RNG streams deterministically, so
  /// output is bit-identical for any value. 0 = hardware concurrency,
  /// <= 1 = sequential.
  int num_threads = 1;

  /// Emits round(oversample_factor * rows) synthetic rows instead. Because
  /// sampling is post-processing, oversampling is privacy-free and shrinks
  /// the binomial sampling noise of range-count answers; consumers must
  /// scale counts back by 1/oversample_factor (see
  /// baselines::ScaledTableEstimator).
  double oversample_factor = 1.0;

  /// Degradation policy: when the correlation estimator fails (after its
  /// epsilon2 charge — budgets are charged up front and never refunded),
  /// fall back to an identity correlation and synthesize from the
  /// already-published DP margins alone instead of failing the run. The
  /// release is still epsilon-DP (independent margins are a strictly less
  /// informative post-processing of the same charges); the accuracy
  /// downgrade is recorded in SynthesisResult::correlation_degraded. Off by
  /// default: a standalone run should fail loudly. The hybrid synthesizer
  /// turns this on per partition.
  bool allow_degraded_correlation = false;
};

/// Everything a synthesis run releases, plus diagnostics.
struct SynthesisResult {
  data::Table synthetic;           // The DP synthetic dataset D~.
  linalg::Matrix correlation;      // The DP correlation matrix P~.
  std::vector<std::vector<double>> noisy_marginals;  // Per-attribute counts.
  dp::BudgetAccountant budget{0.0};  // Charge log (total == options.epsilon).
  // Estimator diagnostics (whichever was used is populated).
  std::int64_t kendall_rows_used = 0;
  std::int64_t mle_partitions = 0;
  bool correlation_repaired = false;
  // Degradation diagnostics: MLE partition fits that failed and were
  // excluded from the average, and whether the correlation estimate itself
  // was abandoned for the identity fallback (allow_degraded_correlation).
  std::int64_t partitions_failed = 0;
  bool correlation_degraded = false;
  // Copula family actually sampled from, and the dof if Student-t.
  CopulaFamily family_used = CopulaFamily::kGaussian;
  double t_dof_used = 0.0;
};

/// Runs DPCopula end to end (Algorithm 1 or 4 depending on the estimator):
/// DP marginal histograms with epsilon1/m each, DP correlation matrix with
/// epsilon2, then Algorithm 3 sampling. Consumes exactly `options.epsilon`.
///
/// Degenerate inputs are handled as the hybrid algorithm requires: a single
/// column spends the full budget on its margin, and tables with fewer than
/// two rows fall back to an identity correlation (their margins still go
/// through the DP publisher, so the guarantee is unchanged).
Result<SynthesisResult> Synthesize(const data::Table& table,
                                   const DpCopulaOptions& options, Rng* rng);

/// The (epsilon1, epsilon2) split implied by `options`.
struct BudgetSplit {
  double epsilon1;
  double epsilon2;
};
Result<BudgetSplit> ComputeBudgetSplit(const DpCopulaOptions& options);

}  // namespace dpcopula::core

#endif  // DPCOPULA_CORE_DPCOPULA_H_
