#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>

#include "linalg/psd_repair.h"

namespace dpcopula::core {

StreamingSynthesizer::StreamingSynthesizer(data::Schema schema,
                                           Options options)
    : schema_(std::move(schema)), options_(std::move(options)) {}

Status StreamingSynthesizer::Validate() const {
  if (schema_.num_attributes() == 0) {
    return Status::InvalidArgument("streaming: empty schema");
  }
  if (!(options_.epsilon_per_batch > 0.0)) {
    return Status::InvalidArgument("streaming: epsilon_per_batch must be > 0");
  }
  if (!(options_.decay > 0.0 && options_.decay <= 1.0)) {
    return Status::InvalidArgument("streaming: decay must be in (0, 1]");
  }
  return Status::OK();
}

Status StreamingSynthesizer::Ingest(const data::Table& batch, Rng* rng) {
  DPC_RETURN_NOT_OK(Validate());
  if (!(batch.schema() == schema_)) {
    return Status::InvalidArgument("streaming: batch schema mismatch");
  }
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("streaming: empty batch");
  }

  // Fit a DP model on the (disjoint) batch with the full per-batch budget.
  DpCopulaOptions fit = options_.fit;
  fit.epsilon = options_.epsilon_per_batch;
  fit.num_synthetic_rows = 0;
  fit.oversample_factor = 1.0;
  Result<SynthesisResult> result = core::Synthesize(batch, fit, rng);
  DPC_RETURN_NOT_OK(result.status());

  // Batch weight: the noisy marginal mass is itself a DP estimate of the
  // batch size (post-processing of already-released counts).
  double batch_weight = 0.0;
  for (double v : result->noisy_marginals[0]) {
    batch_weight += std::max(0.0, v);
  }
  batch_weight = std::max(1.0, batch_weight);

  const std::size_t m = schema_.num_attributes();
  if (num_batches_ == 0) {
    merged_margins_.assign(m, {});
    for (std::size_t j = 0; j < m; ++j) {
      merged_margins_[j].assign(
          static_cast<std::size_t>(schema_.attribute(j).domain_size), 0.0);
    }
    merged_correlation_ = linalg::Matrix(m, m);
  }

  // Age out history, then merge.
  const double old_weight = weight_ * options_.decay;
  for (auto& margin : merged_margins_) {
    for (double& v : margin) v *= options_.decay;
  }
  // Margins are additive over disjoint batches.
  for (std::size_t j = 0; j < m; ++j) {
    const auto& batch_margin = result->noisy_marginals[j];
    for (std::size_t v = 0; v < batch_margin.size(); ++v) {
      merged_margins_[j][v] += std::max(0.0, batch_margin[v]);
    }
  }
  // Correlations: weighted mean of per-batch DP estimates.
  const double total_weight = old_weight + batch_weight;
  merged_correlation_ = merged_correlation_.Scaled(old_weight / total_weight) +
                        result->correlation.Scaled(batch_weight /
                                                   total_weight);
  weight_ = total_weight;
  ++num_batches_;
  return Status::OK();
}

Result<DpCopulaModel> StreamingSynthesizer::CurrentModel() const {
  if (num_batches_ == 0) {
    return Status::FailedPrecondition("streaming: no batches ingested");
  }
  DpCopulaModel model;
  model.schema = schema_;
  model.marginal_counts = merged_margins_;
  // The weighted mean of valid correlation matrices can drift off the
  // PD manifold after decay; repair to a valid correlation matrix.
  DPC_ASSIGN_OR_RETURN(model.correlation,
                       linalg::EnsureCorrelationMatrix(merged_correlation_));
  model.family = CopulaFamily::kGaussian;
  model.fitted_rows =
      static_cast<std::size_t>(std::llround(std::max(1.0, weight_)));
  return model;
}

Result<data::Table> StreamingSynthesizer::Synthesize(std::size_t num_rows,
                                                     Rng* rng) const {
  DPC_ASSIGN_OR_RETURN(DpCopulaModel model, CurrentModel());
  return SampleFromModel(model, num_rows, rng);
}

Status StreamingSynthesizer::SaveState(const std::string& path) const {
  if (num_batches_ == 0) {
    return Status::FailedPrecondition("streaming: nothing to save");
  }
  // Reuse the model format; the pre-repair merged correlation is stored via
  // the repaired model (re-merging after restore keeps averaging with the
  // repaired matrix, an acceptable projection).
  Result<DpCopulaModel> model = CurrentModel();
  DPC_RETURN_NOT_OK(model.status());
  DPC_RETURN_NOT_OK(SaveModel(*model, path));
  // Append the streaming counters.
  std::ofstream out(path, std::ios::app);
  if (!out) return Status::IOError("cannot append streaming state: " + path);
  out.precision(17);
  out << "streaming_weight " << weight_ << "\n";
  out << "streaming_batches " << num_batches_ << "\n";
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<StreamingSynthesizer> StreamingSynthesizer::RestoreState(
    const std::string& path, Options options) {
  DPC_ASSIGN_OR_RETURN(DpCopulaModel model, LoadModel(path));
  StreamingSynthesizer s(model.schema, std::move(options));
  DPC_RETURN_NOT_OK(s.Validate());
  // Parse the appended counters.
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::string token;
  double weight = -1.0;
  std::size_t batches = 0;
  while (in >> token) {
    if (token == "streaming_weight") {
      if (!(in >> weight)) break;
    } else if (token == "streaming_batches") {
      if (!(in >> batches)) break;
    }
  }
  if (weight < 0.0 || batches == 0) {
    return Status::IOError("missing streaming counters in " + path);
  }
  s.weight_ = weight;
  s.num_batches_ = batches;
  s.merged_margins_ = std::move(model.marginal_counts);
  s.merged_correlation_ = std::move(model.correlation);
  return s;
}

}  // namespace dpcopula::core
