#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <utility>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "linalg/psd_repair.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dpcopula::core {

StreamingSynthesizer::StreamingSynthesizer(data::Schema schema,
                                           Options options)
    : schema_(std::move(schema)), options_(std::move(options)) {}

Status StreamingSynthesizer::Validate() const {
  if (schema_.num_attributes() == 0) {
    return Status::InvalidArgument("streaming: empty schema");
  }
  if (!(options_.epsilon_per_batch > 0.0)) {
    return Status::InvalidArgument("streaming: epsilon_per_batch must be > 0");
  }
  if (!(options_.decay > 0.0 && options_.decay <= 1.0)) {
    return Status::InvalidArgument("streaming: decay must be in (0, 1]");
  }
  return Status::OK();
}

Status StreamingSynthesizer::Ingest(const data::Table& batch, Rng* rng) {
  static obs::Counter* const batches_rejected =
      obs::MetricsRegistry::Global().GetCounter("streaming.batches_rejected");
  DPC_RETURN_NOT_OK(Validate());
  if (!(batch.schema() == schema_)) {
    return Status::InvalidArgument("streaming: batch schema mismatch");
  }
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("streaming: empty batch");
  }

  // Fit a DP model on the (disjoint) batch with the full per-batch budget.
  DpCopulaOptions fit = options_.fit;
  fit.epsilon = options_.epsilon_per_batch;
  fit.num_synthetic_rows = 0;
  fit.oversample_factor = 1.0;
  Result<SynthesisResult> result = core::Synthesize(batch, fit, rng);
  if (!result.ok()) {
    // Poisoned batch: the fit failed, the accumulated model is untouched
    // (nothing below has run) and ingestion can continue with later batches.
    batches_rejected->Increment();
    obs::Log(obs::LogLevel::kWarn, "streaming.batch_rejected")
        .Field("batch", num_batches_)
        .Field("reason", "fit_failed");
    return result.status();
  }

  // Batch weight: the noisy marginal mass is itself a DP estimate of the
  // batch size (post-processing of already-released counts).
  double batch_weight = 0.0;
  for (double v : result->noisy_marginals[0]) {
    batch_weight += std::max(0.0, v);
  }
  batch_weight = std::max(1.0, batch_weight);

  // Stage the post-merge state into locals; the members are committed only
  // once every step has succeeded, so a failure mid-merge (or the injected
  // fault below) rejects the batch without corrupting the accumulated model.
  const std::size_t m = schema_.num_attributes();
  std::vector<std::vector<double>> staged_margins = merged_margins_;
  linalg::Matrix staged_correlation = merged_correlation_;
  if (num_batches_ == 0) {
    staged_margins.assign(m, {});
    for (std::size_t j = 0; j < m; ++j) {
      staged_margins[j].assign(
          static_cast<std::size_t>(schema_.attribute(j).domain_size), 0.0);
    }
    staged_correlation = linalg::Matrix(m, m);
  }

  // Age out history, then merge.
  const double old_weight = weight_ * options_.decay;
  for (auto& margin : staged_margins) {
    for (double& v : margin) v *= options_.decay;
  }
  // Margins are additive over disjoint batches.
  for (std::size_t j = 0; j < m; ++j) {
    const auto& batch_margin = result->noisy_marginals[j];
    for (std::size_t v = 0; v < batch_margin.size(); ++v) {
      staged_margins[j][v] += std::max(0.0, batch_margin[v]);
    }
  }
  // Correlations: weighted mean of per-batch DP estimates.
  const double total_weight = old_weight + batch_weight;
  staged_correlation = staged_correlation.Scaled(old_weight / total_weight) +
                       result->correlation.Scaled(batch_weight / total_weight);

  if (DPC_FAILPOINT_AT("streaming.ingest.merge", num_batches_)) {
    batches_rejected->Increment();
    obs::Log(obs::LogLevel::kWarn, "streaming.batch_rejected")
        .Field("batch", num_batches_)
        .Field("reason", "injected");
    return failpoint::InjectedFault("streaming.ingest.merge");
  }

  // Commit.
  merged_margins_ = std::move(staged_margins);
  merged_correlation_ = std::move(staged_correlation);
  weight_ = total_weight;
  ++num_batches_;
  return Status::OK();
}

Result<DpCopulaModel> StreamingSynthesizer::CurrentModel() const {
  if (num_batches_ == 0) {
    return Status::FailedPrecondition("streaming: no batches ingested");
  }
  DpCopulaModel model;
  model.schema = schema_;
  model.marginal_counts = merged_margins_;
  // The weighted mean of valid correlation matrices can drift off the
  // PD manifold after decay; repair to a valid correlation matrix.
  DPC_ASSIGN_OR_RETURN(model.correlation,
                       linalg::EnsureCorrelationMatrix(merged_correlation_));
  model.family = CopulaFamily::kGaussian;
  // The accumulated weight is unbounded (it grows with every batch under
  // decay 1.0, and a restored state may carry an arbitrarily large value);
  // llround on a double past the long long range is undefined behavior, so
  // clamp before rounding.
  const double weight = std::max(1.0, weight_);
  constexpr double kMaxRows =
      static_cast<double>(std::numeric_limits<long long>::max());
  model.fitted_rows =
      weight >= kMaxRows
          ? static_cast<std::size_t>(std::numeric_limits<long long>::max())
          : static_cast<std::size_t>(std::llround(weight));
  return model;
}

Result<data::Table> StreamingSynthesizer::Synthesize(std::size_t num_rows,
                                                     Rng* rng) const {
  DPC_ASSIGN_OR_RETURN(DpCopulaModel model, CurrentModel());
  return SampleFromModel(model, num_rows, rng);
}

Status StreamingSynthesizer::SaveState(const std::string& path) const {
  if (num_batches_ == 0) {
    return Status::FailedPrecondition("streaming: nothing to save");
  }
  // Reuse the model format; the pre-repair merged correlation is stored via
  // the repaired model (re-merging after restore keeps averaging with the
  // repaired matrix, an acceptable projection).
  Result<DpCopulaModel> model = CurrentModel();
  DPC_RETURN_NOT_OK(model.status());
  // One atomic write covers the model body and the appended streaming
  // counters: a crash mid-save can never leave a model file without its
  // counters (which RestoreState would reject as corrupt).
  return WriteFileAtomic(path, [&](std::ostream& out) -> Status {
    DPC_RETURN_NOT_OK(SerializeModel(*model, out));
    out << "streaming_weight " << weight_ << "\n";
    out << "streaming_batches " << num_batches_ << "\n";
    if (!out) return Status::IOError("streaming state stream failed");
    return Status::OK();
  });
}

Result<StreamingSynthesizer> StreamingSynthesizer::RestoreState(
    const std::string& path, Options options) {
  // The streaming counters legitimately follow the correlation block, so
  // this is the one loader that opts out of the trailing-bytes rejection.
  LoadModelOptions load_options;
  load_options.allow_trailing = true;
  DPC_ASSIGN_OR_RETURN(DpCopulaModel model, LoadModel(path, load_options));
  StreamingSynthesizer s(model.schema, std::move(options));
  DPC_RETURN_NOT_OK(s.Validate());
  // Parse the appended counters.
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::string token;
  double weight = -1.0;
  std::size_t batches = 0;
  while (in >> token) {
    if (token == "streaming_weight") {
      if (!(in >> weight)) break;
    } else if (token == "streaming_batches") {
      if (!(in >> batches)) break;
    }
  }
  // NaN fails every `< 0.0` comparison, so the old guard accepted a NaN
  // (or Inf) weight and poisoned every later merge; require a finite,
  // non-negative value explicitly.
  if (!std::isfinite(weight) || weight < 0.0 || batches == 0) {
    return Status::IOError("missing streaming counters in " + path);
  }
  s.weight_ = weight;
  s.num_batches_ = batches;
  s.merged_margins_ = std::move(model.marginal_counts);
  s.merged_correlation_ = std::move(model.correlation);
  return s;
}

}  // namespace dpcopula::core
