#include "core/dpcopula.h"

#include <cmath>

#include "common/failpoint.h"
#include "copula/empirical_copula.h"
#include "copula/pseudo_obs.h"
#include "copula/sampler.h"
#include "copula/t_copula.h"
#include "hist/histogram.h"
#include "marginals/postprocess.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "stats/empirical_cdf.h"

namespace dpcopula::core {

namespace {

/// The release is only valid if the charge log accounts for exactly the
/// advertised budget: an overspend is a privacy violation, an underspend
/// means some mechanism ran without charging (or the split logic drifted).
/// Either way the data must not leave this function.
Status VerifyBudgetConsumed(const dp::BudgetAccountant& budget,
                            double epsilon) {
  constexpr double kSlack = 1e-9;
  const double spent = budget.spent();
  if (std::abs(spent - epsilon) <= kSlack) return Status::OK();
  obs::Log(obs::LogLevel::kError, "synthesize.budget_mismatch")
      .Field("spent", spent)
      .Field("epsilon", epsilon);
  return Status::PrivacyBudgetExceeded(
      "budget audit failed: charged " + std::to_string(spent) +
      " but options.epsilon = " + std::to_string(epsilon) +
      " (|diff| > 1e-9); refusing to release data");
}

}  // namespace

Result<BudgetSplit> ComputeBudgetSplit(const DpCopulaOptions& options) {
  if (!(options.epsilon > 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  if (!(options.budget_ratio_k > 0.0) ||
      !std::isfinite(options.budget_ratio_k)) {
    return Status::InvalidArgument("budget ratio k must be > 0");
  }
  const double k = options.budget_ratio_k;
  BudgetSplit split;
  split.epsilon1 = options.epsilon * k / (k + 1.0);
  split.epsilon2 = options.epsilon - split.epsilon1;
  return split;
}

Result<SynthesisResult> Synthesize(const data::Table& table,
                                   const DpCopulaOptions& options, Rng* rng) {
  static obs::Counter* const runs_counter =
      obs::MetricsRegistry::Global().GetCounter("core.synthesize_runs");
  static obs::Histogram* const run_seconds =
      obs::MetricsRegistry::Global().GetHistogram("core.synthesize_seconds");
  obs::Span run_span("synthesize");
  obs::ScopedTimer run_timer(run_seconds);
  runs_counter->Increment();

  const std::size_t m = table.num_columns();
  if (m == 0) return Status::InvalidArgument("table has no columns");
  DPC_RETURN_NOT_OK(table.Validate());

  if (!(options.oversample_factor > 0.0)) {
    return Status::InvalidArgument("oversample_factor must be > 0");
  }
  const std::size_t base_rows = options.num_synthetic_rows > 0
                                    ? options.num_synthetic_rows
                                    : table.num_rows();
  const auto out_rows = static_cast<std::size_t>(
      std::llround(static_cast<double>(base_rows) *
                   options.oversample_factor));

  obs::Log(obs::LogLevel::kInfo, "synthesize.start")
      .Field("rows", table.num_rows())
      .Field("columns", m)
      .Field("out_rows", out_rows)
      .Field("epsilon", options.epsilon)
      .Field("threads", options.num_threads);

  SynthesisResult result;
  result.budget = dp::BudgetAccountant(options.epsilon, "dpcopula");

  // A single attribute has no dependence structure: the entire budget goes
  // to its margin. Otherwise split per the ratio k.
  double epsilon1 = options.epsilon;
  double epsilon2 = 0.0;
  // Tables too small for any correlation estimate also take the
  // margins-only path with an identity copula.
  const bool estimate_correlation = (m >= 2) && (table.num_rows() >= 2);
  if (estimate_correlation) {
    obs::Span split_span("budget_split");
    DPC_ASSIGN_OR_RETURN(BudgetSplit split, ComputeBudgetSplit(options));
    epsilon1 = split.epsilon1;
    epsilon2 = split.epsilon2;
    obs::Log(obs::LogLevel::kDebug, "synthesize.budget_split")
        .Field("epsilon1", epsilon1)
        .Field("epsilon2", epsilon2)
        .Field("k", options.budget_ratio_k);
  }

  // Step 1: DP marginal histograms, epsilon1 / m each (Theorem 3.1 over the
  // m sequential releases on the same records). The count-query sensitivity
  // every publisher calibrates to is 1 (add/remove one record changes one
  // bin by 1).
  const double eps_per_margin = epsilon1 / static_cast<double>(m);
  std::vector<stats::EmpiricalCdf> cdfs;
  cdfs.reserve(m);
  result.noisy_marginals.reserve(m);
  {
    obs::Span margins_span("margins");
    for (std::size_t j = 0; j < m; ++j) {
      obs::StageScope stage(obs::Stage::kMarginPublish);
      DPC_RETURN_NOT_OK(result.budget.Charge(
          eps_per_margin, "margin:" + table.schema().attribute(j).name,
          /*sensitivity=*/1.0));
      DPC_ASSIGN_OR_RETURN(hist::Histogram h,
                           hist::Histogram::FromColumn(table, j));
      DPC_ASSIGN_OR_RETURN(
          std::vector<double> noisy,
          marginals::PublishMarginal(options.marginal_method, h.data(),
                                     eps_per_margin, rng));
      // Consistency post-processing (no privacy cost): project onto the
      // simplex matching the noisy total, rather than clamping negatives —
      // clamping alone would inject phantom mass proportional to the domain
      // size, which dominates at small epsilon.
      noisy = marginals::ProjectToNoisyTotal(noisy);
      DPC_ASSIGN_OR_RETURN(stats::EmpiricalCdf cdf,
                           stats::EmpiricalCdf::FromCounts(noisy));
      cdfs.push_back(std::move(cdf));
      result.noisy_marginals.push_back(std::move(noisy));
    }
  }

  // Optional family-selection budget (future-work extension): carve a share
  // of epsilon2 for the private dof / family votes before estimating the
  // correlation matrix. Only meaningful when a vote will actually run.
  constexpr std::size_t kFamilyVotePartitions = 10;
  const bool family_vote_possible =
      estimate_correlation &&
      table.num_rows() >= kFamilyVotePartitions * 4;
  const bool wants_family_vote =
      options.family == CopulaFamily::kAutoAic ||
      (options.family == CopulaFamily::kStudentT && options.t_dof <= 0.0);
  double eps_family = 0.0;
  if (family_vote_possible && wants_family_vote) {
    if (!(options.family_epsilon_fraction > 0.0 &&
          options.family_epsilon_fraction < 1.0)) {
      return Status::InvalidArgument(
          "family_epsilon_fraction must be in (0, 1)");
    }
    eps_family = epsilon2 * options.family_epsilon_fraction;
    epsilon2 -= eps_family;
  }

  // kEmpirical replaces the parametric correlation estimation entirely:
  // epsilon2 buys a DP checkerboard copula over the pseudo-observations,
  // from which uniforms are sampled directly (cell-histogram sensitivity
  // 1).
  if (options.family == CopulaFamily::kEmpirical && estimate_correlation) {
    DPC_RETURN_NOT_OK(result.budget.Charge(epsilon2, "copula:empirical",
                                           /*sensitivity=*/1.0));
    obs::Span empirical_span("correlation");
    DPC_ASSIGN_OR_RETURN(auto pseudo, copula::PseudoObservations(table));
    DPC_ASSIGN_OR_RETURN(
        copula::EmpiricalCopula ecop,
        copula::EmpiricalCopula::FitDp(pseudo, options.empirical_grid,
                                       epsilon2, rng));
    result.correlation = linalg::Matrix::Identity(m);
    result.family_used = CopulaFamily::kEmpirical;
    data::Table out = data::Table::Zeros(table.schema(), out_rows);
    {
      obs::Span sampling_span("sampling");
      // Guide-table inversion, built once per marginal — same tables the
      // Gaussian/t tile kernels use.
      std::vector<stats::InverseCdfTable> inverse_tables;
      inverse_tables.reserve(m);
      for (const auto& cdf : cdfs) inverse_tables.emplace_back(cdf);
      for (std::size_t r = 0; r < out_rows; ++r) {
        const auto u = ecop.SampleUniforms(rng);
        for (std::size_t j = 0; j < m; ++j) {
          out.set(r, j,
                  static_cast<double>(inverse_tables[j].Lookup(u[j])));
        }
      }
    }
    result.synthetic = std::move(out);
    DPC_RETURN_NOT_OK(VerifyBudgetConsumed(result.budget, options.epsilon));
    return result;
  }

  // Step 2: DP correlation matrix with epsilon2. Each estimator branch
  // charges its budget *before* running the mechanism, so a failure after
  // the charge can never be refunded; a failed estimate either fails the
  // run closed (nothing released) or — with allow_degraded_correlation —
  // degrades to an identity correlation over the already-published margins.
  if (estimate_correlation) {
    static obs::Counter* const degraded_counter =
        obs::MetricsRegistry::Global().GetCounter(
            "core.degraded_correlations");
    obs::Span correlation_span("correlation");
    Status est_status = Status::OK();
    if (DPC_FAILPOINT("core.correlation_estimate")) {
      DPC_RETURN_NOT_OK(
          result.budget.Charge(epsilon2, "correlation:injected"));
      est_status = failpoint::InjectedFault("core.correlation_estimate");
    } else {
      switch (options.estimator) {
        case CorrelationEstimator::kKendall: {
          DPC_RETURN_NOT_OK(
              result.budget.Charge(epsilon2, "correlation:kendall"));
          copula::KendallEstimatorOptions kendall_opts = options.kendall;
          kendall_opts.num_threads = options.num_threads;
          Result<copula::KendallEstimate> est =
              copula::EstimateKendallCorrelation(table, epsilon2, rng,
                                                 kendall_opts);
          if (!est.ok()) {
            est_status = est.status();
            break;
          }
          // Lemma 4.1: each tau's noise is calibrated to 4/(n_used + 1),
          // only known once the estimator picked its subsample.
          result.budget.AnnotateLastChargeSensitivity(
              4.0 / (static_cast<double>(est->rows_used) + 1.0));
          result.correlation = std::move(est->correlation);
          result.kendall_rows_used = est->rows_used;
          result.correlation_repaired = est->repaired;
          break;
        }
        case CorrelationEstimator::kMle: {
          DPC_RETURN_NOT_OK(
              result.budget.Charge(epsilon2, "correlation:mle"));
          copula::MleEstimatorOptions mle_opts = options.mle;
          mle_opts.num_threads = options.num_threads;
          Result<copula::MleEstimate> est =
              copula::EstimateMleCorrelation(table, epsilon2, rng, mle_opts);
          if (!est.ok()) {
            est_status = est.status();
            break;
          }
          // Algorithm 2: averaging the l_s surviving disjoint partitions
          // leaves each coefficient with sensitivity Lambda / l_s = 2 / l_s
          // (l_s == l when no partition fit failed).
          result.budget.AnnotateLastChargeSensitivity(
              2.0 / static_cast<double>(est->num_partitions -
                                        est->failed_partitions));
          result.correlation = std::move(est->correlation);
          result.mle_partitions = est->num_partitions;
          result.partitions_failed = est->failed_partitions;
          result.correlation_repaired = est->repaired;
          break;
        }
      }
    }
    if (!est_status.ok()) {
      if (!options.allow_degraded_correlation) return est_status;
      degraded_counter->Increment();
      obs::Log(obs::LogLevel::kWarn, "synthesize.correlation_degraded")
          .Field("columns", m);
      result.correlation = linalg::Matrix::Identity(m);
      result.correlation_degraded = true;
    }
  } else {
    result.correlation = linalg::Matrix::Identity(m);
  }

  // Resolve the copula family (extension beyond the paper's Gaussian
  // default; falls back to Gaussian when the data cannot support a private
  // vote). The vote mechanisms score partition counts, sensitivity 1.
  result.family_used = CopulaFamily::kGaussian;
  if (estimate_correlation && options.family != CopulaFamily::kGaussian) {
    obs::Span family_span("family_selection");
    if (options.family == CopulaFamily::kStudentT && options.t_dof > 0.0) {
      result.family_used = CopulaFamily::kStudentT;
      result.t_dof_used = options.t_dof;
    } else if (family_vote_possible) {
      DPC_ASSIGN_OR_RETURN(auto pseudo, copula::PseudoObservations(table));
      if (options.family == CopulaFamily::kStudentT) {
        DPC_RETURN_NOT_OK(result.budget.Charge(eps_family, "family:t-dof",
                                               /*sensitivity=*/1.0));
        DPC_ASSIGN_OR_RETURN(
            result.t_dof_used,
            copula::EstimateTCopulaDofPrivate(pseudo, result.correlation,
                                              eps_family, rng,
                                              kFamilyVotePartitions));
        result.family_used = CopulaFamily::kStudentT;
      } else {  // kAutoAic.
        DPC_RETURN_NOT_OK(
            result.budget.Charge(eps_family / 2.0, "family:aic-vote",
                                 /*sensitivity=*/1.0));
        DPC_ASSIGN_OR_RETURN(
            bool t_wins,
            copula::TCopulaFitsBetterPrivate(pseudo, result.correlation,
                                             eps_family / 2.0, rng,
                                             kFamilyVotePartitions));
        DPC_RETURN_NOT_OK(
            result.budget.Charge(eps_family / 2.0, "family:t-dof",
                                 /*sensitivity=*/1.0));
        if (t_wins) {
          DPC_ASSIGN_OR_RETURN(
              result.t_dof_used,
              copula::EstimateTCopulaDofPrivate(pseudo, result.correlation,
                                                eps_family / 2.0, rng,
                                                kFamilyVotePartitions));
          result.family_used = CopulaFamily::kStudentT;
        }
      }
    }
  }

  // Step 3: sample synthetic data (Algorithm 3) — pure post-processing.
  {
    obs::Span sampling_span("sampling");
    if (result.family_used == CopulaFamily::kStudentT) {
      DPC_ASSIGN_OR_RETURN(
          result.synthetic,
          copula::SampleSyntheticDataT(table.schema(), cdfs,
                                       result.correlation, result.t_dof_used,
                                       out_rows, rng, options.num_threads));
    } else {
      DPC_ASSIGN_OR_RETURN(
          result.synthetic,
          copula::SampleSyntheticData(table.schema(), cdfs,
                                      result.correlation, out_rows, rng,
                                      options.num_threads));
    }
  }
  DPC_RETURN_NOT_OK(VerifyBudgetConsumed(result.budget, options.epsilon));
  obs::Log(obs::LogLevel::kInfo, "synthesize.done")
      .Field("out_rows", result.synthetic.num_rows())
      .Field("budget_spent", result.budget.spent())
      .Field("repaired", result.correlation_repaired);
  return result;
}

}  // namespace dpcopula::core
