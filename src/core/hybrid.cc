#include "core/hybrid.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/distributions.h"

namespace dpcopula::core {

namespace {

// Advances a mixed-radix counter over the small-attribute domains; returns
// false when exhausted.
bool AdvanceCombo(std::vector<std::int64_t>* combo,
                  const std::vector<std::int64_t>& radix) {
  for (std::size_t t = combo->size(); t-- > 0;) {
    if (++(*combo)[t] < radix[t]) return true;
    (*combo)[t] = 0;
  }
  return false;
}

}  // namespace

Result<HybridResult> SynthesizeHybrid(const data::Table& table,
                                      const HybridOptions& options, Rng* rng) {
  static obs::Counter* const partitions_synthesized =
      obs::MetricsRegistry::Global().GetCounter(
          "hybrid.partitions_synthesized");
  static obs::Counter* const partitions_skipped =
      obs::MetricsRegistry::Global().GetCounter("hybrid.partitions_skipped");
  static obs::Gauge* const noisy_count_gauge =
      obs::MetricsRegistry::Global().GetGauge("hybrid.last_noisy_count");
  static obs::Histogram* const partition_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "hybrid.partition_seconds");
  obs::Span run_span("hybrid.synthesize");

  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("hybrid: epsilon must be > 0");
  }
  if (!(options.partition_count_fraction > 0.0 &&
        options.partition_count_fraction < 1.0)) {
    return Status::InvalidArgument(
        "hybrid: partition_count_fraction must be in (0, 1)");
  }
  const auto& schema = table.schema();

  std::vector<std::size_t> small_cols, large_cols;
  for (std::size_t j = 0; j < schema.num_attributes(); ++j) {
    if (schema.attribute(j).domain_size < options.small_domain_threshold) {
      small_cols.push_back(j);
    } else {
      large_cols.push_back(j);
    }
  }

  // No small-domain attributes: plain DPCopula with the full budget.
  if (small_cols.empty()) {
    obs::Log(obs::LogLevel::kInfo, "hybrid.degenerate_plain_dpcopula")
        .Field("epsilon", options.epsilon);
    DpCopulaOptions inner = options.inner;
    inner.epsilon = options.epsilon;
    inner.num_synthetic_rows = 0;
    inner.allow_degraded_correlation = options.allow_degraded_partitions;
    DPC_ASSIGN_OR_RETURN(SynthesisResult res, Synthesize(table, inner, rng));
    HybridResult out;
    out.synthetic = std::move(res.synthetic);
    out.num_partitions = 1;
    out.degraded_partitions = res.correlation_degraded ? 1 : 0;
    out.epsilon_copula = options.epsilon;
    out.budget = std::move(res.budget);
    return out;
  }

  std::vector<std::int64_t> radix;
  std::int64_t num_partitions = 1;
  for (std::size_t c : small_cols) {
    const std::int64_t d = schema.attribute(c).domain_size;
    if (num_partitions > options.max_partitions / d) {
      return Status::ResourceExhausted(
          "hybrid: small-domain partition count exceeds max_partitions");
    }
    num_partitions *= d;
    radix.push_back(d);
  }

  const double eps_counts = options.epsilon * options.partition_count_fraction;
  const double eps_copula = options.epsilon - eps_counts;

  HybridResult out;
  out.num_partitions = num_partitions;
  out.epsilon_counts = eps_counts;
  out.epsilon_copula = eps_copula;
  out.synthetic = data::Table(schema);

  // Top-level audit under parallel composition (Theorem 3.2): the
  // partitions are disjoint, so the noisy counts cost eps_counts once
  // overall (Laplace on a count, sensitivity 1) and the per-partition
  // DPCopula runs cost eps_copula once overall (each run keeps its own
  // sequential log internally and verifies it against eps_copula).
  out.budget = dp::BudgetAccountant(options.epsilon, "dpcopula-hybrid");
  DPC_RETURN_NOT_OK(out.budget.ChargeParallel(
      eps_counts, "hybrid:partition-counts", /*sensitivity=*/1.0));
  DPC_RETURN_NOT_OK(
      out.budget.ChargeParallel(eps_copula, "hybrid:partition-copula"));

  obs::Log(obs::LogLevel::kInfo, "hybrid.start")
      .Field("partitions", num_partitions)
      .Field("epsilon_counts", eps_counts)
      .Field("epsilon_copula", eps_copula)
      .Field("threads", options.num_threads);

  // Enumerate every small-attribute combination up front, then pre-split
  // one RNG per partition (in combo order). Each partition's noise draws
  // and inner DPCopula run consume only its own stream, so the release is
  // bit-identical for any thread count — and for num_threads == 1.
  std::vector<std::vector<std::int64_t>> combos;
  combos.reserve(static_cast<std::size_t>(num_partitions));
  std::vector<std::int64_t> combo(small_cols.size(), 0);
  do {
    combos.push_back(combo);
  } while (AdvanceCombo(&combo, radix));
  std::vector<Rng> part_rngs;
  part_rngs.reserve(combos.size());
  for (std::size_t i = 0; i < combos.size(); ++i) {
    part_rngs.push_back(rng->Split());
  }

  struct PartitionOutput {
    Status status = Status::OK();
    bool skipped = false;
    bool degraded = false;
    data::Table synth;
  };
  std::vector<PartitionOutput> parts(combos.size());
  static obs::Counter* const partitions_degraded =
      obs::MetricsRegistry::Global().GetCounter(
          "hybrid.partitions_degraded");

  // Workers run on pool threads, so they attach their spans to the run
  // span through an explicit handle rather than the thread-local stack.
  const obs::SpanId run_span_id = run_span.id();
  ParallelFor(
      0, combos.size(), /*grain=*/1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          obs::Span part_span("hybrid.partition[" + std::to_string(p) + "]",
                              run_span_id);
          obs::ScopedTimer part_timer(partition_seconds);
          // Key any fail point evaluated inside this partition's work —
          // including generic sites deep in the inner Synthesize — to the
          // partition index, so a fault schedule fires on the same
          // partitions for every thread count.
          failpoint::ScopedContext failpoint_ctx(p);
          if (DPC_FAILPOINT_AT("hybrid.partition.synthesize", p)) {
            parts[p].status =
                failpoint::InjectedFault("hybrid.partition.synthesize");
            continue;
          }
          const std::vector<std::int64_t>& c = combos[p];
          Rng* part_rng = &part_rngs[p];
          PartitionOutput& po = parts[p];

          // Filter rows matching this small-attribute combination.
          data::Table part = table;
          for (std::size_t t = 0; t < small_cols.size(); ++t) {
            part = part.Filter(small_cols[t], static_cast<double>(c[t]));
          }

          // Step 2: noisy partition count (Lap(1/eps_counts); partitions
          // are disjoint, so parallel composition charges eps_counts once
          // overall).
          const double noisy =
              static_cast<double>(part.num_rows()) +
              stats::SampleLaplace(part_rng, 1.0 / eps_counts);
          const auto n_synth =
              static_cast<std::int64_t>(std::llround(noisy));
          noisy_count_gauge->Set(noisy);
          if (n_synth <= 0) {
            po.skipped = true;
            partitions_skipped->Increment();
            continue;
          }
          partitions_synthesized->Increment();

          data::Table part_synth;
          if (large_cols.empty()) {
            // Degenerate: all attributes are small-domain — this is a
            // noisy contingency table; emit n_synth copies of the combo.
            part_synth =
                data::Table::Zeros(schema, static_cast<std::size_t>(n_synth));
            for (std::size_t t = 0; t < small_cols.size(); ++t) {
              auto& col = part_synth.mutable_column(small_cols[t]);
              std::fill(col.begin(), col.end(), static_cast<double>(c[t]));
            }
          } else {
            // Step 3: DPCopula on the large-domain projection of this
            // partition.
            auto projected = part.Project(large_cols);
            if (!projected.ok()) {
              po.status = projected.status();
              continue;
            }
            DpCopulaOptions inner = options.inner;
            inner.epsilon = eps_copula;
            inner.num_synthetic_rows = static_cast<std::size_t>(n_synth);
            inner.allow_degraded_correlation =
                options.allow_degraded_partitions;
            auto res = Synthesize(*projected, inner, part_rng);
            if (!res.ok()) {
              po.status = res.status();
              continue;
            }
            if (res->correlation_degraded) {
              po.degraded = true;
              partitions_degraded->Increment();
              obs::Log(obs::LogLevel::kWarn, "hybrid.partition_degraded")
                  .Field("partition", p);
            }

            // Reassemble in original column order.
            part_synth =
                data::Table::Zeros(schema, static_cast<std::size_t>(n_synth));
            for (std::size_t t = 0; t < small_cols.size(); ++t) {
              auto& col = part_synth.mutable_column(small_cols[t]);
              std::fill(col.begin(), col.end(), static_cast<double>(c[t]));
            }
            for (std::size_t t = 0; t < large_cols.size(); ++t) {
              part_synth.mutable_column(large_cols[t]) =
                  res->synthetic.column(t);
            }
          }
          po.synth = std::move(part_synth);
        }
      },
      options.num_threads);

  // Stitch partitions back together in combo order (deterministic output
  // row order, independent of scheduling).
  for (PartitionOutput& po : parts) {
    DPC_RETURN_NOT_OK(po.status);
    if (po.skipped) {
      ++out.num_skipped_partitions;
      continue;
    }
    if (po.degraded) ++out.degraded_partitions;
    DPC_RETURN_NOT_OK(out.synthetic.Concat(po.synth));
  }
  obs::Log(obs::LogLevel::kInfo, "hybrid.done")
      .Field("partitions", out.num_partitions)
      .Field("skipped", out.num_skipped_partitions)
      .Field("degraded", out.degraded_partitions)
      .Field("rows", out.synthetic.num_rows());
  return out;
}

}  // namespace dpcopula::core
