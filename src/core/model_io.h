#ifndef DPCOPULA_CORE_MODEL_IO_H_
#define DPCOPULA_CORE_MODEL_IO_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "data/schema.h"
#include "data/table.h"
#include "linalg/matrix.h"

namespace dpcopula::core {

/// A fitted DPCopula model: everything needed to sample synthetic data
/// without touching the original records again. Because every field is
/// itself a differentially private release, the model can be published,
/// stored and re-sampled arbitrarily often at no additional privacy cost —
/// often more useful to a consumer than a single synthetic table.
struct DpCopulaModel {
  data::Schema schema;
  /// Post-processed noisy marginal counts, one vector per attribute.
  std::vector<std::vector<double>> marginal_counts;
  /// DP correlation matrix (valid: unit diagonal, positive definite).
  linalg::Matrix correlation;
  CopulaFamily family = CopulaFamily::kGaussian;
  double t_dof = 0.0;  // Only meaningful for kStudentT.
  /// Row count of the dataset the model was fitted on (itself released via
  /// the synthesis), used as the default sample size.
  std::size_t fitted_rows = 0;
};

/// Extracts the publishable model from a synthesis result.
DpCopulaModel ModelFromSynthesis(const data::Schema& schema,
                                 const SynthesisResult& result);

/// Draws `num_rows` synthetic rows from a model (0 = model's fitted_rows).
/// Pure post-processing.
Result<data::Table> SampleFromModel(const DpCopulaModel& model,
                                    std::size_t num_rows, Rng* rng);

/// Writes the self-describing text format ("DPCOPULA-MODEL v1" header, one
/// section per field) to an already-open stream. Used by SaveModel and by
/// StreamingSynthesizer::SaveState, which appends its counters after the
/// model body inside the same atomic write.
Status SerializeModel(const DpCopulaModel& model, std::ostream& out);

/// Serializes the model to a file. Crash-safe: the content is staged in
/// `<path>.tmp`, fsync'ed, and atomically renamed onto `path`, so an
/// interrupted save never leaves a truncated model. Returns IOError on
/// filesystem failure.
Status SaveModel(const DpCopulaModel& model, const std::string& path);

struct LoadModelOptions {
  /// Accept (and ignore) content after the correlation block. Only the
  /// streaming-state loader sets this: StreamingSynthesizer::SaveState
  /// appends its counters after the model body inside the same atomic
  /// write. Plain model files must end at the correlation block — trailing
  /// bytes mean corruption (or a truncated concatenation) and fail closed.
  bool allow_trailing = false;
};

/// Loads and validates a model written by SaveModel. Fails closed with a
/// data-independent IOError on any malformed, non-finite, or trailing
/// content, so a corrupted model file is rejected at load time instead of
/// producing NaN samples downstream.
Result<DpCopulaModel> LoadModel(const std::string& path,
                                const LoadModelOptions& options = {});

}  // namespace dpcopula::core

#endif  // DPCOPULA_CORE_MODEL_IO_H_
