#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpcopula::obs {

namespace {

using internal::AppendJsonDouble;
using internal::AppendJsonInt;
using internal::AppendJsonString;

// --- Trace tree ----------------------------------------------------------

struct SpanNode {
  const SpanRecord* record;
  std::vector<SpanNode*> children;
};

void AppendSpanNode(std::string* out, const SpanNode& node) {
  *out += "{\"name\":";
  AppendJsonString(out, node.record->name);
  *out += ",\"id\":";
  AppendJsonInt(out, static_cast<std::int64_t>(node.record->id));
  *out += ",\"start_ns\":";
  AppendJsonInt(out, node.record->start_ns);
  *out += ",\"duration_ns\":";
  AppendJsonInt(out, node.record->duration_ns);
  *out += ",\"wall_start_unix_ms\":";
  AppendJsonInt(out, node.record->wall_start_unix_ms);
  *out += ",\"thread\":";
  AppendJsonInt(out, node.record->thread_index);
  *out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ',';
    AppendSpanNode(out, *node.children[i]);
  }
  *out += "]}";
}

void AppendTrace(std::string* out) {
  const std::vector<SpanRecord> records = Tracer::Global().Snapshot();
  std::vector<SpanNode> nodes(records.size());
  std::map<SpanId, SpanNode*> by_id;
  for (std::size_t i = 0; i < records.size(); ++i) {
    nodes[i].record = &records[i];
    by_id[records[i].id] = &nodes[i];
  }
  std::vector<SpanNode*> roots;
  for (SpanNode& node : nodes) {
    auto parent = by_id.find(node.record->parent);
    // A span whose parent was dropped (buffer cap) or never finished is
    // promoted to a root rather than lost.
    if (node.record->parent != kNoSpan && parent != by_id.end() &&
        parent->second != &node) {
      parent->second->children.push_back(&node);
    } else {
      roots.push_back(&node);
    }
  }
  const auto by_start = [](const SpanNode* a, const SpanNode* b) {
    if (a->record->start_ns != b->record->start_ns) {
      return a->record->start_ns < b->record->start_ns;
    }
    return a->record->id < b->record->id;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (SpanNode& node : nodes) {
    std::sort(node.children.begin(), node.children.end(), by_start);
  }

  *out += "\"trace\":{\"dropped_spans\":";
  AppendJsonInt(out, Tracer::Global().dropped());
  *out += ",\"spans\":[";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) *out += ',';
    AppendSpanNode(out, *roots[i]);
  }
  *out += "]}";
}

// --- Metrics -------------------------------------------------------------

void AppendMetrics(std::string* out) {
  using MetricType = MetricsRegistry::MetricType;
  const auto snapshot = MetricsRegistry::Global().Snapshot();

  *out += "\"metrics\":{\"counters\":{";
  bool first = true;
  for (const auto& m : snapshot) {
    if (m.type != MetricType::kCounter) continue;
    if (!first) *out += ',';
    first = false;
    AppendJsonString(out, m.name);
    *out += ':';
    AppendJsonInt(out, m.counter_value);
  }
  *out += "},\"gauges\":{";
  first = true;
  for (const auto& m : snapshot) {
    if (m.type != MetricType::kGauge) continue;
    if (!first) *out += ',';
    first = false;
    AppendJsonString(out, m.name);
    *out += ':';
    AppendJsonDouble(out, m.gauge_value);
  }
  *out += "},\"histograms\":{";
  first = true;
  for (const auto& m : snapshot) {
    if (m.type != MetricType::kHistogram) continue;
    if (!first) *out += ',';
    first = false;
    AppendJsonString(out, m.name);
    *out += ":{\"count\":";
    AppendJsonInt(out, m.histogram_count);
    *out += ",\"sum_seconds\":";
    AppendJsonDouble(out, m.histogram_sum_seconds);
    *out += ",\"max_seconds\":";
    AppendJsonDouble(out, m.histogram_max_seconds);
    *out += ",\"p50\":";
    AppendJsonDouble(out, m.histogram_p50);
    *out += ",\"p90\":";
    AppendJsonDouble(out, m.histogram_p90);
    *out += ",\"p99\":";
    AppendJsonDouble(out, m.histogram_p99);
    *out += ",\"p999\":";
    AppendJsonDouble(out, m.histogram_p999);
    // The HDR layout has 1216 buckets, nearly all empty for a typical
    // latency distribution — emit only the occupied ones.
    *out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < m.histogram_buckets.size(); ++i) {
      if (m.histogram_buckets[i] == 0) continue;
      if (!first_bucket) *out += ',';
      first_bucket = false;
      *out += "{\"le\":";
      AppendJsonDouble(out, Histogram::BucketUpperBound(static_cast<int>(i)));
      *out += ",\"count\":";
      AppendJsonInt(out, m.histogram_buckets[i]);
      *out += '}';
    }
    *out += "]}";
  }
  *out += "}}";
}

// --- Budget audit --------------------------------------------------------

void AppendBudget(std::string* out, const BudgetAudit& audit) {
  *out += "\"budget\":{\"label\":";
  AppendJsonString(out, audit.label);
  *out += ",\"total_epsilon\":";
  AppendJsonDouble(out, audit.total_epsilon);
  *out += ",\"spent\":";
  AppendJsonDouble(out, audit.spent);
  *out += ",\"entries\":[";
  for (std::size_t i = 0; i < audit.entries.size(); ++i) {
    const BudgetAuditEntry& e = audit.entries[i];
    if (i > 0) *out += ',';
    *out += "{\"mechanism\":";
    AppendJsonString(out, e.mechanism);
    *out += ",\"epsilon\":";
    AppendJsonDouble(out, e.epsilon);
    *out += ",\"sensitivity\":";
    AppendJsonDouble(out, e.sensitivity);
    *out += ",\"parallel\":";
    *out += e.parallel ? "true" : "false";
    *out += '}';
  }
  *out += "]}";
}

}  // namespace

std::string RenderRunReportJson(const BudgetAudit* audit) {
  std::string out;
  out.reserve(4096);
  // Version 2: histograms gained max_seconds/p50/p90/p99/p999 and emit
  // only non-empty buckets.
  out += "{\"version\":2,\"obs_compiled_in\":";
  out += DPCOPULA_OBS_ENABLED ? "true" : "false";
  out += ',';
  AppendTrace(&out);
  out += ',';
  AppendMetrics(&out);
  if (audit != nullptr) {
    out += ',';
    AppendBudget(&out, *audit);
  }
  out += '}';
  return out;
}

Status WriteRunReport(const std::string& path, const BudgetAudit* audit) {
  const std::string json = RenderRunReportJson(audit);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace report file: " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to trace report file: " + path);
  }
  return Status::OK();
}

}  // namespace dpcopula::obs
