#ifndef DPCOPULA_OBS_REPORT_H_
#define DPCOPULA_OBS_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dp/budget.h"
#include "obs/log.h"

namespace dpcopula::obs {

/// One mechanism's line in the privacy-budget audit: what was charged, at
/// which sensitivity, under which composition rule.
struct BudgetAuditEntry {
  std::string mechanism;
  double epsilon = 0.0;
  double sensitivity = 0.0;  // 0 = not recorded by the charge site.
  bool parallel = false;     // Charged under parallel composition.
};

/// The complete charge log of one accountant, ready for serialization.
struct BudgetAudit {
  std::string label;
  double total_epsilon = 0.0;  // The allowance (options.epsilon).
  double spent = 0.0;          // Sum of the entries.
  std::vector<BudgetAuditEntry> entries;
};

/// Snapshots an accountant. Header-only on purpose: obs never links dp, it
/// only reads the accountant's inline accessors.
inline BudgetAudit AuditFrom(const dp::BudgetAccountant& accountant) {
  BudgetAudit audit;
  audit.label = accountant.label();
  audit.total_epsilon = accountant.total_epsilon();
  audit.spent = accountant.spent();
  audit.entries.reserve(accountant.entries().size());
  for (const auto& entry : accountant.entries()) {
    audit.entries.push_back(
        {entry.what, entry.epsilon, entry.sensitivity, entry.parallel});
  }
  return audit;
}

/// Serializes the full run report as a JSON object:
///
///   {
///     "version": 1,
///     "obs_compiled_in": true,
///     "trace": {"dropped_spans": 0, "spans": [<nested span trees>]},
///     "metrics": {"counters": {...}, "gauges": {...},
///                 "histograms": {...}},
///     "budget": {"label": ..., "total_epsilon": ..., "spent": ...,
///                "entries": [...]}   // only when audit != nullptr
///   }
///
/// Spans nest via "children" arrays ordered by start time; trace and
/// metrics are read from the global Tracer / MetricsRegistry. The output
/// is deterministic given identical trace/metric content (keys sorted,
/// doubles printed with %.17g round-trip precision).
std::string RenderRunReportJson(const BudgetAudit* audit);

/// Renders the report and writes it to `path` (overwriting).
Status WriteRunReport(const std::string& path, const BudgetAudit* audit);

}  // namespace dpcopula::obs

#endif  // DPCOPULA_OBS_REPORT_H_
