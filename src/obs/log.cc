#include "obs/log.h"

#include <cstdio>

namespace dpcopula::obs {

namespace internal {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kOff)};
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_profile_enabled{false};

int ThreadIndex() {
  static std::atomic<int> next{0};
  thread_local const int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}
}  // namespace internal

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  for (LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (name == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

void SetObsConfig(const ObsConfig& config) {
  internal::g_log_level.store(static_cast<int>(config.log_level),
                              std::memory_order_relaxed);
  // Stage timings record through MetricsRegistry histograms, so profiling
  // without metrics would silently record nothing; imply metrics instead.
  internal::g_metrics_enabled.store(config.metrics || config.profile,
                                    std::memory_order_relaxed);
  internal::g_trace_enabled.store(config.trace, std::memory_order_relaxed);
  internal::g_profile_enabled.store(config.profile,
                                    std::memory_order_relaxed);
}

ObsConfig GetObsConfig() {
  ObsConfig config;
  config.log_level = static_cast<LogLevel>(
      internal::g_log_level.load(std::memory_order_relaxed));
  config.metrics =
      internal::g_metrics_enabled.load(std::memory_order_relaxed);
  config.trace = internal::g_trace_enabled.load(std::memory_order_relaxed);
  config.profile =
      internal::g_profile_enabled.load(std::memory_order_relaxed);
  return config;
}

namespace {

// True when the value can go on the line bare (logfmt convention: quote
// anything with spaces, quotes, or '=').
bool NeedsQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') {
      return true;
    }
  }
  return false;
}

void AppendValue(std::string* line, const std::string& value) {
  if (!NeedsQuoting(value)) {
    *line += value;
    return;
  }
  *line += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        *line += "\\\"";
        break;
      case '\\':
        *line += "\\\\";
        break;
      case '\n':
        *line += "\\n";
        break;
      case '\t':
        *line += "\\t";
        break;
      default:
        *line += c;
    }
  }
  *line += '"';
}

}  // namespace

Log::Log(LogLevel level, const char* event) : enabled_(LogEnabled(level)) {
  if (!enabled_) return;
  line_.reserve(128);
  line_ += "[dpcopula] level=";
  line_ += LogLevelName(level);
  line_ += " event=";
  line_ += event;
  char buf[32];
  std::snprintf(buf, sizeof(buf), " t=%d", internal::ThreadIndex());
  line_ += buf;
}

Log::~Log() {
  if (!enabled_) return;
  line_ += '\n';
  std::fputs(line_.c_str(), stderr);
}

Log& Log::Field(const char* key, const char* value) {
  if (!enabled_) return *this;
  line_ += ' ';
  line_ += key;
  line_ += '=';
  AppendValue(&line_, value);
  return *this;
}

Log& Log::Field(const char* key, const std::string& value) {
  if (!enabled_) return *this;
  line_ += ' ';
  line_ += key;
  line_ += '=';
  AppendValue(&line_, value);
  return *this;
}

Log& Log::Field(const char* key, double value) {
  if (!enabled_) return *this;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  line_ += ' ';
  line_ += key;
  line_ += '=';
  line_ += buf;
  return *this;
}

Log& Log::Field(const char* key, std::int64_t value) {
  if (!enabled_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  line_ += ' ';
  line_ += key;
  line_ += '=';
  line_ += buf;
  return *this;
}

Log& Log::Field(const char* key, std::uint64_t value) {
  if (!enabled_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  line_ += ' ';
  line_ += key;
  line_ += '=';
  line_ += buf;
  return *this;
}

}  // namespace dpcopula::obs
