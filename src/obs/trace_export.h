#ifndef DPCOPULA_OBS_TRACE_EXPORT_H_
#define DPCOPULA_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace dpcopula::obs {

/// Renders spans in the Chrome trace-event JSON format (the "JSON Array
/// Format" with a top-level object), loadable in Perfetto / chrome://tracing:
///
///   {
///     "displayTimeUnit": "ms",
///     "otherData": {"tool": "dpcopula", "dropped_spans": "0"},
///     "traceEvents": [
///       {"name": "process_name", "ph": "M", "pid": 1,
///        "args": {"name": "dpcopula"}},
///       {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
///        "args": {"name": "thread-0"}},
///       {"name": "synthesize", "cat": "dpcopula", "ph": "X",
///        "ts": 12.345, "dur": 6789.012, "pid": 1, "tid": 0,
///        "args": {"id": 1, "parent": 0}},
///       ...
///     ]
///   }
///
/// One complete ("ph":"X") event per finished span; "ts"/"dur" are
/// microseconds since the tracer epoch with nanosecond precision; "tid" is
/// the recording thread's dense obs thread index, so pool workers render
/// as separate tracks. Events are emitted sorted by (ts, id) — Perfetto
/// requires no order, but determinism keeps the export testable. An empty
/// trace renders the envelope with only the process metadata event.
std::string RenderChromeTraceJson(const std::vector<SpanRecord>& spans,
                                  std::int64_t dropped_spans);

/// Snapshot of the global tracer, rendered as above.
std::string RenderChromeTraceJson();

/// Renders the global tracer's spans and writes them to `path`
/// (overwriting).
Status WriteChromeTrace(const std::string& path);

}  // namespace dpcopula::obs

#endif  // DPCOPULA_OBS_TRACE_EXPORT_H_
