#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "obs/json_writer.h"

namespace dpcopula::obs {

namespace {

using internal::AppendJsonInt;
using internal::AppendJsonMicros;
using internal::AppendJsonString;

void AppendMetadataEvent(std::string* out, const char* event_name, int tid,
                         const std::string& display_name) {
  *out += "    {\"name\": ";
  AppendJsonString(out, event_name);
  *out += ", \"ph\": \"M\", \"pid\": 1";
  if (tid >= 0) {
    *out += ", \"tid\": ";
    AppendJsonInt(out, tid);
  }
  *out += ", \"args\": {\"name\": ";
  AppendJsonString(out, display_name);
  *out += "}}";
}

}  // namespace

std::string RenderChromeTraceJson(const std::vector<SpanRecord>& spans,
                                  std::int64_t dropped_spans) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  std::set<int> tids;
  for (const SpanRecord& span : spans) {
    ordered.push_back(&span);
    tids.insert(span.thread_index);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
              return a->id < b->id;
            });

  std::string out;
  out.reserve(256 + 192 * ordered.size());
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {";
  out += "\"tool\": \"dpcopula\", \"dropped_spans\": ";
  // Chrome requires otherData values to be strings.
  std::string dropped_str;
  AppendJsonInt(&dropped_str, dropped_spans);
  AppendJsonString(&out, dropped_str);
  out += "},\n  \"traceEvents\": [\n";

  AppendMetadataEvent(&out, "process_name", /*tid=*/-1, "dpcopula");
  for (int tid : tids) {
    out += ",\n";
    char name[32];
    std::snprintf(name, sizeof(name), "thread-%d", tid);
    AppendMetadataEvent(&out, "thread_name", tid, name);
  }

  for (const SpanRecord* span : ordered) {
    out += ",\n    {\"name\": ";
    AppendJsonString(&out, span->name);
    out += ", \"cat\": \"dpcopula\", \"ph\": \"X\", \"ts\": ";
    AppendJsonMicros(&out, span->start_ns);
    out += ", \"dur\": ";
    AppendJsonMicros(&out, span->duration_ns);
    out += ", \"pid\": 1, \"tid\": ";
    AppendJsonInt(&out, span->thread_index);
    out += ", \"args\": {\"id\": ";
    AppendJsonInt(&out, static_cast<std::int64_t>(span->id));
    out += ", \"parent\": ";
    AppendJsonInt(&out, static_cast<std::int64_t>(span->parent));
    out += "}}";
  }

  out += "\n  ]\n}\n";
  return out;
}

std::string RenderChromeTraceJson() {
  Tracer& tracer = Tracer::Global();
  return RenderChromeTraceJson(tracer.Snapshot(), tracer.dropped());
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = RenderChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open chrome trace file: " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to chrome trace file: " + path);
  }
  return Status::OK();
}

}  // namespace dpcopula::obs
