#ifndef DPCOPULA_OBS_LOG_H_
#define DPCOPULA_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>

/// Compile-time kill switch for the whole observability layer. The build
/// defines DPCOPULA_OBS_ENABLED=0 when configured with -DDPCOPULA_OBS=OFF;
/// every instrumentation call then compiles to (at most) a dead branch on a
/// constant, so the hot paths carry no atomic loads at all.
#ifndef DPCOPULA_OBS_ENABLED
#define DPCOPULA_OBS_ENABLED 1
#endif

namespace dpcopula::obs {

/// Severity levels, most verbose first. kOff disables all logging.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Stable lower-case name ("trace" .. "off").
const char* LogLevelName(LogLevel level);

/// Parses "trace|debug|info|warn|error|off" (case-sensitive). Returns false
/// on unknown names and leaves *out untouched.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Runtime switchboard for the observability layer. All three subsystems
/// are off by default: a library user who never touches obs:: pays one
/// relaxed atomic load per instrumentation site and nothing else.
///
/// None of the switches may affect released bytes: instrumentation reads
/// clocks and bumps counters but never touches an Rng or changes control
/// flow of the synthesis itself (the determinism tests enforce this).
struct ObsConfig {
  LogLevel log_level = LogLevel::kOff;
  bool metrics = false;  // MetricsRegistry updates.
  bool trace = false;    // Span recording.
  // Stage profiling (obs/profile.h): StageScope timings into the
  // profile.* histograms. The profile histograms live in the
  // MetricsRegistry, so enabling profiling implies metrics.
  bool profile = false;
};

/// Installs `config` process-wide. Safe to call at any time; individual
/// switches are published with relaxed atomics (observability tolerates a
/// brief mixed state, the data release never depends on it).
void SetObsConfig(const ObsConfig& config);

/// The currently installed configuration.
ObsConfig GetObsConfig();

namespace internal {
extern std::atomic<int> g_log_level;
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<bool> g_profile_enabled;

/// Small dense per-thread index (0, 1, 2, ...) used for metric sharding and
/// span thread attribution. Assigned on first use per thread.
int ThreadIndex();
}  // namespace internal

/// True when events at `level` should be emitted.
inline bool LogEnabled(LogLevel level) {
#if DPCOPULA_OBS_ENABLED
  return static_cast<int>(level) >=
         internal::g_log_level.load(std::memory_order_relaxed);
#else
  (void)level;
  return false;
#endif
}

inline bool MetricsEnabled() {
#if DPCOPULA_OBS_ENABLED
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline bool TraceEnabled() {
#if DPCOPULA_OBS_ENABLED
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline bool ProfilingEnabled() {
#if DPCOPULA_OBS_ENABLED
  return internal::g_profile_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// One structured log line, built by chaining Field() calls and emitted on
/// destruction (end of the full expression):
///
///   obs::Log(obs::LogLevel::kInfo, "synthesize.start")
///       .Field("rows", table.num_rows())
///       .Field("epsilon", options.epsilon);
///
/// renders as
///
///   [dpcopula] level=info event=synthesize.start t=0 rows=2000 epsilon=1
///
/// on stderr (one fprintf per line, so concurrent events interleave at line
/// granularity). When the level is filtered out, construction costs one
/// branch and no allocation.
class Log {
 public:
  Log(LogLevel level, const char* event);
  ~Log();
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  Log& Field(const char* key, const char* value);
  Log& Field(const char* key, const std::string& value);
  Log& Field(const char* key, double value);
  Log& Field(const char* key, std::int64_t value);
  Log& Field(const char* key, std::uint64_t value);
  /// Catch-all for the remaining integer widths (int, size_t, ...).
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Log& Field(const char* key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return Field(key, static_cast<std::int64_t>(value));
    } else {
      return Field(key, static_cast<std::uint64_t>(value));
    }
  }
  Log& Field(const char* key, bool value) {
    return Field(key, value ? "true" : "false");
  }

 private:
  bool enabled_;
  std::string line_;
};

}  // namespace dpcopula::obs

#endif  // DPCOPULA_OBS_LOG_H_
