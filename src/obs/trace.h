#ifndef DPCOPULA_OBS_TRACE_H_
#define DPCOPULA_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/log.h"

namespace dpcopula::obs {

/// Identifier of a recorded span; 0 means "no span".
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// One finished span. start_ns is relative to the tracer epoch (the last
/// Reset(), steady clock); wall_start_unix_ms anchors that epoch to wall
/// time for human consumption.
struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  std::int64_t wall_start_unix_ms = 0;
  int thread_index = 0;
};

/// Process-wide collector of finished spans. Span records are appended
/// under a mutex when a Span destructs; the volume is phases and
/// partitions, not rows, so the lock is nowhere near any hot loop. The
/// buffer is capped (kMaxSpans) so a pathological run cannot grow without
/// bound — overflow is counted and reported instead of recorded.
class Tracer {
 public:
  static constexpr std::size_t kMaxSpans = 1 << 16;

  static Tracer& Global();

  /// Drops all recorded spans and restarts the epoch.
  void Reset();

  /// Copies out every finished span (in finish order).
  std::vector<SpanRecord> Snapshot() const;

  /// Spans dropped because the buffer was full.
  std::int64_t dropped() const;

 private:
  friend class Span;
  Tracer();

  SpanId NextId();
  void Record(SpanRecord record);

  struct Impl;
  Impl* impl_;
};

namespace internal {
/// Innermost active span on this thread (kNoSpan outside any span).
SpanId CurrentSpan();
SpanId ExchangeCurrentSpan(SpanId id);
}  // namespace internal

/// RAII span. Nests automatically via a thread-local "current span": a Span
/// constructed while another is active on the same thread becomes its
/// child. Work fanned out to pool workers does not inherit the caller's
/// thread-local, so cross-thread children pass the parent handle
/// explicitly:
///
///   obs::Span phase("hybrid.partitions");
///   const obs::SpanId parent = phase.id();
///   ParallelFor(..., [&](std::size_t b, std::size_t e) {
///     obs::Span part("hybrid.partition", parent);
///     ...
///   });
///
/// When tracing is disabled (runtime or compile-time) construction is a
/// single branch; no clock is read and nothing is recorded.
class Span {
 public:
  explicit Span(std::string name) : Span(std::move(name), kUseThreadLocal) {}
  Span(std::string name, SpanId explicit_parent);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Handle for explicit cross-thread parenting; kNoSpan when inactive.
  SpanId id() const { return id_; }

 private:
  // Sentinel distinguishing "use the thread-local current span" from a
  // real (possibly kNoSpan) explicit parent.
  static constexpr SpanId kUseThreadLocal = ~SpanId{0};

  SpanId id_ = kNoSpan;
  SpanId saved_current_ = kNoSpan;
  bool restore_current_ = false;
  std::string name_;
  SpanId parent_ = kNoSpan;
  std::chrono::steady_clock::time_point start_;
  std::int64_t start_ns_ = 0;
  std::int64_t wall_start_unix_ms_ = 0;
};

}  // namespace dpcopula::obs

#endif  // DPCOPULA_OBS_TRACE_H_
