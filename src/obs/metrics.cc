#include "obs/metrics.h"

#include <cmath>
#include <limits>

namespace dpcopula::obs {

void Histogram::Observe(double seconds) {
#if DPCOPULA_OBS_ENABLED
  if (!MetricsEnabled()) return;
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) seconds = 0.0;
  // Bucket i has upper bound 1us * 2^i; find the first that fits.
  int bucket = 0;
  double bound = 1e-6;
  while (bucket < kBuckets - 1 && seconds > bound) {
    bound *= 2.0;
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
#else
  (void)seconds;
#endif
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::vector<std::int64_t> out(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    out[static_cast<std::size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return 1e-6 * std::pow(2.0, i);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumentation sites cache metric pointers in
  // function-local statics and may fire during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricsRegistry::MetricSnapshot> MetricsRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.type = MetricType::kCounter;
    s.counter_value = counter->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.type = MetricType::kGauge;
    s.gauge_value = gauge->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.type = MetricType::kHistogram;
    s.histogram_count = histogram->Count();
    s.histogram_sum_seconds = histogram->Sum();
    s.histogram_buckets = histogram->BucketCounts();
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace dpcopula::obs
