#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace dpcopula::obs {

int Histogram::BucketIndex(std::int64_t nanos) {
  if (nanos < 0) nanos = 0;
  const auto n = static_cast<std::uint64_t>(nanos);
  if (n < kSubBucketCount) return static_cast<int>(n);
  // n >= 32: divide [2^e, 2^(e+1)) into 32 linear sub-buckets by dropping
  // all but the top kSubBucketBits+1 significant bits.
  const int exponent = std::bit_width(n) - 1;
  const int shift = exponent - kSubBucketBits;
  const int index =
      (shift << kSubBucketBits) + static_cast<int>(n >> shift);
  return index < kBuckets ? index : kBuckets - 1;
}

std::int64_t Histogram::BucketUpperBoundNanos(int i) {
  if (i < kSubBucketCount) return i;  // Exact small values: bucket i == i ns.
  const int shift = (i >> kSubBucketBits) - 1;
  const std::int64_t sub =
      (i & (kSubBucketCount - 1)) | kSubBucketCount;  // In [32, 64).
  return ((sub + 1) << shift) - 1;
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(BucketUpperBoundNanos(i)) * 1e-9;
}

void Histogram::Observe(double seconds) {
#if DPCOPULA_OBS_ENABLED
  if (!MetricsEnabled()) return;
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) seconds = 0.0;
  // 2^62 ns headroom before the double->int64 cast could overflow; the
  // index computation clamps into the overflow bucket far earlier anyway.
  const double capped = std::min(seconds * 1e9, 4.6e18);
  const auto nanos = static_cast<std::int64_t>(capped);
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  // Relaxed CAS max: contended only while a new maximum is being set,
  // which is rare after warm-up.
  std::int64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_nanos_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
#else
  (void)seconds;
#endif
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::vector<std::int64_t> out(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    out[static_cast<std::size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

/// Quantile over a bucket snapshot: upper bound of the bucket holding the
/// observation of rank ceil(q * total); the overflow bucket reports the
/// tracked maximum (its upper bound is +inf).
double QuantileFromBuckets(const std::vector<std::int64_t>& buckets,
                           std::int64_t total, double max_seconds,
                           double q) {
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::int64_t cum = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    cum += buckets[static_cast<std::size_t>(i)];
    if (cum >= rank) {
      if (i == Histogram::kBuckets - 1) return max_seconds;
      return Histogram::BucketUpperBound(i);
    }
  }
  return max_seconds;
}

}  // namespace

double Histogram::Quantile(double q) const {
  const std::vector<std::int64_t> buckets = BucketCounts();
  std::int64_t total = 0;
  for (std::int64_t b : buckets) total += b;
  return QuantileFromBuckets(buckets, total, Max(), q);
}

Histogram::Summary Histogram::GetSummary() const {
  const std::vector<std::int64_t> buckets = BucketCounts();
  std::int64_t total = 0;
  for (std::int64_t b : buckets) total += b;
  Summary s;
  s.count = total;
  s.sum_seconds = Sum();
  s.max_seconds = Max();
  s.p50 = QuantileFromBuckets(buckets, total, s.max_seconds, 0.50);
  s.p90 = QuantileFromBuckets(buckets, total, s.max_seconds, 0.90);
  s.p99 = QuantileFromBuckets(buckets, total, s.max_seconds, 0.99);
  s.p999 = QuantileFromBuckets(buckets, total, s.max_seconds, 0.999);
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumentation sites cache metric pointers in
  // function-local statics and may fire during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricsRegistry::MetricSnapshot> MetricsRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.type = MetricType::kCounter;
    s.counter_value = counter->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.type = MetricType::kGauge;
    s.gauge_value = gauge->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.type = MetricType::kHistogram;
    const Histogram::Summary summary = histogram->GetSummary();
    s.histogram_count = summary.count;
    s.histogram_sum_seconds = summary.sum_seconds;
    s.histogram_max_seconds = summary.max_seconds;
    s.histogram_p50 = summary.p50;
    s.histogram_p90 = summary.p90;
    s.histogram_p99 = summary.p99;
    s.histogram_p999 = summary.p999;
    s.histogram_buckets = histogram->BucketCounts();
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace dpcopula::obs
