#include "obs/trace.h"

#include <atomic>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace dpcopula::obs {

namespace internal {
namespace {
thread_local SpanId t_current_span = kNoSpan;
}  // namespace

SpanId CurrentSpan() { return t_current_span; }

SpanId ExchangeCurrentSpan(SpanId id) {
  const SpanId prev = t_current_span;
  t_current_span = id;
  return prev;
}
}  // namespace internal

namespace {
std::int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

struct Tracer::Impl {
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::int64_t> dropped{0};
  // Steady-clock nanos of the current epoch; atomic so Reset() can race
  // with span creation without a TSan report (observability tolerates a
  // torn epoch, the release never depends on it).
  std::atomic<std::int64_t> epoch_nanos{SteadyNowNanos()};
  mutable std::mutex mu;
  std::vector<SpanRecord> records;
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::Global() {
  // Leaked on purpose, like the thread pool: spans may finish during
  // static destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->records.clear();
  impl_->dropped.store(0, std::memory_order_relaxed);
  impl_->next_id.store(1, std::memory_order_relaxed);
  impl_->epoch_nanos.store(SteadyNowNanos(), std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->records;
}

std::int64_t Tracer::dropped() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}

SpanId Tracer::NextId() {
  return impl_->next_id.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Record(SpanRecord record) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->records.size() < kMaxSpans) {
      impl_->records.push_back(std::move(record));
      return;
    }
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
  }
  // Surface the overflow where dashboards already look. Outside the span
  // lock: GetCounter takes the registry mutex on first use.
  static Counter* dropped_counter =
      MetricsRegistry::Global().GetCounter("trace.spans_dropped");
  dropped_counter->Increment();
}

Span::Span(std::string name, SpanId explicit_parent) {
#if DPCOPULA_OBS_ENABLED
  if (!TraceEnabled()) return;
  Tracer& tracer = Tracer::Global();
  id_ = tracer.NextId();
  name_ = std::move(name);
  parent_ = explicit_parent == kUseThreadLocal ? internal::CurrentSpan()
                                               : explicit_parent;
  saved_current_ = internal::ExchangeCurrentSpan(id_);
  restore_current_ = true;
  start_ = std::chrono::steady_clock::now();
  start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  start_.time_since_epoch())
                  .count() -
              tracer.impl_->epoch_nanos.load(std::memory_order_relaxed);
  wall_start_unix_ms_ =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
#else
  (void)name;
  (void)explicit_parent;
#endif
}

Span::~Span() {
#if DPCOPULA_OBS_ENABLED
  if (id_ == kNoSpan) return;
  if (restore_current_) internal::ExchangeCurrentSpan(saved_current_);
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.start_ns = start_ns_;
  record.duration_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  record.wall_start_unix_ms = wall_start_unix_ms_;
  record.thread_index = internal::ThreadIndex();
  Tracer::Global().Record(std::move(record));
#endif
}

}  // namespace dpcopula::obs
