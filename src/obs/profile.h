#ifndef DPCOPULA_OBS_PROFILE_H_
#define DPCOPULA_OBS_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"

namespace dpcopula::obs {

/// Pipeline stages of a Synthesize call, fixed at compile time so a
/// StageScope is an array index away from its histogram — no map lookup,
/// no lock, no allocation on any hot path.
///
/// Stages are *leaf-level and disjoint*: no StageScope may execute inside
/// another StageScope (the stage-sum test in profile_test enforces the
/// consequence — with one thread, the per-stage totals sum to the wall
/// time of the pipeline, minus only unscoped glue). Scopes that run inside
/// ParallelFor workers accumulate worker time, so with T threads the
/// per-stage totals approach CPU seconds, not wall seconds.
enum class Stage : int {
  kCsvRead = 0,       // data::ReadCsv / ReadCsvTolerant.
  kCsvWrite,          // data::WriteCsv.
  kMarginPublish,     // One DP marginal: histogram + noise + CDF rebuild.
  kRankCacheBuild,    // stats::BuildRankColumn per column (Kendall).
  kTauPairs,          // One pairwise tau kernel invocation.
  kLaplaceNoise,      // Noise + clamp + sin transform of one tau.
  kMlePartitionFit,   // One MLE partition fit (either kernel).
  kPsdRepair,         // linalg::EnsureCorrelationMatrix.
  kCholesky,          // Cholesky decomposition ahead of sampling.
  kGaussianFill,      // Ziggurat Gaussian fill of one sampler tile.
  kCholeskyApply,     // Blocked triangular mat-mul over one tile.
  kInverseCdf,        // Guide-table inverse-CDF lookups of one tile.
  kNumStages,  // Sentinel, not a stage.
};

inline constexpr int kNumProfileStages = static_cast<int>(Stage::kNumStages);

/// Stable snake_case stage name ("csv_read", "tau_pairs", ...).
const char* StageName(Stage stage);

/// Fixed array of per-stage histograms, registered in the global
/// MetricsRegistry as "profile.<stage>_seconds" so stage percentiles flow
/// into Snapshot() and the JSON run report with zero extra plumbing.
/// Construction (first Global() call) takes the registry mutex once per
/// stage; after that every lookup is an array load.
class StageProfiler {
 public:
  static StageProfiler& Global();

  Histogram* histogram(Stage stage) const {
    return histograms_[static_cast<int>(stage)];
  }

  /// Zeroes every stage histogram (registrations survive).
  void Reset();

 private:
  StageProfiler();
  Histogram* histograms_[kNumProfileStages];
};

/// RAII stage timer. When profiling is disabled (runtime or compile-time)
/// construction is one relaxed atomic load; no clock is read and nothing
/// is recorded. Safe on ParallelFor workers — the histogram update is
/// lock-free.
class StageScope {
 public:
  explicit StageScope(Stage stage) {
#if DPCOPULA_OBS_ENABLED
    if (!ProfilingEnabled()) return;
    histogram_ = StageProfiler::Global().histogram(stage);
    start_ = std::chrono::steady_clock::now();
#else
    (void)stage;
#endif
  }
  ~StageScope() {
#if DPCOPULA_OBS_ENABLED
    if (histogram_ == nullptr) return;
    histogram_->Observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
#endif
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
#if DPCOPULA_OBS_ENABLED
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
#endif
};

/// Peak resident set size of this process in bytes (getrusage ru_maxrss),
/// 0 when the platform cannot report it. Monotone over the process life —
/// sample it at report time, not per stage.
std::int64_t PeakRssBytes();

/// One reading of the hardware counter group.
struct HwCounterSample {
  bool available = false;  // False: every field below is 0 and meaningless.
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t cache_misses = 0;
};

/// perf_event_open cycles/instructions/cache-misses for this process (all
/// threads). The syscall is probed at first use: in containers and on
/// locked-down kernels (perf_event_paranoid, seccomp) it fails with
/// EPERM/EACCES/ENOSYS, and every HwCounterGroup then reports
/// available() == false while Start()/Stop() stay harmless no-ops — the
/// profiler degrades to wall-clock-only instead of erroring.
class HwCounterGroup {
 public:
  HwCounterGroup();
  ~HwCounterGroup();
  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  bool available() const { return fd_cycles_ >= 0; }

  /// Zeroes and enables the counters. No-op when unavailable.
  void Start();
  /// Disables and reads the counters. available=false when unavailable.
  HwCounterSample Stop();

  /// Cached one-time probe: can this process open a hardware counter?
  static bool Probe();

 private:
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_cache_misses_ = -1;
};

/// Session wrapper for the CLIs: when profiling is enabled, starts the
/// hardware counters on construction and on destruction publishes
///
///   profile.peak_rss_bytes    gauge, getrusage high-water mark
///   profile.hw_available      gauge, 1 when counters were live
///   profile.hw_cycles         gauge, 0 when unavailable
///   profile.hw_instructions   gauge, 0 when unavailable
///   profile.hw_cache_misses   gauge, 0 when unavailable
///
/// so the run report and dpcopula_report pick them up like any metric.
class ProfileSession {
 public:
  ProfileSession();
  ~ProfileSession();
  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

 private:
  bool active_ = false;
  HwCounterGroup counters_;
};

}  // namespace dpcopula::obs

#endif  // DPCOPULA_OBS_PROFILE_H_
