#include "obs/profile.h"

#include <cstring>
#include <string>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace dpcopula::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kCsvRead:
      return "csv_read";
    case Stage::kCsvWrite:
      return "csv_write";
    case Stage::kMarginPublish:
      return "margin_publish";
    case Stage::kRankCacheBuild:
      return "rank_cache_build";
    case Stage::kTauPairs:
      return "tau_pairs";
    case Stage::kLaplaceNoise:
      return "laplace_noise";
    case Stage::kMlePartitionFit:
      return "mle_partition_fit";
    case Stage::kPsdRepair:
      return "psd_repair";
    case Stage::kCholesky:
      return "cholesky";
    case Stage::kGaussianFill:
      return "gaussian_fill";
    case Stage::kCholeskyApply:
      return "cholesky_apply";
    case Stage::kInverseCdf:
      return "inverse_cdf";
    case Stage::kNumStages:
      break;
  }
  return "unknown";
}

StageProfiler::StageProfiler() {
  for (int i = 0; i < kNumProfileStages; ++i) {
    histograms_[i] = MetricsRegistry::Global().GetHistogram(
        std::string("profile.") + StageName(static_cast<Stage>(i)) +
        "_seconds");
  }
}

StageProfiler& StageProfiler::Global() {
  // Leaked on purpose, like the registry it points into: StageScopes may
  // fire during static destruction.
  static StageProfiler* profiler = new StageProfiler();
  return *profiler;
}

void StageProfiler::Reset() {
  for (Histogram* h : histograms_) h->Reset();
}

std::int64_t PeakRssBytes() {
#if defined(__linux__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

#if defined(__linux__)

namespace {

int OpenHwCounter(std::uint64_t hw_config, int group_fd) {
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = hw_config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // Group leader starts disabled.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // Include ParallelFor workers spawned later.
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          group_fd, /*flags=*/0UL);
  return static_cast<int>(fd);
}

std::int64_t ReadCounter(int fd) {
  if (fd < 0) return 0;
  long long value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return static_cast<std::int64_t>(value);
}

}  // namespace

bool HwCounterGroup::Probe() {
  static const bool available = [] {
    const int fd = OpenHwCounter(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return available;
}

HwCounterGroup::HwCounterGroup() {
  if (!Probe()) return;
  fd_cycles_ = OpenHwCounter(PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd_cycles_ < 0) return;
  // Secondary counters are best-effort: some PMUs expose cycles but run
  // out of slots (or lack cache-miss events); a failed sibling stays -1
  // and reads as 0 rather than failing the group.
  fd_instructions_ = OpenHwCounter(PERF_COUNT_HW_INSTRUCTIONS, fd_cycles_);
  fd_cache_misses_ = OpenHwCounter(PERF_COUNT_HW_CACHE_MISSES, fd_cycles_);
}

HwCounterGroup::~HwCounterGroup() {
  if (fd_cache_misses_ >= 0) close(fd_cache_misses_);
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_cycles_ >= 0) close(fd_cycles_);
}

void HwCounterGroup::Start() {
  if (fd_cycles_ < 0) return;
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

HwCounterSample HwCounterGroup::Stop() {
  HwCounterSample sample;
  if (fd_cycles_ < 0) return sample;
  ioctl(fd_cycles_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  sample.available = true;
  sample.cycles = ReadCounter(fd_cycles_);
  sample.instructions = ReadCounter(fd_instructions_);
  sample.cache_misses = ReadCounter(fd_cache_misses_);
  return sample;
}

#else  // !__linux__

bool HwCounterGroup::Probe() { return false; }
HwCounterGroup::HwCounterGroup() = default;
HwCounterGroup::~HwCounterGroup() = default;
void HwCounterGroup::Start() {}
HwCounterSample HwCounterGroup::Stop() { return HwCounterSample{}; }

#endif  // __linux__

ProfileSession::ProfileSession() {
  if (!ProfilingEnabled()) return;
  active_ = true;
  counters_.Start();
}

ProfileSession::~ProfileSession() {
  if (!active_) return;
  const HwCounterSample sample = counters_.Stop();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("profile.peak_rss_bytes")
      ->Set(static_cast<double>(PeakRssBytes()));
  registry.GetGauge("profile.hw_available")
      ->Set(sample.available ? 1.0 : 0.0);
  registry.GetGauge("profile.hw_cycles")
      ->Set(static_cast<double>(sample.cycles));
  registry.GetGauge("profile.hw_instructions")
      ->Set(static_cast<double>(sample.instructions));
  registry.GetGauge("profile.hw_cache_misses")
      ->Set(static_cast<double>(sample.cache_misses));
}

}  // namespace dpcopula::obs
