#ifndef DPCOPULA_OBS_METRICS_H_
#define DPCOPULA_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/log.h"

namespace dpcopula::obs {

/// Naming convention (see DESIGN.md § Observability): `module.metric`, all
/// lower-case snake_case, e.g. "sampler.rows_emitted",
/// "kendall.pairs_computed", "parallel.pool_tasks". Counters count events or
/// items, gauges hold last-written values, histograms hold latencies in
/// seconds.
///
/// All three metric kinds are safe to update concurrently from ParallelFor
/// workers: every mutable word is a std::atomic, and counters additionally
/// shard across cache-line-padded slots indexed by a dense per-thread id so
/// concurrent Add()s from different workers do not even contend. Reads
/// (Value()/Snapshot()) are racy-but-consistent aggregations — exact once
/// the workers have joined, which is the only time reports read them.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::int64_t delta) {
#if DPCOPULA_OBS_ENABLED
    if (!MetricsEnabled()) return;
    slots_[internal::ThreadIndex() & (kSlots - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  void Increment() { Add(1); }

  std::int64_t Value() const {
    std::int64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr int kSlots = 16;  // Power of two for the mask above.
  struct alignas(64) Slot {
    std::atomic<std::int64_t> v{0};
  };
  Slot slots_[kSlots];
};

/// Last-writer-wins scalar (e.g. "kendall.subsample_rows"). Writes from
/// concurrent workers are atomic; which one survives is unspecified, which
/// is fine for the "most recent observation" semantics of a gauge.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
#if DPCOPULA_OBS_ENABLED
    if (!MetricsEnabled()) return;
    v_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed (HDR-style) latency histogram in seconds. Observations are
/// stored as integer nanoseconds in buckets that subdivide every power of
/// two into kSubBucketCount linear sub-buckets, so every bucket's bounds
/// are exact integers and the bucket width is at most 1/kSubBucketCount of
/// its lower bound. That makes quantile extraction (p50/p90/p99/p99.9)
/// exact to a guaranteed relative error of 1/kSubBucketCount (~3.1%):
/// Quantile() returns the inclusive upper bound of the bucket holding the
/// ranked observation, which can never undershoot the true quantile and
/// overshoots it by at most that bound. Values below kSubBucketCount ns
/// are stored exactly. The tracked range is 0ns .. 2^42ns (~73 minutes);
/// anything beyond lands in the final overflow bucket, whose quantiles
/// report the tracked maximum instead of a bound.
///
/// Observe() is a bit-scan plus four relaxed atomic updates — no locks, no
/// allocation — and is safe to call concurrently from ParallelFor workers.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBucketCount = 1 << kSubBucketBits;  // 32
  // Exponents 0..41 → shift 0..36; index = shift * 32 + sub (sub < 64).
  static constexpr int kBuckets = 38 * kSubBucketCount;  // 1216

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double seconds);

  std::int64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Total observed time in seconds.
  double Sum() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  /// Largest observation seen, in seconds (0 when empty).
  double Max() const {
    return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  std::vector<std::int64_t> BucketCounts() const;

  /// The q-quantile (q in [0, 1]) in seconds: the inclusive upper bound of
  /// the bucket holding the observation of rank ceil(q * count). Returns 0
  /// on an empty histogram and the tracked maximum for ranks that fall in
  /// the overflow bucket. Racy-but-consistent under concurrent Observe()
  /// (operates on one bucket snapshot), exact once writers have joined.
  double Quantile(double q) const;

  /// One consistent pass over a single bucket snapshot: count, sum, max,
  /// and the four standard percentiles the run report publishes.
  struct Summary {
    std::int64_t count = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };
  Summary GetSummary() const;

  /// Bucket index an observation of `nanos` lands in.
  static int BucketIndex(std::int64_t nanos);
  /// Inclusive upper bound of bucket `i` in integer nanoseconds.
  static std::int64_t BucketUpperBoundNanos(int i);
  /// Inclusive upper bound of bucket `i` in seconds; +inf for the last.
  static double BucketUpperBound(int i);

  void Reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_nanos_{0};
  std::atomic<std::int64_t> max_nanos_{0};
};

/// RAII wall-clock timer feeding a Histogram. Reads the steady clock only
/// when metrics are enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(MetricsEnabled() ? histogram : nullptr) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Process-wide registry. Metrics are created on first lookup and live for
/// the process lifetime (stable pointers — call sites cache them in
/// function-local statics). Lookup takes a mutex; updates through the
/// returned pointers are lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  enum class MetricType { kCounter, kGauge, kHistogram };
  struct MetricSnapshot {
    std::string name;
    MetricType type;
    std::int64_t counter_value = 0;
    double gauge_value = 0.0;
    std::int64_t histogram_count = 0;
    double histogram_sum_seconds = 0.0;
    double histogram_max_seconds = 0.0;
    double histogram_p50 = 0.0;
    double histogram_p90 = 0.0;
    double histogram_p99 = 0.0;
    double histogram_p999 = 0.0;
    std::vector<std::int64_t> histogram_buckets;
  };

  /// All registered metrics, sorted by (type, name). Includes metrics whose
  /// value is still zero.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every metric (registrations survive). For tests and the
  /// per-run reports of the CLI tools.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dpcopula::obs

#endif  // DPCOPULA_OBS_METRICS_H_
