#ifndef DPCOPULA_OBS_JSON_WRITER_H_
#define DPCOPULA_OBS_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

/// Append-style JSON emission shared by the run report and the Chrome
/// trace exporter. The schemas are small and fully known, so a handful of
/// helpers beats dragging in a JSON library (the container has none).
/// Internal to obs — tools re-implement their own parsing side.

namespace dpcopula::obs::internal {

inline void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

inline void AppendJsonDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null keeps the document parseable and the
    // pathology visible.
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

inline void AppendJsonInt(std::string* out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

/// Microseconds with nanosecond precision — the unit of Chrome trace "ts"
/// and "dur" fields.
inline void AppendJsonMicros(std::string* out, std::int64_t nanos) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03d",
                static_cast<long long>(nanos / 1000),
                static_cast<int>(std::llabs(nanos % 1000)));
  *out += buf;
}

}  // namespace dpcopula::obs::internal

#endif  // DPCOPULA_OBS_JSON_WRITER_H_
