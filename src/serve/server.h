#ifndef DPCOPULA_SERVE_SERVER_H_
#define DPCOPULA_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/ledger.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace dpcopula::serve {

struct ServerOptions {
  /// Listen address; loopback by default — the daemon has no auth layer,
  /// exposure beyond localhost is a deployment decision.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable from port() after Create.
  int port = 0;
  /// Connection-handling worker threads.
  int num_workers = 2;
  /// Threads per sampling request (passed through to the copula sampler;
  /// output is thread-count invariant, so this never affects replay).
  int sample_threads = 1;
  /// Accepted connections queued ahead of the workers. When the queue is
  /// full the accept thread answers "ERR 503 server busy" and closes —
  /// a fast reject instead of unbounded memory growth.
  std::size_t queue_capacity = 64;
  /// Upper bound on rows per SAMPLE request (413 beyond it).
  std::uint64_t max_rows_per_request = 1u << 20;
  TenantLedger::Options ledger;
};

/// The dpcopula serving daemon: accepts line-delimited requests (see
/// protocol.h) over TCP, samples synthetic rows from registered models,
/// and enforces per-tenant privacy budgets. Create() binds, listens and
/// starts the accept/worker threads; Shutdown() (or the destructor) stops
/// them. Models are registered through AddModel and hot-reload from disk
/// when the backing file changes.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads `path` and serves it as `name`.
  Status AddModel(const std::string& name, const std::string& path);

  /// The bound TCP port (resolves option port 0).
  int port() const { return port_; }

  /// Stops accepting, drains queued connections with 503, joins all
  /// threads. Idempotent.
  void Shutdown();

  /// Monotonic counters mirrored in plain atomics so tests and the bench
  /// harness can assert on them even when the obs layer is compiled out
  /// (DPCOPULA_OBS=OFF).
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected_busy = 0;
    std::uint64_t requests = 0;
    std::uint64_t samples_ok = 0;
    std::uint64_t rows_sampled = 0;
    std::uint64_t budget_rejections = 0;
    std::uint64_t errors = 0;
    std::uint64_t reloads = 0;
  };
  Stats GetStats() const;

 private:
  explicit Server(ServerOptions options, TenantLedger ledger);

  Status Listen();
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  /// Handles one parsed request; returns false when the connection should
  /// close (QUIT or fatal write error).
  bool Dispatch(int fd, const std::string& line);
  std::string HandleSample(const Request& request);
  std::string HandleBudget(const Request& request);
  std::string HandleReload(const Request& request);
  std::string HandleStats();

  ServerOptions options_;
  ModelRegistry registry_;
  TenantLedger ledger_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // Accepted fds awaiting a worker.

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> seq_{0};  // Request sequence, feeds failpoints.
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_busy_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> samples_ok_{0};
  std::atomic<std::uint64_t> rows_sampled_{0};
  std::atomic<std::uint64_t> budget_rejections_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> reloads_{0};
};

}  // namespace dpcopula::serve

#endif  // DPCOPULA_SERVE_SERVER_H_
