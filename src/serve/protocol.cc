#include "serve/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace dpcopula::serve {

namespace {

Status BadRequest(const std::string& what) {
  // Deliberately structural: says which field is malformed, never what the
  // client sent.
  return Status::InvalidArgument("bad request: " + what);
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string field;
  while (in >> field) fields.push_back(std::move(field));
  return fields;
}

bool ParseDouble(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty() || errno == ERANGE) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseUint64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

}  // namespace

Result<Request> ParseRequestLine(const std::string& line) {
  if (line.size() > 4096) return BadRequest("line too long");
  const std::vector<std::string> fields = SplitFields(line);
  if (fields.empty()) return BadRequest("empty line");
  Request request;
  const std::string& verb = fields[0];
  if (verb == "SAMPLE") {
    if (fields.size() < 6 || fields.size() > 7) {
      return BadRequest("SAMPLE field count");
    }
    request.kind = Request::Kind::kSample;
    request.model = fields[1];
    request.tenant = fields[2];
    if (!ParseDouble(fields[3], &request.epsilon) ||
        !std::isfinite(request.epsilon) || request.epsilon < 0.0) {
      return BadRequest("SAMPLE epsilon");
    }
    if (!ParseUint64(fields[4], &request.rows)) {
      return BadRequest("SAMPLE rows");
    }
    if (!ParseUint64(fields[5], &request.seed)) {
      return BadRequest("SAMPLE seed");
    }
    if (fields.size() == 7) {
      if (fields[6] == "binary") {
        request.binary = true;
      } else if (fields[6] != "csv") {
        return BadRequest("SAMPLE format");
      }
    }
    return request;
  }
  if (verb == "BUDGET") {
    if (fields.size() != 2) return BadRequest("BUDGET field count");
    request.kind = Request::Kind::kBudget;
    request.tenant = fields[1];
    return request;
  }
  if (verb == "RELOAD") {
    if (fields.size() != 2) return BadRequest("RELOAD field count");
    request.kind = Request::Kind::kReload;
    request.model = fields[1];
    return request;
  }
  if (verb == "STATS") {
    if (fields.size() != 1) return BadRequest("STATS field count");
    request.kind = Request::Kind::kStats;
    return request;
  }
  if (verb == "PING") {
    if (fields.size() != 1) return BadRequest("PING field count");
    request.kind = Request::Kind::kPing;
    return request;
  }
  if (verb == "QUIT") {
    if (fields.size() != 1) return BadRequest("QUIT field count");
    request.kind = Request::Kind::kQuit;
    return request;
  }
  return BadRequest("unknown verb");
}

int StatusToWireCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kOutOfRange:
      return 413;
    case StatusCode::kPrivacyBudgetExceeded:
      return 429;
    case StatusCode::kResourceExhausted:
      return 503;
    default:
      return 500;
  }
}

std::string RenderError(int code, const std::string& message) {
  std::string out = "ERR ";
  out += std::to_string(code);
  out += ' ';
  out += message;
  out += '\n';
  return out;
}

std::string RenderError(const Status& status) {
  return RenderError(StatusToWireCode(status), status.message());
}

std::string RenderSampleResponse(const data::Table& table, bool binary) {
  const std::size_t rows = table.num_rows();
  const std::size_t cols = table.num_columns();
  std::string out = "OK SAMPLE ";
  out += std::to_string(rows);
  out += ' ';
  out += std::to_string(cols);
  out += binary ? " binary\n" : " csv\n";
  // Pre-size: ~8 bytes per cell covers small-domain integers with slack.
  out.reserve(out.size() + rows * cols * 8 + 16);
  std::string row_text;
  if (!binary) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (j > 0) out += ',';
      out += table.schema().attribute(j).name;
    }
    out += '\n';
  }
  for (std::size_t i = 0; i < rows; ++i) {
    row_text.clear();
    for (std::size_t j = 0; j < cols; ++j) {
      if (j > 0) row_text += ',';
      // Cells are integral points of a discrete domain; render them as
      // integers so the bytes are an exact function of the table.
      row_text += std::to_string(std::llround(table.at(i, j)));
    }
    if (binary) {
      const auto length = static_cast<std::uint32_t>(row_text.size());
      out += static_cast<char>(length & 0xff);
      out += static_cast<char>((length >> 8) & 0xff);
      out += static_cast<char>((length >> 16) & 0xff);
      out += static_cast<char>((length >> 24) & 0xff);
      out += row_text;
    } else {
      out += row_text;
      out += '\n';
    }
  }
  out += "END\n";
  return out;
}

}  // namespace dpcopula::serve
