#ifndef DPCOPULA_SERVE_LEDGER_H_
#define DPCOPULA_SERVE_LEDGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "dp/budget.h"

namespace dpcopula::serve {

/// Per-tenant privacy-budget ledgers with admission control for the
/// serving path. Each tenant owns one BudgetAccountant; a request's
/// epsilon charge is admitted atomically against the tenant's remaining
/// allowance (Charge is an atomic check-and-spend), so concurrent requests
/// from the same tenant can never jointly overspend.
///
/// When `persist_path` is set, the full ledger is rewritten through
/// common/atomic_file after every spending charge, and reloaded by Open on
/// the next start — a restart never forgets spend. The persistence order
/// is charge-then-persist: a crash between the two forgets at most the
/// in-flight charge *in the file*, while the response for it was never
/// sent, and a client retry re-charges. Spend is only ever overcounted,
/// never refunded — errors stay on the privacy-safe side.
class TenantLedger {
 public:
  struct Options {
    /// Epsilon allowance granted to a tenant on first contact.
    double default_allowance = 1.0;
    /// Ledger file path; empty = in-memory only (tests, benches).
    std::string persist_path;
  };

  /// Opens a ledger; restores persisted spend when the file exists. A
  /// corrupt ledger file fails closed (IOError) — better to refuse to
  /// serve than to forget spend.
  static Result<TenantLedger> Open(Options options);

  TenantLedger(TenantLedger&&) = default;
  TenantLedger& operator=(TenantLedger&&) = default;

  /// Atomically admits and records a charge of `epsilon` for `tenant`
  /// (created with the default allowance on first contact). Rejected
  /// charges (PrivacyBudgetExceeded) spend nothing and are not persisted.
  Status Charge(const std::string& tenant, double epsilon,
                const std::string& what);

  struct TenantBudget {
    double total = 0.0;
    double spent = 0.0;
    double remaining() const { return total - spent; }
  };
  /// Snapshot of `tenant`'s budget (created on first contact).
  TenantBudget Get(const std::string& tenant);

  std::size_t num_tenants() const;

 private:
  explicit TenantLedger(Options options) : options_(std::move(options)) {}

  dp::BudgetAccountant* GetOrCreateLocked(const std::string& tenant);
  Status PersistLocked() const;

  Options options_;
  // unique_ptr so accountants have stable addresses across map growth.
  std::map<std::string, std::unique_ptr<dp::BudgetAccountant>> tenants_;
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
};

}  // namespace dpcopula::serve

#endif  // DPCOPULA_SERVE_LEDGER_H_
