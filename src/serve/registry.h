#ifndef DPCOPULA_SERVE_REGISTRY_H_
#define DPCOPULA_SERVE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/model_io.h"
#include "stats/empirical_cdf.h"

namespace dpcopula::serve {

/// One loaded, sampling-ready model version. Immutable after publication:
/// request threads hold a shared_ptr while sampling, so a hot reload can
/// swap in a new version without ever invalidating an in-flight request.
/// The per-column inverse-CDF tables are built once here instead of per
/// request (SampleFromModel rebuilds them on every call — too slow for a
/// request hot path).
struct ServedModel {
  core::DpCopulaModel model;
  std::vector<stats::EmpiricalCdf> cdfs;
  // File identity at load time, used to detect on-disk changes.
  std::int64_t mtime_ns = 0;
  std::int64_t size = 0;
  std::uint64_t inode = 0;
};

/// Name-keyed registry of served models with mtime-based hot reload.
/// Get() stats the backing file and, when it changed, reloads and
/// atomically publishes the new version (shared_ptr swap under the
/// registry mutex; one reloader at a time per model). A failed reload —
/// corrupt new file, injected serve.model_reload fault — keeps the
/// previous version serving and counts serve.model_reload_failures:
/// a bad push degrades freshness, never availability.
class ModelRegistry {
 public:
  /// Loads `path` now and registers it under `name`. AlreadyExists if the
  /// name is taken; the load's IOError propagates on corrupt files.
  Status Add(const std::string& name, const std::string& path);

  /// The current version for `name` (NotFound for unregistered names),
  /// hot-reloading first when the backing file changed.
  Result<std::shared_ptr<const ServedModel>> Get(const std::string& name);

  /// Explicit reload check (the protocol's RELOAD verb). Returns true when
  /// a new version was published, false when the file is unchanged; a
  /// failed load keeps the old version and returns the load error.
  Result<bool> CheckReload(const std::string& name);

  std::vector<std::string> Names() const;

 private:
  struct Slot {
    std::string path;
    std::mutex reload_mu;  // Serializes reload attempts per model.
    std::shared_ptr<const ServedModel> current;  // Guarded by owner mu_.
  };

  static Result<std::shared_ptr<const ServedModel>> LoadFromFile(
      const std::string& path);
  Result<bool> ReloadIfChanged(Slot* slot, bool force_error);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Slot>> slots_;
};

}  // namespace dpcopula::serve

#endif  // DPCOPULA_SERVE_REGISTRY_H_
