#ifndef DPCOPULA_SERVE_PROTOCOL_H_
#define DPCOPULA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/table.h"

namespace dpcopula::serve {

/// Line-delimited request grammar (one request per line, LF-terminated,
/// fields separated by single spaces; see DESIGN.md §13):
///
///   SAMPLE <model> <tenant> <epsilon> <rows> <seed> [csv|binary]
///   BUDGET <tenant>
///   RELOAD <model>
///   STATS
///   PING
///   QUIT
///
/// <model> and <tenant> are whitespace-free identifiers; <epsilon> is the
/// budget charge debited from the tenant's ledger before sampling (0 =
/// free replay of an already-released model); <rows> is the synthetic row
/// count (0 = the model's fitted_rows); <seed> makes the reply
/// deterministic — the same (model, seed, rows) always returns
/// bit-identical bytes. The format defaults to csv.
struct Request {
  enum class Kind { kSample, kBudget, kReload, kStats, kPing, kQuit };
  Kind kind = Kind::kPing;
  std::string model;
  std::string tenant;
  double epsilon = 0.0;
  std::uint64_t rows = 0;
  std::uint64_t seed = 0;
  bool binary = false;
};

/// Parses one request line (without the trailing LF). InvalidArgument on
/// malformed input; the message never echoes client bytes back.
Result<Request> ParseRequestLine(const std::string& line);

/// Response status line: "OK <verb> ..." on success, "ERR <code> <message>"
/// on failure. Codes follow HTTP semantics: 400 bad request, 404 unknown
/// model, 413 too many rows, 429 budget exhausted, 500 internal, 503 busy.
int StatusToWireCode(const Status& status);

/// "ERR <code> <message>\n".
std::string RenderError(int code, const std::string& message);
std::string RenderError(const Status& status);

/// Sample payload. CSV: "OK SAMPLE <rows> <cols> csv\n", a header line of
/// attribute names, one comma-joined line per row, then "END\n". Binary:
/// "OK SAMPLE <rows> <cols> binary\n", then per row a 4-byte little-endian
/// payload length followed by the payload bytes (the same comma-joined
/// text, no newline), then "END\n". Both renderings are deterministic
/// functions of the table, which is what makes seed-replay bit-identical
/// end to end.
std::string RenderSampleResponse(const data::Table& table, bool binary);

}  // namespace dpcopula::serve

#endif  // DPCOPULA_SERVE_PROTOCOL_H_
