#include "serve/ledger.h"

#include <cmath>
#include <fstream>
#include <utility>

#include "common/atomic_file.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dpcopula::serve {

namespace {
// Mirrors the accountant's accumulation slack: a restored spend equal to
// the total (an exhausted tenant) must restore cleanly.
constexpr double kSlack = 1e-9;

Status LedgerError(const std::string& what) {
  // Structural only — tenant names are operator-chosen identifiers, but
  // totals/spends never appear in errors.
  return Status::IOError("ledger parse error: " + what);
}
}  // namespace

Result<TenantLedger> TenantLedger::Open(Options options) {
  TenantLedger ledger(std::move(options));
  if (ledger.options_.persist_path.empty()) return ledger;
  std::ifstream in(ledger.options_.persist_path);
  if (!in) return ledger;  // First start: nothing persisted yet.
  std::string line;
  if (!std::getline(in, line) || line != "DPCOPULA-LEDGER v1") {
    return LedgerError("bad header");
  }
  std::string token;
  while (in >> token) {
    if (token != "tenant") return LedgerError("bad record");
    std::string name;
    double total = 0.0, spent = 0.0;
    if (!(in >> name >> total >> spent)) return LedgerError("bad record");
    if (!std::isfinite(total) || !std::isfinite(spent) || total < 0.0 ||
        spent < 0.0 || spent > total + kSlack) {
      return LedgerError("invalid budget record");
    }
    if (ledger.tenants_.count(name) != 0) {
      return LedgerError("duplicate tenant");
    }
    auto accountant = std::make_unique<dp::BudgetAccountant>(total, name);
    if (spent > 0.0) {
      DPC_RETURN_NOT_OK(accountant->Charge(spent, "ledger:restore"));
    }
    ledger.tenants_.emplace(name, std::move(accountant));
  }
  return ledger;
}

dp::BudgetAccountant* TenantLedger::GetOrCreateLocked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(tenant, std::make_unique<dp::BudgetAccountant>(
                                  options_.default_allowance, tenant))
             .first;
  }
  return it->second.get();
}

Status TenantLedger::PersistLocked() const {
  if (options_.persist_path.empty()) return Status::OK();
  return WriteFileAtomic(
      options_.persist_path, [this](std::ostream& out) -> Status {
        out.precision(17);
        out << "DPCOPULA-LEDGER v1\n";
        for (const auto& [name, accountant] : tenants_) {
          out << "tenant " << name << ' ' << accountant->total_epsilon()
              << ' ' << accountant->spent() << '\n';
        }
        if (!out) return Status::IOError("ledger stream failed");
        return Status::OK();
      });
}

Status TenantLedger::Charge(const std::string& tenant, double epsilon,
                            const std::string& what) {
  static obs::Counter* const rejected =
      obs::MetricsRegistry::Global().GetCounter("serve.budget_rejections");
  std::lock_guard<std::mutex> lock(*mu_);
  dp::BudgetAccountant* accountant = GetOrCreateLocked(tenant);
  Status admitted = accountant->Charge(epsilon, what);
  if (!admitted.ok()) {
    rejected->Increment();
    return admitted;
  }
  if (epsilon == 0.0) return Status::OK();  // Nothing changed on disk.
  Status persisted = PersistLocked();
  if (!persisted.ok()) {
    // The in-memory charge stands (never refunded); losing the response is
    // the safe failure direction. Surface the IO error to the caller.
    obs::Log(obs::LogLevel::kError, "serve.ledger_persist_failed")
        .Field("tenant", tenant);
    return persisted;
  }
  return Status::OK();
}

TenantLedger::TenantBudget TenantLedger::Get(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(*mu_);
  dp::BudgetAccountant* accountant = GetOrCreateLocked(tenant);
  return {accountant->total_epsilon(), accountant->spent()};
}

std::size_t TenantLedger::num_tenants() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return tenants_.size();
}

}  // namespace dpcopula::serve
