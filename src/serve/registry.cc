#include "serve/registry.h"

#include <sys/stat.h>

#include <utility>

#include "common/failpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dpcopula::serve {

namespace {

struct FileIdentity {
  std::int64_t mtime_ns = 0;
  std::int64_t size = 0;
  std::uint64_t inode = 0;
};

Status StatFile(const std::string& path, FileIdentity* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat model file: " + path);
  }
  out->mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                  st.st_mtim.tv_nsec;
  out->size = static_cast<std::int64_t>(st.st_size);
  out->inode = static_cast<std::uint64_t>(st.st_ino);
  return Status::OK();
}

bool SameIdentity(const ServedModel& model, const FileIdentity& id) {
  return model.mtime_ns == id.mtime_ns && model.size == id.size &&
         model.inode == id.inode;
}

}  // namespace

Result<std::shared_ptr<const ServedModel>> ModelRegistry::LoadFromFile(
    const std::string& path) {
  if (DPC_FAILPOINT("serve.model_reload")) {
    return failpoint::InjectedFault("serve.model_reload");
  }
  // Stat before and after the load: if the identity changed underneath the
  // read (a concurrent atomic-rename publish), the bytes we parsed may be
  // the old version — record the pre-read identity so the next Get()
  // notices and reloads again.
  FileIdentity before;
  DPC_RETURN_NOT_OK(StatFile(path, &before));
  DPC_ASSIGN_OR_RETURN(core::DpCopulaModel model, core::LoadModel(path));
  auto served = std::make_shared<ServedModel>();
  served->cdfs.reserve(model.marginal_counts.size());
  for (const auto& counts : model.marginal_counts) {
    DPC_ASSIGN_OR_RETURN(stats::EmpiricalCdf cdf,
                         stats::EmpiricalCdf::FromCounts(counts));
    served->cdfs.push_back(std::move(cdf));
  }
  served->model = std::move(model);
  served->mtime_ns = before.mtime_ns;
  served->size = before.size;
  served->inode = before.inode;
  return std::shared_ptr<const ServedModel>(std::move(served));
}

Status ModelRegistry::Add(const std::string& name, const std::string& path) {
  DPC_ASSIGN_OR_RETURN(std::shared_ptr<const ServedModel> loaded,
                       LoadFromFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  if (slots_.count(name) != 0) {
    return Status::AlreadyExists("model '" + name + "' already registered");
  }
  auto slot = std::make_unique<Slot>();
  slot->path = path;
  slot->current = std::move(loaded);
  slots_.emplace(name, std::move(slot));
  return Status::OK();
}

Result<bool> ModelRegistry::ReloadIfChanged(Slot* slot, bool force_error) {
  static obs::Counter* const reloads =
      obs::MetricsRegistry::Global().GetCounter("serve.model_reloads");
  static obs::Counter* const failures =
      obs::MetricsRegistry::Global().GetCounter(
          "serve.model_reload_failures");
  // One reloader at a time per model; late arrivals re-check the identity
  // under the lock and find the fresh version already published.
  std::lock_guard<std::mutex> reload_lock(slot->reload_mu);
  std::shared_ptr<const ServedModel> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current = slot->current;
  }
  FileIdentity id;
  Status statted = StatFile(slot->path, &id);
  if (!statted.ok()) {
    // The file vanished mid-swap (rename in flight) or is unreadable: keep
    // serving the version we have.
    failures->Increment();
    if (force_error) return statted;
    return false;
  }
  if (SameIdentity(*current, id)) return false;
  Result<std::shared_ptr<const ServedModel>> loaded = LoadFromFile(slot->path);
  if (!loaded.ok()) {
    failures->Increment();
    obs::Log(obs::LogLevel::kError, "serve.model_reload_failed")
        .Field("path", slot->path);
    if (force_error) return loaded.status();
    return false;  // Keep the old version serving.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot->current = loaded.MoveValueUnsafe();
  }
  reloads->Increment();
  return true;
}

Result<std::shared_ptr<const ServedModel>> ModelRegistry::Get(
    const std::string& name) {
  Slot* slot = nullptr;
  std::shared_ptr<const ServedModel> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      return Status::NotFound("unknown model '" + name + "'");
    }
    slot = it->second.get();
    current = slot->current;
  }
  FileIdentity id;
  if (StatFile(slot->path, &id).ok() && !SameIdentity(*current, id)) {
    // Best-effort freshness: a failed reload falls back to `current`.
    (void)ReloadIfChanged(slot, /*force_error=*/false);
    std::lock_guard<std::mutex> lock(mu_);
    current = slot->current;
  }
  return current;
}

Result<bool> ModelRegistry::CheckReload(const std::string& name) {
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      return Status::NotFound("unknown model '" + name + "'");
    }
    slot = it->second.get();
  }
  return ReloadIfChanged(slot, /*force_error=*/true);
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

}  // namespace dpcopula::serve
