#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/rng.h"
#include "copula/sampler.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dpcopula::serve {

namespace {

// Poll granularity for accept/read loops. close() on Linux does not wake a
// thread blocked in accept()/recv(), so every blocking wait is a short
// poll() that re-checks the stop flag.
constexpr int kPollMillis = 100;

// A request line plus slack; connections streaming more than this without
// a newline are protocol violations and get closed.
constexpr std::size_t kMaxBufferedBytes = 8192;

bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string FormatBudgetLine(const std::string& tenant,
                             const TenantLedger::TenantBudget& budget) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "OK BUDGET %s total=%.17g spent=%.17g remaining=%.17g\n",
                tenant.c_str(), budget.total, budget.spent,
                budget.remaining());
  return buffer;
}

}  // namespace

Server::Server(ServerOptions options, TenantLedger ledger)
    : options_(std::move(options)), ledger_(std::move(ledger)) {}

Result<std::unique_ptr<Server>> Server::Create(ServerOptions options) {
  DPC_ASSIGN_OR_RETURN(TenantLedger ledger,
                       TenantLedger::Open(options.ledger));
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  std::unique_ptr<Server> server(
      new Server(std::move(options), std::move(ledger)));
  DPC_RETURN_NOT_OK(server->Listen());
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  server->workers_.reserve(
      static_cast<std::size_t>(server->options_.num_workers));
  for (int i = 0; i < server->options_.num_workers; ++i) {
    server->workers_.emplace_back([raw = server.get()] { raw->WorkerLoop(); });
  }
  obs::Log(obs::LogLevel::kInfo, "serve.start")
      .Field("port", static_cast<std::int64_t>(server->port_))
      .Field("workers", static_cast<std::int64_t>(server->options_.num_workers));
  return server;
}

Server::~Server() { Shutdown(); }

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind() failed on " + options_.host + ":" +
                           std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status Server::AddModel(const std::string& name, const std::string& path) {
  return registry_.Add(name, path);
}

void Server::AcceptLoop() {
  static obs::Counter* const accepted =
      obs::MetricsRegistry::Global().GetCounter("serve.connections");
  static obs::Counter* const busy =
      obs::MetricsRegistry::Global().GetCounter("serve.busy_rejections");
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check stop flag.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (DPC_FAILPOINT("serve.accept")) {
      // Simulates accept-path resource failure: the connection is dropped
      // before any request is read; the client sees a reset, not a hang.
      errors_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() < options_.queue_capacity) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      accepted->Increment();
      queue_cv_.notify_one();
    } else {
      connections_rejected_busy_.fetch_add(1, std::memory_order_relaxed);
      busy->Increment();
      SendAll(fd, RenderError(503, "server busy"));
      ::close(fd);
    }
  }
}

void Server::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      // On stop, leave anything still queued for Shutdown's 503 drain.
      if (stop_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
  }
}

void Server::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!Dispatch(fd, line)) break;
      continue;
    }
    if (buffer.size() > kMaxBufferedBytes) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, RenderError(400, "bad request: line too long"));
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;  // Timeout: re-check stop flag.
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // Peer closed or connection error.
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

bool Server::Dispatch(int fd, const std::string& line) {
  static obs::Histogram* const latency =
      obs::MetricsRegistry::Global().GetHistogram("serve.request_seconds");
  static obs::Counter* const requests =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests->Increment();
  obs::ScopedTimer timer(latency);
  Result<Request> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return SendAll(fd, RenderError(parsed.status()));
  }
  const Request& request = *parsed;
  switch (request.kind) {
    case Request::Kind::kPing:
      return SendAll(fd, "OK PONG\n");
    case Request::Kind::kQuit:
      SendAll(fd, "OK BYE\n");
      return false;
    case Request::Kind::kStats:
      return SendAll(fd, HandleStats());
    case Request::Kind::kBudget:
      return SendAll(fd, HandleBudget(request));
    case Request::Kind::kReload:
      return SendAll(fd, HandleReload(request));
    case Request::Kind::kSample:
      return SendAll(fd, HandleSample(request));
  }
  return false;
}

std::string Server::HandleSample(const Request& request) {
  static obs::Counter* const rows_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.rows_sampled");
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (DPC_FAILPOINT_AT("serve.sample", seq)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return RenderError(failpoint::InjectedFault("serve.sample"));
  }
  Result<std::shared_ptr<const ServedModel>> found =
      registry_.Get(request.model);
  if (!found.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return RenderError(found.status());
  }
  // The shared_ptr keeps this version alive for the whole request even if
  // a hot reload publishes a newer one mid-sample.
  const std::shared_ptr<const ServedModel> served = found.MoveValueUnsafe();
  const std::uint64_t rows =
      request.rows > 0 ? request.rows : served->model.fitted_rows;
  if (rows > options_.max_rows_per_request) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return RenderError(Status::OutOfRange(
        "rows exceeds per-request limit " +
        std::to_string(options_.max_rows_per_request)));
  }
  Status charged = ledger_.Charge(request.tenant, request.epsilon,
                                  "serve:sample:" + request.model);
  if (!charged.ok()) {
    if (charged.code() == StatusCode::kPrivacyBudgetExceeded) {
      budget_rejections_.fetch_add(1, std::memory_order_relaxed);
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return RenderError(charged);
  }
  // Deterministic replay: the RNG is a pure function of the request seed,
  // and the sharded sampler is thread-count invariant, so the same
  // (model, rows, seed) always renders bit-identical bytes.
  Rng rng(request.seed);
  const core::DpCopulaModel& model = served->model;
  Result<data::Table> sampled =
      model.family == core::CopulaFamily::kStudentT
          ? copula::SampleSyntheticDataT(
                model.schema, served->cdfs, model.correlation, model.t_dof,
                rows, &rng, options_.sample_threads)
          : copula::SampleSyntheticData(model.schema, served->cdfs,
                                        model.correlation, rows, &rng,
                                        options_.sample_threads);
  if (!sampled.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return RenderError(sampled.status());
  }
  samples_ok_.fetch_add(1, std::memory_order_relaxed);
  rows_sampled_.fetch_add(rows, std::memory_order_relaxed);
  rows_counter->Add(static_cast<std::int64_t>(rows));
  return RenderSampleResponse(*sampled, request.binary);
}

std::string Server::HandleBudget(const Request& request) {
  return FormatBudgetLine(request.tenant, ledger_.Get(request.tenant));
}

std::string Server::HandleReload(const Request& request) {
  Result<bool> reloaded = registry_.CheckReload(request.model);
  if (!reloaded.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return RenderError(reloaded.status());
  }
  if (*reloaded) {
    reloads_.fetch_add(1, std::memory_order_relaxed);
    return "OK RELOAD reloaded\n";
  }
  return "OK RELOAD unchanged\n";
}

std::string Server::HandleStats() {
  const Stats stats = GetStats();
  std::string out = "OK STATS";
  out += " connections=" + std::to_string(stats.connections_accepted);
  out += " busy_rejected=" + std::to_string(stats.connections_rejected_busy);
  out += " requests=" + std::to_string(stats.requests);
  out += " samples=" + std::to_string(stats.samples_ok);
  out += " rows=" + std::to_string(stats.rows_sampled);
  out += " budget_rejected=" + std::to_string(stats.budget_rejections);
  out += " errors=" + std::to_string(stats.errors);
  out += " reloads=" + std::to_string(stats.reloads);
  out += '\n';
  return out;
}

Server::Stats Server::GetStats() const {
  Stats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected_busy =
      connections_rejected_busy_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.samples_ok = samples_ok_.load(std::memory_order_relaxed);
  stats.rows_sampled = rows_sampled_.load(std::memory_order_relaxed);
  stats.budget_rejections =
      budget_rejections_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.reloads = reloads_.load(std::memory_order_relaxed);
  return stats;
}

void Server::Shutdown() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Workers exit as soon as stop_ is set; answer anything still queued
  // with a fast 503 so no client hangs on a silently dropped connection.
  std::deque<int> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(pending_);
  }
  for (int fd : leftover) {
    SendAll(fd, RenderError(503, "server shutting down"));
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  obs::Log(obs::LogLevel::kInfo, "serve.stop")
      .Field("requests", requests_.load(std::memory_order_relaxed));
}

}  // namespace dpcopula::serve
