// Old-vs-new equivalence and determinism suite for the rank-cache Kendall
// kernel (the PR-5 counterpart of sampler_kernel_test.cc): exact tau
// agreement between TauKernel::kRankCache and TauKernel::kLegacy on tied,
// untied, and degenerate data; contingency-kernel cross-checks against the
// brute-force reference; bit-identical noisy estimator output across
// kernels and across 1/2/4/8 threads.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "data/generator.h"
#include "linalg/matrix.h"
#include "stats/kendall.h"

namespace dpcopula {
namespace {

using copula::EstimateKendallCorrelation;
using copula::KendallEstimatorOptions;
using stats::BuildRankColumn;
using stats::KendallTau;
using stats::KendallTauBruteForce;
using stats::KendallTauFromRanks;
using stats::RankColumn;
using stats::TauKernel;
using stats::TauWorkspace;
using stats::UseContingencyKernel;

double RankCacheTau(const std::vector<double>& x,
                    const std::vector<double>& y) {
  auto rx = BuildRankColumn(x);
  auto ry = BuildRankColumn(y);
  EXPECT_TRUE(rx.ok());
  EXPECT_TRUE(ry.ok());
  TauWorkspace ws;
  auto tau = KendallTauFromRanks(*rx, *ry, &ws);
  EXPECT_TRUE(tau.ok());
  return *tau;
}

// ---------------------------------------------------------------------------
// RankColumn structure.

TEST(RankColumnTest, CodesOrderAndTies) {
  auto col = BuildRankColumn({3.0, 1.0, 3.0, 2.0, 1.0});
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->num_distinct, 3u);
  EXPECT_EQ(col->rank, (std::vector<std::uint32_t>{2, 0, 2, 1, 0}));
  // Stable (value, row) order: 1.0@1, 1.0@4, 2.0@3, 3.0@0, 3.0@2.
  EXPECT_EQ(col->order, (std::vector<std::uint32_t>{1, 4, 3, 0, 2}));
  // Two groups of 2 -> C(2,2)+C(2,2) = 2 tied pairs.
  EXPECT_EQ(col->tied_pairs, 2u);
}

TEST(RankColumnTest, ConstantColumn) {
  auto col = BuildRankColumn({7.0, 7.0, 7.0, 7.0});
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->num_distinct, 1u);
  EXPECT_EQ(col->tied_pairs, 6u);  // C(4,2).
}

TEST(RankColumnTest, RejectsNonFinite) {
  EXPECT_FALSE(BuildRankColumn({1.0, std::nan(""), 2.0}).ok());
  EXPECT_FALSE(
      BuildRankColumn({1.0, std::numeric_limits<double>::infinity()}).ok());
}

TEST(ContingencySelectionTest, SmallDomainsUseTable) {
  EXPECT_TRUE(UseContingencyKernel(1000000, 64, 64));
  EXPECT_TRUE(UseContingencyKernel(10, 8, 8));  // Floor keeps tiny n on it.
  EXPECT_FALSE(UseContingencyKernel(1000, 500, 500));
}

// ---------------------------------------------------------------------------
// Exact old-vs-new tau equality. EXPECT_EQ on doubles is deliberate: the
// kernels compute identical integer pair counts and share the final
// division, so the taus must agree to the last bit.

TEST(TauKernelEquivalenceTest, KnownSmallExamples) {
  EXPECT_EQ(RankCacheTau({1, 2, 3, 4}, {1, 3, 2, 4}),
            *KendallTau({1, 2, 3, 4}, {1, 3, 2, 4}));
  EXPECT_EQ(RankCacheTau({1, 1, 2}, {1, 2, 3}),
            *KendallTau({1, 1, 2}, {1, 2, 3}));
  EXPECT_EQ(RankCacheTau({1, 2, 3}, {3, 2, 1}), -1.0);
}

TEST(TauKernelEquivalenceTest, ConstantColumns) {
  const std::vector<double> c(10, 4.0);
  std::vector<double> v(10);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i % 3);
  }
  EXPECT_EQ(RankCacheTau(c, v), 0.0);
  EXPECT_EQ(RankCacheTau(v, c), 0.0);
  EXPECT_EQ(RankCacheTau(c, c), 0.0);
  EXPECT_EQ(*KendallTau(c, v), 0.0);
}

class TauKernelRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TauKernelRandomTest, ExactEqualityAcrossTieRegimes) {
  Rng rng(static_cast<std::uint64_t>(900 + GetParam()));
  const std::size_t n = 80 + static_cast<std::size_t>(GetParam()) * 37;
  // Three tie regimes: heavy (domain 4), moderate (domain 32), none
  // (continuous draws). The heavy and moderate cases land on the
  // contingency kernel, the continuous case on the merge kernel.
  for (const int regime : {0, 1, 2}) {
    std::vector<double> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (regime == 0) {
        x[i] = static_cast<double>(rng.NextUint64Below(4));
        y[i] = static_cast<double>(rng.NextUint64Below(4));
      } else if (regime == 1) {
        x[i] = static_cast<double>(rng.NextUint64Below(32));
        y[i] = static_cast<double>(rng.NextUint64Below(32)) + 0.5 * x[i];
      } else {
        x[i] = rng.NextGaussian();
        y[i] = 0.4 * x[i] + rng.NextGaussian();
      }
    }
    const double legacy = *KendallTau(x, y);
    const double cached = RankCacheTau(x, y);
    EXPECT_EQ(cached, legacy) << "regime " << regime;
    EXPECT_NEAR(cached, *KendallTauBruteForce(x, y), 1e-12)
        << "regime " << regime;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TauKernelRandomTest, ::testing::Range(0, 10));

TEST(TauKernelEquivalenceTest, BothPairKernelsMatchBruteForce) {
  // Pin each pair kernel by construction and cross-check against the O(n^2)
  // reference: small domains select the contingency table, continuous data
  // the merge count.
  Rng rng(77);
  const std::size_t n = 300;
  std::vector<double> xs(n), ys(n), xc(n), yc(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<double>(rng.NextUint64Below(6));
    ys[i] = static_cast<double>(rng.NextUint64Below(5));
    xc[i] = rng.NextGaussian();
    yc[i] = rng.NextGaussian() - 0.3 * xc[i];
  }
  auto check = [&](const std::vector<double>& x,
                   const std::vector<double>& y, bool want_contingency) {
    auto rx = BuildRankColumn(x);
    auto ry = BuildRankColumn(y);
    ASSERT_TRUE(rx.ok());
    ASSERT_TRUE(ry.ok());
    ASSERT_EQ(UseContingencyKernel(n, rx->num_distinct, ry->num_distinct),
              want_contingency);
    TauWorkspace ws;
    auto tau = KendallTauFromRanks(*rx, *ry, &ws);
    ASSERT_TRUE(tau.ok());
    EXPECT_NEAR(*tau, *KendallTauBruteForce(x, y), 1e-12);
    EXPECT_EQ(*tau, *KendallTau(x, y));
  };
  check(xs, ys, /*want_contingency=*/true);
  check(xc, yc, /*want_contingency=*/false);
  check(xs, yc, /*want_contingency=*/true);  // Mixed: 6 * ~300 under floor.
}

TEST(TauKernelEquivalenceTest, WorkspaceReuseAcrossPairsIsClean) {
  // One workspace serving pairs of very different shapes (constant,
  // heavy-tie contingency, continuous merge) must not leak state between
  // calls — this is the exact reuse pattern of the estimator's pair loop.
  Rng rng(88);
  TauWorkspace ws;
  std::vector<std::vector<double>> cols;
  cols.push_back(std::vector<double>(200, 1.0));
  std::vector<double> small(200), wide(200);
  for (std::size_t i = 0; i < 200; ++i) {
    small[i] = static_cast<double>(rng.NextUint64Below(3));
    wide[i] = rng.NextGaussian();
  }
  cols.push_back(small);
  cols.push_back(wide);
  std::vector<RankColumn> ranks;
  for (const auto& c : cols) {
    auto r = BuildRankColumn(c);
    ASSERT_TRUE(r.ok());
    ranks.push_back(*r);
  }
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      for (std::size_t k = j + 1; k < cols.size(); ++k) {
        auto tau = KendallTauFromRanks(ranks[j], ranks[k], &ws);
        ASSERT_TRUE(tau.ok());
        EXPECT_EQ(*tau, *KendallTau(cols[j], cols[k]))
            << "pass " << pass << " pair (" << j << "," << k << ")";
      }
    }
  }
}

TEST(TauKernelEquivalenceTest, ValidatesInput) {
  TauWorkspace ws;
  auto a = BuildRankColumn({1.0, 2.0, 3.0});
  auto b = BuildRankColumn({1.0, 2.0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(KendallTauFromRanks(*a, *b, &ws).ok());  // Size mismatch.
  auto one = BuildRankColumn({1.0});
  ASSERT_TRUE(one.ok());
  EXPECT_FALSE(KendallTauFromRanks(*one, *one, &ws).ok());  // n < 2.
}

// ---------------------------------------------------------------------------
// Estimator-level guarantees under the new kernel.

data::Table MakeCorrelated(std::size_t n, std::size_t m, double rho,
                           std::uint64_t seed, std::int64_t domain = 24) {
  Rng rng(seed);
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), domain));
  }
  auto corr = data::Equicorrelation(m, rho);
  return *data::GenerateGaussianDependent(specs, *corr, n, &rng);
}

void ExpectMatricesIdentical(const linalg::Matrix& a,
                             const linalg::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(KendallKernelEstimatorTest, NoisyOutputBitIdenticalAcrossKernels) {
  // Exact taus plus identical per-pair noise streams imply the released
  // matrices agree to the last bit — tested on tied (small-domain) and
  // nearly-untied (large-domain) data, with and without subsampling.
  for (const std::int64_t domain : {6, 100000}) {
    data::Table t = MakeCorrelated(3000, 4, 0.5, 1234, domain);
    for (const bool subsample : {false, true}) {
      KendallEstimatorOptions legacy_opts, cache_opts;
      legacy_opts.kernel = TauKernel::kLegacy;
      legacy_opts.subsample = subsample;
      cache_opts.kernel = TauKernel::kRankCache;
      cache_opts.subsample = subsample;
      Rng r1(55), r2(55);
      auto legacy = EstimateKendallCorrelation(t, 0.8, &r1, legacy_opts);
      auto cached = EstimateKendallCorrelation(t, 0.8, &r2, cache_opts);
      ASSERT_TRUE(legacy.ok());
      ASSERT_TRUE(cached.ok());
      ExpectMatricesIdentical(legacy->correlation, cached->correlation);
      EXPECT_EQ(legacy->rows_used, cached->rows_used);
      EXPECT_EQ(legacy->contingency_pairs, 0);
    }
  }
}

TEST(KendallKernelEstimatorTest, ThreadCountInvariance) {
  data::Table t = MakeCorrelated(4000, 5, 0.4, 321);
  KendallEstimatorOptions options;
  options.subsample = false;
  linalg::Matrix reference;
  for (const int threads : {1, 2, 4, 8}) {
    options.num_threads = threads;
    Rng rng(999);
    auto est = EstimateKendallCorrelation(t, 1.0, &rng, options);
    ASSERT_TRUE(est.ok()) << "threads=" << threads;
    if (threads == 1) {
      reference = est->correlation;
    } else {
      ExpectMatricesIdentical(reference, est->correlation);
    }
  }
}

TEST(KendallKernelEstimatorTest, ContingencyPairsReported) {
  // Small domains: every C(5,2) = 10 pair takes the contingency kernel.
  data::Table t = MakeCorrelated(2000, 5, 0.3, 77, /*domain=*/8);
  KendallEstimatorOptions options;
  options.subsample = false;
  Rng rng(7);
  auto est = EstimateKendallCorrelation(t, 1.0, &rng, options);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->contingency_pairs, 10);
}

TEST(KendallKernelEstimatorTest, RejectsNonFiniteData) {
  data::Table t = MakeCorrelated(100, 3, 0.3, 13);
  t.mutable_column(1)[17] = std::nan("");
  for (const TauKernel kernel : {TauKernel::kRankCache, TauKernel::kLegacy}) {
    KendallEstimatorOptions options;
    options.kernel = kernel;
    options.subsample = false;
    Rng rng(5);
    auto est = EstimateKendallCorrelation(t, 1.0, &rng, options);
    ASSERT_FALSE(est.ok());
    EXPECT_NE(est.status().message().find("non-finite"), std::string::npos);
  }
}

}  // namespace
}  // namespace dpcopula
