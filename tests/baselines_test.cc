#include <gtest/gtest.h>

#include <cmath>

#include "baselines/barak.h"
#include "baselines/dpcube.h"
#include "baselines/filter_priority.h"
#include "baselines/grids.h"
#include "baselines/php.h"
#include "baselines/privelet.h"
#include "baselines/psd.h"
#include "baselines/range_estimator.h"
#include "common/rng.h"
#include "data/generator.h"

namespace dpcopula::baselines {
namespace {

data::Table MakeData(std::size_t n, std::size_t m, Rng* rng,
                     std::int64_t domain = 64) {
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), domain));
  }
  auto corr = data::Equicorrelation(m, 0.3);
  return *data::GenerateGaussianDependent(specs, *corr, n, rng);
}

std::vector<std::int64_t> FullLo(std::size_t m) {
  return std::vector<std::int64_t>(m, 0);
}
std::vector<std::int64_t> FullHi(const data::Table& t) {
  std::vector<std::int64_t> hi(t.num_columns());
  for (std::size_t j = 0; j < hi.size(); ++j) {
    hi[j] = t.schema().attribute(j).domain_size - 1;
  }
  return hi;
}

TEST(TableEstimatorTest, CountsExactly) {
  Rng rng(301);
  data::Table t = MakeData(500, 2, &rng);
  TableEstimator est(t, "exact");
  EXPECT_DOUBLE_EQ(est.EstimateRangeCount(FullLo(2), FullHi(t)), 500.0);
  EXPECT_EQ(est.name(), "exact");
}

TEST(PsdTest, BuildsAndCountsTotal) {
  Rng rng(303);
  data::Table t = MakeData(2000, 2, &rng);
  auto tree = PsdTree::Build(t, 10.0, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT((*tree)->num_nodes(), 1u);
  const double total =
      (*tree)->EstimateRangeCount(FullLo(2), FullHi(t));
  EXPECT_NEAR(total, 2000.0, 50.0);
}

TEST(PsdTest, AccurateOnLargeBudget) {
  Rng rng(305);
  data::Table t = MakeData(5000, 2, &rng);
  auto tree = PsdTree::Build(t, 20.0, &rng);
  ASSERT_TRUE(tree.ok());
  // A handful of half-domain queries should be within a few percent.
  for (int q = 0; q < 5; ++q) {
    std::vector<std::int64_t> lo = {0, 0};
    std::vector<std::int64_t> hi = {31 + q, 63};
    std::vector<double> dlo(lo.begin(), lo.end());
    std::vector<double> dhi(hi.begin(), hi.end());
    const double truth = static_cast<double>(t.RangeCount(dlo, dhi));
    const double est = (*tree)->EstimateRangeCount(lo, hi);
    EXPECT_NEAR(est, truth, std::max(100.0, 0.1 * truth)) << "q=" << q;
  }
}

TEST(PsdTest, DisjointQueryReturnsZero) {
  Rng rng(307);
  data::Table t = MakeData(100, 2, &rng, 8);
  auto tree = PsdTree::Build(t, 1.0, &rng);
  ASSERT_TRUE(tree.ok());
  // Query outside the domain box intersects nothing.
  EXPECT_DOUBLE_EQ((*tree)->EstimateRangeCount({100, 100}, {200, 200}), 0.0);
}

TEST(PsdTest, WorksOnHugeDomainsWithoutHistogram) {
  // The core PSD property: 8 dimensions x domain 1000 (10^24 cells) is
  // impossible for histogram methods but fine for PSD.
  Rng rng(309);
  data::Table t = MakeData(500, 8, &rng, 1000);
  auto tree = PsdTree::Build(t, 1.0, &rng);
  ASSERT_TRUE(tree.ok());
  const double total = (*tree)->EstimateRangeCount(FullLo(8), FullHi(t));
  EXPECT_NEAR(total, 500.0, 200.0);
}

TEST(PsdTest, ValidatesInput) {
  Rng rng(311);
  data::Table t = MakeData(100, 2, &rng);
  EXPECT_FALSE(PsdTree::Build(t, 0.0, &rng).ok());
  PsdOptions opts;
  opts.median_budget_fraction = 1.0;
  EXPECT_FALSE(PsdTree::Build(t, 1.0, &rng, opts).ok());
}

TEST(PsdTest, RespectsDepthOption) {
  Rng rng(313);
  data::Table t = MakeData(1000, 2, &rng);
  PsdOptions opts;
  opts.depth = 3;
  auto tree = PsdTree::Build(t, 1.0, &rng, opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->depth(), 3);
  // A complete binary tree of depth 3 has at most 15 nodes.
  EXPECT_LE((*tree)->num_nodes(), 15u);
}

TEST(PriveletTest, SensitivityFormula) {
  // L = 0: only the scaling coefficient => 1.
  EXPECT_NEAR(PriveletMechanism::HaarL1Sensitivity(1), 1.0, 1e-12);
  // L = 1: 2^{-1/2} + 2^{-1/2} = sqrt(2).
  EXPECT_NEAR(PriveletMechanism::HaarL1Sensitivity(2), std::sqrt(2.0), 1e-12);
  // Monotone growth, bounded by 1/(sqrt(2)-1) + eps.
  double prev = 0.0;
  for (std::size_t n = 1; n <= 1 << 16; n <<= 1) {
    const double d = PriveletMechanism::HaarL1Sensitivity(n);
    EXPECT_GE(d, prev - 1e-12);
    EXPECT_LT(d, 1.0 / (std::sqrt(2.0) - 1.0) + 1.0);
    prev = d;
  }
}

TEST(PriveletTest, UnbiasedAndAccurateAtHighBudget) {
  Rng rng(315);
  data::Table t = MakeData(3000, 2, &rng, 32);
  auto est = PriveletMechanism::Release(t, 20.0, &rng);
  ASSERT_TRUE(est.ok());
  const double total = (*est)->EstimateRangeCount(FullLo(2), FullHi(t));
  EXPECT_NEAR(total, 3000.0, 60.0);
}

TEST(PriveletTest, RangeQueriesSeeSubLinearNoise) {
  // The wavelet property: error of a large range query grows polylog, not
  // linearly, in the range size. Compare against per-cell Laplace (Dwork)
  // noise which grows as sqrt(|range|).
  Rng rng(317);
  data::Table t = MakeData(0, 1, &rng, 1024);  // Empty data: pure noise.
  auto est = PriveletMechanism::Release(t, 1.0, &rng);
  ASSERT_TRUE(est.ok());
  double err_full = 0.0;
  for (int rep = 0; rep < 30; ++rep) {
    Rng rep_rng(static_cast<std::uint64_t>(400 + rep));
    auto rep_est = PriveletMechanism::Release(t, 1.0, &rep_rng);
    ASSERT_TRUE(rep_est.ok());
    err_full +=
        std::fabs((*rep_est)->EstimateRangeCount({0}, {1023}));
  }
  err_full /= 30.0;
  // Dwork noise on 1024 cells: sum of 1024 Lap(1) ~ E|sum| ≈ sqrt(2/pi) *
  // sqrt(2*1024) ≈ 36. Privelet's full-domain query touches only the
  // scaling coefficient chain => error should be far below that.
  EXPECT_LT(err_full, 20.0);
}

TEST(PriveletTest, HugeDomainRejected) {
  Rng rng(319);
  data::Table t = MakeData(10, 4, &rng, 1000);  // 10^12 cells.
  EXPECT_EQ(PsdTree::Build(t, 1.0, &rng).ok(), true);  // PSD fine.
  EXPECT_EQ(PriveletMechanism::Release(t, 1.0, &rng).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(FilterPriorityTest, SummarySizeControlled) {
  Rng rng(321);
  data::Table t = MakeData(2000, 2, &rng, 1000);  // Sparse in 10^6 cells.
  FilterPriorityOptions opts;
  opts.size_factor = 2.0;
  auto fp = FilterPrioritySummary::Build(t, 1.0, &rng, opts);
  ASSERT_TRUE(fp.ok());
  // Summary should be within a small factor of the target, not the domain.
  EXPECT_LT((*fp)->summary_size(), 20000u);
  EXPECT_GT((*fp)->summary_size(), 100u);
  EXPECT_GT((*fp)->threshold(), 0.0);
}

TEST(FilterPriorityTest, TotalCountRoughlyPreservedAtHighBudget) {
  Rng rng(323);
  data::Table t = MakeData(3000, 2, &rng, 100);
  auto fp = FilterPrioritySummary::Build(t, 5.0, &rng);
  ASSERT_TRUE(fp.ok());
  const double total = (*fp)->EstimateRangeCount(FullLo(2), FullHi(t));
  // Thresholding biases the total upward (kept cells) and drops small
  // cells; allow a generous band but require the right order of magnitude.
  EXPECT_GT(total, 1500.0);
  EXPECT_LT(total, 6000.0);
}

TEST(FilterPriorityTest, ValidatesInput) {
  Rng rng(325);
  data::Table t = MakeData(100, 2, &rng);
  EXPECT_FALSE(FilterPrioritySummary::Build(t, 0.0, &rng).ok());
}

TEST(FilterPriorityTest, AllValuesNonNegative) {
  Rng rng(327);
  data::Table t = MakeData(500, 2, &rng, 50);
  auto fp = FilterPrioritySummary::Build(t, 0.5, &rng);
  ASSERT_TRUE(fp.ok());
  // Any sub-range estimate is a sum of non-negative retained cells.
  EXPECT_GE((*fp)->EstimateRangeCount({0, 0}, {10, 10}), 0.0);
}

TEST(PhpTest, ReconstructsTotalMass) {
  Rng rng(329);
  data::Table t = MakeData(2000, 2, &rng, 32);
  auto est = PhpMechanism::Release(t, 5.0, &rng);
  ASSERT_TRUE(est.ok());
  const double total = (*est)->EstimateRangeCount(FullLo(2), FullHi(t));
  EXPECT_NEAR(total, 2000.0, 200.0);
}

TEST(PhpTest, SmoothRegionsWellApproximated) {
  Rng rng(331);
  // Uniform data: a few buckets suffice, so P-HP should do very well.
  std::vector<data::MarginSpec> specs = {data::MarginSpec::Uniform("u", 256)};
  auto t = data::GenerateGaussianDependent(
      specs, linalg::Matrix::Identity(1), 5000, &rng);
  ASSERT_TRUE(t.ok());
  auto est = PhpMechanism::Release(*t, 1.0, &rng);
  ASSERT_TRUE(est.ok());
  const double half = (*est)->EstimateRangeCount({0}, {127});
  EXPECT_NEAR(half, 2500.0, 300.0);
}

TEST(PhpTest, ValidatesInput) {
  Rng rng(333);
  data::Table t = MakeData(100, 2, &rng);
  EXPECT_FALSE(PhpMechanism::Release(t, 0.0, &rng).ok());
  PhpOptions opts;
  opts.structure_budget_fraction = 0.0;
  EXPECT_FALSE(PhpMechanism::Release(t, 1.0, &rng, opts).ok());
}

TEST(PhpTest, HugeDomainRejected) {
  Rng rng(335);
  data::Table t = MakeData(10, 4, &rng, 1000);
  EXPECT_EQ(PhpMechanism::Release(t, 1.0, &rng).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DpCubeTest, ReconstructsTotalMass) {
  Rng rng(341);
  data::Table t = MakeData(2000, 2, &rng, 32);
  auto est = DpCubeMechanism::Release(t, 5.0, &rng);
  ASSERT_TRUE(est.ok());
  const double total = (*est)->EstimateRangeCount(FullLo(2), FullHi(t));
  EXPECT_NEAR(total, 2000.0, 200.0);
}

TEST(DpCubeTest, UniformRegionsCollapseToFewPartitions) {
  Rng rng(343);
  // Uniform data: the split test should stop early, and half-domain
  // queries should be accurate thanks to the phase-2 refresh.
  std::vector<data::MarginSpec> specs = {data::MarginSpec::Uniform("u", 64)};
  auto t = data::GenerateGaussianDependent(
      specs, linalg::Matrix::Identity(1), 4000, &rng);
  ASSERT_TRUE(t.ok());
  auto est = DpCubeMechanism::Release(*t, 1.0, &rng);
  ASSERT_TRUE(est.ok());
  const double half = (*est)->EstimateRangeCount({0}, {31});
  EXPECT_NEAR(half, 2000.0, 300.0);
}

TEST(DpCubeTest, ValidatesInput) {
  Rng rng(347);
  data::Table t = MakeData(100, 2, &rng);
  EXPECT_FALSE(DpCubeMechanism::Release(t, 0.0, &rng).ok());
}

TEST(DpCubeTest, HugeDomainRejected) {
  Rng rng(349);
  data::Table t = MakeData(10, 4, &rng, 1000);
  EXPECT_EQ(DpCubeMechanism::Release(t, 1.0, &rng).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DpCubeTest, ComparableToPsdOn2D) {
  // The paper's claim from [9]: DPCube and PSD are comparable. Check they
  // land within a generous factor of each other on 2-D data.
  Rng rng(353);
  data::Table t = MakeData(4000, 2, &rng, 64);
  double cube_err = 0.0, psd_err = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    auto cube = DpCubeMechanism::Release(t, 1.0, &rng);
    auto psd = PsdTree::Build(t, 1.0, &rng);
    ASSERT_TRUE(cube.ok());
    ASSERT_TRUE(psd.ok());
    for (int q = 0; q < 20; ++q) {
      std::vector<std::int64_t> lo(2), hi(2);
      for (std::size_t j = 0; j < 2; ++j) {
        std::int64_t a = rng.NextInt64InRange(0, 63);
        std::int64_t b = rng.NextInt64InRange(0, 63);
        if (a > b) std::swap(a, b);
        lo[j] = a;
        hi[j] = b;
      }
      std::vector<double> dlo(lo.begin(), lo.end());
      std::vector<double> dhi(hi.begin(), hi.end());
      const double truth = static_cast<double>(t.RangeCount(dlo, dhi));
      cube_err += std::fabs((*cube)->EstimateRangeCount(lo, hi) - truth);
      psd_err += std::fabs((*psd)->EstimateRangeCount(lo, hi) - truth);
    }
  }
  EXPECT_LT(cube_err, 5.0 * psd_err);
  EXPECT_LT(psd_err, 5.0 * cube_err);
}

data::Table BinaryTable(std::size_t m, std::size_t n, Rng* rng) {
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    specs.push_back(data::MarginSpec::Bernoulli(
        "b" + std::to_string(j), 0.3 + 0.05 * static_cast<double>(j)));
  }
  auto corr = data::Equicorrelation(m, 0.3);
  return *data::GenerateGaussianDependent(specs, *corr, n, rng);
}

TEST(BarakTest, WalshHadamardSelfInverseAndParseval) {
  Rng rng(381);
  std::vector<double> x(64);
  for (double& v : x) v = rng.NextGaussian();
  std::vector<double> t = x;
  BarakMechanism::WalshHadamard(&t);
  double ex = 0.0, et = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ex += x[i] * x[i];
    et += t[i] * t[i];
  }
  EXPECT_NEAR(ex, et, 1e-9);
  BarakMechanism::WalshHadamard(&t);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(t[i], x[i], 1e-9);
  }
}

TEST(BarakTest, RetainedCoefficientCount) {
  // C(5,0)+C(5,1)+C(5,2) = 1+5+10.
  EXPECT_EQ(BarakMechanism::NumRetainedCoefficients(5, 2), 16u);
  EXPECT_EQ(BarakMechanism::NumRetainedCoefficients(3, 3), 8u);
  EXPECT_EQ(BarakMechanism::NumRetainedCoefficients(10, 0), 1u);
}

TEST(BarakTest, ValidatesInput) {
  Rng rng(383);
  data::Table binary = BinaryTable(3, 50, &rng);
  EXPECT_FALSE(BarakMechanism::Release(binary, 0.0, &rng).ok());
  data::Table wide = MakeData(50, 2, &rng, 8);  // Non-binary domains.
  EXPECT_FALSE(BarakMechanism::Release(wide, 1.0, &rng).ok());
}

TEST(BarakTest, PreservesLowOrderMarginalsAtHighBudget) {
  Rng rng(387);
  data::Table t = BinaryTable(5, 4000, &rng);
  BarakOptions opts;
  opts.order = 2;
  auto est = BarakMechanism::Release(t, 20.0, &rng, opts);
  ASSERT_TRUE(est.ok());
  // 1-way marginals: P(b_j = 1) must match.
  for (std::size_t j = 0; j < 5; ++j) {
    std::vector<std::int64_t> lo(5, 0), hi(5, 1);
    lo[j] = 1;
    double truth = 0.0;
    for (double v : t.column(j)) truth += v;
    EXPECT_NEAR((*est)->EstimateRangeCount(lo, hi), truth, 150.0)
        << "attr " << j;
  }
  // A 2-way marginal cell.
  std::vector<std::int64_t> lo(5, 0), hi(5, 1);
  lo[0] = 1;
  lo[1] = 1;
  std::vector<double> dlo(lo.begin(), lo.end());
  std::vector<double> dhi(hi.begin(), hi.end());
  const double truth = static_cast<double>(t.RangeCount(dlo, dhi));
  EXPECT_NEAR((*est)->EstimateRangeCount(lo, hi), truth, 200.0);
}

TEST(BarakTest, TotalMassPreserved) {
  Rng rng(389);
  data::Table t = BinaryTable(4, 2000, &rng);
  auto est = BarakMechanism::Release(t, 2.0, &rng);
  ASSERT_TRUE(est.ok());
  const double total = (*est)->EstimateRangeCount(
      std::vector<std::int64_t>(4, 0), std::vector<std::int64_t>(4, 1));
  EXPECT_NEAR(total, 2000.0, 300.0);
}

TEST(UniformGridTest, Requires2D) {
  Rng rng(361);
  data::Table t3 = MakeData(100, 3, &rng);
  EXPECT_FALSE(UniformGrid::Build(t3, 1.0, &rng).ok());
  data::Table t2 = MakeData(100, 2, &rng);
  EXPECT_FALSE(UniformGrid::Build(t2, 0.0, &rng).ok());
}

TEST(UniformGridTest, GranularityGrowsWithDataAndBudget) {
  Rng rng(363);
  data::Table small = MakeData(100, 2, &rng, 1000);
  data::Table large = MakeData(10000, 2, &rng, 1000);
  auto g_small = UniformGrid::Build(small, 1.0, &rng);
  auto g_large = UniformGrid::Build(large, 1.0, &rng);
  ASSERT_TRUE(g_small.ok());
  ASSERT_TRUE(g_large.ok());
  EXPECT_GT((*g_large)->granularity_x(), (*g_small)->granularity_x());
}

TEST(UniformGridTest, TotalMassPreserved) {
  Rng rng(367);
  data::Table t = MakeData(5000, 2, &rng, 256);
  auto grid = UniformGrid::Build(t, 5.0, &rng);
  ASSERT_TRUE(grid.ok());
  const double total = (*grid)->EstimateRangeCount({0, 0}, {255, 255});
  EXPECT_NEAR(total, 5000.0, 300.0);
}

TEST(UniformGridTest, HalfDomainAccurate) {
  Rng rng(369);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Uniform("x", 256),
      data::MarginSpec::Uniform("y", 256)};
  auto t = data::GenerateGaussianDependent(
      specs, linalg::Matrix::Identity(2), 8000, &rng);
  ASSERT_TRUE(t.ok());
  auto grid = UniformGrid::Build(*t, 1.0, &rng);
  ASSERT_TRUE(grid.ok());
  EXPECT_NEAR((*grid)->EstimateRangeCount({0, 0}, {127, 255}), 4000.0,
              400.0);
}

TEST(AdaptiveGridTest, BuildsAndAnswers) {
  Rng rng(371);
  data::Table t = MakeData(5000, 2, &rng, 256);
  auto ag = AdaptiveGrid::Build(t, 2.0, &rng);
  ASSERT_TRUE(ag.ok());
  EXPECT_GT((*ag)->num_level2_regions(), 0u);
  const double total = (*ag)->EstimateRangeCount({0, 0}, {255, 255});
  EXPECT_NEAR(total, 5000.0, 500.0);
}

TEST(AdaptiveGridTest, ValidatesOptions) {
  Rng rng(373);
  data::Table t = MakeData(100, 2, &rng);
  AdaptiveGridOptions opts;
  opts.alpha = 1.0;
  EXPECT_FALSE(AdaptiveGrid::Build(t, 1.0, &rng, opts).ok());
  EXPECT_FALSE(AdaptiveGrid::Build(t, 0.0, &rng).ok());
}

TEST(AdaptiveGridTest, DenseRegionsGetFinerSubgrids) {
  // Clustered data: AG should be at least roughly as accurate as UG on
  // cluster-aligned queries at equal budget (its adaptive refinement is the
  // whole point). Averaged over repetitions.
  Rng rng(379);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("x", 512),
      data::MarginSpec::Gaussian("y", 512)};
  auto t = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.5), 10000, &rng);
  ASSERT_TRUE(t.ok());
  double ug_err = 0.0, ag_err = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    auto ug = UniformGrid::Build(*t, 0.5, &rng);
    auto ag = AdaptiveGrid::Build(*t, 0.5, &rng);
    ASSERT_TRUE(ug.ok());
    ASSERT_TRUE(ag.ok());
    for (int q = 0; q < 40; ++q) {
      std::vector<std::int64_t> lo(2), hi(2);
      for (std::size_t j = 0; j < 2; ++j) {
        std::int64_t a = rng.NextInt64InRange(128, 383);
        std::int64_t b = rng.NextInt64InRange(128, 383);
        if (a > b) std::swap(a, b);
        lo[j] = a;
        hi[j] = b;
      }
      std::vector<double> dlo(lo.begin(), lo.end());
      std::vector<double> dhi(hi.begin(), hi.end());
      const double truth = static_cast<double>(t->RangeCount(dlo, dhi));
      ug_err += std::fabs((*ug)->EstimateRangeCount(lo, hi) - truth);
      ag_err += std::fabs((*ag)->EstimateRangeCount(lo, hi) - truth);
    }
  }
  EXPECT_LT(ag_err, 2.0 * ug_err);  // Comparable or better.
}

class BaselineEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(BaselineEpsilonSweep, AllMechanismsProduceFiniteAnswers) {
  Rng rng(337);
  const double eps = GetParam();
  data::Table t = MakeData(800, 2, &rng, 32);
  auto psd = PsdTree::Build(t, eps, &rng);
  auto pvl = PriveletMechanism::Release(t, eps, &rng);
  auto fp = FilterPrioritySummary::Build(t, eps, &rng);
  auto php = PhpMechanism::Release(t, eps, &rng);
  ASSERT_TRUE(psd.ok());
  ASSERT_TRUE(pvl.ok());
  ASSERT_TRUE(fp.ok());
  ASSERT_TRUE(php.ok());
  const auto lo = FullLo(2);
  const auto hi = FullHi(t);
  EXPECT_TRUE(std::isfinite((*psd)->EstimateRangeCount(lo, hi)));
  EXPECT_TRUE(std::isfinite((*pvl)->EstimateRangeCount(lo, hi)));
  EXPECT_TRUE(std::isfinite((*fp)->EstimateRangeCount(lo, hi)));
  EXPECT_TRUE(std::isfinite((*php)->EstimateRangeCount(lo, hi)));
}

INSTANTIATE_TEST_SUITE_P(Budgets, BaselineEpsilonSweep,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace dpcopula::baselines
