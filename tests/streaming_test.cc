#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "core/streaming.h"
#include "data/generator.h"
#include "stats/kendall.h"

namespace dpcopula::core {
namespace {

data::Table MakeBatch(std::size_t n, double rho, Rng* rng) {
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 100),
      data::MarginSpec::Gaussian("b", 100)};
  auto corr = data::Equicorrelation(2, rho);
  return *data::GenerateGaussianDependent(specs, *corr, n, rng);
}

StreamingSynthesizer::Options HighBudgetOptions() {
  StreamingSynthesizer::Options opts;
  opts.epsilon_per_batch = 10.0;
  return opts;
}

TEST(StreamingTest, ValidatesConstruction) {
  StreamingSynthesizer::Options opts;
  opts.epsilon_per_batch = 0.0;
  StreamingSynthesizer s(data::Schema({{"a", 10}}), opts);
  EXPECT_FALSE(s.Validate().ok());
  opts.epsilon_per_batch = 1.0;
  opts.decay = 1.5;
  StreamingSynthesizer s2(data::Schema({{"a", 10}}), opts);
  EXPECT_FALSE(s2.Validate().ok());
  StreamingSynthesizer s3(data::Schema(), HighBudgetOptions());
  EXPECT_FALSE(s3.Validate().ok());
}

TEST(StreamingTest, RejectsBeforeIngest) {
  Rng rng(701);
  StreamingSynthesizer s(MakeBatch(10, 0.0, &rng).schema(),
                         HighBudgetOptions());
  EXPECT_FALSE(s.CurrentModel().ok());
  EXPECT_FALSE(s.Synthesize(10, &rng).ok());
}

TEST(StreamingTest, RejectsSchemaMismatchAndEmptyBatches) {
  Rng rng(703);
  data::Table batch = MakeBatch(100, 0.3, &rng);
  StreamingSynthesizer s(batch.schema(), HighBudgetOptions());
  data::Table other{data::Schema({{"x", 5}})};
  EXPECT_FALSE(s.Ingest(other, &rng).ok());
  data::Table empty{batch.schema()};
  EXPECT_FALSE(s.Ingest(empty, &rng).ok());
}

TEST(StreamingTest, AccumulatesBatchesAndWeight) {
  Rng rng(705);
  data::Table batch = MakeBatch(1000, 0.5, &rng);
  StreamingSynthesizer s(batch.schema(), HighBudgetOptions());
  ASSERT_TRUE(s.Ingest(batch, &rng).ok());
  EXPECT_EQ(s.num_batches(), 1u);
  const double w1 = s.accumulated_weight();
  EXPECT_NEAR(w1, 1000.0, 100.0);
  ASSERT_TRUE(s.Ingest(MakeBatch(1000, 0.5, &rng), &rng).ok());
  EXPECT_EQ(s.num_batches(), 2u);
  EXPECT_NEAR(s.accumulated_weight(), 2.0 * w1, 250.0);
}

TEST(StreamingTest, ModelReflectsMergedDependence) {
  Rng rng(707);
  data::Table first = MakeBatch(5000, 0.6, &rng);
  StreamingSynthesizer s(first.schema(), HighBudgetOptions());
  ASSERT_TRUE(s.Ingest(first, &rng).ok());
  for (int b = 0; b < 3; ++b) {
    ASSERT_TRUE(s.Ingest(MakeBatch(5000, 0.6, &rng), &rng).ok());
  }
  auto model = s.CurrentModel();
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->correlation(0, 1), 0.6, 0.1);
  auto sample = s.Synthesize(20000, &rng);
  ASSERT_TRUE(sample.ok());
  auto tau = stats::KendallTau(sample->column(0), sample->column(1));
  EXPECT_NEAR(*tau, 2.0 / M_PI * std::asin(0.6), 0.08);
}

TEST(StreamingTest, DecayTracksDistributionDrift) {
  // Distribution flips from rho = +0.7 to rho = -0.7; with aggressive decay
  // the model must follow the new regime.
  Rng rng(709);
  data::Table seed = MakeBatch(4000, 0.7, &rng);
  StreamingSynthesizer::Options opts = HighBudgetOptions();
  opts.decay = 0.2;
  StreamingSynthesizer s(seed.schema(), opts);
  ASSERT_TRUE(s.Ingest(seed, &rng).ok());
  for (int b = 0; b < 4; ++b) {
    ASSERT_TRUE(s.Ingest(MakeBatch(4000, -0.7, &rng), &rng).ok());
  }
  auto model = s.CurrentModel();
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->correlation(0, 1), -0.4);
}

TEST(StreamingTest, NoDecayAveragesRegimes) {
  Rng rng(711);
  data::Table seed = MakeBatch(4000, 0.7, &rng);
  StreamingSynthesizer s(seed.schema(), HighBudgetOptions());
  ASSERT_TRUE(s.Ingest(seed, &rng).ok());
  ASSERT_TRUE(s.Ingest(MakeBatch(4000, -0.7, &rng), &rng).ok());
  auto model = s.CurrentModel();
  ASSERT_TRUE(model.ok());
  // Equal-weight average of +-0.7 lands near zero.
  EXPECT_NEAR(model->correlation(0, 1), 0.0, 0.2);
}

TEST(StreamingTest, SaveRestoreRoundTrip) {
  Rng rng(717);
  data::Table seed = MakeBatch(2000, 0.5, &rng);
  StreamingSynthesizer s(seed.schema(), HighBudgetOptions());
  ASSERT_TRUE(s.Ingest(seed, &rng).ok());
  ASSERT_TRUE(s.Ingest(MakeBatch(2000, 0.5, &rng), &rng).ok());
  const std::string path = "/tmp/dpcopula_stream_state.txt";
  ASSERT_TRUE(s.SaveState(path).ok());

  auto restored =
      StreamingSynthesizer::RestoreState(path, HighBudgetOptions());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_batches(), 2u);
  EXPECT_NEAR(restored->accumulated_weight(), s.accumulated_weight(), 1.0);
  // Restored synthesizer keeps ingesting and sampling.
  ASSERT_TRUE(restored->Ingest(MakeBatch(2000, 0.5, &rng), &rng).ok());
  EXPECT_EQ(restored->num_batches(), 3u);
  auto sample = restored->Synthesize(1000, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(sample->Validate().ok());
  std::remove(path.c_str());
}

TEST(StreamingTest, SaveRequiresIngestedData) {
  Rng rng(719);
  StreamingSynthesizer s(MakeBatch(10, 0.0, &rng).schema(),
                         HighBudgetOptions());
  EXPECT_FALSE(s.SaveState("/tmp/should_not_exist.txt").ok());
  EXPECT_FALSE(StreamingSynthesizer::RestoreState("/nonexistent/x.txt",
                                                  HighBudgetOptions())
                   .ok());
}

// Rewrites the value on the `streaming_weight` line of a saved state file.
void PatchStreamingWeight(const std::string& path, const std::string& value) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  const std::string prefix = "streaming_weight ";
  const std::size_t at = text.find(prefix);
  ASSERT_NE(at, std::string::npos);
  const std::size_t eol = text.find('\n', at);
  text.replace(at + prefix.size(), eol - at - prefix.size(), value);
  std::ofstream out(path, std::ios::binary);
  out << text;
}

TEST(StreamingTest, RestoreRejectsNonFiniteWeight) {
  Rng rng(721);
  data::Table seed = MakeBatch(500, 0.3, &rng);
  StreamingSynthesizer s(seed.schema(), HighBudgetOptions());
  ASSERT_TRUE(s.Ingest(seed, &rng).ok());
  const std::string path = "/tmp/dpcopula_stream_nonfinite.txt";
  ASSERT_TRUE(s.SaveState(path).ok());
  // A NaN weight passes a `weight < 0.0` guard (every comparison with NaN
  // is false) and then poisons every later merge — it must fail at restore.
  for (const char* bad : {"nan", "inf", "-inf", "-1", "bogus"}) {
    PatchStreamingWeight(path, bad);
    auto restored =
        StreamingSynthesizer::RestoreState(path, HighBudgetOptions());
    EXPECT_FALSE(restored.ok()) << "weight=" << bad;
  }
  std::remove(path.c_str());
}

TEST(StreamingTest, HugeRestoredWeightClampsInsteadOfOverflowing) {
  Rng rng(723);
  data::Table seed = MakeBatch(500, 0.3, &rng);
  StreamingSynthesizer s(seed.schema(), HighBudgetOptions());
  ASSERT_TRUE(s.Ingest(seed, &rng).ok());
  const std::string path = "/tmp/dpcopula_stream_huge.txt";
  ASSERT_TRUE(s.SaveState(path).ok());
  // 1e300 is a legal (finite) weight but llround(1e300) is UB; fitted_rows
  // must clamp to the long long range instead.
  PatchStreamingWeight(path, "1e300");
  auto restored =
      StreamingSynthesizer::RestoreState(path, HighBudgetOptions());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->accumulated_weight(), 1e300);
  auto model = restored->CurrentModel();
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->fitted_rows,
            static_cast<std::size_t>(
                std::numeric_limits<long long>::max()));
  // Explicit row counts still sample fine from the clamped model.
  auto sample = restored->Synthesize(50, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_rows(), 50u);
  std::remove(path.c_str());
}

TEST(StreamingTest, ManySmallBatchesStayStable) {
  // Thirty tiny batches: numerical accumulation (decay + weighted merges)
  // must keep the model valid throughout.
  Rng rng(715);
  data::Table seed = MakeBatch(100, 0.4, &rng);
  StreamingSynthesizer::Options opts = HighBudgetOptions();
  opts.decay = 0.9;
  StreamingSynthesizer s(seed.schema(), opts);
  ASSERT_TRUE(s.Ingest(seed, &rng).ok());
  for (int b = 0; b < 29; ++b) {
    ASSERT_TRUE(s.Ingest(MakeBatch(100, 0.4, &rng), &rng).ok());
  }
  EXPECT_EQ(s.num_batches(), 30u);
  auto model = s.CurrentModel();
  ASSERT_TRUE(model.ok());
  auto sample = s.Synthesize(500, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(sample->Validate().ok());
}

TEST(StreamingTest, DefaultSampleUsesAccumulatedCount) {
  Rng rng(713);
  data::Table batch = MakeBatch(800, 0.2, &rng);
  StreamingSynthesizer s(batch.schema(), HighBudgetOptions());
  ASSERT_TRUE(s.Ingest(batch, &rng).ok());
  ASSERT_TRUE(s.Ingest(MakeBatch(1200, 0.2, &rng), &rng).ok());
  auto sample = s.Synthesize(0, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_NEAR(static_cast<double>(sample->num_rows()), 2000.0, 250.0);
}

}  // namespace
}  // namespace dpcopula::core
