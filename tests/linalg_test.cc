#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"
#include "linalg/packed_symmetric.h"
#include "linalg/psd_repair.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dpcopula::linalg {
namespace {

Matrix RandomCorrelation(std::size_t m, Rng* rng) {
  // A^T A normalized to unit diagonal is a valid correlation matrix.
  Matrix a(m + 2, m);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < m; ++j) a(i, j) = rng->NextGaussian();
  Matrix g = a.Transpose() * a;
  Matrix corr(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      corr(i, j) = g(i, j) / std::sqrt(g(i, i) * g(j, j));
  return corr;
}

TEST(MatrixTest, IdentityAndAccessors) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.rows(), 3u);
  EXPECT_EQ(id.cols(), 3u);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, FromRowsAndTranspose) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{4, 3}, {2, 1}});
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.Scaled(2.0)(1, 0), 6.0);
}

TEST(MatrixTest, ApplyVector) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const std::vector<double> y = a.Apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, SymmetryCheckAndSymmetrize) {
  Matrix a = Matrix::FromRows({{1, 2}, {2.5, 1}});
  EXPECT_FALSE(a.IsSymmetric(1e-9));
  Symmetrize(&a);
  EXPECT_TRUE(a.IsSymmetric(1e-12));
  EXPECT_DOUBLE_EQ(a(0, 1), 2.25);
}

TEST(CholeskyTest, KnownDecomposition) {
  // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto l = CholeskyDecompose(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR((*l)(0, 1), 0.0, 1e-12);
}

TEST(CholeskyTest, ReconstructsInput) {
  Rng rng(31);
  for (std::size_t m : {2u, 4u, 8u, 16u}) {
    Matrix corr = RandomCorrelation(m, &rng);
    auto l = CholeskyDecompose(corr);
    ASSERT_TRUE(l.ok());
    Matrix rebuilt = (*l) * l->Transpose();
    EXPECT_LT(rebuilt.MaxAbsDiff(corr), 1e-10) << "m=" << m;
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {2.0, 1.0}});  // Eigenvalues 3, -1.
  EXPECT_FALSE(CholeskyDecompose(a).ok());
  EXPECT_FALSE(IsPositiveDefinite(a));
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(CholeskyDecompose(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, SolveRoundTrip) {
  Rng rng(37);
  Matrix corr = RandomCorrelation(5, &rng);
  auto l = CholeskyDecompose(corr);
  ASSERT_TRUE(l.ok());
  std::vector<double> x_true = {1.0, -2.0, 0.5, 3.0, -1.0};
  std::vector<double> b = corr.Apply(x_true);
  auto x = CholeskySolve(*l, b);
  ASSERT_TRUE(x.ok());
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
  }
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Rng rng(41);
  Matrix corr = RandomCorrelation(6, &rng);
  auto l = CholeskyDecompose(corr);
  ASSERT_TRUE(l.ok());
  auto inv = CholeskyInverse(*l);
  ASSERT_TRUE(inv.ok());
  Matrix prod = corr * (*inv);
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(6)), 1e-9);
}

TEST(CholeskyTest, LogDetMatchesDiagonalProduct) {
  Matrix a = Matrix::FromRows({{4, 0}, {0, 9}});
  auto l = CholeskyDecompose(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(CholeskyLogDet(*l), std::log(36.0), 1e-12);
}

TEST(EigenSymTest, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  auto ed = EigenSym(a);
  ASSERT_TRUE(ed.ok());
  EXPECT_NEAR(ed->values[0], 3.0, 1e-12);
  EXPECT_NEAR(ed->values[1], 1.0, 1e-12);
}

TEST(EigenSymTest, KnownEigenvalues) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  auto ed = EigenSym(a);
  ASSERT_TRUE(ed.ok());
  EXPECT_NEAR(ed->values[0], 3.0, 1e-10);
  EXPECT_NEAR(ed->values[1], 1.0, 1e-10);
}

TEST(EigenSymTest, ReconstructionAndOrthogonality) {
  Rng rng(43);
  Matrix corr = RandomCorrelation(8, &rng);
  auto ed = EigenSym(corr);
  ASSERT_TRUE(ed.ok());
  EXPECT_LT(EigenReconstruct(*ed).MaxAbsDiff(corr), 1e-9);
  Matrix vtv = ed->vectors.Transpose() * ed->vectors;
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(8)), 1e-9);
}

TEST(EigenSymTest, ValuesSortedDescending) {
  Rng rng(47);
  Matrix corr = RandomCorrelation(10, &rng);
  auto ed = EigenSym(corr);
  ASSERT_TRUE(ed.ok());
  for (std::size_t i = 1; i < ed->values.size(); ++i) {
    EXPECT_GE(ed->values[i - 1], ed->values[i]);
  }
}

TEST(EigenSymTest, RejectsAsymmetric) {
  Matrix a = Matrix::FromRows({{1, 2}, {0, 1}});
  EXPECT_FALSE(EigenSym(a).ok());
}

TEST(PsdRepairTest, IndefiniteBecomesValidCorrelation) {
  // Strongly inconsistent correlations: not PSD.
  Matrix a = Matrix::FromRows({
      {1.0, 0.9, -0.9},
      {0.9, 1.0, 0.9},
      {-0.9, 0.9, 1.0},
  });
  ASSERT_FALSE(IsPositiveDefinite(a));
  auto repaired = RepairToCorrelation(a);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(IsPositiveDefinite(*repaired));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*repaired)(i, i), 1.0, 1e-12);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_LE(std::fabs((*repaired)(i, j)), 1.0 + 1e-12);
    }
  }
}

TEST(PsdRepairTest, AlreadyValidPassesThrough) {
  Matrix a = Matrix::FromRows({{1.0, 0.5}, {0.5, 1.0}});
  auto out = EnsureCorrelationMatrix(a);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->MaxAbsDiff(a), 1e-12);
}

TEST(PsdRepairTest, RepairedStaysCloseToInput) {
  // Mildly indefinite: repair should perturb entries only modestly.
  Matrix a = Matrix::FromRows({
      {1.0, 0.7, 0.7},
      {0.7, 1.0, -0.3},
      {0.7, -0.3, 1.0},
  });
  auto out = EnsureCorrelationMatrix(a);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->MaxAbsDiff(a), 0.35);
}

TEST(PsdRepairTest, AbsVariantAlsoValid) {
  Matrix a = Matrix::FromRows({
      {1.0, 0.9, -0.9},
      {0.9, 1.0, 0.9},
      {-0.9, 0.9, 1.0},
  });
  PsdRepairOptions opts;
  opts.use_abs = true;
  auto out = RepairToCorrelation(a, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(IsPositiveDefinite(*out));
}

class CholeskyRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRandomTest, SolveResidualsNearZero) {
  Rng rng(static_cast<std::uint64_t>(900 + GetParam()));
  const std::size_t m = 2 + static_cast<std::size_t>(GetParam()) % 12;
  Matrix corr = RandomCorrelation(m, &rng);
  auto l = CholeskyDecompose(corr);
  ASSERT_TRUE(l.ok());
  std::vector<double> b(m);
  for (double& v : b) v = rng.NextGaussian();
  auto x = CholeskySolve(*l, b);
  ASSERT_TRUE(x.ok());
  const std::vector<double> back = corr.Apply(*x);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(back[i], b[i], 1e-8) << "m=" << m << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyRandomTest, ::testing::Range(0, 12));

TEST(CholeskyTest, NearSingularStillFactorizes) {
  // Correlation 1 - 1e-8: barely PD; the factorization must not blow up.
  Matrix a = Matrix::FromRows({{1.0, 1.0 - 1e-8}, {1.0 - 1e-8, 1.0}});
  auto l = CholeskyDecompose(a);
  ASSERT_TRUE(l.ok());
  Matrix rebuilt = (*l) * l->Transpose();
  EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-12);
}

TEST(CholeskyTest, ExactlySingularRejected) {
  Matrix a = Matrix::FromRows({{1.0, 1.0}, {1.0, 1.0}});
  EXPECT_FALSE(CholeskyDecompose(a).ok());
}

class EigenSymRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenSymRandomTest, TraceAndFrobeniusInvariants) {
  Rng rng(static_cast<std::uint64_t>(950 + GetParam()));
  const std::size_t m = 2 + static_cast<std::size_t>(GetParam()) % 14;
  Matrix corr = RandomCorrelation(m, &rng);
  auto ed = EigenSym(corr);
  ASSERT_TRUE(ed.ok());
  // Trace = sum of eigenvalues = m (unit diagonal).
  double sum = 0.0, sum_sq = 0.0;
  for (double v : ed->values) {
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum, static_cast<double>(m), 1e-9);
  // Frobenius norm^2 = sum of squared eigenvalues.
  double frob = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) frob += corr(i, j) * corr(i, j);
  }
  EXPECT_NEAR(sum_sq, frob, 1e-8);
  // A correlation matrix is PSD: all eigenvalues >= -tolerance.
  EXPECT_GT(ed->values.back(), -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymRandomTest, ::testing::Range(0, 10));

TEST(EigenSymTest, RankOneMatrix) {
  // vv^T with v = (1,2,3): eigenvalues {14, 0, 0}.
  Matrix a = Matrix::FromRows({{1, 2, 3}, {2, 4, 6}, {3, 6, 9}});
  auto ed = EigenSym(a);
  ASSERT_TRUE(ed.ok());
  EXPECT_NEAR(ed->values[0], 14.0, 1e-9);
  EXPECT_NEAR(ed->values[1], 0.0, 1e-9);
  EXPECT_NEAR(ed->values[2], 0.0, 1e-9);
}

class PsdRepairRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PsdRepairRandomTest, RandomNoisyMatricesAlwaysRepairable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 6;
  Matrix a(m, m);
  // Random symmetric matrix with entries in [-1, 1] and unit diagonal —
  // exactly what a very noisy Kendall estimate looks like.
  for (std::size_t i = 0; i < m; ++i) {
    a(i, i) = 1.0;
    for (std::size_t j = i + 1; j < m; ++j) {
      const double v = 2.0 * rng.NextDouble() - 1.0;
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  auto out = EnsureCorrelationMatrix(a);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(IsPositiveDefinite(*out));
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR((*out)(i, i), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsdRepairRandomTest,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// PR 9 bugfix regressions.

// EigenSym's convergence test used to compare the off-diagonal norm to an
// *absolute* 1e-13: for badly scaled input the round-off floor sits at
// eps * ||A||_F and the absolute target is unreachable, so the solver
// burned the whole sweep budget and failed spuriously. The tolerance is
// now relative to ||A||_F.
TEST(EigenSymTest, RelativeToleranceConvergesAtM200LargeScale) {
  Rng rng(0x5ca1ab1e);
  const std::size_t m = 200;
  const Matrix scaled = RandomCorrelation(m, &rng).Scaled(1e8);
  auto ed = EigenSym(scaled, /*max_sweeps=*/64);  // Legacy Jacobi overload.
  ASSERT_TRUE(ed.ok()) << ed.status().message();
  // Reconstruction error small relative to the 1e8 scale.
  EXPECT_LT(EigenReconstruct(*ed).MaxAbsDiff(scaled), 1e-4);
  // The production kernel handles the same input.
  auto ql = EigenSym(scaled);
  ASSERT_TRUE(ql.ok()) << ql.status().message();
  for (std::size_t k = 0; k < m; ++k) {
    EXPECT_NEAR(ql->values[k], ed->values[k], 1e-4) << "k=" << k;
  }
}

// CholeskySolve/CholeskyInverse used to divide by l(i, i) unguarded: a bad
// factor silently yielded inf/NaN instead of a data-independent error.
TEST(CholeskyTest, SolveRejectsNonSquareFactor) {
  Matrix l(2, 3);
  auto x = CholeskySolve(l, {1.0, 2.0});
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, SolveRejectsZeroPivot) {
  Matrix l = Matrix::FromRows({{1.0, 0.0}, {0.5, 0.0}});
  auto x = CholeskySolve(l, {1.0, 2.0});
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
  // Data-independent message: the pivot index is structural, the value
  // never appears.
  EXPECT_NE(x.status().message().find("pivot (index 1)"), std::string::npos);
  EXPECT_EQ(x.status().message().find("0.5"), std::string::npos);
}

TEST(CholeskyTest, SolveRejectsNonFinitePivot) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf}) {
    Matrix l = Matrix::FromRows({{bad, 0.0}, {0.5, 1.0}});
    auto x = CholeskySolve(l, {1.0, 2.0});
    ASSERT_FALSE(x.ok());
    EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
  }
}

TEST(CholeskyTest, InverseRejectsNonSquareAndBadPivot) {
  Matrix rect(2, 3);
  EXPECT_EQ(CholeskyInverse(rect).status().code(),
            StatusCode::kInvalidArgument);
  Matrix l = Matrix::FromRows({{1.0, 0.0}, {0.5, 0.0}});
  auto inv = CholeskyInverse(l);
  ASSERT_FALSE(inv.ok());
  EXPECT_EQ(inv.status().code(), StatusCode::kNumericalError);
}

// NormalizeToCorrelation used to map a non-positive reconstructed diagonal
// to divisor 1.0, leaving that row/column unscaled so the [-1, 1] clamp
// silently distorted correlations. It now fails closed (counted in
// linalg.psd_normalize_failures).
TEST(PsdRepairTest, NonPositiveDiagonalAfterLiftFailsClosed) {
  obs::ObsConfig config;
  config.metrics = true;
  obs::SetObsConfig(config);
  static obs::Counter* const failures =
      obs::MetricsRegistry::Global().GetCounter(
          "linalg.psd_normalize_failures");
  // diag(1, 1, -1) with the negative eigenvalue lifted to exactly 0
  // reconstructs to diag(1, 1, 0): a structurally degenerate row the old
  // normalization silently "fixed" into an identity block.
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  a(2, 2) = -1.0;
  PsdRepairOptions options;
  options.min_eigenvalue = 0.0;
  for (const EigenKernel kernel :
       {EigenKernel::kTridiagQL, EigenKernel::kJacobi}) {
    options.eigen_kernel = kernel;
    const std::int64_t before = failures->Value();
    auto repaired = RepairToCorrelation(a, options);
    ASSERT_FALSE(repaired.ok());
    EXPECT_EQ(repaired.status().code(), StatusCode::kNumericalError);
    EXPECT_NE(repaired.status().message().find("non-positive diagonal"),
              std::string::npos);
    if (DPCOPULA_OBS_ENABLED != 0) {
      EXPECT_EQ(failures->Value(), before + 1);
    }
  }
  obs::SetObsConfig(obs::ObsConfig{});
}

// With the default min_eigenvalue the same input must still repair fine —
// the fail-closed path is strictly a breakdown detector.
TEST(PsdRepairTest, DefaultLiftStillRepairsNegativeDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  a(2, 2) = -1.0;
  auto repaired = RepairToCorrelation(a);
  ASSERT_TRUE(repaired.ok()) << repaired.status().message();
  EXPECT_TRUE(IsPositiveDefinite(*repaired));
}

// ---------------------------------------------------------------------------
// PackedSymmetric: the estimators' accumulation layout.

TEST(PackedSymmetricTest, RoundTripsAndMirrorsReads) {
  Rng rng(77);
  const Matrix a = RandomCorrelation(7, &rng);
  PackedSymmetric packed = PackedSymmetric::FromLowerTriangleOf(a);
  EXPECT_EQ(packed.dim(), 7u);
  EXPECT_EQ(packed.data().size(), 7u * 8u / 2u);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_EQ(packed(i, j), a(i, j)) << i << "," << j;
    }
  }
  EXPECT_EQ(packed.ToMatrix().MaxAbsDiff(a), 0.0);
}

TEST(PackedSymmetricTest, AddAndScaleMatchDense) {
  Rng rng(78);
  const Matrix a = RandomCorrelation(6, &rng);
  const Matrix b = RandomCorrelation(6, &rng);
  PackedSymmetric acc = PackedSymmetric::FromLowerTriangleOf(a);
  acc.AddInPlace(PackedSymmetric::FromLowerTriangleOf(b));
  acc.ScaleInPlace(0.5);
  Matrix dense = a;
  dense.AddInPlace(b);
  dense = dense.Scaled(0.5);
  EXPECT_EQ(acc.ToMatrix().MaxAbsDiff(dense), 0.0);
}

TEST(PackedSymmetricTest, AtWritesLowerTriangle) {
  PackedSymmetric p(3);
  p.at(0, 0) = 1.0;
  p.at(1, 1) = 1.0;
  p.at(2, 2) = 1.0;
  p.at(2, 0) = 0.25;
  EXPECT_EQ(p(0, 2), 0.25);
  EXPECT_EQ(p(2, 0), 0.25);
  EXPECT_EQ(p(1, 0), 0.0);
}

}  // namespace
}  // namespace dpcopula::linalg
