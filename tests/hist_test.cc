#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "data/generator.h"
#include "hist/dct.h"
#include "hist/histogram.h"
#include "hist/summed_area.h"
#include "hist/wavelet.h"

namespace dpcopula::hist {
namespace {

TEST(HistogramTest, CreateAndAccess) {
  auto h = Histogram::Create({3, 4});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_cells(), 12u);
  h->Set({1, 2}, 5.0);
  EXPECT_DOUBLE_EQ(h->At({1, 2}), 5.0);
  h->Add({1, 2}, 2.0);
  EXPECT_DOUBLE_EQ(h->At({1, 2}), 7.0);
  EXPECT_DOUBLE_EQ(h->Total(), 7.0);
}

TEST(HistogramTest, CellBudgetEnforced) {
  auto h = Histogram::Create({100000, 100000, 100000});
  EXPECT_EQ(h.status().code(), StatusCode::kResourceExhausted);
}

TEST(HistogramTest, RejectsBadDims) {
  EXPECT_FALSE(Histogram::Create({}).ok());
  EXPECT_FALSE(Histogram::Create({0}).ok());
  EXPECT_FALSE(Histogram::Create({3, -1}).ok());
}

TEST(HistogramTest, FromTableCounts) {
  data::Table t(data::Schema({{"a", 3}, {"b", 2}}));
  ASSERT_TRUE(t.AppendRow({0, 0}).ok());
  ASSERT_TRUE(t.AppendRow({0, 0}).ok());
  ASSERT_TRUE(t.AppendRow({2, 1}).ok());
  auto h = Histogram::FromTable(t);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->At({0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(h->At({2, 1}), 1.0);
  EXPECT_DOUBLE_EQ(h->Total(), 3.0);
}

TEST(HistogramTest, FromColumn) {
  data::Table t(data::Schema({{"a", 4}}));
  ASSERT_TRUE(t.AppendRow({1}).ok());
  ASSERT_TRUE(t.AppendRow({1}).ok());
  ASSERT_TRUE(t.AppendRow({3}).ok());
  auto h = Histogram::FromColumn(t, 0);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->data()[1], 2.0);
  EXPECT_DOUBLE_EQ(h->data()[3], 1.0);
  EXPECT_FALSE(Histogram::FromColumn(t, 5).ok());
}

TEST(HistogramTest, RangeSum1D) {
  auto h = Histogram::Create({5});
  ASSERT_TRUE(h.ok());
  for (std::int64_t i = 0; i < 5; ++i) h->Set({i}, static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h->RangeSum({1}, {3}), 6.0);
  EXPECT_DOUBLE_EQ(h->RangeSum({0}, {4}), 10.0);
  EXPECT_DOUBLE_EQ(h->RangeSum({3}, {1}), 0.0);   // Empty range.
  EXPECT_DOUBLE_EQ(h->RangeSum({-5}, {99}), 10.0);  // Clamped.
}

TEST(HistogramTest, ClampNonNegative) {
  auto h = Histogram::Create({3});
  ASSERT_TRUE(h.ok());
  h->mutable_data() = {-1.0, 2.0, -0.5};
  h->ClampNonNegative();
  EXPECT_DOUBLE_EQ(h->data()[0], 0.0);
  EXPECT_DOUBLE_EQ(h->data()[1], 2.0);
  EXPECT_DOUBLE_EQ(h->data()[2], 0.0);
}

class HistogramRangeSumPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramRangeSumPropertyTest, MatchesTableBruteForce) {
  Rng rng(static_cast<std::uint64_t>(2000 + GetParam()));
  const std::size_t m = 1 + static_cast<std::size_t>(GetParam()) % 4;
  std::vector<data::Attribute> attrs;
  std::vector<std::int64_t> dims;
  for (std::size_t j = 0; j < m; ++j) {
    const std::int64_t d = 2 + static_cast<std::int64_t>(rng.NextUint64Below(9));
    attrs.push_back({"a" + std::to_string(j), d});
    dims.push_back(d);
  }
  data::Table t{data::Schema(attrs)};
  for (int r = 0; r < 300; ++r) {
    std::vector<double> row(m);
    for (std::size_t j = 0; j < m; ++j) {
      row[j] = static_cast<double>(
          rng.NextUint64Below(static_cast<std::uint64_t>(dims[j])));
    }
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  auto h = Histogram::FromTable(t);
  ASSERT_TRUE(h.ok());
  for (int q = 0; q < 50; ++q) {
    std::vector<std::int64_t> lo(m), hi(m);
    std::vector<double> dlo(m), dhi(m);
    for (std::size_t j = 0; j < m; ++j) {
      std::int64_t a = rng.NextInt64InRange(0, dims[j] - 1);
      std::int64_t b = rng.NextInt64InRange(0, dims[j] - 1);
      if (a > b) std::swap(a, b);
      lo[j] = a;
      hi[j] = b;
      dlo[j] = static_cast<double>(a);
      dhi[j] = static_cast<double>(b);
    }
    EXPECT_DOUBLE_EQ(h->RangeSum(lo, hi),
                     static_cast<double>(t.RangeCount(dlo, dhi)))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, HistogramRangeSumPropertyTest,
                         ::testing::Range(0, 12));

TEST(SummedAreaTest, MatchesHistogram1D) {
  auto h = Histogram::Create({6});
  ASSERT_TRUE(h.ok());
  for (std::int64_t i = 0; i < 6; ++i) h->Set({i}, static_cast<double>(i));
  auto sat = SummedAreaTable::Build(*h);
  ASSERT_TRUE(sat.ok());
  EXPECT_DOUBLE_EQ(sat->RangeSum({1}, {3}), 6.0);
  EXPECT_DOUBLE_EQ(sat->RangeSum({0}, {5}), 15.0);
  EXPECT_DOUBLE_EQ(sat->RangeSum({4}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(sat->RangeSum({-4}, {100}), 15.0);  // Clamped.
}

class SummedAreaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SummedAreaPropertyTest, MatchesRangeSumExactly) {
  Rng rng(static_cast<std::uint64_t>(6000 + GetParam()));
  const std::size_t m = 1 + static_cast<std::size_t>(GetParam()) % 4;
  std::vector<std::int64_t> dims;
  for (std::size_t j = 0; j < m; ++j) {
    dims.push_back(2 + static_cast<std::int64_t>(rng.NextUint64Below(9)));
  }
  auto h = Histogram::Create(dims);
  ASSERT_TRUE(h.ok());
  for (double& v : h->mutable_data()) v = rng.NextGaussian();
  auto sat = SummedAreaTable::Build(*h);
  ASSERT_TRUE(sat.ok());
  for (int q = 0; q < 60; ++q) {
    std::vector<std::int64_t> lo(m), hi(m);
    for (std::size_t j = 0; j < m; ++j) {
      std::int64_t a = rng.NextInt64InRange(0, dims[j] - 1);
      std::int64_t b = rng.NextInt64InRange(0, dims[j] - 1);
      if (a > b) std::swap(a, b);
      lo[j] = a;
      hi[j] = b;
    }
    EXPECT_NEAR(sat->RangeSum(lo, hi), h->RangeSum(lo, hi), 1e-9)
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, SummedAreaPropertyTest,
                         ::testing::Range(0, 12));

TEST(SummedAreaTest, EmptyHistogramRejected) {
  Histogram h;
  EXPECT_FALSE(SummedAreaTable::Build(h).ok());
}

TEST(WaveletTest, ForwardInverseRoundTripPowerOfTwo) {
  const std::vector<double> x = {4, 6, 10, 12, 8, 6, 5, 5};
  const auto coeffs = ForwardHaar(x);
  ASSERT_EQ(coeffs.size(), 8u);
  const auto back = InverseHaar(coeffs);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-12);
  }
}

TEST(WaveletTest, PadsToPowerOfTwo) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const auto coeffs = ForwardHaar(x);
  EXPECT_EQ(coeffs.size(), 8u);
  const auto back = InverseHaar(coeffs);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-12);
  for (std::size_t i = x.size(); i < 8; ++i) EXPECT_NEAR(back[i], 0.0, 1e-12);
}

TEST(WaveletTest, OrthonormalParseval) {
  Rng rng(29);
  std::vector<double> x(64);
  for (double& v : x) v = rng.NextGaussian();
  const auto coeffs = ForwardHaar(x);
  const double ex = std::inner_product(x.begin(), x.end(), x.begin(), 0.0);
  const double ec =
      std::inner_product(coeffs.begin(), coeffs.end(), coeffs.begin(), 0.0);
  EXPECT_NEAR(ex, ec, 1e-9);
}

TEST(WaveletTest, ScalingCoefficientIsScaledMean) {
  const std::vector<double> x(16, 3.0);
  const auto coeffs = ForwardHaar(x);
  EXPECT_NEAR(coeffs[0], 3.0 * std::sqrt(16.0), 1e-12);
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    EXPECT_NEAR(coeffs[i], 0.0, 1e-12);
  }
}

TEST(WaveletTest, LevelsAndCoefficientLevels) {
  EXPECT_EQ(HaarLevels(8), 3);
  EXPECT_EQ(HaarLevels(1), 0);
  EXPECT_EQ(HaarCoefficientLevel(0), 0);
  EXPECT_EQ(HaarCoefficientLevel(1), 1);
  EXPECT_EQ(HaarCoefficientLevel(2), 2);
  EXPECT_EQ(HaarCoefficientLevel(3), 2);
  EXPECT_EQ(HaarCoefficientLevel(4), 3);
  EXPECT_EQ(HaarCoefficientLevel(7), 3);
}

TEST(WaveletTest, MultiDimRoundTrip) {
  Rng rng(31);
  auto h = Histogram::Create({5, 7, 3});
  ASSERT_TRUE(h.ok());
  for (double& v : h->mutable_data()) v = rng.NextDouble() * 10.0;
  auto coeffs = ForwardHaarMultiDim(*h);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_EQ(coeffs->dims()[0], 8);
  EXPECT_EQ(coeffs->dims()[1], 8);
  EXPECT_EQ(coeffs->dims()[2], 4);
  auto back = InverseHaarMultiDim(*coeffs, h->dims());
  ASSERT_TRUE(back.ok());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < h->data().size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(h->data()[i] - back->data()[i]));
  }
  EXPECT_LT(max_diff, 1e-10);
}

TEST(WaveletTest, SelectiveAxesRoundTrip) {
  Rng rng(33);
  auto h = Histogram::Create({6, 2, 9});
  ASSERT_TRUE(h.ok());
  for (double& v : h->mutable_data()) v = rng.NextGaussian();
  const std::vector<bool> mask = {true, false, true};
  auto coeffs = ForwardHaarMultiDim(*h, mask);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_EQ(coeffs->dims()[0], 8);  // Padded.
  EXPECT_EQ(coeffs->dims()[1], 2);  // Untouched (identity axis).
  EXPECT_EQ(coeffs->dims()[2], 16);
  auto back = InverseHaarMultiDim(*coeffs, h->dims(), mask);
  ASSERT_TRUE(back.ok());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < h->data().size(); ++i) {
    max_diff =
        std::max(max_diff, std::fabs(h->data()[i] - back->data()[i]));
  }
  EXPECT_LT(max_diff, 1e-10);
}

TEST(WaveletTest, SelectiveAxesMaskValidation) {
  auto h = Histogram::Create({4, 4});
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(ForwardHaarMultiDim(*h, {true}).ok());
  EXPECT_FALSE(InverseHaarMultiDim(*h, {4, 4}, {true}).ok());
}

TEST(DctTest, RoundTrip) {
  Rng rng(37);
  for (std::size_t n : {1u, 2u, 5u, 16u, 97u}) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.NextGaussian();
    const auto back = InverseDct(ForwardDct(x));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], x[i], 1e-10) << "n=" << n << " i=" << i;
    }
  }
}

TEST(DctTest, OrthonormalParseval) {
  Rng rng(41);
  std::vector<double> x(50);
  for (double& v : x) v = rng.NextGaussian();
  const auto c = ForwardDct(x);
  const double ex = std::inner_product(x.begin(), x.end(), x.begin(), 0.0);
  const double ec = std::inner_product(c.begin(), c.end(), c.begin(), 0.0);
  EXPECT_NEAR(ex, ec, 1e-9);
}

TEST(DctTest, ConstantSignalCompactsToDc) {
  const std::vector<double> x(10, 2.0);
  const auto c = ForwardDct(x);
  EXPECT_NEAR(c[0], 2.0 * std::sqrt(10.0), 1e-12);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_NEAR(c[i], 0.0, 1e-12);
}

TEST(DctTest, Linearity) {
  Rng rng(43);
  std::vector<double> x(40), y(40), z(40);
  for (std::size_t i = 0; i < 40; ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextGaussian();
    z[i] = 2.0 * x[i] - 3.0 * y[i];
  }
  const auto cx = ForwardDct(x);
  const auto cy = ForwardDct(y);
  const auto cz = ForwardDct(z);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(cz[i], 2.0 * cx[i] - 3.0 * cy[i], 1e-10);
  }
}

TEST(WaveletTest, NoiseInCoefficientDomainMapsToBoundedCellNoise) {
  // Orthonormality: unit-variance noise on every coefficient inverts to
  // unit-variance noise on every cell (Parseval both ways) — the property
  // Privelet's calibration relies on.
  Rng rng(47);
  const std::size_t n = 256;
  std::vector<double> coeff_noise(n);
  for (double& v : coeff_noise) v = rng.NextGaussian();
  const auto cell_noise = InverseHaar(coeff_noise);
  double energy_in = 0.0, energy_out = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    energy_in += coeff_noise[i] * coeff_noise[i];
    energy_out += cell_noise[i] * cell_noise[i];
  }
  EXPECT_NEAR(energy_in, energy_out, 1e-8);
}

TEST(DctTest, SmoothSignalEnergyCompaction) {
  // A smooth ramp should concentrate nearly all energy in few coefficients.
  std::vector<double> x(128);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
  }
  const auto c = ForwardDct(x);
  const double total =
      std::inner_product(c.begin(), c.end(), c.begin(), 0.0);
  double head = 0.0;
  for (std::size_t i = 0; i < 8; ++i) head += c[i] * c[i];
  EXPECT_GT(head / total, 0.99);
}

}  // namespace
}  // namespace dpcopula::hist
