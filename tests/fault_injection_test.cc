// Fault-injection suite: sweeps every compiled-in fail point and asserts
// the fail-closed contract — each injected fault either recovers with an
// explicit, recorded accuracy downgrade or errors out with nothing
// released; recovered output is bit-identical at every thread count under
// the same fault schedule; and the charged==epsilon release gate holds on
// every recovered path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/result.h"
#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "core/dpcopula.h"
#include "core/hybrid.h"
#include "core/model_io.h"
#include "core/streaming.h"
#include "data/csv.h"
#include "data/generator.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/psd_repair.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dpcopula {
namespace {

using failpoint::Mode;
using failpoint::Registry;
using failpoint::Spec;

[[maybe_unused]] data::Table MakeSynthetic(std::size_t n, std::size_t m, double rho, Rng* rng,
                          std::int64_t domain = 50) {
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), domain));
  }
  auto corr = data::Equicorrelation(m, rho);
  return *data::GenerateGaussianDependent(specs, *corr, n, rng);
}

[[maybe_unused]] bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

[[maybe_unused]] std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

[[maybe_unused]] void ExpectTablesIdentical(const data::Table& x, const data::Table& y) {
  ASSERT_EQ(x.num_rows(), y.num_rows());
  ASSERT_EQ(x.num_columns(), y.num_columns());
  for (std::size_t j = 0; j < x.num_columns(); ++j) {
    EXPECT_EQ(x.column(j), y.column(j)) << "column " << j;
  }
}

[[maybe_unused]] void ExpectMatricesIdentical(const linalg::Matrix& a,
                             const linalg::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

[[maybe_unused]] std::int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

// Degradation counters only count when the obs layer is compiled in; with
// -DDPCOPULA_OBS=OFF every counter reads 0 and the delta assertions below
// must not fire (the recovery behavior itself is still asserted).
constexpr bool kCountersLive = DPCOPULA_OBS_ENABLED != 0;

// Every test arms sites, so the fixture guarantees a clean slate (and
// metrics, which the degradation counters need) on both sides.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ObsConfig config;
    config.metrics = true;
    obs::SetObsConfig(config);
    Registry::Global().DisarmAll();
  }
  void TearDown() override {
    Registry::Global().DisarmAll();
    obs::SetObsConfig(obs::ObsConfig{});
  }
};

// ---------------------------------------------------------------------------
// Registry / trigger unit tests (valid with or without compiled-in sites).

TEST(FailpointSpecTest, ParsesAllForms) {
  Spec spec;
  EXPECT_TRUE(failpoint::ParseSpec("off", &spec));
  EXPECT_EQ(spec.mode, Mode::kOff);
  EXPECT_TRUE(failpoint::ParseSpec("always", &spec));
  EXPECT_EQ(spec.mode, Mode::kAlways);
  EXPECT_TRUE(failpoint::ParseSpec("once", &spec));
  EXPECT_EQ(spec.mode, Mode::kOnce);
  EXPECT_TRUE(failpoint::ParseSpec("1in4", &spec));
  EXPECT_EQ(spec.mode, Mode::kOneIn);
  EXPECT_EQ(spec.param, 4u);
  EXPECT_TRUE(failpoint::ParseSpec("after17", &spec));
  EXPECT_EQ(spec.mode, Mode::kAfterN);
  EXPECT_EQ(spec.param, 17u);

  EXPECT_FALSE(failpoint::ParseSpec("", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("sometimes", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("1in0", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("1in", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("after", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("afterx", &spec));
}

TEST_F(FaultInjectionTest, DeterministicTriggers) {
  failpoint::FailPoint* site = Registry::Global().GetSite("test.trigger");
  EXPECT_FALSE(site->armed());
  EXPECT_FALSE(site->EvaluateAt(0));

  Registry::Global().Arm("test.trigger", Spec{Mode::kOnce, 0});
  EXPECT_TRUE(site->EvaluateAt(0));
  EXPECT_FALSE(site->EvaluateAt(1));
  EXPECT_TRUE(site->EvaluateAt(0));  // Index-based, not sticky.

  Registry::Global().Arm("test.trigger", Spec{Mode::kOneIn, 3});
  EXPECT_TRUE(site->EvaluateAt(0));
  EXPECT_FALSE(site->EvaluateAt(1));
  EXPECT_FALSE(site->EvaluateAt(2));
  EXPECT_TRUE(site->EvaluateAt(3));

  Registry::Global().Arm("test.trigger", Spec{Mode::kAfterN, 2});
  EXPECT_FALSE(site->EvaluateAt(1));
  EXPECT_TRUE(site->EvaluateAt(2));
  EXPECT_TRUE(site->EvaluateAt(100));

  EXPECT_GT(site->fired_count(), 0u);
  Registry::Global().Disarm("test.trigger");
  EXPECT_FALSE(site->armed());
  EXPECT_FALSE(site->EvaluateAt(0));
}

TEST_F(FaultInjectionTest, ArmedGateAndArmedSites) {
  EXPECT_FALSE(failpoint::internal::AnyArmed());
  ASSERT_TRUE(Registry::Global().Arm("test.gate", "always").ok());
  EXPECT_TRUE(failpoint::internal::AnyArmed());
  const auto armed = Registry::Global().ArmedSites();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "test.gate"), armed.end());
  Registry::Global().DisarmAll();
  EXPECT_FALSE(failpoint::internal::AnyArmed());
}

TEST_F(FaultInjectionTest, ArmRejectsBadSpecStrings) {
  EXPECT_FALSE(Registry::Global().Arm("test.bad", "flaky").ok());
  EXPECT_FALSE(failpoint::internal::AnyArmed());
}

TEST_F(FaultInjectionTest, ArmFromEnvParsesEntryList) {
  ASSERT_TRUE(Registry::Global()
                  .ArmFromEnv("test.env.a=once,test.env.b=1in5")
                  .ok());
  EXPECT_TRUE(Registry::Global().GetSite("test.env.a")->armed());
  EXPECT_TRUE(Registry::Global().GetSite("test.env.b")->armed());
  // Bad entries are skipped (reported on stderr), good ones still arm.
  EXPECT_FALSE(
      Registry::Global().ArmFromEnv("bogus;test.env.c=always").ok());
  EXPECT_TRUE(Registry::Global().GetSite("test.env.c")->armed());
}

#if DPCOPULA_FAILPOINTS_ENABLED

TEST_F(FaultInjectionTest, ScopedContextDrivesImplicitIndex) {
  ASSERT_TRUE(Registry::Global().Arm("test.ctx", "1in2").ok());
  failpoint::FailPoint* site = Registry::Global().GetSite("test.ctx");
  {
    failpoint::ScopedContext ctx(4);  // 4 % 2 == 0 -> fires.
    EXPECT_TRUE(site->Evaluate());
    {
      failpoint::ScopedContext inner(3);  // Innermost wins; 3 % 2 != 0.
      EXPECT_FALSE(site->Evaluate());
    }
    EXPECT_TRUE(site->Evaluate());  // Back to 4.
  }
}

// ---------------------------------------------------------------------------
// Per-site scenarios. Together these exercise every name in KnownSites()
// (the coverage test at the bottom enforces that).

TEST_F(FaultInjectionTest, CsvReadOpenFailsClosed) {
  const std::string path = "/tmp/dpc_fault_csv_open.csv";
  Rng rng(11);
  data::Table t = MakeSynthetic(20, 2, 0.0, &rng);
  ASSERT_TRUE(data::WriteCsv(t, path).ok());
  ASSERT_TRUE(Registry::Global().Arm("csv.read.open", "always").ok());
  auto read = data::ReadCsv(path);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("csv.read.open"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, CsvRowInjectionQuarantinedWhenTolerant) {
  const std::string path = "/tmp/dpc_fault_csv_row.csv";
  Rng rng(12);
  data::Table t = MakeSynthetic(10, 2, 0.0, &rng);
  ASSERT_TRUE(data::WriteCsv(t, path).ok());
  ASSERT_TRUE(Registry::Global().Arm("csv.read.row", "1in5").ok());

  // Strict: the first injected row (index 0) fails the read.
  EXPECT_FALSE(data::ReadCsv(path).ok());

  // Tolerant: rows 0 and 5 are quarantined and counted as injected.
  data::ReadCsvOptions options;
  options.max_bad_rows = 2;
  auto read = data::ReadCsvTolerant(path, options);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->stats.bad_rows, 2u);
  EXPECT_EQ(read->stats.bad_injected, 2u);
  EXPECT_EQ(read->stats.rows_kept, 8u);
  EXPECT_EQ(read->table.num_rows(), 8u);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, AtomicWriteFaultLeavesNoArtifacts) {
  const std::string path = "/tmp/dpc_fault_atomic_write.csv";
  std::remove(path.c_str());
  Rng rng(13);
  data::Table t = MakeSynthetic(5, 2, 0.0, &rng);
  ASSERT_TRUE(Registry::Global().Arm("atomicio.write", "always").ok());
  Status s = data::WriteCsv(t, path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("atomicio.write"), std::string::npos);
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FaultInjectionTest, RenameFaultPreservesOldFile) {
  // A crash between writing the tmp and renaming it must leave the existing
  // target byte-for-byte intact (and the durable tmp behind for forensics).
  const std::string path = "/tmp/dpc_fault_atomic_rename.txt";
  core::DpCopulaModel model;
  model.schema = data::Schema({{"a", 3}, {"b", 3}});
  model.marginal_counts = {{1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}};
  model.correlation = linalg::Matrix::Identity(2);
  model.fitted_rows = 6;
  ASSERT_TRUE(core::SaveModel(model, path).ok());
  const std::string original = ReadFile(path);
  ASSERT_FALSE(original.empty());

  model.fitted_rows = 999;
  ASSERT_TRUE(Registry::Global().Arm("atomicio.rename", "always").ok());
  Status s = core::SaveModel(model, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(ReadFile(path), original);
  EXPECT_TRUE(FileExists(path + ".tmp"));

  // After the fault clears, the save lands and round-trips.
  Registry::Global().DisarmAll();
  ASSERT_TRUE(core::SaveModel(model, path).ok());
  auto loaded = core::LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fitted_rows, 999u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(FaultInjectionTest, ModelLoadOpenFailsClosed) {
  const std::string path = "/tmp/dpc_fault_model_load.txt";
  core::DpCopulaModel model;
  model.schema = data::Schema({{"a", 2}, {"b", 2}});
  model.marginal_counts = {{1.0, 1.0}, {1.0, 1.0}};
  model.correlation = linalg::Matrix::Identity(2);
  model.fitted_rows = 2;
  ASSERT_TRUE(core::SaveModel(model, path).ok());
  ASSERT_TRUE(Registry::Global().Arm("model.load.open", "always").ok());
  auto loaded = core::LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("model.load.open"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, CholeskyInjectionFailsClosed) {
  ASSERT_TRUE(Registry::Global().Arm("linalg.cholesky", "always").ok());
  auto chol = linalg::CholeskyDecompose(linalg::Matrix::Identity(3));
  ASSERT_FALSE(chol.ok());
  EXPECT_NE(chol.status().message().find("linalg.cholesky"),
            std::string::npos);
}

TEST_F(FaultInjectionTest, PsdRepairInjectionFailsClosed) {
  ASSERT_TRUE(Registry::Global().Arm("linalg.psd_repair", "always").ok());
  linalg::Matrix bad(2, 2);
  bad(0, 0) = bad(1, 1) = 1.0;
  bad(0, 1) = bad(1, 0) = 1.2;  // Not a valid correlation -> repair path.
  auto repaired = linalg::EnsureCorrelationMatrix(bad);
  ASSERT_FALSE(repaired.ok());
}

TEST_F(FaultInjectionTest, EigenRetryRecoversFromOneNonConvergence) {
  // Recovery policy: one EigenSym non-convergence inside PSD repair retries
  // with diagonal shrinkage. Armed "once", the first call fails and the
  // retry succeeds; armed "always", the repair fails closed.
  linalg::Matrix bad(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) bad(i, j) = (i == j) ? 1.0 : 0.95;
  }
  bad(0, 1) = bad(1, 0) = 1.1;  // Off-manifold: forces the eigen repair.
  const std::int64_t retries_before = CounterValue("linalg.eigen_retries");

  ASSERT_TRUE(
      Registry::Global().Arm("linalg.eigen.converge", "once").ok());
  auto repaired = linalg::EnsureCorrelationMatrix(bad);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_TRUE(linalg::IsPositiveDefinite(*repaired));
  if (kCountersLive) {
    EXPECT_EQ(CounterValue("linalg.eigen_retries"), retries_before + 1);
  }

  Registry::Global().DisarmAll();
  ASSERT_TRUE(
      Registry::Global().Arm("linalg.eigen.converge", "always").ok());
  auto failed = linalg::EnsureCorrelationMatrix(bad);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kNumericalError);
}

TEST_F(FaultInjectionTest, MleAveragesSurvivingPartitions) {
  Rng data_rng(21);
  data::Table t = MakeSynthetic(400, 3, 0.4, &data_rng);
  copula::MleEstimatorOptions options;
  options.num_partitions = 8;

  // Fault on partitions 0 and 4; policy admits up to 2 failures.
  ASSERT_TRUE(Registry::Global().Arm("mle.partition_fit", "1in4").ok());
  options.max_failed_partitions = 2;
  const std::int64_t failures_before =
      CounterValue("mle.partition_fit_failures");
  Rng rng_a(22);
  auto est = copula::EstimateMleCorrelation(t, 2.0, &rng_a, options);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_EQ(est->failed_partitions, 2);
  if (kCountersLive) {
    EXPECT_EQ(CounterValue("mle.partition_fit_failures"),
              failures_before + 2);
  }
  // Scale reflects the 6 survivors, not the 8 partitions: a *larger* noise
  // scale, never a smaller one (that would be a privacy bug).
  const double num_pairs = 3.0;
  EXPECT_DOUBLE_EQ(est->laplace_scale, num_pairs * 2.0 / (6.0 * 2.0));

  // Tighter policy: the same schedule now exceeds the budget -> fail closed.
  options.max_failed_partitions = 1;
  Rng rng_b(22);
  EXPECT_FALSE(copula::EstimateMleCorrelation(t, 2.0, &rng_b, options).ok());
}

TEST_F(FaultInjectionTest, MleRecoveryIsThreadCountInvariant) {
  Rng data_rng(23);
  data::Table t = MakeSynthetic(400, 3, 0.4, &data_rng);
  ASSERT_TRUE(Registry::Global().Arm("mle.partition_fit", "1in3").ok());
  copula::MleEstimatorOptions options;
  options.num_partitions = 9;
  options.max_failed_partitions = 3;
  std::vector<linalg::Matrix> results;
  for (int threads : {1, 2, 8}) {
    options.num_threads = threads;
    Rng rng(24);
    auto est = copula::EstimateMleCorrelation(t, 2.0, &rng, options);
    ASSERT_TRUE(est.ok()) << "threads=" << threads;
    EXPECT_EQ(est->failed_partitions, 3) << "threads=" << threads;
    results.push_back(est->correlation);
  }
  ExpectMatricesIdentical(results[0], results[1]);
  ExpectMatricesIdentical(results[0], results[2]);
}

TEST_F(FaultInjectionTest, SynthesizeDegradesCorrelationWhenAllowed) {
  Rng data_rng(31);
  data::Table t = MakeSynthetic(300, 3, 0.5, &data_rng);
  core::DpCopulaOptions options;
  options.epsilon = 2.0;
  ASSERT_TRUE(
      Registry::Global().Arm("core.correlation_estimate", "always").ok());

  // Default: fail closed, nothing released.
  Rng rng_a(32);
  auto failed = core::Synthesize(t, options, &rng_a);
  ASSERT_FALSE(failed.ok());

  // Opted in: independent-margins fallback with the downgrade recorded and
  // the full budget still consumed (charged, never refunded).
  options.allow_degraded_correlation = true;
  const std::int64_t degraded_before =
      CounterValue("core.degraded_correlations");
  Rng rng_b(32);
  auto res = core::Synthesize(t, options, &rng_b);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->correlation_degraded);
  ExpectMatricesIdentical(res->correlation, linalg::Matrix::Identity(3));
  EXPECT_NEAR(res->budget.spent(), options.epsilon, 1e-9);
  EXPECT_EQ(res->synthetic.num_rows(), t.num_rows());
  if (kCountersLive) {
    EXPECT_EQ(CounterValue("core.degraded_correlations"),
              degraded_before + 1);
  }
}

TEST_F(FaultInjectionTest, HybridPartitionFaultFailsClosed) {
  Rng data_rng(41);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Bernoulli("s", 0.5),
      data::MarginSpec::Gaussian("x", 50),
      data::MarginSpec::Gaussian("y", 50)};
  auto corr = data::Equicorrelation(3, 0.3);
  data::Table t = *data::GenerateGaussianDependent(specs, *corr, 400,
                                                   &data_rng);
  ASSERT_TRUE(
      Registry::Global().Arm("hybrid.partition.synthesize", "once").ok());
  core::HybridOptions options;
  options.epsilon = 2.0;
  Rng rng(42);
  auto res = core::SynthesizeHybrid(t, options, &rng);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().message().find("hybrid.partition.synthesize"),
            std::string::npos);
}

TEST_F(FaultInjectionTest, HybridDegradedPartitionsAreCountedAndIdentical) {
  Rng data_rng(43);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Bernoulli("s", 0.5),
      data::MarginSpec::Gaussian("x", 50),
      data::MarginSpec::Gaussian("y", 50)};
  auto corr = data::Equicorrelation(3, 0.3);
  data::Table t = *data::GenerateGaussianDependent(specs, *corr, 400,
                                                   &data_rng);
  // Degrade the correlation estimate in even-indexed partitions only. The
  // ScopedContext keys the generic site to the partition index, so the same
  // partitions degrade at every thread count.
  ASSERT_TRUE(
      Registry::Global().Arm("core.correlation_estimate", "1in2").ok());
  std::vector<data::Table> outputs;
  std::int64_t degraded = -1;
  for (int threads : {1, 4}) {
    core::HybridOptions options;
    options.epsilon = 2.0;
    options.num_threads = threads;
    Rng rng(44);
    auto res = core::SynthesizeHybrid(t, options, &rng);
    ASSERT_TRUE(res.ok()) << "threads=" << threads << ": "
                          << res.status().ToString();
    EXPECT_GT(res->degraded_partitions, 0) << "threads=" << threads;
    EXPECT_NEAR(res->budget.spent(), options.epsilon, 1e-9);
    if (degraded < 0) {
      degraded = res->degraded_partitions;
    } else {
      EXPECT_EQ(res->degraded_partitions, degraded);
    }
    outputs.push_back(std::move(res->synthetic));
  }
  ExpectTablesIdentical(outputs[0], outputs[1]);
}

TEST_F(FaultInjectionTest, KendallPairFaultPropagatesFirstFailure) {
  Rng data_rng(91);
  data::Table t = MakeSynthetic(200, 4, 0.3, &data_rng);  // C(4,2) = 6 pairs.
  // Pairs 0 and 3 fail. The estimator must surface the lowest-index pair's
  // status — with the fail-point site name, never the old generic
  // "pairwise Kendall computation failed" — and the propagated status must
  // be identical at every thread count.
  ASSERT_TRUE(Registry::Global().Arm("kendall.pair_tau", "1in3").ok());
  copula::KendallEstimatorOptions options;
  options.subsample = false;
  std::string first_message;
  for (int threads : {1, 2, 8}) {
    options.num_threads = threads;
    Rng rng(92);
    auto est = copula::EstimateKendallCorrelation(t, 1.0, &rng, options);
    ASSERT_FALSE(est.ok()) << "threads=" << threads;
    EXPECT_NE(est.status().message().find("kendall.pair_tau"),
              std::string::npos)
        << est.status().ToString();
    if (first_message.empty()) {
      first_message = est.status().message();
    } else {
      EXPECT_EQ(est.status().message(), first_message)
          << "threads=" << threads;
    }
  }
  // The legacy kernel runs the same pair loop and propagates identically.
  options.kernel = stats::TauKernel::kLegacy;
  options.num_threads = 1;
  Rng rng(93);
  auto est = copula::EstimateKendallCorrelation(t, 1.0, &rng, options);
  ASSERT_FALSE(est.ok());
  EXPECT_EQ(est.status().message(), first_message);
}

TEST_F(FaultInjectionTest, SamplerRowFaultFailsClosed) {
  Rng data_rng(51);
  data::Table t = MakeSynthetic(300, 2, 0.4, &data_rng);
  ASSERT_TRUE(Registry::Global().Arm("sampler.row", "after50").ok());
  core::DpCopulaOptions options;
  options.epsilon = 2.0;
  Rng rng(52);
  auto res = core::Synthesize(t, options, &rng);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().message().find("sampler.row"), std::string::npos);
}

TEST_F(FaultInjectionTest, DispatchFaultFallsBackSequentially) {
  Rng data_rng(61);
  // > 2 * kSamplerShardRows so the sampler actually produces multiple
  // shards; a single shard takes the inline path before the dispatch site.
  data::Table t = MakeSynthetic(10000, 2, 0.4, &data_rng);
  core::DpCopulaOptions options;
  options.epsilon = 2.0;
  options.num_threads = 8;

  Rng rng_a(62);
  auto healthy = core::Synthesize(t, options, &rng_a);
  ASSERT_TRUE(healthy.ok());

  ASSERT_TRUE(Registry::Global().Arm("parallel.dispatch", "always").ok());
  const std::int64_t fallbacks_before =
      CounterValue("parallel.dispatch_fallbacks");
  Rng rng_b(62);
  auto degraded = core::Synthesize(t, options, &rng_b);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  if (kCountersLive) {
    EXPECT_GT(CounterValue("parallel.dispatch_fallbacks"), fallbacks_before);
  }
  // The fallback only loses parallel wall-clock; output bytes are the same.
  ExpectTablesIdentical(healthy->synthetic, degraded->synthetic);
}

TEST_F(FaultInjectionTest, StreamingRejectsPoisonedBatchWithoutCorruption) {
  Rng rng(71);
  data::Table batch = MakeSynthetic(500, 2, 0.4, &rng, 100);
  core::StreamingSynthesizer::Options options;
  options.epsilon_per_batch = 10.0;
  core::StreamingSynthesizer s(batch.schema(), options);
  ASSERT_TRUE(s.Ingest(batch, &rng).ok());
  auto before = s.CurrentModel();
  ASSERT_TRUE(before.ok());
  const double weight_before = s.accumulated_weight();

  // Batch index 1 is poisoned; the merge rejects it, the accumulated model
  // is untouched, and later batches still land.
  ASSERT_TRUE(
      Registry::Global().Arm("streaming.ingest.merge", "after1").ok());
  const std::int64_t rejected_before =
      CounterValue("streaming.batches_rejected");
  Status poisoned = s.Ingest(MakeSynthetic(500, 2, 0.4, &rng, 100), &rng);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_NE(poisoned.message().find("streaming.ingest.merge"),
            std::string::npos);
  if (kCountersLive) {
    EXPECT_EQ(CounterValue("streaming.batches_rejected"),
              rejected_before + 1);
  }
  EXPECT_EQ(s.num_batches(), 1u);
  EXPECT_EQ(s.accumulated_weight(), weight_before);
  auto after = s.CurrentModel();
  ASSERT_TRUE(after.ok());
  ExpectMatricesIdentical(before->correlation, after->correlation);

  Registry::Global().DisarmAll();
  ASSERT_TRUE(s.Ingest(MakeSynthetic(500, 2, 0.4, &rng, 100), &rng).ok());
  EXPECT_EQ(s.num_batches(), 2u);
}

TEST_F(FaultInjectionTest, StreamingRejectsBatchWhoseFitFails) {
  Rng rng(73);
  data::Table batch = MakeSynthetic(500, 2, 0.4, &rng, 100);
  core::StreamingSynthesizer::Options options;
  options.epsilon_per_batch = 10.0;
  core::StreamingSynthesizer s(batch.schema(), options);
  ASSERT_TRUE(s.Ingest(batch, &rng).ok());
  // Poison the *fit* (not the merge): the inner Synthesize fails before any
  // state is staged.
  ASSERT_TRUE(
      Registry::Global().Arm("core.correlation_estimate", "always").ok());
  EXPECT_FALSE(s.Ingest(MakeSynthetic(500, 2, 0.4, &rng, 100), &rng).ok());
  EXPECT_EQ(s.num_batches(), 1u);
}

// ---------------------------------------------------------------------------
// serve.*: the serving daemon's failure sites. Accept-path faults drop the
// connection before any request is read; reload faults keep the previous
// model version serving; sample faults answer ERR 500 and leave the
// connection (and the next request) healthy.

serve::ServerOptions LoopbackOptions() {
  serve::ServerOptions options;
  options.num_workers = 1;
  return options;
}

std::string SaveServeModel(const char* name) {
  Rng rng(4242);
  data::Table table = MakeSynthetic(400, 2, 0.4, &rng);
  core::DpCopulaOptions opts;
  opts.epsilon = 5.0;
  auto res = core::Synthesize(table, opts, &rng);
  core::DpCopulaModel model =
      core::ModelFromSynthesis(table.schema(), *res);
  const std::string path =
      std::string("/tmp/dpcopula_fault_serve_") + name + ".model";
  EXPECT_TRUE(core::SaveModel(model, path).ok());
  return path;
}

// Minimal blocking loopback client (line protocol; csv multi-line reads).
class ServeClient {
 public:
  explicit ServeClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ServeClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }
  std::string Roundtrip(const std::string& request) {
    const std::string out = request + "\n";
    if (::send(fd_, out.data(), out.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(out.size())) {
      return "";
    }
    std::string line;
    if (!ReadLine(&line)) return "";
    std::string response = line + "\n";
    if (line.rfind("OK SAMPLE", 0) == 0 &&
        line.find(" csv") != std::string::npos) {
      while (ReadLine(&line)) {
        response += line + "\n";
        if (line == "END") break;
      }
    }
    return response;
  }

 private:
  bool ReadLine(std::string* line) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }
  int fd_ = -1;
  std::string buffer_;
};

TEST_F(FaultInjectionTest, ServeAcceptFaultDropsConnectionThenRecovers) {
  const std::string path = SaveServeModel("accept");
  auto created = serve::Server::Create(LoopbackOptions());
  ASSERT_TRUE(created.ok());
  auto server = created.MoveValueUnsafe();
  ASSERT_TRUE(server->AddModel("m", path).ok());
  ASSERT_TRUE(Registry::Global().Arm("serve.accept", "once").ok());
  // The faulted accept closes the connection before reading anything: the
  // client observes EOF, never a hang or a partial response.
  ServeClient dropped(server->port());
  ASSERT_TRUE(dropped.connected());
  EXPECT_EQ(dropped.Roundtrip("PING"), "");
  // "once" has fired; the next connection is served normally.
  ServeClient healthy(server->port());
  ASSERT_TRUE(healthy.connected());
  EXPECT_EQ(healthy.Roundtrip("PING"), "OK PONG\n");
  EXPECT_GE(server->GetStats().errors, 1u);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ServeReloadFaultKeepsOldModelServing) {
  const std::string path = SaveServeModel("reload");
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", path).ok());
  auto before = registry.Get("m");
  ASSERT_TRUE(before.ok());
  const std::size_t old_rows = (*before)->model.fitted_rows;

  // Publish a changed file, then fail every reload attempt.
  auto changed = core::LoadModel(path);
  ASSERT_TRUE(changed.ok());
  changed->fitted_rows = old_rows + 111;
  ASSERT_TRUE(core::SaveModel(*changed, path).ok());
  ASSERT_TRUE(Registry::Global().Arm("serve.model_reload", "always").ok());

  // The explicit reload surfaces the injected fault...
  auto forced = registry.CheckReload("m");
  ASSERT_FALSE(forced.ok());
  EXPECT_NE(forced.status().message().find("serve.model_reload"),
            std::string::npos);
  // ...while the serving path degrades to the previous version instead of
  // failing: availability beats freshness.
  auto during = registry.Get("m");
  ASSERT_TRUE(during.ok());
  EXPECT_EQ((*during)->model.fitted_rows, old_rows);

  Registry::Global().DisarmAll();
  auto reloaded = registry.CheckReload("m");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(*reloaded);
  auto after = registry.Get("m");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->model.fitted_rows, old_rows + 111);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ServeSampleFaultAnswers500AndConnectionSurvives) {
  const std::string path = SaveServeModel("sample");
  auto created = serve::Server::Create(LoopbackOptions());
  ASSERT_TRUE(created.ok());
  auto server = created.MoveValueUnsafe();
  ASSERT_TRUE(server->AddModel("m", path).ok());
  ASSERT_TRUE(Registry::Global().Arm("serve.sample", "once").ok());
  ServeClient client(server->port());
  ASSERT_TRUE(client.connected());
  const std::string faulted = client.Roundtrip("SAMPLE m t 0 16 1");
  EXPECT_EQ(faulted.rfind("ERR 500", 0), 0u) << faulted;
  EXPECT_NE(faulted.find("serve.sample"), std::string::npos) << faulted;
  // Same connection, next request: served normally, fully formed.
  const std::string healthy = client.Roundtrip("SAMPLE m t 0 16 1");
  EXPECT_EQ(healthy.rfind("OK SAMPLE 16 2 csv", 0), 0u) << healthy;
  EXPECT_NE(healthy.find("END\n"), std::string::npos);
  EXPECT_EQ(server->GetStats().errors, 1u);
  EXPECT_EQ(server->GetStats().samples_ok, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Whole-pipeline determinism under a multi-site fault schedule.

TEST_F(FaultInjectionTest, FaultScheduleIsThreadCountInvariant) {
  Rng data_rng(81);
  data::Table t = MakeSynthetic(600, 3, 0.4, &data_rng);
  ASSERT_TRUE(Registry::Global().Arm("mle.partition_fit", "1in4").ok());
  std::vector<data::Table> outputs;
  for (int threads : {1, 2, 8}) {
    core::DpCopulaOptions options;
    options.epsilon = 2.0;
    options.estimator = core::CorrelationEstimator::kMle;
    options.mle.num_partitions = 8;
    options.mle.max_failed_partitions = 4;
    options.num_threads = threads;
    Rng rng(82);
    auto res = core::Synthesize(t, options, &rng);
    ASSERT_TRUE(res.ok()) << "threads=" << threads << ": "
                          << res.status().ToString();
    EXPECT_EQ(res->partitions_failed, 2) << "threads=" << threads;
    EXPECT_NEAR(res->budget.spent(), options.epsilon, 1e-9);
    outputs.push_back(std::move(res->synthetic));
  }
  ExpectTablesIdentical(outputs[0], outputs[1]);
  ExpectTablesIdentical(outputs[0], outputs[2]);
}

// ---------------------------------------------------------------------------
// Coverage: the scenarios above must sweep every compiled-in site. Adding a
// DPC_FAILPOINT site (and its KnownSites() entry) without a scenario here
// fails this test.

TEST_F(FaultInjectionTest, SuiteSweepsEveryKnownSite) {
  std::vector<std::string> exercised = {
      "atomicio.rename",      "atomicio.write",
      "core.correlation_estimate", "csv.read.open",
      "csv.read.row",         "hybrid.partition.synthesize",
      "kendall.pair_tau",     "linalg.cholesky",
      "linalg.eigen.converge",
      "linalg.psd_repair",    "mle.partition_fit",
      "model.load.open",      "parallel.dispatch",
      "sampler.row",          "serve.accept",
      "serve.model_reload",   "serve.sample",
      "streaming.ingest.merge",
  };
  std::vector<std::string> known = failpoint::KnownSites();
  std::sort(exercised.begin(), exercised.end());
  std::sort(known.begin(), known.end());
  EXPECT_EQ(exercised, known);
}

#endif  // DPCOPULA_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// Existing-but-unexercised failure paths (no injection needed).

TEST(NaturalFailures, CholeskyRejectsNonPositiveDefinite) {
  linalg::Matrix a(2, 2);
  a(0, 0) = a(1, 1) = 1.0;
  a(0, 1) = a(1, 0) = 2.0;  // |rho| > 1: not PD.
  auto chol = linalg::CholeskyDecompose(a);
  ASSERT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kNumericalError);
  EXPECT_FALSE(linalg::IsPositiveDefinite(a));
}

TEST(NaturalFailures, CholeskyErrorIsDataIndependent) {
  // Two non-PD matrices with very different cell values must produce the
  // same error text: positions may leak, values must not.
  linalg::Matrix a(2, 2);
  a(0, 0) = a(1, 1) = 1.0;
  a(0, 1) = a(1, 0) = 2.0;
  linalg::Matrix b(2, 2);
  b(0, 0) = b(1, 1) = 1.0;
  b(0, 1) = b(1, 0) = 7031.5;
  const auto ra = linalg::CholeskyDecompose(a);
  const auto rb = linalg::CholeskyDecompose(b);
  ASSERT_FALSE(ra.ok());
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(ra.status().message(), rb.status().message());
}

TEST(NaturalFailures, EigenSymReportsSweepExhaustion) {
  linalg::Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = (i == j) ? 2.0 : 0.5;
  }
  auto ed = linalg::EigenSym(a, /*max_sweeps=*/0);
  ASSERT_FALSE(ed.ok());
  EXPECT_EQ(ed.status().code(), StatusCode::kNumericalError);
  // And the message is structural only (sweep count, no matrix entries).
  linalg::Matrix b = a;
  b(0, 1) = b(1, 0) = 0.123;
  auto eb = linalg::EigenSym(b, /*max_sweeps=*/0);
  ASSERT_FALSE(eb.ok());
  EXPECT_EQ(ed.status().message(), eb.status().message());
}

TEST(NaturalFailures, TolerantCsvCountsEveryDefectKind) {
  const std::string path = "/tmp/dpc_fault_csv_defects.csv";
  {
    std::ofstream out(path);
    out << "a,b\n"
        << "0,1\n"     // OK.
        << "2\n"       // Too few cells (line 3).
        << "3,4,5\n"   // Too many cells.
        << "x,1\n"     // Non-numeric.
        << "inf,1\n"   // Non-finite.
        << "4,2\n";    // OK.
  }
  data::ReadCsvOptions options;
  options.max_bad_rows = 4;
  auto read = data::ReadCsvTolerant(path, options);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->stats.rows_kept, 2u);
  EXPECT_EQ(read->stats.bad_rows, 4u);
  EXPECT_EQ(read->stats.bad_too_few_cells, 1u);
  EXPECT_EQ(read->stats.bad_too_many_cells, 1u);
  EXPECT_EQ(read->stats.bad_non_numeric, 1u);
  EXPECT_EQ(read->stats.bad_non_finite, 1u);
  EXPECT_EQ(read->stats.first_bad_line, 3u);

  // One fewer allowance and the read fails closed (with the line number of
  // the defect that crossed the limit, never its contents).
  options.max_bad_rows = 3;
  auto refused = data::ReadCsvTolerant(path, options);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("max_bad_rows"),
            std::string::npos);

  // Strict reader behavior is unchanged: first malformed row fails.
  EXPECT_FALSE(data::ReadCsv(path).ok());
  std::remove(path.c_str());
}

using ResultDeathTest = FaultInjectionTest;

TEST(ResultDeathTest, ValueAccessOnErrorAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Result<int> r(Status::Internal("boom"));
        (void)r.ValueOrDie();
      },
      "ValueOrDie on error");
}

TEST(ResultDeathTest, ConstructionFromOkStatusAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH({ Result<int> r{Status::OK()}; }, "OK status");
}

}  // namespace
}  // namespace dpcopula
