#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/empirical_cdf.h"
#include "stats/normal.h"

namespace dpcopula::stats {
namespace {

TEST(NormalTest, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.96), 0.024997895148220435, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalTest, InverseCdfKnownValues) {
  EXPECT_NEAR(NormalInverseCdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalInverseCdf(0.8413447460685429), 1.0, 1e-9);
  EXPECT_NEAR(NormalInverseCdf(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalInverseCdf(0.025), -1.959963984540054, 1e-9);
}

TEST(NormalTest, InverseCdfEdgeCases) {
  EXPECT_TRUE(std::isinf(NormalInverseCdf(0.0)));
  EXPECT_LT(NormalInverseCdf(0.0), 0.0);
  EXPECT_TRUE(std::isinf(NormalInverseCdf(1.0)));
  EXPECT_GT(NormalInverseCdf(1.0), 0.0);
  EXPECT_TRUE(std::isnan(NormalInverseCdf(-0.1)));
  EXPECT_TRUE(std::isnan(NormalInverseCdf(1.1)));
}

class NormalRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(NormalRoundTripTest, InverseCdfIsTrueInverse) {
  const double p = GetParam();
  EXPECT_NEAR(NormalCdf(NormalInverseCdf(p)), p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Probabilities, NormalRoundTripTest,
    ::testing::Values(1e-10, 1e-6, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9,
                      0.99, 0.999, 1.0 - 1e-6, 1.0 - 1e-10));

TEST(DistributionsTest, LaplaceMomentsAndCdf) {
  Rng rng(101);
  const double scale = 2.5;
  const int n = 200000;
  double sum = 0.0, sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = SampleLaplace(&rng, scale);
    sum += x;
    sum_abs += std::fabs(x);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);           // Mean 0.
  EXPECT_NEAR(sum_abs / n, scale, 0.05);     // E|X| = b.
  EXPECT_NEAR(LaplaceCdf(0.0, scale), 0.5, 1e-15);
  EXPECT_NEAR(LaplaceCdf(scale, scale), 1.0 - 0.5 / M_E, 1e-12);
}

TEST(DistributionsTest, ExponentialMean) {
  Rng rng(103);
  const double rate = 0.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += SampleExponential(&rng, rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
  EXPECT_NEAR(ExponentialCdf(2.0, 0.5), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(DistributionsTest, GammaMomentsLargeShape) {
  Rng rng(107);
  const double shape = 3.0, scale = 2.0;
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = SampleGamma(&rng, shape, scale);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape * scale, 0.1);
  EXPECT_NEAR(sum_sq / n - mean * mean, shape * scale * scale, 0.5);
}

TEST(DistributionsTest, GammaSmallShapeBoost) {
  Rng rng(109);
  const double shape = 0.5, scale = 1.0;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += SampleGamma(&rng, shape, scale);
  EXPECT_NEAR(sum / n, shape * scale, 0.02);
}

TEST(DistributionsTest, GammaCdfAgainstKnownValues) {
  // Gamma(1, 1) is Exponential(1).
  EXPECT_NEAR(GammaCdf(1.0, 1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  // Gamma(2, 1) CDF at 2: 1 - e^-2 (1 + 2) = 0.59399...
  EXPECT_NEAR(GammaCdf(2.0, 2.0, 1.0), 1.0 - std::exp(-2.0) * 3.0, 1e-10);
}

TEST(DistributionsTest, StudentTSymmetricAndHeavyTailed) {
  Rng rng(113);
  const int n = 100000;
  double sum = 0.0;
  int extreme = 0;
  for (int i = 0; i < n; ++i) {
    const double x = SampleStudentT(&rng, 3.0);
    sum += x;
    if (std::fabs(x) > 3.0) ++extreme;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  // t(3) has far more mass beyond 3 than a normal (0.27% for normal).
  EXPECT_GT(static_cast<double>(extreme) / n, 0.01);
}

TEST(DistributionsTest, StudentTCdf) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  // t(1) is Cauchy: CDF(1) = 3/4.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-9);
  EXPECT_NEAR(StudentTCdf(-1.0, 1.0), 0.25, 1e-9);
}

TEST(DistributionsTest, ZipfDistribution) {
  Rng rng(127);
  const auto cdf = MakeZipfCdf(100, 1.0);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-15);
  const int n = 100000;
  std::vector<int> counts(101, 0);
  for (int i = 0; i < n; ++i) ++counts[SampleZipf(&rng, cdf)];
  // P(1)/P(2) should be ~2 for exponent 1.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.15);
  // Rank 1 dominates.
  EXPECT_GT(counts[1], counts[10]);
}

TEST(DistributionsTest, RegularizedIncompleteBetaIdentities) {
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(DescriptiveTest, MeanVarianceStdDev) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(x), 5.0);
  EXPECT_NEAR(Variance(x), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(x), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

TEST(DescriptiveTest, PearsonPerfectAndNegative) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const std::vector<double> z = {5, 4, 3, 2, 1};
  EXPECT_NEAR(*PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(*PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonErrors) {
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(PearsonCorrelation({1}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(DescriptiveTest, AverageRanksWithTies) {
  const std::vector<double> x = {10, 20, 20, 30};
  const auto r = AverageRanks(x);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(DescriptiveTest, SpearmanMonotonicNonlinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // Monotone, nonlinear.
  EXPECT_NEAR(*SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(DescriptiveTest, Quantiles) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(*Quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Quantile(x, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(*Quantile(x, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(*Quantile(x, 0.25), 2.0);
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.5).ok());
}

TEST(EmpiricalCdfTest, FromCountsBasics) {
  auto cdf = EmpiricalCdf::FromCounts({1, 2, 3, 4});
  ASSERT_TRUE(cdf.ok());
  EXPECT_EQ(cdf->domain_size(), 4);
  EXPECT_DOUBLE_EQ(cdf->total_count(), 10.0);
  EXPECT_NEAR(cdf->Evaluate(0.0), 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(cdf->Evaluate(3.0), 10.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf->Evaluate(-1.0), 0.0);
}

TEST(EmpiricalCdfTest, EvaluateMidStrictlyInside) {
  auto cdf = EmpiricalCdf::FromCounts({5.0});
  ASSERT_TRUE(cdf.ok());
  const double u = cdf->EvaluateMid(0.0);
  EXPECT_GT(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(EmpiricalCdfTest, NegativeCountsClamped) {
  auto cdf = EmpiricalCdf::FromCounts({-5.0, 3.0, -1.0, 7.0});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->total_count(), 10.0);
  // Value 0 has zero clamped mass, so F(0) = 0 and the inverse never maps
  // interior quantiles to it.
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.0), 0.0);
  EXPECT_EQ(cdf->InverseCdf(0.2), 1);
}

TEST(EmpiricalCdfTest, AllZeroFallsBackToUniform) {
  auto cdf = EmpiricalCdf::FromCounts({0.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(cdf.ok());
  EXPECT_EQ(cdf->InverseCdf(0.1), 0);
  EXPECT_EQ(cdf->InverseCdf(0.9), 3);
}

TEST(EmpiricalCdfTest, FromDataMatchesManualCounts) {
  auto cdf = EmpiricalCdf::FromData({0, 0, 1, 2, 2, 2}, 3);
  ASSERT_TRUE(cdf.ok());
  EXPECT_NEAR(cdf->Evaluate(0.0), 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(cdf->Evaluate(1.0), 3.0 / 7.0, 1e-12);
  EXPECT_FALSE(EmpiricalCdf::FromData({5.0}, 3).ok());
}

TEST(EmpiricalCdfTest, InverseCdfRoundTrip) {
  auto cdf = EmpiricalCdf::FromCounts({10, 0, 5, 0, 20});
  ASSERT_TRUE(cdf.ok());
  // u below first mass goes to 0; mid mass to 2; heavy tail to 4.
  EXPECT_EQ(cdf->InverseCdf(0.1), 0);
  EXPECT_EQ(cdf->InverseCdf(0.4), 2);
  EXPECT_EQ(cdf->InverseCdf(0.99), 4);
  EXPECT_EQ(cdf->InverseCdf(0.0), 0);
  EXPECT_EQ(cdf->InverseCdf(1.0), 4);
}

TEST(EmpiricalCdfTest, ZeroTailNeverEmitted) {
  // Regression: clamped-negative noise leaves the last bins with zero mass.
  // Any u past the attainable maximum total/(total+1) must map to the last
  // positive-mass bin (2), never the raw domain end (4).
  auto cdf = EmpiricalCdf::FromCounts({5, 3, 2, 0, 0});
  ASSERT_TRUE(cdf.ok());
  EXPECT_EQ(cdf->max_value(), 2);
  EXPECT_EQ(cdf->InverseCdf(1.0), 2);
  EXPECT_EQ(cdf->InverseCdf(0.995), 2);  // 10/11 < u < 1.
  EXPECT_EQ(cdf->InverseCdf(10.0 / 11.0), 2);
  // Interior quantiles are untouched by the fix.
  EXPECT_EQ(cdf->InverseCdf(0.3), 0);
  EXPECT_EQ(cdf->InverseCdf(0.6), 1);
  // A positive-mass final bin still reaches the domain end.
  auto full = EmpiricalCdf::FromCounts({5, 3, 2});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->InverseCdf(1.0), 2);
}

TEST(InverseCdfTableTest, MatchesLowerBoundOnRandomHistograms) {
  Rng rng(20240806);
  for (int trial = 0; trial < 40; ++trial) {
    const auto bins =
        static_cast<std::size_t>(rng.NextInt64InRange(1, 400));
    std::vector<double> counts(bins);
    for (double& c : counts) {
      // Mix of zero runs, negatives (clamped), and heavy bins.
      const double roll = rng.NextDouble();
      c = roll < 0.3 ? 0.0
                     : (roll < 0.4 ? -5.0 * rng.NextDouble()
                                   : 100.0 * rng.NextDouble());
    }
    auto cdf = EmpiricalCdf::FromCounts(counts);
    ASSERT_TRUE(cdf.ok());
    const InverseCdfTable table(*cdf);
    for (int q = 0; q < 500; ++q) {
      const double u = rng.NextDouble();
      ASSERT_EQ(table.Lookup(u), cdf->InverseCdf(u))
          << "trial " << trial << " u=" << u;
    }
    for (const double u : {0.0, 1.0, 1e-18, 1.0 - 1e-16, 0.5}) {
      ASSERT_EQ(table.Lookup(u), cdf->InverseCdf(u)) << "trial " << trial;
    }
  }
}

TEST(InverseCdfTableTest, HandlesAllZeroAndSingleBin) {
  auto zero = EmpiricalCdf::FromCounts({0.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(zero.ok());
  const InverseCdfTable zero_table(*zero);
  for (const double u : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(zero_table.Lookup(u), zero->InverseCdf(u)) << "u=" << u;
  }
  auto single = EmpiricalCdf::FromCounts({7.0});
  ASSERT_TRUE(single.ok());
  const InverseCdfTable single_table(*single);
  for (const double u : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(single_table.Lookup(u), 0);
    EXPECT_EQ(single_table.LookupGaussian(NormalInverseCdf(u)), 0);
  }
}

TEST(InverseCdfTableTest, GaussianLookupMatchesCdfComposition) {
  // LookupGaussian(z) must agree with Lookup(Phi(z)) away from bin-edge
  // rounding; sweeping a fine grid of z, any disagreement means the
  // precomputed quantile edges are wrong (off-by-one everywhere), not mere
  // floating-point edge jitter, so demand exact equality.
  auto cdf = EmpiricalCdf::FromCounts({10, 0, 5, 0, 20, 1, 0, 0});
  ASSERT_TRUE(cdf.ok());
  const InverseCdfTable table(*cdf);
  for (double z = -9.0; z <= 9.0; z += 0.003) {
    ASSERT_EQ(table.LookupGaussian(z), table.Lookup(NormalCdf(z)))
        << "z=" << z;
  }
}

class EmpiricalCdfSamplingTest : public ::testing::TestWithParam<int> {};

TEST_P(EmpiricalCdfSamplingTest, InverseSamplingRecoversDistribution) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  std::vector<double> counts = {10, 30, 0, 40, 20};
  auto cdf = EmpiricalCdf::FromCounts(counts);
  ASSERT_TRUE(cdf.ok());
  std::vector<double> freq(5, 0.0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    freq[static_cast<std::size_t>(cdf->InverseCdf(rng.NextDouble()))] += 1.0;
  }
  for (std::size_t v = 0; v < counts.size(); ++v) {
    EXPECT_NEAR(freq[v] / n, counts[v] / 100.0, 0.015) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmpiricalCdfSamplingTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace dpcopula::stats
