// Old-vs-new equivalence and determinism suite for the tridiagonal-QL
// eigensolver kernel (the PR 9 counterpart of sampler_kernel_test.cc,
// kendall_kernel_test.cc and mle_kernel_test.cc): eigenvalue agreement
// between EigenKernel::kTridiagQL and the verbatim Jacobi legacy across
// dimensions up to m = 200, bit-identical decompositions across 1/2/4/8
// threads, shared `linalg.eigen.converge` failpoint semantics, Householder
// stage invariants, and the high-dimension repair property on tau-noised
// matrices.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"
#include "linalg/packed_symmetric.h"
#include "linalg/psd_repair.h"

namespace dpcopula::linalg {
namespace {

using failpoint::Registry;

Matrix RandomCorrelation(std::size_t m, Rng* rng) {
  // A^T A normalized to unit diagonal is a valid correlation matrix.
  Matrix a(m + 2, m);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < m; ++j) a(i, j) = rng->NextGaussian();
  Matrix g = a.Transpose() * a;
  Matrix corr(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      corr(i, j) = g(i, j) / std::sqrt(g(i, i) * g(j, j));
  return corr;
}

// Emulates the estimators' input to PSD repair: a correlation matrix whose
// off-diagonal entries took independent noise (as the noisy sin-transformed
// taus do) and a [-1, 1] clamp. At m >= 100 this is reliably indefinite.
Matrix TauNoisedMatrix(std::size_t m, double noise, Rng* rng) {
  Matrix p = RandomCorrelation(m, rng);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double v =
          std::clamp(p(i, j) + noise * rng->NextGaussian(), -1.0, 1.0);
      p(i, j) = v;
      p(j, i) = v;
    }
  }
  return p;
}

EigenSymOptions KernelOptions(EigenKernel kernel, int num_threads = 1) {
  EigenSymOptions options;
  options.kernel = kernel;
  options.num_threads = num_threads;
  return options;
}

double MaxReconstructError(const Matrix& a, const EigenDecomposition& ed) {
  return a.MaxAbsDiff(EigenReconstruct(ed));
}

// ---------------------------------------------------------------------------
// Old-vs-new agreement.

TEST(EigenKernelAgreement, EigenvaluesAgreeAcrossKernels) {
  Rng rng(0xe16e5001);
  for (const std::size_t m : {2u, 8u, 32u, 100u}) {
    const Matrix a = RandomCorrelation(m, &rng);
    auto ql = EigenSym(a, KernelOptions(EigenKernel::kTridiagQL));
    auto jacobi = EigenSym(a, KernelOptions(EigenKernel::kJacobi));
    ASSERT_TRUE(ql.ok()) << "m=" << m << ": " << ql.status().message();
    ASSERT_TRUE(jacobi.ok()) << "m=" << m << ": "
                             << jacobi.status().message();
    ASSERT_EQ(ql->values.size(), m);
    for (std::size_t k = 0; k < m; ++k) {
      EXPECT_NEAR(ql->values[k], jacobi->values[k], 1e-8)
          << "m=" << m << " k=" << k;
    }
    EXPECT_LT(MaxReconstructError(a, *ql), 1e-9) << "m=" << m;
  }
}

TEST(EigenKernelAgreement, QlVectorsAreOrthonormal) {
  Rng rng(0xe16e5002);
  const Matrix a = TauNoisedMatrix(64, 0.3, &rng);
  auto ql = EigenSym(a, KernelOptions(EigenKernel::kTridiagQL));
  ASSERT_TRUE(ql.ok());
  const Matrix vtv = ql->vectors.Transpose() * ql->vectors;
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(a.rows())), 1e-11);
}

TEST(EigenKernelAgreement, IndefiniteInputAgreesIncludingNegativeTail) {
  Rng rng(0xe16e5003);
  const Matrix a = TauNoisedMatrix(48, 0.5, &rng);
  auto ql = EigenSym(a, KernelOptions(EigenKernel::kTridiagQL));
  auto jacobi = EigenSym(a, KernelOptions(EigenKernel::kJacobi));
  ASSERT_TRUE(ql.ok());
  ASSERT_TRUE(jacobi.ok());
  EXPECT_LT(ql->values.back(), 0.0);  // The input really is indefinite.
  for (std::size_t k = 0; k < ql->values.size(); ++k) {
    EXPECT_NEAR(ql->values[k], jacobi->values[k], 1e-8) << "k=" << k;
  }
  // Descending order, like the legacy kernel.
  for (std::size_t k = 1; k < ql->values.size(); ++k) {
    EXPECT_GE(ql->values[k - 1], ql->values[k]);
  }
}

// ---------------------------------------------------------------------------
// High-dimension property: tau-noised matrices at m = 100 / 200 repair into
// valid correlation matrices and the kernels agree on the spectrum.

TEST(EigenKernelHighDim, TauNoisedRepairProperty) {
  Rng rng(0xe16e5004);
  for (const std::size_t m : {100u, 200u}) {
    const Matrix p = TauNoisedMatrix(m, 0.4, &rng);
    EXPECT_FALSE(IsPositiveDefinite(p)) << "m=" << m;

    // Kernel agreement on the raw noised matrix.
    auto ql = EigenSym(p, KernelOptions(EigenKernel::kTridiagQL));
    auto jacobi = EigenSym(p, KernelOptions(EigenKernel::kJacobi));
    ASSERT_TRUE(ql.ok()) << "m=" << m << ": " << ql.status().message();
    ASSERT_TRUE(jacobi.ok()) << "m=" << m << ": "
                             << jacobi.status().message();
    for (std::size_t k = 0; k < m; ++k) {
      EXPECT_NEAR(ql->values[k], jacobi->values[k], 1e-8)
          << "m=" << m << " k=" << k;
    }

    // Repair (production kernel) succeeds and yields a valid correlation
    // matrix: positive definite, unit diagonal, entries in [-1, 1].
    PsdRepairOptions repair_options;
    repair_options.num_threads = 4;
    auto repaired = EnsureCorrelationMatrix(p, repair_options);
    ASSERT_TRUE(repaired.ok()) << "m=" << m << ": "
                               << repaired.status().message();
    EXPECT_TRUE(IsPositiveDefinite(*repaired)) << "m=" << m;
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_DOUBLE_EQ((*repaired)(i, i), 1.0);
      for (std::size_t j = 0; j < m; ++j) {
        EXPECT_LE(std::fabs((*repaired)(i, j)), 1.0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Thread-count determinism: the Householder shard decomposition must never
// change a released bit.

TEST(EigenKernelDeterminism, BitIdenticalAcrossThreadCounts) {
  Rng rng(0xe16e5005);
  const Matrix a = TauNoisedMatrix(150, 0.3, &rng);
  auto base = EigenSym(a, KernelOptions(EigenKernel::kTridiagQL, 1));
  ASSERT_TRUE(base.ok());
  for (const int threads : {2, 4, 8}) {
    auto run = EigenSym(a, KernelOptions(EigenKernel::kTridiagQL, threads));
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    ASSERT_EQ(run->values.size(), base->values.size());
    for (std::size_t k = 0; k < base->values.size(); ++k) {
      EXPECT_EQ(std::memcmp(&run->values[k], &base->values[k],
                            sizeof(double)),
                0)
          << "threads=" << threads << " k=" << k;
    }
    EXPECT_EQ(base->vectors.MaxAbsDiff(run->vectors), 0.0)
        << "threads=" << threads;
  }
}

TEST(EigenKernelDeterminism, RepairBitIdenticalAcrossThreadCounts) {
  Rng rng(0xe16e5006);
  const Matrix p = TauNoisedMatrix(120, 0.4, &rng);
  PsdRepairOptions options;
  options.num_threads = 1;
  auto base = EnsureCorrelationMatrix(p, options);
  ASSERT_TRUE(base.ok());
  for (const int threads : {2, 4, 8}) {
    options.num_threads = threads;
    auto run = EnsureCorrelationMatrix(p, options);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(base->MaxAbsDiff(*run), 0.0) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Householder stage invariants (stage 1 in isolation).

TEST(HouseholderStage, ReconstructsInputFromTridiagonalForm) {
  Rng rng(0xe16e5007);
  const std::size_t m = 60;
  const Matrix a = TauNoisedMatrix(m, 0.3, &rng);
  Matrix q = a;
  std::vector<double> d;
  std::vector<double> e;
  internal::HouseholderTridiagonalize(&q, &d, &e, /*num_threads=*/1);
  // Q orthonormal.
  EXPECT_LT((q.Transpose() * q).MaxAbsDiff(Matrix::Identity(m)), 1e-12);
  // Q T Q^T == A for the tridiagonal T assembled from (d, e).
  Matrix t(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    t(i, i) = d[i];
    if (i > 0) {
      t(i, i - 1) = e[i];
      t(i - 1, i) = e[i];
    }
  }
  const Matrix reconstructed = q * t * q.Transpose();
  EXPECT_LT(reconstructed.MaxAbsDiff(a), 1e-12);
}

// ---------------------------------------------------------------------------
// Failure semantics: both kernels share the failpoint site and report
// budget exhaustion with a data-independent message.

#if DPCOPULA_FAILPOINTS_ENABLED

TEST(EigenKernelFailpoints, InjectedConvergeFaultFiresOnBothKernels) {
  Rng rng(0xe16e5008);
  const Matrix a = RandomCorrelation(12, &rng);
  for (const EigenKernel kernel :
       {EigenKernel::kTridiagQL, EigenKernel::kJacobi}) {
    ASSERT_TRUE(
        Registry::Global().Arm("linalg.eigen.converge", "always").ok());
    auto result = EigenSym(a, KernelOptions(kernel));
    Registry::Global().DisarmAll();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
    EXPECT_NE(result.status().message().find("linalg.eigen.converge"),
              std::string::npos);
  }
}

#endif  // DPCOPULA_FAILPOINTS_ENABLED

TEST(EigenKernelFailpoints, QlBudgetExhaustionIsDataIndependent) {
  Rng rng(0xe16e5009);
  EigenSymOptions options = KernelOptions(EigenKernel::kTridiagQL);
  options.max_ql_iterations = 0;
  std::string first_message;
  for (const double noise : {0.3, 0.7}) {
    const Matrix a = TauNoisedMatrix(24, noise, &rng);
    auto result = EigenSym(a, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
    if (first_message.empty()) {
      first_message = result.status().message();
      EXPECT_NE(first_message.find("did not converge"), std::string::npos);
    } else {
      // Different data, same message: nothing value-derived leaks.
      EXPECT_EQ(result.status().message(), first_message);
    }
  }
}

#if DPCOPULA_FAILPOINTS_ENABLED

TEST(EigenKernelFailpoints, RepairShrinkageRetryCoversQlKernel) {
  // One injected non-convergence: the repair must retry on the shrunk
  // matrix and succeed — the same availability policy the Jacobi kernel
  // has always had.
  Rng rng(0xe16e500a);
  const Matrix p = TauNoisedMatrix(32, 0.5, &rng);
  ASSERT_TRUE(Registry::Global().Arm("linalg.eigen.converge", "once").ok());
  PsdRepairOptions options;  // kTridiagQL default.
  auto repaired = RepairToCorrelation(p, options);
  Registry::Global().DisarmAll();
  ASSERT_TRUE(repaired.ok()) << repaired.status().message();
  EXPECT_TRUE(IsPositiveDefinite(*repaired));
}

#endif  // DPCOPULA_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// Estimator-facing sanity: flipping the repair kernel changes released
// bytes only at round-off level.

TEST(EigenKernelRepair, KernelsRepairToNearbyCorrelations) {
  Rng rng(0xe16e500b);
  const Matrix p = TauNoisedMatrix(80, 0.4, &rng);
  PsdRepairOptions ql_options;
  ql_options.eigen_kernel = EigenKernel::kTridiagQL;
  PsdRepairOptions jacobi_options;
  jacobi_options.eigen_kernel = EigenKernel::kJacobi;
  auto ql = EnsureCorrelationMatrix(p, ql_options);
  auto jacobi = EnsureCorrelationMatrix(p, jacobi_options);
  ASSERT_TRUE(ql.ok());
  ASSERT_TRUE(jacobi.ok());
  EXPECT_LT(ql->MaxAbsDiff(*jacobi), 1e-7);
}

}  // namespace
}  // namespace dpcopula::linalg
