// Kolmogorov–Smirnov goodness-of-fit checks: every sampler in stats/ is
// tested against its own CDF, and the DPCopula sampling chain is verified
// end-to-end (uniforms in, exact margins out). The KS statistic for n
// samples should fall below c(alpha)/sqrt(n); we use a generous threshold
// (alpha ~ 1e-6) so the suite is deterministic-stable across seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "stats/distributions.h"
#include "stats/normal.h"

namespace dpcopula::stats {
namespace {

double KsStatistic(std::vector<double> samples,
                   const std::function<double(double)>& cdf) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max({ks, std::fabs(f - lo), std::fabs(f - hi)});
  }
  return ks;
}

constexpr std::size_t kN = 40000;
// c(alpha=1e-6) ~ 2.6; threshold 2.7/sqrt(n).
const double kThreshold = 2.7 / std::sqrt(static_cast<double>(kN));

TEST(KsTest, GaussianSampler) {
  Rng rng(801);
  std::vector<double> s(kN);
  for (double& v : s) v = rng.NextGaussian();
  EXPECT_LT(KsStatistic(std::move(s), [](double x) { return NormalCdf(x); }),
            kThreshold);
}

TEST(KsTest, UniformSampler) {
  Rng rng(803);
  std::vector<double> s(kN);
  for (double& v : s) v = rng.NextDouble();
  EXPECT_LT(KsStatistic(std::move(s),
                        [](double x) { return std::clamp(x, 0.0, 1.0); }),
            kThreshold);
}

TEST(KsTest, LaplaceSampler) {
  Rng rng(805);
  const double scale = 1.7;
  std::vector<double> s(kN);
  for (double& v : s) v = SampleLaplace(&rng, scale);
  EXPECT_LT(KsStatistic(std::move(s),
                        [scale](double x) { return LaplaceCdf(x, scale); }),
            kThreshold);
}

TEST(KsTest, ExponentialSampler) {
  Rng rng(807);
  const double rate = 0.4;
  std::vector<double> s(kN);
  for (double& v : s) v = SampleExponential(&rng, rate);
  EXPECT_LT(KsStatistic(std::move(s),
                        [rate](double x) { return ExponentialCdf(x, rate); }),
            kThreshold);
}

class GammaKsTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaKsTest, SamplerMatchesCdf) {
  Rng rng(809);
  const double shape = GetParam();
  const double scale = 2.0;
  std::vector<double> s(kN);
  for (double& v : s) v = SampleGamma(&rng, shape, scale);
  EXPECT_LT(
      KsStatistic(std::move(s),
                  [&](double x) { return GammaCdf(x, shape, scale); }),
      kThreshold)
      << "shape " << shape;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaKsTest,
                         ::testing::Values(0.3, 0.7, 1.0, 2.5, 9.0));

class StudentTKsTest : public ::testing::TestWithParam<double> {};

TEST_P(StudentTKsTest, SamplerMatchesCdf) {
  Rng rng(811);
  const double dof = GetParam();
  std::vector<double> s(kN);
  for (double& v : s) v = SampleStudentT(&rng, dof);
  EXPECT_LT(KsStatistic(std::move(s),
                        [dof](double x) { return StudentTCdf(x, dof); }),
            kThreshold)
      << "dof " << dof;
}

INSTANTIATE_TEST_SUITE_P(Dofs, StudentTKsTest,
                         ::testing::Values(1.0, 3.0, 8.0, 30.0));

TEST(KsTest, ChiSquaredSampler) {
  Rng rng(813);
  const double dof = 5.0;
  std::vector<double> s(kN);
  for (double& v : s) v = SampleChiSquared(&rng, dof);
  // chi2(k) = Gamma(k/2, 2).
  EXPECT_LT(
      KsStatistic(std::move(s),
                  [dof](double x) { return GammaCdf(x, dof / 2.0, 2.0); }),
      kThreshold);
}

TEST(KsTest, ProbabilityIntegralTransformOfGaussian) {
  // Phi(Z) must be uniform — the identity the whole copula pipeline rests
  // on (Definition 3.3).
  Rng rng(815);
  std::vector<double> s(kN);
  for (double& v : s) v = NormalCdf(rng.NextGaussian());
  EXPECT_LT(KsStatistic(std::move(s),
                        [](double x) { return std::clamp(x, 0.0, 1.0); }),
            kThreshold);
}

TEST(KsTest, InverseTransformOfUniformIsGaussian) {
  // Phi^{-1}(U) must be standard normal — Algorithm 3's sampling identity.
  Rng rng(817);
  std::vector<double> s(kN);
  for (double& v : s) v = NormalInverseCdf(rng.NextDoubleOpen());
  EXPECT_LT(KsStatistic(std::move(s), [](double x) { return NormalCdf(x); }),
            kThreshold);
}

TEST(KsTest, StudentTInverseTransform) {
  Rng rng(819);
  const double dof = 4.0;
  std::vector<double> s(kN);
  for (double& v : s) v = StudentTInverseCdf(rng.NextDoubleOpen(), dof);
  EXPECT_LT(KsStatistic(std::move(s),
                        [dof](double x) { return StudentTCdf(x, dof); }),
            kThreshold);
}

}  // namespace
}  // namespace dpcopula::stats
