// Realism properties of the census simulators (DESIGN.md §3 substitution
// 1): beyond matching Table 2's schemas, the generated margins must show
// the structural features real census extracts have — income heaping at
// round values, jagged occupation codes, a population-pyramid age profile —
// because those features are exactly what separates the mechanisms under
// comparison.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/census.h"
#include "stats/kendall.h"

namespace dpcopula::data {
namespace {

std::vector<double> ColumnHistogram(const Table& t, std::size_t col) {
  std::vector<double> h(
      static_cast<std::size_t>(t.schema().attribute(col).domain_size), 0.0);
  for (double v : t.column(col)) h[static_cast<std::size_t>(v)] += 1.0;
  return h;
}

class CensusPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(8001);
    us_ = new Table(*GenerateUsCensus(60000, &rng));
    brazil_ = new Table(*GenerateBrazilCensus(60000, &rng));
  }
  static void TearDownTestSuite() {
    delete us_;
    delete brazil_;
    us_ = nullptr;
    brazil_ = nullptr;
  }
  static Table* us_;
  static Table* brazil_;
};

Table* CensusPropertyTest::us_ = nullptr;
Table* CensusPropertyTest::brazil_ = nullptr;

TEST_F(CensusPropertyTest, IncomeHeapsAtRoundValues) {
  const auto h = ColumnHistogram(*us_, 1);  // Income, domain 1020.
  // Compare mass at multiples of 100 against their direct neighbors.
  double round_mass = 0.0, neighbor_mass = 0.0;
  int buckets = 0;
  for (std::size_t v = 100; v + 1 < h.size(); v += 100) {
    round_mass += h[v];
    neighbor_mass += 0.5 * (h[v - 1] + h[v + 1]);
    ++buckets;
  }
  ASSERT_GT(buckets, 5);
  EXPECT_GT(round_mass, 1.5 * neighbor_mass);
}

TEST_F(CensusPropertyTest, OccupationIsJaggedNotMonotone) {
  const auto h = ColumnHistogram(*us_, 2);  // Occupation, domain 511.
  // In code order, frequency must not be monotone: count sign changes of
  // consecutive differences over the populated range.
  int direction_changes = 0;
  double prev_diff = 0.0;
  for (std::size_t v = 1; v < 200; ++v) {
    const double diff = h[v] - h[v - 1];
    if (diff * prev_diff < 0.0) ++direction_changes;
    if (diff != 0.0) prev_diff = diff;
  }
  EXPECT_GT(direction_changes, 30);
  // Yet still heavy-tailed overall: the top code holds ~5%, not 15%+.
  double mx = 0.0, total = 0.0;
  for (double c : h) {
    mx = std::max(mx, c);
    total += c;
  }
  EXPECT_GT(mx / total, 0.02);
  EXPECT_LT(mx / total, 0.10);
}

TEST_F(CensusPropertyTest, AgePyramidDeclinesAfter55) {
  const auto h = ColumnHistogram(*us_, 0);  // Age, domain 96.
  double mass_30s = 0.0, mass_70s = 0.0;
  for (std::size_t v = 30; v < 40; ++v) mass_30s += h[v];
  for (std::size_t v = 70; v < 80; ++v) mass_70s += h[v];
  EXPECT_GT(mass_30s, 1.5 * mass_70s);
}

TEST_F(CensusPropertyTest, UsCorrelationSignsMatchDesign) {
  // Age-income positive, gender-income negative (wage-gap skew).
  auto age_income = stats::KendallTau(us_->column(0), us_->column(1));
  auto gender_income = stats::KendallTau(us_->column(3), us_->column(1));
  EXPECT_GT(*age_income, 0.1);
  EXPECT_LT(*gender_income, 0.0);
}

TEST_F(CensusPropertyTest, BrazilBinaryRates) {
  auto rate = [&](std::size_t col) {
    double ones = 0.0;
    for (double v : brazil_->column(col)) ones += v;
    return ones / static_cast<double>(brazil_->num_rows());
  };
  EXPECT_NEAR(rate(1), 0.51, 0.02);  // Gender.
  EXPECT_NEAR(rate(2), 0.06, 0.02);  // Disability.
  EXPECT_NEAR(rate(3), 0.12, 0.02);  // Nativity.
}

TEST_F(CensusPropertyTest, BrazilEducationIsBimodal) {
  const auto h = ColumnHistogram(*brazil_, 5);  // Education, domain 140.
  // Peaks near 35 and 95, trough near 70.
  double peak1 = 0.0, trough = 0.0, peak2 = 0.0;
  for (std::size_t v = 25; v < 45; ++v) peak1 += h[v];
  for (std::size_t v = 60; v < 80; ++v) trough += h[v];
  for (std::size_t v = 85; v < 105; ++v) peak2 += h[v];
  EXPECT_GT(peak1, trough);
  EXPECT_GT(peak2, trough);
}

TEST_F(CensusPropertyTest, BrazilWorkingHoursPeakNearFullTime) {
  const auto h = ColumnHistogram(*brazil_, 6);  // Hours, domain 95.
  std::size_t mode = 0;
  for (std::size_t v = 1; v < h.size(); ++v) {
    if (h[v] > h[mode]) mode = v;
  }
  EXPECT_GE(mode, 30u);
  EXPECT_LE(mode, 55u);
}

TEST_F(CensusPropertyTest, BrazilEducationIncomeDependence) {
  auto tau = stats::KendallTau(brazil_->column(5), brazil_->column(7));
  EXPECT_GT(*tau, 0.15);
}

TEST_F(CensusPropertyTest, DisabilityReducesHours) {
  auto tau = stats::KendallTau(brazil_->column(2), brazil_->column(6));
  EXPECT_LT(*tau, 0.0);
}

}  // namespace
}  // namespace dpcopula::data
