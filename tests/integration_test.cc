// End-to-end integration tests: the full DPCopula pipeline against the
// baselines on generated datasets, exercising the same code paths the
// experiment harness uses.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/php.h"
#include "baselines/privelet.h"
#include "baselines/psd.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/hybrid.h"
#include "data/census.h"
#include "data/generator.h"
#include "query/evaluator.h"
#include "query/metrics.h"
#include "query/workload.h"
#include "stats/kendall.h"

namespace dpcopula {
namespace {

data::Table Synthetic2D(std::size_t n, Rng* rng, std::int64_t domain = 256) {
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("x", domain),
      data::MarginSpec::Gaussian("y", domain)};
  return *data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.5), n, rng);
}

TEST(IntegrationTest, DpcopulaPipelineAnswersQueries) {
  Rng rng(501);
  data::Table t = Synthetic2D(5000, &rng);
  core::DpCopulaOptions opts;
  opts.epsilon = 1.0;
  auto res = core::Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  baselines::TableEstimator est(res->synthetic, "DPCopula");
  const auto workload = query::RandomWorkload(t.schema(), 100, &rng);
  auto eval = query::EvaluateWorkload(t, est, workload, 1.0);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(std::isfinite(eval->mean_relative_error));
  EXPECT_GT(eval->mean_relative_error, 0.0);  // DP noise exists.
}

TEST(IntegrationTest, AccuracyImprovesWithBudget) {
  // Average over several runs to keep the comparison stable.
  double err_low = 0.0, err_high = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    Rng rng(static_cast<std::uint64_t>(600 + rep));
    data::Table t = Synthetic2D(5000, &rng);
    const auto workload = query::RandomWorkload(t.schema(), 100, &rng);
    for (double eps : {0.05, 5.0}) {
      core::DpCopulaOptions opts;
      opts.epsilon = eps;
      auto res = core::Synthesize(t, opts, &rng);
      ASSERT_TRUE(res.ok());
      baselines::TableEstimator est(res->synthetic, "DPCopula");
      auto eval = query::EvaluateWorkload(t, est, workload, 1.0);
      ASSERT_TRUE(eval.ok());
      (eps < 1.0 ? err_low : err_high) += eval->mean_relative_error;
    }
  }
  EXPECT_LT(err_high, err_low);
}

TEST(IntegrationTest, DpcopulaCompetitiveWithPsdAt2D) {
  // Fig. 8's qualitative claim: DPCopula outperforms PSD on 2-D synthetic
  // data at small epsilon. We assert the weaker, stable property that
  // DPCopula's error is not dramatically worse (within 3x) and typically
  // better, averaged over seeds.
  double dpc_total = 0.0, psd_total = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Rng rng(static_cast<std::uint64_t>(700 + rep));
    data::Table t = Synthetic2D(8000, &rng);
    const auto workload = query::RandomWorkload(t.schema(), 150, &rng);
    core::DpCopulaOptions opts;
    opts.epsilon = 0.1;
    auto res = core::Synthesize(t, opts, &rng);
    ASSERT_TRUE(res.ok());
    baselines::TableEstimator dpc(res->synthetic, "DPCopula");
    auto psd = baselines::PsdTree::Build(t, 0.1, &rng);
    ASSERT_TRUE(psd.ok());
    auto e1 = query::EvaluateWorkload(t, dpc, workload, 1.0);
    auto e2 = query::EvaluateWorkload(t, **psd, workload, 1.0);
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(e2.ok());
    dpc_total += e1->mean_relative_error;
    psd_total += e2->mean_relative_error;
  }
  EXPECT_LT(dpc_total, 3.0 * psd_total);
}

TEST(IntegrationTest, HybridOnUsCensusBeatsNothingBaseline) {
  Rng rng(801);
  auto t = data::GenerateUsCensus(8000, &rng);
  ASSERT_TRUE(t.ok());
  core::HybridOptions opts;
  opts.epsilon = 1.0;
  auto res = core::SynthesizeHybrid(*t, opts, &rng);
  ASSERT_TRUE(res.ok());
  baselines::TableEstimator est(res->synthetic, "DPCopula-Hybrid");
  const auto workload = query::RandomWorkload(t->schema(), 100, &rng);
  const double sanity = query::UsCensusSanityBound(8000);
  auto eval = query::EvaluateWorkload(*t, est, workload, sanity);
  ASSERT_TRUE(eval.ok());
  // "Answer 0 always" would give RE ~1 for every non-trivial query;
  // DPCopula must do clearly better on average.
  EXPECT_LT(eval->mean_relative_error, 0.9);
}

TEST(IntegrationTest, EightDimensionalLargeDomainEndToEnd) {
  // The headline capability: 8 attributes with domain 1000 (10^24 cells).
  Rng rng(803);
  std::vector<data::MarginSpec> specs;
  for (int j = 0; j < 8; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), 1000));
  }
  auto t = data::GenerateGaussianDependent(
      specs, data::Ar1Correlation(8, 0.5), 5000, &rng);
  ASSERT_TRUE(t.ok());
  core::DpCopulaOptions opts;
  opts.epsilon = 1.0;
  auto res = core::Synthesize(*t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->synthetic.Validate().ok());
  EXPECT_EQ(res->synthetic.num_columns(), 8u);
  // Dense-histogram baselines must refuse this domain.
  EXPECT_FALSE(baselines::PriveletMechanism::Release(*t, 1.0, &rng).ok());
  EXPECT_FALSE(baselines::PhpMechanism::Release(*t, 1.0, &rng).ok());
  // PSD still works.
  EXPECT_TRUE(baselines::PsdTree::Build(*t, 1.0, &rng).ok());
}

TEST(IntegrationTest, SyntheticDataPreservesPairwiseDependenceStructure) {
  Rng rng(805);
  std::vector<data::MarginSpec> specs;
  for (int j = 0; j < 4; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), 500));
  }
  auto t = data::GenerateGaussianDependent(
      specs, data::Ar1Correlation(4, 0.7), 20000, &rng);
  ASSERT_TRUE(t.ok());
  core::DpCopulaOptions opts;
  opts.epsilon = 20.0;  // Low noise so structure is testable.
  opts.kendall.subsample = false;
  auto res = core::Synthesize(*t, opts, &rng);
  ASSERT_TRUE(res.ok());
  // Adjacent pairs should stay more dependent than distant pairs.
  auto tau01 =
      stats::KendallTau(res->synthetic.column(0), res->synthetic.column(1));
  auto tau03 =
      stats::KendallTau(res->synthetic.column(0), res->synthetic.column(3));
  ASSERT_TRUE(tau01.ok());
  ASSERT_TRUE(tau03.ok());
  EXPECT_GT(*tau01, *tau03 + 0.1);
}

TEST(IntegrationTest, SkewedMarginsSurviveSynthesis) {
  Rng rng(807);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Zipf("z", 500, 1.2),
      data::MarginSpec::Gaussian("g", 500)};
  auto t = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.4), 20000, &rng);
  ASSERT_TRUE(t.ok());
  core::DpCopulaOptions opts;
  opts.epsilon = 10.0;
  auto res = core::Synthesize(*t, opts, &rng);
  ASSERT_TRUE(res.ok());
  // Zipf margin: value 0 dominates in both original and synthetic data.
  auto count_zero = [](const std::vector<double>& col) {
    double c = 0.0;
    for (double v : col) c += (v == 0.0) ? 1.0 : 0.0;
    return c / static_cast<double>(col.size());
  };
  const double orig_frac = count_zero(t->column(0));
  const double synth_frac = count_zero(res->synthetic.column(0));
  EXPECT_GT(orig_frac, 0.2);
  EXPECT_NEAR(synth_frac, orig_frac, 0.1);
}

}  // namespace
}  // namespace dpcopula
