#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "copula/empirical_copula.h"
#include "copula/gaussian_copula.h"
#include "copula/pseudo_obs.h"
#include "copula/sampler.h"
#include "copula/t_copula.h"
#include "data/generator.h"
#include "stats/distributions.h"
#include "stats/kendall.h"

namespace dpcopula::copula {
namespace {

// Column-major pseudo-observations sampled from a t copula with the given
// correlation/dof.
std::vector<std::vector<double>> SampleTPseudo(const linalg::Matrix& corr,
                                               double dof, std::size_t n,
                                               Rng* rng) {
  auto c = TCopula::Create(corr, dof);
  std::vector<std::vector<double>> pseudo(corr.rows(),
                                          std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const auto u = c->SampleUniforms(rng);
    for (std::size_t j = 0; j < corr.rows(); ++j) pseudo[j][i] = u[j];
  }
  return pseudo;
}

TEST(StudentTInverseTest, RoundTrip) {
  for (double dof : {1.0, 3.0, 8.0, 30.0}) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      const double x = stats::StudentTInverseCdf(p, dof);
      EXPECT_NEAR(stats::StudentTCdf(x, dof), p, 1e-10)
          << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(StudentTInverseTest, KnownQuantiles) {
  // t(1) = Cauchy: Q(0.75) = 1.
  EXPECT_NEAR(stats::StudentTInverseCdf(0.75, 1.0), 1.0, 1e-9);
  // Large dof approaches the normal quantile.
  EXPECT_NEAR(stats::StudentTInverseCdf(0.975, 1e6), 1.96, 1e-2);
  EXPECT_DOUBLE_EQ(stats::StudentTInverseCdf(0.5, 5.0), 0.0);
  EXPECT_TRUE(std::isinf(stats::StudentTInverseCdf(1.0, 5.0)));
}

TEST(StudentTInverseTest, SmallDofExtremePStaysInBisectionBracket) {
  // Regression: for small dof and p near 1 the density is nearly flat, and
  // an unclamped Newton polish step could fly out of the bisection bracket
  // and return a point whose CDF is *farther* from p than the plain
  // bisection answer. The clamped polish must always end at least as close.
  for (const double dof : {0.3, 0.5, 1.0, 2.0}) {
    for (const double p : {0.999, 0.9999, 0.999999, 1.0 - 1e-9}) {
      const double x = stats::StudentTInverseCdf(p, dof);
      ASSERT_TRUE(std::isfinite(x)) << "dof=" << dof << " p=" << p;

      // Reproduce the bisection-only bracket the polish started from.
      double lo = 0.0, hi = 1.0;
      while (stats::StudentTCdf(hi, dof) < p && hi < 1e300) hi *= 2.0;
      for (int i = 0; i < 200 && hi - lo > 1e-14 * (1.0 + hi); ++i) {
        const double mid = 0.5 * (lo + hi);
        if (stats::StudentTCdf(mid, dof) < p) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      const double bisect = 0.5 * (lo + hi);
      const double err_polished = std::fabs(stats::StudentTCdf(x, dof) - p);
      const double err_bisect = std::fabs(stats::StudentTCdf(bisect, dof) - p);
      // Allow CDF-evaluation noise (~1e-15) but nothing like the orders-of-
      // magnitude escape the unclamped step produced.
      EXPECT_LE(err_polished, 2.0 * err_bisect + 1e-13)
          << "dof=" << dof << " p=" << p << " x=" << x
          << " bisect=" << bisect;
      // And the result must respect the monotone bracket.
      EXPECT_GE(x, lo);
      EXPECT_LE(x, hi);
    }
  }
}

TEST(StudentTPdfTest, IntegratesToCdf) {
  // Numeric check: pdf is the derivative of the CDF.
  const double dof = 5.0;
  for (double x : {-2.0, 0.0, 1.5}) {
    const double h = 1e-5;
    const double deriv =
        (stats::StudentTCdf(x + h, dof) - stats::StudentTCdf(x - h, dof)) /
        (2.0 * h);
    EXPECT_NEAR(stats::StudentTPdf(x, dof), deriv, 1e-6);
  }
}

TEST(ChiSquaredTest, MeanAndVariance) {
  Rng rng(1);
  const double dof = 7.0;
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = stats::SampleChiSquared(&rng, dof);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, dof, 0.1);
  EXPECT_NEAR(sum_sq / n - mean * mean, 2.0 * dof, 0.5);
}

TEST(TCopulaTest, CreateValidation) {
  EXPECT_FALSE(TCopula::Create(linalg::Matrix::Identity(2), 0.0).ok());
  linalg::Matrix bad = linalg::Matrix::FromRows({{2.0, 0.0}, {0.0, 1.0}});
  EXPECT_FALSE(TCopula::Create(bad, 4.0).ok());
  EXPECT_TRUE(TCopula::Create(linalg::Matrix::Identity(3), 4.0).ok());
}

TEST(TCopulaTest, DensityIntegratesToOneIn1D) {
  // A 1-dimensional copula is the uniform: log density must be ~0.
  auto c = TCopula::Create(linalg::Matrix::Identity(1), 4.0);
  ASSERT_TRUE(c.ok());
  for (double u : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(*c->LogDensity({u}), 0.0, 1e-9) << u;
  }
}

TEST(TCopulaTest, ConvergesToGaussianForLargeDof) {
  auto corr = data::Equicorrelation(2, 0.5);
  auto t_large = TCopula::Create(*corr, 1e5);
  auto gauss = GaussianCopula::Create(*corr);
  ASSERT_TRUE(t_large.ok());
  ASSERT_TRUE(gauss.ok());
  for (double u1 : {0.2, 0.5, 0.8}) {
    for (double u2 : {0.3, 0.7}) {
      EXPECT_NEAR(*t_large->LogDensity({u1, u2}),
                  *gauss->LogDensity({u1, u2}), 1e-2)
          << u1 << "," << u2;
    }
  }
}

TEST(TCopulaTest, SmallDofHasHeavierJointTails) {
  // Tail dependence: density at the joint extreme corner is higher for
  // small dof than for the Gaussian with the same correlation.
  auto corr = data::Equicorrelation(2, 0.5);
  auto t4 = TCopula::Create(*corr, 4.0);
  auto gauss = GaussianCopula::Create(*corr);
  const double corner_t = *t4->LogDensity({0.999, 0.999});
  const double corner_g = *gauss->LogDensity({0.999, 0.999});
  EXPECT_GT(corner_t, corner_g);
}

TEST(TCopulaTest, SampleUniformsHaveUniformMargins) {
  Rng rng(3);
  auto c = TCopula::Create(*data::Equicorrelation(2, 0.6), 4.0);
  ASSERT_TRUE(c.ok());
  double sum0 = 0.0, sum1 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto u = c->SampleUniforms(&rng);
    EXPECT_GT(u[0], 0.0);
    EXPECT_LT(u[0], 1.0);
    sum0 += u[0];
    sum1 += u[1];
  }
  EXPECT_NEAR(sum0 / n, 0.5, 0.01);
  EXPECT_NEAR(sum1 / n, 0.5, 0.01);
}

TEST(TCopulaTest, SampledKendallTauMatchesEllipticalRelation) {
  // tau = (2/pi) asin(rho) holds for every elliptical copula, including t.
  Rng rng(5);
  const double rho = 0.6;
  auto pseudo = SampleTPseudo(*data::Equicorrelation(2, rho), 4.0, 20000,
                              &rng);
  auto tau = stats::KendallTau(pseudo[0], pseudo[1]);
  ASSERT_TRUE(tau.ok());
  EXPECT_NEAR(*tau, 2.0 / M_PI * std::asin(rho), 0.02);
}

TEST(TCopulaTest, LogLikelihoodPrefersTrueDof) {
  Rng rng(7);
  auto corr = data::Equicorrelation(2, 0.5);
  auto pseudo = SampleTPseudo(*corr, 4.0, 4000, &rng);
  auto ll_true = TCopula::Create(*corr, 4.0)->LogLikelihood(pseudo);
  auto ll_far = TCopula::Create(*corr, 64.0)->LogLikelihood(pseudo);
  ASSERT_TRUE(ll_true.ok());
  ASSERT_TRUE(ll_far.ok());
  EXPECT_GT(*ll_true, *ll_far);
}

TEST(EstimateDofTest, RecoversTrueDofFromGrid) {
  Rng rng(9);
  auto corr = data::Equicorrelation(3, 0.4);
  auto pseudo = SampleTPseudo(*corr, 8.0, 5000, &rng);
  auto dof = EstimateTCopulaDof(pseudo, *corr);
  ASSERT_TRUE(dof.ok());
  EXPECT_GE(*dof, 4.0);
  EXPECT_LE(*dof, 16.0);
}

TEST(EstimateDofTest, GaussianDataPicksLargeDof) {
  Rng rng(11);
  auto corr = data::Equicorrelation(2, 0.5);
  auto g = GaussianCopula::Create(*corr);
  ASSERT_TRUE(g.ok());
  // Gaussian pseudo-observations: sample via the t copula at huge dof.
  auto pseudo = SampleTPseudo(*corr, 1e6, 5000, &rng);
  auto dof = EstimateTCopulaDof(pseudo, *corr);
  ASSERT_TRUE(dof.ok());
  EXPECT_GE(*dof, 32.0);
}

TEST(EstimateDofPrivateTest, HighBudgetMatchesNonPrivate) {
  Rng rng(13);
  auto corr = data::Equicorrelation(2, 0.5);
  auto pseudo = SampleTPseudo(*corr, 4.0, 8000, &rng);
  auto priv = EstimateTCopulaDofPrivate(pseudo, *corr, 50.0, &rng);
  ASSERT_TRUE(priv.ok());
  EXPECT_LE(*priv, 8.0);  // True dof 4; high budget should land close.
}

TEST(EstimateDofPrivateTest, RejectsTinyData) {
  Rng rng(15);
  auto corr = data::Equicorrelation(2, 0.5);
  auto pseudo = SampleTPseudo(*corr, 4.0, 20, &rng);
  EXPECT_FALSE(EstimateTCopulaDofPrivate(pseudo, *corr, 1.0, &rng).ok());
}

TEST(FamilySelectionTest, PrefersTOnTData) {
  Rng rng(17);
  auto corr = data::Equicorrelation(2, 0.5);
  auto pseudo = SampleTPseudo(*corr, 3.0, 6000, &rng);
  auto better = TCopulaFitsBetter(pseudo, *corr);
  ASSERT_TRUE(better.ok());
  EXPECT_TRUE(*better);
}

TEST(FamilySelectionTest, PrefersGaussianOnGaussianData) {
  Rng rng(19);
  auto corr = data::Equicorrelation(2, 0.5);
  auto pseudo = SampleTPseudo(*corr, 1e6, 6000, &rng);
  auto better = TCopulaFitsBetter(pseudo, *corr);
  ASSERT_TRUE(better.ok());
  EXPECT_FALSE(*better);
}

TEST(FamilySelectionTest, PrivateVoteHighBudgetAgreesOnTData) {
  Rng rng(21);
  auto corr = data::Equicorrelation(2, 0.5);
  auto pseudo = SampleTPseudo(*corr, 3.0, 8000, &rng);
  auto better = TCopulaFitsBetterPrivate(pseudo, *corr, 50.0, &rng);
  ASSERT_TRUE(better.ok());
  EXPECT_TRUE(*better);
}

TEST(TSamplerTest, ProducesValidTableWithDependence) {
  Rng rng(23);
  data::Schema schema({{"a", 200}, {"b", 200}});
  std::vector<stats::EmpiricalCdf> cdfs;
  cdfs.push_back(
      *stats::EmpiricalCdf::FromCounts(std::vector<double>(200, 1.0)));
  cdfs.push_back(
      *stats::EmpiricalCdf::FromCounts(std::vector<double>(200, 1.0)));
  const double rho = 0.7;
  auto out = SampleSyntheticDataT(schema, cdfs, *data::Equicorrelation(2, rho),
                                  4.0, 20000, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Validate().ok());
  auto tau = stats::KendallTau(out->column(0), out->column(1));
  EXPECT_NEAR(*tau, 2.0 / M_PI * std::asin(rho), 0.05);
}

TEST(TSamplerTest, ValidatesDof) {
  Rng rng(25);
  data::Schema schema({{"a", 10}});
  std::vector<stats::EmpiricalCdf> cdfs;
  cdfs.push_back(
      *stats::EmpiricalCdf::FromCounts(std::vector<double>(10, 1.0)));
  EXPECT_FALSE(SampleSyntheticDataT(schema, cdfs,
                                    linalg::Matrix::Identity(1), -1.0, 10,
                                    &rng)
                   .ok());
}

TEST(EmpiricalCopulaTest, FitValidation) {
  EXPECT_FALSE(EmpiricalCopula::Fit({}, 8).ok());
  EXPECT_FALSE(EmpiricalCopula::Fit({{0.5}}, 1).ok());
  // 10 dimensions at grid 16 = 16^10 cells: must refuse.
  std::vector<std::vector<double>> wide(10, std::vector<double>{0.5});
  EXPECT_EQ(EmpiricalCopula::Fit(wide, 16).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(EmpiricalCopula::Fit({{0.5, 1.5}}, 8).ok());  // u outside.
}

TEST(EmpiricalCopulaTest, IndependenceDataGivesFlatDensity) {
  Rng rng(31);
  std::vector<std::vector<double>> pseudo(2, std::vector<double>(20000));
  for (std::size_t i = 0; i < 20000; ++i) {
    pseudo[0][i] = rng.NextDoubleOpen();
    pseudo[1][i] = rng.NextDoubleOpen();
  }
  auto c = EmpiricalCopula::Fit(pseudo, 8);
  ASSERT_TRUE(c.ok());
  for (double u1 : {0.1, 0.5, 0.9}) {
    for (double u2 : {0.2, 0.8}) {
      EXPECT_NEAR(*c->Density({u1, u2}), 1.0, 0.25) << u1 << "," << u2;
    }
  }
}

TEST(EmpiricalCopulaTest, CapturesAsymmetricDependence) {
  // Dependence no elliptical copula expresses: strong coupling only in the
  // lower-left corner (u1, u2 both small), independence elsewhere.
  Rng rng(37);
  std::vector<std::vector<double>> pseudo(2);
  for (int i = 0; i < 30000; ++i) {
    double u1 = rng.NextDoubleOpen();
    double u2 = (u1 < 0.25) ? std::min(0.999, u1 + 0.01 * rng.NextDouble())
                            : rng.NextDoubleOpen();
    pseudo[0].push_back(u1);
    pseudo[1].push_back(u2);
  }
  auto c = EmpiricalCopula::Fit(pseudo, 8);
  ASSERT_TRUE(c.ok());
  // The diagonal lower-left cell is dense; the off-diagonal lower-left is
  // nearly empty.
  EXPECT_GT(*c->Density({0.05, 0.05}), 3.0);
  EXPECT_LT(*c->Density({0.05, 0.9}), 0.5);
}

TEST(EmpiricalCopulaTest, SamplingReproducesCellMass) {
  Rng rng(41);
  std::vector<std::vector<double>> pseudo(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDoubleOpen();
    pseudo[0].push_back(u);
    // Perfect positive dependence.
    pseudo[1].push_back(u);
  }
  auto c = EmpiricalCopula::Fit(pseudo, 4);
  ASSERT_TRUE(c.ok());
  // Sampled points should stay near the diagonal at the cell resolution.
  int on_diagonal = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto u = c->SampleUniforms(&rng);
    const int c1 = static_cast<int>(u[0] * 4.0);
    const int c2 = static_cast<int>(u[1] * 4.0);
    if (c1 == c2) ++on_diagonal;
  }
  EXPECT_GT(on_diagonal, n * 9 / 10);
}

TEST(EmpiricalCopulaTest, DpFitStillCloseAtHighBudget) {
  Rng rng(43);
  std::vector<std::vector<double>> pseudo(2);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextDoubleOpen();
    pseudo[0].push_back(u);
    pseudo[1].push_back(std::min(0.999, std::max(0.001,
        u + 0.1 * rng.NextGaussian())));
  }
  auto exact = EmpiricalCopula::Fit(pseudo, 8);
  auto priv = EmpiricalCopula::FitDp(pseudo, 8, 50.0, &rng);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(priv.ok());
  for (double u1 : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(*priv->CellProbability({u1, u1}),
                *exact->CellProbability({u1, u1}), 0.01);
  }
}

TEST(EmpiricalCopulaTest, DpFitValidatesEpsilon) {
  Rng rng(47);
  std::vector<std::vector<double>> pseudo(1, std::vector<double>{0.5, 0.6});
  EXPECT_FALSE(EmpiricalCopula::FitDp(pseudo, 4, 0.0, &rng).ok());
}

class TCopulaAicSweep : public ::testing::TestWithParam<double> {};

TEST_P(TCopulaAicSweep, AicFiniteAcrossDofGrid) {
  Rng rng(27);
  auto corr = data::Equicorrelation(2, 0.4);
  auto pseudo = SampleTPseudo(*corr, 8.0, 1000, &rng);
  auto c = TCopula::Create(*corr, GetParam());
  ASSERT_TRUE(c.ok());
  auto aic = c->Aic(pseudo);
  ASSERT_TRUE(aic.ok());
  EXPECT_TRUE(std::isfinite(*aic));
}

INSTANTIATE_TEST_SUITE_P(DofGrid, TCopulaAicSweep,
                         ::testing::Values(2.0, 4.0, 8.0, 16.0, 32.0, 64.0));

}  // namespace
}  // namespace dpcopula::copula
