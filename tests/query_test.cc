#include <gtest/gtest.h>

#include <cstdlib>

#include "baselines/range_estimator.h"
#include "common/rng.h"
#include "data/generator.h"
#include "query/evaluator.h"
#include "query/experiment_config.h"
#include "query/fidelity_metrics.h"
#include "query/metrics.h"
#include "query/privacy_metrics.h"
#include "query/workload.h"

namespace dpcopula::query {
namespace {

TEST(MetricsTest, RelativeErrorWithSanityBound) {
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 110.0, 1.0), 0.1);
  // Tiny true answers are floored by the sanity bound.
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 5.0, 1.0), 5.0);
}

TEST(MetricsTest, AbsoluteError) {
  EXPECT_DOUBLE_EQ(AbsoluteError(100.0, 90.0), 10.0);
  EXPECT_DOUBLE_EQ(AbsoluteError(-5.0, 5.0), 10.0);
}

TEST(MetricsTest, PaperSanityBounds) {
  EXPECT_DOUBLE_EQ(DefaultSanityBound(), 1.0);
  EXPECT_DOUBLE_EQ(UsCensusSanityBound(100000), 50.0);
  EXPECT_DOUBLE_EQ(BrazilSanityBound(), 10.0);
}

TEST(WorkloadTest, RandomQueriesRespectDomains) {
  Rng rng(401);
  data::Schema schema({{"a", 10}, {"b", 100}});
  const auto queries = RandomWorkload(schema, 200, &rng);
  ASSERT_EQ(queries.size(), 200u);
  for (const auto& q : queries) {
    ASSERT_EQ(q.lo.size(), 2u);
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_GE(q.lo[j], 0);
      EXPECT_LE(q.lo[j], q.hi[j]);
      EXPECT_LT(q.hi[j], schema.attribute(j).domain_size);
    }
  }
}

TEST(WorkloadTest, FixedSizeQueriesHaveRequestedWidth) {
  Rng rng(403);
  data::Schema schema({{"a", 100}, {"b", 100}});
  auto queries = FixedSizeWorkload(schema, 0.25, 50, &rng);
  ASSERT_TRUE(queries.ok());
  for (const auto& q : *queries) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(q.hi[j] - q.lo[j] + 1, 25);
      EXPECT_GE(q.lo[j], 0);
      EXPECT_LT(q.hi[j], 100);
    }
  }
}

TEST(WorkloadTest, FixedSizeValidation) {
  Rng rng(405);
  data::Schema schema({{"a", 100}});
  EXPECT_FALSE(FixedSizeWorkload(schema, 0.0, 10, &rng).ok());
  EXPECT_FALSE(FixedSizeWorkload(schema, 1.5, 10, &rng).ok());
  // Tiny fractions clamp to width 1.
  auto q = FixedSizeWorkload(schema, 1e-9, 5, &rng);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)[0].hi[0], (*q)[0].lo[0]);
}

TEST(WorkloadTest, MarginalQueriesConstrainOnlyTarget) {
  Rng rng(404);
  data::Schema schema({{"a", 50}, {"b", 60}, {"c", 70}});
  auto queries = MarginalWorkload(schema, 1, 30, &rng);
  ASSERT_TRUE(queries.ok());
  for (const auto& q : *queries) {
    EXPECT_EQ(q.lo[0], 0);
    EXPECT_EQ(q.hi[0], 49);
    EXPECT_EQ(q.lo[2], 0);
    EXPECT_EQ(q.hi[2], 69);
    EXPECT_GE(q.lo[1], 0);
    EXPECT_LE(q.hi[1], 59);
    EXPECT_LE(q.lo[1], q.hi[1]);
  }
  EXPECT_FALSE(MarginalWorkload(schema, 5, 10, &rng).ok());
}

TEST(EvaluatorTest, PerfectEstimatorHasZeroError) {
  Rng rng(407);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("x", 50),
      data::MarginSpec::Gaussian("y", 50)};
  auto t = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.3), 1000, &rng);
  ASSERT_TRUE(t.ok());
  baselines::TableEstimator perfect(*t, "perfect");
  const auto workload = RandomWorkload(t->schema(), 100, &rng);
  auto result = EvaluateWorkload(*t, perfect, workload, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->mean_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(result->mean_absolute_error, 0.0);
  EXPECT_DOUBLE_EQ(result->median_relative_error, 0.0);
  EXPECT_EQ(result->num_queries, 100u);
}

TEST(EvaluatorTest, BiasedEstimatorMeasured) {
  Rng rng(409);
  std::vector<data::MarginSpec> specs = {data::MarginSpec::Uniform("x", 20)};
  auto t = data::GenerateGaussianDependent(
      specs, linalg::Matrix::Identity(1), 500, &rng);
  ASSERT_TRUE(t.ok());
  // An estimator that always answers 0.
  class ZeroEstimator : public baselines::RangeCountEstimator {
   public:
    double EstimateRangeCount(const std::vector<std::int64_t>&,
                              const std::vector<std::int64_t>&) const override {
      return 0.0;
    }
    std::string name() const override { return "zero"; }
  } zero;
  const auto workload = RandomWorkload(t->schema(), 50, &rng);
  auto result = EvaluateWorkload(*t, zero, workload, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->mean_absolute_error, 0.0);
  // Every nonzero-answer query has RE exactly 1.
  EXPECT_LE(result->median_relative_error, 1.0);
}

TEST(EvaluatorTest, ValidatesInput) {
  Rng rng(411);
  std::vector<data::MarginSpec> specs = {data::MarginSpec::Uniform("x", 20)};
  auto t = data::GenerateGaussianDependent(
      specs, linalg::Matrix::Identity(1), 50, &rng);
  ASSERT_TRUE(t.ok());
  baselines::TableEstimator est(*t, "e");
  EXPECT_FALSE(EvaluateWorkload(*t, est, {}, 1.0).ok());
  // Arity mismatch.
  RangeQuery q;
  q.lo = {0, 0};
  q.hi = {1, 1};
  EXPECT_FALSE(EvaluateWorkload(*t, est, {q}, 1.0).ok());
}

data::Table RandomTable2(std::size_t n, Rng* rng) {
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 50),
      data::MarginSpec::Uniform("b", 50)};
  return *data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.4), n, rng);
}

TEST(PrivacyMetricsTest, SelfDcrIsZero) {
  Rng rng(501);
  data::Table t = RandomTable2(300, &rng);
  auto dcr = DistanceToClosestRecord(t, t);
  ASSERT_TRUE(dcr.ok());
  EXPECT_DOUBLE_EQ(dcr->mean, 0.0);
  EXPECT_DOUBLE_EQ(dcr->frac_zero, 1.0);
}

TEST(PrivacyMetricsTest, DisjointSamplesHavePositiveDcr) {
  Rng rng(503);
  // Distinct independent samples from the same distribution rarely collide
  // exactly across both attributes but can; mean distance must be > 0.
  data::Table a = RandomTable2(300, &rng);
  data::Table b = RandomTable2(300, &rng);
  auto dcr = DistanceToClosestRecord(a, b);
  ASSERT_TRUE(dcr.ok());
  EXPECT_GE(dcr->mean, 0.0);
  EXPECT_LT(dcr->frac_zero, 1.0);
}

TEST(PrivacyMetricsTest, ValidatesInput) {
  Rng rng(505);
  data::Table a = RandomTable2(10, &rng);
  data::Table other{data::Schema({{"x", 5}})};
  EXPECT_FALSE(DistanceToClosestRecord(a, other).ok());
  data::Table empty{a.schema()};
  EXPECT_FALSE(DistanceToClosestRecord(a, empty).ok());
  EXPECT_FALSE(AttributeDisclosureRisk(a, a, 7).ok());
  EXPECT_FALSE(MajorityGuessAccuracy(a, 7).ok());
}

TEST(PrivacyMetricsTest, MajorityGuessAccuracy) {
  data::Table t{data::Schema({{"a", 3}})};
  for (double v : {0.0, 0.0, 0.0, 1.0, 2.0}) {
    ASSERT_TRUE(t.AppendRow({v}).ok());
  }
  auto acc = MajorityGuessAccuracy(t, 0);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 0.6);
}

TEST(PrivacyMetricsTest, DisclosureOnExactCopyIsHigh) {
  Rng rng(507);
  // Three large-domain known attributes make rows near-unique, so releasing
  // the data verbatim lets the adversary's nearest-neighbor guess the
  // target almost always.
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Uniform("k1", 500),
      data::MarginSpec::Uniform("k2", 500),
      data::MarginSpec::Uniform("k3", 500),
      data::MarginSpec::Uniform("target", 50)};
  auto t = data::GenerateGaussianDependent(
      specs, linalg::Matrix::Identity(4), 200, &rng);
  ASSERT_TRUE(t.ok());
  auto risk = AttributeDisclosureRisk(*t, *t, 3);
  ASSERT_TRUE(risk.ok());
  EXPECT_GT(*risk, 0.95);
}

TEST(PrivacyMetricsTest, DisclosureOnIndependentDataIsLow) {
  Rng rng(509);
  data::Table original = RandomTable2(300, &rng);
  // "Synthetic" data drawn independently of the original records: the
  // adversary cannot beat chance by much on a 50-value target.
  data::Table independent = RandomTable2(300, &rng);
  auto risk = AttributeDisclosureRisk(independent, original, 1);
  ASSERT_TRUE(risk.ok());
  EXPECT_LT(*risk, 0.3);
}

TEST(FidelityMetricsTest, IdenticalTablesScoreZero) {
  Rng rng(521);
  data::Table t = RandomTable2(500, &rng);
  auto report = EvaluateFidelity(t, t);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_marginal_tv, 0.0);
  EXPECT_DOUBLE_EQ(report->dependence_distance, 0.0);
}

TEST(FidelityMetricsTest, DisjointMarginsScoreOne) {
  data::Table a{data::Schema({{"x", 4}})};
  data::Table b{data::Schema({{"x", 4}})};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.AppendRow({0}).ok());
    ASSERT_TRUE(b.AppendRow({3}).ok());
  }
  auto tv = MarginalTotalVariation(a, b, 0);
  ASSERT_TRUE(tv.ok());
  EXPECT_DOUBLE_EQ(*tv, 1.0);
}

TEST(FidelityMetricsTest, DependenceDistanceDetectsFlippedCorrelation) {
  Rng rng(523);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 50),
      data::MarginSpec::Gaussian("b", 50)};
  auto pos = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.7), 5000, &rng);
  auto neg = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, -0.7), 5000, &rng);
  auto dist = DependenceDistance(*pos, *neg);
  ASSERT_TRUE(dist.ok());
  // tau(0.7) ~ 0.49 each side -> distance ~ 1.
  EXPECT_GT(*dist, 0.8);
}

TEST(FidelityMetricsTest, KendallMatrixShape) {
  Rng rng(527);
  data::Table t = RandomTable2(500, &rng);
  auto tau = KendallMatrix(t);
  ASSERT_TRUE(tau.ok());
  EXPECT_EQ(tau->rows(), 2u);
  EXPECT_DOUBLE_EQ((*tau)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ((*tau)(0, 1), (*tau)(1, 0));
}

TEST(FidelityMetricsTest, ValidatesInput) {
  Rng rng(529);
  data::Table t = RandomTable2(10, &rng);
  data::Table other{data::Schema({{"x", 5}})};
  EXPECT_FALSE(MarginalTotalVariation(t, other, 0).ok());
  EXPECT_FALSE(MarginalTotalVariation(t, t, 9).ok());
  data::Table empty{t.schema()};
  EXPECT_FALSE(MarginalTotalVariation(t, empty, 0).ok());
}

TEST(ExperimentConfigTest, PaperDefaultsMatchTable3) {
  const auto cfg = ExperimentConfig::Paper();
  EXPECT_EQ(cfg.num_tuples, 50000);
  EXPECT_DOUBLE_EQ(cfg.epsilon, 1.0);
  EXPECT_EQ(cfg.num_dimensions, 8u);
  EXPECT_DOUBLE_EQ(cfg.sanity_bound, 1.0);
  EXPECT_DOUBLE_EQ(cfg.budget_ratio_k, 8.0);
  EXPECT_EQ(cfg.domain_size, 1000);
  EXPECT_EQ(cfg.queries_per_run, 1000u);
  EXPECT_EQ(cfg.num_runs, 5u);
  EXPECT_EQ(cfg.ProfileName(), "paper");
}

TEST(ExperimentConfigTest, FastProfileIsSmaller) {
  const auto cfg = ExperimentConfig::Fast();
  EXPECT_LT(cfg.num_tuples, ExperimentConfig::Paper().num_tuples);
  EXPECT_LT(cfg.queries_per_run, ExperimentConfig::Paper().queries_per_run);
  EXPECT_EQ(cfg.ProfileName(), "fast");
}

TEST(ExperimentConfigTest, EnvironmentSwitch) {
  ::setenv("DPCOPULA_BENCH_FULL", "1", 1);
  EXPECT_EQ(ExperimentConfig::FromEnvironment().ProfileName(), "paper");
  ::setenv("DPCOPULA_BENCH_FULL", "0", 1);
  EXPECT_EQ(ExperimentConfig::FromEnvironment().ProfileName(), "fast");
  ::unsetenv("DPCOPULA_BENCH_FULL");
  EXPECT_EQ(ExperimentConfig::FromEnvironment().ProfileName(), "fast");
}

}  // namespace
}  // namespace dpcopula::query
