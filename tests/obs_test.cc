// Observability layer: metric sharding under the shared pool, span-tree
// nesting, the JSON run report, and — most importantly — the guarantee that
// turning obs on or off never changes a single released byte.
//
// Every assertion about recorded values is guarded on DPCOPULA_OBS_ENABLED
// so the suite also passes (and still exercises the no-op stubs) when the
// library is built with -DDPCOPULA_OBS=OFF.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "data/generator.h"
#include "json_checker_test_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace dpcopula {
namespace {

using test::JsonChecker;

// Sums every `"key": <number>` occurrence at or after `from`.
double SumNumbersForKey(const std::string& json, const std::string& key,
                        std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";  // Compact JSON, no space.
  double sum = 0.0;
  for (std::size_t p = json.find(needle, from); p != std::string::npos;
       p = json.find(needle, p + 1)) {
    sum += std::strtod(json.c_str() + p + needle.size(), nullptr);
  }
  return sum;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ObsConfig config;
    config.metrics = true;
    config.trace = true;
    obs::SetObsConfig(config);
    obs::MetricsRegistry::Global().ResetAll();
    obs::Tracer::Global().Reset();
  }
  void TearDown() override { obs::SetObsConfig(obs::ObsConfig{}); }
};

// ---------------------------------------------------------------------------
// Metrics.

TEST_F(ObsTest, CounterShardsAreRaceFreeUnderParallelFor) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("obs_test.sharded");
  constexpr std::size_t kItems = 100000;
  // grain 64 with 8 threads: many concurrent Add() calls from distinct
  // pool workers land in distinct padded slots (TSan verifies the claim).
  ParallelFor(
      0, kItems, /*grain=*/64,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) counter->Increment();
      },
      /*num_threads=*/8);
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(counter->Value(), static_cast<std::int64_t>(kItems));
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0);
#else
  EXPECT_EQ(counter->Value(), 0);
#endif
}

TEST_F(ObsTest, GaugeHoldsLastWrite) {
  obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("obs_test.g");
  gauge->Set(2.5);
  gauge->Set(-7.0);
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(gauge->Value(), -7.0);
#else
  EXPECT_EQ(gauge->Value(), 0.0);
#endif
}

TEST_F(ObsTest, HistogramBucketsObservationsBySeconds) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.h");
  // HDR layout: integer-nanosecond bounds, strictly monotone, +inf last.
  for (int i = 1; i < obs::Histogram::kBuckets - 1; ++i) {
    EXPECT_GT(obs::Histogram::BucketUpperBoundNanos(i),
              obs::Histogram::BucketUpperBoundNanos(i - 1));
  }
  EXPECT_TRUE(std::isinf(
      obs::Histogram::BucketUpperBound(obs::Histogram::kBuckets - 1)));

  h->Observe(3e-9);    // 3 ns: the exact small-value region (bucket == n).
  h->Observe(0.5e-6);  // 500 ns: a log bucket.
  h->Observe(1e9);     // Far past the 2^42ns range: overflow bucket.
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(h->Count(), 3);
  const auto buckets = h->BucketCounts();
  EXPECT_EQ(buckets[3], 1);
  EXPECT_EQ(buckets[static_cast<std::size_t>(
                obs::Histogram::BucketIndex(500))],
            1);
  EXPECT_EQ(buckets.back(), 1);
  std::int64_t total = 0;
  for (std::int64_t b : buckets) total += b;
  EXPECT_EQ(total, 3);
  EXPECT_GT(h->Sum(), 0.0);
  EXPECT_NEAR(h->Max(), 1e9, 1e-9 * 1e9 + 5e9);  // Clamped into range.
#else
  EXPECT_EQ(h->Count(), 0);
#endif
}

TEST_F(ObsTest, HistogramBucketIndexInvariants) {
  using H = obs::Histogram;
  // Small values are stored exactly: bucket n covers exactly {n} for n<32.
  for (std::int64_t n = 0; n < H::kSubBucketCount; ++n) {
    EXPECT_EQ(H::BucketIndex(n), static_cast<int>(n));
    EXPECT_EQ(H::BucketUpperBoundNanos(static_cast<int>(n)), n);
  }
  // Every bucket contains its own upper bound, upper bounds are tight
  // (UB+1 lands in a later bucket), and the relative bucket width is at
  // most 1/kSubBucketCount of the value.
  Rng rng(7);
  for (int trial = 0; trial < 20000; ++trial) {
    // Log-uniform nanos across the whole tracked range.
    const double log_max = 42.0 * 0.6931471805599453;
    const std::int64_t n = static_cast<std::int64_t>(
        std::exp(rng.NextDouble() * log_max));
    const int i = H::BucketIndex(n);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, H::kBuckets);
    const std::int64_t ub = H::BucketUpperBoundNanos(i);
    if (i < H::kBuckets - 1) {
      EXPECT_LE(n, ub) << n;
      EXPECT_GT(H::BucketIndex(ub + 1), i) << n;
      const std::int64_t lb =
          (i == 0) ? 0 : H::BucketUpperBoundNanos(i - 1) + 1;
      EXPECT_GE(n, lb) << n;
      // Relative error of reporting UB for any member of the bucket.
      EXPECT_LE(static_cast<double>(ub - lb),
                static_cast<double>(lb) / H::kSubBucketCount + 1.0)
          << n;
    }
  }
  // Negative and absurd inputs clamp instead of indexing out of range.
  EXPECT_EQ(H::BucketIndex(-5), 0);
  EXPECT_EQ(H::BucketIndex(std::numeric_limits<std::int64_t>::max() / 2),
            H::kBuckets - 1);
}

TEST_F(ObsTest, HistogramQuantilesMatchExactWithinBucketError) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.hq");
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Mixture: microseconds-scale mass plus a sparse millisecond tail, the
    // shape of a real latency histogram.
    double seconds = 1e-6 * std::exp(3.0 * rng.NextDouble());
    if (i % 50 == 0) seconds *= 1000.0;
    values.push_back(seconds);
    h->Observe(seconds);
  }
#if DPCOPULA_OBS_ENABLED
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const auto rank = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(q * static_cast<double>(sorted.size()))));
    const double exact = sorted[static_cast<std::size_t>(rank - 1)];
    const double got = h->Quantile(q);
    // The reported quantile is the inclusive bucket upper bound: never
    // below the true quantile (modulo 1ns double->int truncation), above
    // it by at most the relative bucket width.
    EXPECT_GE(got, exact - 2e-9) << "q=" << q;
    EXPECT_LE(got, exact * (1.0 + 1.0 / obs::Histogram::kSubBucketCount) +
                       2e-9)
        << "q=" << q;
  }
  const obs::Histogram::Summary summary = h->GetSummary();
  EXPECT_EQ(summary.count, static_cast<std::int64_t>(values.size()));
  EXPECT_EQ(summary.p50, h->Quantile(0.5));
  EXPECT_EQ(summary.p999, h->Quantile(0.999));
  EXPECT_LE(summary.p50, summary.p90);
  EXPECT_LE(summary.p90, summary.p99);
  EXPECT_LE(summary.p99, summary.p999);
  EXPECT_LE(summary.p999, summary.max_seconds *
                              (1.0 + 1.0 / obs::Histogram::kSubBucketCount));
#else
  EXPECT_EQ(h->Quantile(0.5), 0.0);
#endif
}

TEST_F(ObsTest, HistogramEmptyAndSingleObservationQuantiles) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.hq1");
  EXPECT_EQ(h->Quantile(0.5), 0.0);  // Empty histogram.
  h->Observe(1.5e-3);
#if DPCOPULA_OBS_ENABLED
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_GE(h->Quantile(q), 1.5e-3 * (1.0 - 1e-9) - 2e-9);
    EXPECT_LE(h->Quantile(q),
              1.5e-3 * (1.0 + 1.0 / obs::Histogram::kSubBucketCount));
  }
#endif
}

TEST_F(ObsTest, HistogramConcurrentObserveAndQuantile) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.hc");
  constexpr std::size_t kItems = 20000;
  // Writers on pool workers race with Quantile/GetSummary readers; TSan
  // verifies the lock-free claim, the exact count verifies no lost update.
  ParallelFor(
      0, kItems, /*grain=*/128,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          h->Observe(1e-6 * static_cast<double>(1 + (i & 1023)));
          if ((i & 511) == 0) {
            const double q = h->Quantile(0.9);
            EXPECT_GE(q, 0.0);  // Racy but always well-formed.
            (void)h->GetSummary();
          }
        }
      },
      /*num_threads=*/8);
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(h->Count(), static_cast<std::int64_t>(kItems));
  EXPECT_GT(h->Quantile(0.5), 0.0);
#else
  EXPECT_EQ(h->Count(), 0);
#endif
}

TEST_F(ObsTest, RegistryReturnsStablePointersAndSnapshots) {
  obs::Counter* a = obs::MetricsRegistry::Global().GetCounter("obs_test.c1");
  obs::Counter* b = obs::MetricsRegistry::Global().GetCounter("obs_test.c1");
  EXPECT_EQ(a, b);
  a->Add(5);
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const auto it = std::find_if(
      snapshot.begin(), snapshot.end(),
      [](const auto& m) { return m.name == "obs_test.c1"; });
  ASSERT_NE(it, snapshot.end());
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(it->counter_value, 5);
#endif
}

// ---------------------------------------------------------------------------
// Tracing.

TEST_F(ObsTest, SpansNestViaThreadLocalStack) {
  {
    obs::Span outer("outer");
    {
      obs::Span middle("middle");
      obs::Span inner("inner");
      (void)inner;
      (void)middle;
    }
    obs::Span sibling("sibling");
    (void)sibling;
    (void)outer;
  }
#if DPCOPULA_OBS_ENABLED
  const auto spans = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  std::map<std::string, obs::SpanRecord> by_name;
  for (const auto& s : spans) by_name[s.name] = s;
  EXPECT_EQ(by_name["outer"].parent, obs::kNoSpan);
  EXPECT_EQ(by_name["middle"].parent, by_name["outer"].id);
  EXPECT_EQ(by_name["inner"].parent, by_name["middle"].id);
  EXPECT_EQ(by_name["sibling"].parent, by_name["outer"].id);
  for (const auto& s : spans) EXPECT_GE(s.duration_ns, 0);
#else
  EXPECT_TRUE(obs::Tracer::Global().Snapshot().empty());
#endif
}

TEST_F(ObsTest, ExplicitParentAttachesPoolWorkerSpans) {
  obs::SpanId parent_id = obs::kNoSpan;
  {
    obs::Span phase("phase");
    parent_id = phase.id();
    // Pool workers have an empty thread-local span stack; the explicit
    // handle is the only way these children can attach to `phase`.
    ParallelFor(
        0, 8, /*grain=*/1,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            obs::Span child("worker_child", parent_id);
            (void)child;
          }
        },
        /*num_threads=*/4);
  }
#if DPCOPULA_OBS_ENABLED
  const auto spans = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 9u);
  int children = 0;
  for (const auto& s : spans) {
    if (s.name == "worker_child") {
      EXPECT_EQ(s.parent, parent_id);
      ++children;
    }
  }
  EXPECT_EQ(children, 8);
#endif
}

TEST_F(ObsTest, ResetDropsRecordedSpans) {
  { obs::Span s("to_drop"); }
  obs::Tracer::Global().Reset();
  EXPECT_TRUE(obs::Tracer::Global().Snapshot().empty());
  EXPECT_EQ(obs::Tracer::Global().dropped(), 0);
}

TEST_F(ObsTest, TracerBufferIsBoundedAndCountsDrops) {
  constexpr std::size_t kExtra = 100;
  for (std::size_t i = 0; i < obs::Tracer::kMaxSpans + kExtra; ++i) {
    obs::Span s("flood");
  }
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(obs::Tracer::Global().Snapshot().size(), obs::Tracer::kMaxSpans);
  EXPECT_EQ(obs::Tracer::Global().dropped(),
            static_cast<std::int64_t>(kExtra));
  // The overflow also surfaces as a metric so dashboards see it without
  // walking the span buffer.
  obs::Counter* dropped_counter =
      obs::MetricsRegistry::Global().GetCounter("trace.spans_dropped");
  EXPECT_EQ(dropped_counter->Value(), static_cast<std::int64_t>(kExtra));
  // Reset drains the buffer; new spans record again.
  obs::Tracer::Global().Reset();
  { obs::Span s("after_reset"); }
  EXPECT_EQ(obs::Tracer::Global().Snapshot().size(), 1u);
  EXPECT_EQ(obs::Tracer::Global().dropped(), 0);
#else
  EXPECT_TRUE(obs::Tracer::Global().Snapshot().empty());
#endif
}

// ---------------------------------------------------------------------------
// Chrome trace exporter.

obs::SpanRecord MakeSpan(obs::SpanId id, obs::SpanId parent,
                         const std::string& name, std::int64_t start_ns,
                         std::int64_t duration_ns, int thread_index) {
  obs::SpanRecord r;
  r.id = id;
  r.parent = parent;
  r.name = name;
  r.start_ns = start_ns;
  r.duration_ns = duration_ns;
  r.thread_index = thread_index;
  return r;
}

TEST_F(ObsTest, ChromeTraceRendersWellFormedCompleteEvents) {
  std::vector<obs::SpanRecord> spans;
  spans.push_back(MakeSpan(1, obs::kNoSpan, "synthesize", 1000, 900000, 0));
  spans.push_back(MakeSpan(2, 1, "margins", 2500, 10000, 0));
  spans.push_back(MakeSpan(3, 1, "sampling", 20000, 800500, 2));
  const std::string json = obs::RenderChromeTraceJson(spans, 7);
  EXPECT_TRUE(JsonChecker::Valid(json)) << json.substr(0, 400);

  // One "X" (complete) event per span with microsecond ts/dur at
  // nanosecond precision, pid 1, and the recording thread as tid.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"synthesize\", \"cat\": \"dpcopula\", "
                      "\"ph\": \"X\", \"ts\": 1.000, \"dur\": 900.000, "
                      "\"pid\": 1, \"tid\": 0"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ts\": 2.500, \"dur\": 10.000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 2"), std::string::npos);
  // Parent linkage travels in args for tooling that reconstructs the tree.
  EXPECT_NE(json.find("\"args\": {\"id\": 2, \"parent\": 1}"),
            std::string::npos);
  // Metadata events name the process and each thread track.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread-2\""), std::string::npos);
  // The drop count is surfaced in otherData (as a string, per the format).
  EXPECT_NE(json.find("\"dropped_spans\": \"7\""), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceNestedSpansStayContained) {
  { 
    obs::Span outer("outer");
    obs::Span inner("inner");
    (void)outer;
    (void)inner;
  }
#if DPCOPULA_OBS_ENABLED
  const auto spans = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const auto& inner =
      spans[0].name == "inner" ? spans[0] : spans[1];
  const auto& outer =
      spans[0].name == "outer" ? spans[0] : spans[1];
  // Chrome interprets [ts, ts+dur]; the child interval must sit inside the
  // parent for the render to nest.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
  const std::string json = obs::RenderChromeTraceJson();
  EXPECT_TRUE(JsonChecker::Valid(json));
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
#endif
}

TEST_F(ObsTest, ChromeTraceEmptyTraceIsValid) {
  const std::string json = obs::RenderChromeTraceJson({}, 0);
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": \"0\""), std::string::npos);
  // Names with JSON metacharacters must render escaped, not raw.
  std::vector<obs::SpanRecord> spans;
  spans.push_back(MakeSpan(1, obs::kNoSpan, "quote\"back\\\\slash", 0, 10, 0));
  const std::string escaped = obs::RenderChromeTraceJson(spans, 0);
  EXPECT_TRUE(JsonChecker::Valid(escaped)) << escaped;
}

// ---------------------------------------------------------------------------
// Run report JSON.

data::Table MakeTable(std::uint64_t seed, std::size_t rows = 600) {
  Rng rng(seed);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 40),
      data::MarginSpec::Zipf("b", 30, 1.0),
      data::MarginSpec::Uniform("c", 20)};
  return *data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(3, 0.4), rows, &rng);
}

TEST_F(ObsTest, RunReportJsonRoundTrips) {
  data::Table table = MakeTable(11);
  core::DpCopulaOptions options;
  options.epsilon = 1.0;
  options.num_threads = 4;
  Rng rng(5);
  auto result = core::Synthesize(table, options, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const obs::BudgetAudit audit = obs::AuditFrom(result->budget);
  const std::string json = obs::RenderRunReportJson(&audit);
  ASSERT_TRUE(JsonChecker::Valid(json)) << json.substr(0, 400);

  // The audit must carry the full charge log and sum to options.epsilon.
  EXPECT_NEAR(audit.spent, options.epsilon, 1e-9);
  double entry_sum = 0.0;
  for (const auto& entry : audit.entries) entry_sum += entry.epsilon;
  EXPECT_NEAR(entry_sum, options.epsilon, 1e-9);
  const std::size_t entries_pos = json.find("\"entries\"");
  ASSERT_NE(entries_pos, std::string::npos);
  EXPECT_NEAR(SumNumbersForKey(json, "epsilon", entries_pos),
              options.epsilon, 1e-9);

#if DPCOPULA_OBS_ENABLED
  // Phase spans from the pipeline.
  for (const char* phase :
       {"\"synthesize\"", "\"budget_split\"", "\"margins\"",
        "\"correlation\"", "\"sampling\""}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }
  // Counters from at least 4 instrumented modules.
  int modules = 0;
  for (const char* prefix : {"\"core.", "\"kendall.", "\"marginals.",
                             "\"parallel.", "\"sampler."}) {
    if (json.find(prefix) != std::string::npos) ++modules;
  }
  EXPECT_GE(modules, 4);
#endif

  // Null audit must also render valid JSON (eval / sample-only modes).
  const std::string no_budget = obs::RenderRunReportJson(nullptr);
  EXPECT_TRUE(JsonChecker::Valid(no_budget));
  EXPECT_EQ(no_budget.find("\"budget\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The core guarantee: observability never changes released bytes.

bool TablesEqual(const data::Table& a, const data::Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (std::size_t j = 0; j < a.num_columns(); ++j) {
    if (a.column(j) != b.column(j)) return false;
  }
  return true;
}

TEST_F(ObsTest, ObsOnVersusOffIsByteIdentical) {
  data::Table table = MakeTable(21);
  core::DpCopulaOptions options;
  options.epsilon = 0.8;

  auto run = [&](bool obs_on, int threads) {
    obs::ObsConfig config;
    if (obs_on) {
      config.metrics = true;
      config.trace = true;
    }
    obs::SetObsConfig(config);
    options.num_threads = threads;
    Rng rng(123);
    auto result = core::Synthesize(table, options, &rng);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result->synthetic);
  };

  const data::Table off_1 = run(false, 1);
  const data::Table on_1 = run(true, 1);
  const data::Table on_7 = run(true, 7);
  const data::Table off_7 = run(false, 7);
  EXPECT_TRUE(TablesEqual(off_1, on_1));
  EXPECT_TRUE(TablesEqual(off_1, on_7));
  EXPECT_TRUE(TablesEqual(off_1, off_7));
}

}  // namespace
}  // namespace dpcopula
