// Observability layer: metric sharding under the shared pool, span-tree
// nesting, the JSON run report, and — most importantly — the guarantee that
// turning obs on or off never changes a single released byte.
//
// Every assertion about recorded values is guarded on DPCOPULA_OBS_ENABLED
// so the suite also passes (and still exercises the no-op stubs) when the
// library is built with -DDPCOPULA_OBS=OFF.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "data/generator.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace dpcopula {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validity checker for the round-trip test: accepts exactly the
// JSON grammar (objects, arrays, strings with escapes, numbers, literals).
// Returns false on any syntax error or trailing garbage.
class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker c(text);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control characters must be escaped.
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// Sums every `"key": <number>` occurrence at or after `from`.
double SumNumbersForKey(const std::string& json, const std::string& key,
                        std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";  // Compact JSON, no space.
  double sum = 0.0;
  for (std::size_t p = json.find(needle, from); p != std::string::npos;
       p = json.find(needle, p + 1)) {
    sum += std::strtod(json.c_str() + p + needle.size(), nullptr);
  }
  return sum;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ObsConfig config;
    config.metrics = true;
    config.trace = true;
    obs::SetObsConfig(config);
    obs::MetricsRegistry::Global().ResetAll();
    obs::Tracer::Global().Reset();
  }
  void TearDown() override { obs::SetObsConfig(obs::ObsConfig{}); }
};

// ---------------------------------------------------------------------------
// Metrics.

TEST_F(ObsTest, CounterShardsAreRaceFreeUnderParallelFor) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("obs_test.sharded");
  constexpr std::size_t kItems = 100000;
  // grain 64 with 8 threads: many concurrent Add() calls from distinct
  // pool workers land in distinct padded slots (TSan verifies the claim).
  ParallelFor(
      0, kItems, /*grain=*/64,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) counter->Increment();
      },
      /*num_threads=*/8);
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(counter->Value(), static_cast<std::int64_t>(kItems));
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0);
#else
  EXPECT_EQ(counter->Value(), 0);
#endif
}

TEST_F(ObsTest, GaugeHoldsLastWrite) {
  obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("obs_test.g");
  gauge->Set(2.5);
  gauge->Set(-7.0);
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(gauge->Value(), -7.0);
#else
  EXPECT_EQ(gauge->Value(), 0.0);
#endif
}

TEST_F(ObsTest, HistogramBucketsObservationsBySeconds) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.h");
  // Bucket bounds are fixed: 1us * 2^i, +inf last. Monotone by definition.
  for (int i = 1; i < obs::Histogram::kBuckets - 1; ++i) {
    EXPECT_GT(obs::Histogram::BucketUpperBound(i),
              obs::Histogram::BucketUpperBound(i - 1));
  }
  EXPECT_TRUE(std::isinf(
      obs::Histogram::BucketUpperBound(obs::Histogram::kBuckets - 1)));

  h->Observe(0.5e-6);  // First bucket.
  h->Observe(3.0e-6);  // A middle bucket.
  h->Observe(1e9);     // Overflow bucket.
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(h->Count(), 3);
  const auto buckets = h->BucketCounts();
  EXPECT_EQ(buckets.front(), 1);
  EXPECT_EQ(buckets.back(), 1);
  std::int64_t total = 0;
  for (std::int64_t b : buckets) total += b;
  EXPECT_EQ(total, 3);
  EXPECT_GT(h->Sum(), 0.0);
#else
  EXPECT_EQ(h->Count(), 0);
#endif
}

TEST_F(ObsTest, RegistryReturnsStablePointersAndSnapshots) {
  obs::Counter* a = obs::MetricsRegistry::Global().GetCounter("obs_test.c1");
  obs::Counter* b = obs::MetricsRegistry::Global().GetCounter("obs_test.c1");
  EXPECT_EQ(a, b);
  a->Add(5);
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const auto it = std::find_if(
      snapshot.begin(), snapshot.end(),
      [](const auto& m) { return m.name == "obs_test.c1"; });
  ASSERT_NE(it, snapshot.end());
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(it->counter_value, 5);
#endif
}

// ---------------------------------------------------------------------------
// Tracing.

TEST_F(ObsTest, SpansNestViaThreadLocalStack) {
  {
    obs::Span outer("outer");
    {
      obs::Span middle("middle");
      obs::Span inner("inner");
      (void)inner;
      (void)middle;
    }
    obs::Span sibling("sibling");
    (void)sibling;
    (void)outer;
  }
#if DPCOPULA_OBS_ENABLED
  const auto spans = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  std::map<std::string, obs::SpanRecord> by_name;
  for (const auto& s : spans) by_name[s.name] = s;
  EXPECT_EQ(by_name["outer"].parent, obs::kNoSpan);
  EXPECT_EQ(by_name["middle"].parent, by_name["outer"].id);
  EXPECT_EQ(by_name["inner"].parent, by_name["middle"].id);
  EXPECT_EQ(by_name["sibling"].parent, by_name["outer"].id);
  for (const auto& s : spans) EXPECT_GE(s.duration_ns, 0);
#else
  EXPECT_TRUE(obs::Tracer::Global().Snapshot().empty());
#endif
}

TEST_F(ObsTest, ExplicitParentAttachesPoolWorkerSpans) {
  obs::SpanId parent_id = obs::kNoSpan;
  {
    obs::Span phase("phase");
    parent_id = phase.id();
    // Pool workers have an empty thread-local span stack; the explicit
    // handle is the only way these children can attach to `phase`.
    ParallelFor(
        0, 8, /*grain=*/1,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            obs::Span child("worker_child", parent_id);
            (void)child;
          }
        },
        /*num_threads=*/4);
  }
#if DPCOPULA_OBS_ENABLED
  const auto spans = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 9u);
  int children = 0;
  for (const auto& s : spans) {
    if (s.name == "worker_child") {
      EXPECT_EQ(s.parent, parent_id);
      ++children;
    }
  }
  EXPECT_EQ(children, 8);
#endif
}

TEST_F(ObsTest, ResetDropsRecordedSpans) {
  { obs::Span s("to_drop"); }
  obs::Tracer::Global().Reset();
  EXPECT_TRUE(obs::Tracer::Global().Snapshot().empty());
  EXPECT_EQ(obs::Tracer::Global().dropped(), 0);
}

// ---------------------------------------------------------------------------
// Run report JSON.

data::Table MakeTable(std::uint64_t seed, std::size_t rows = 600) {
  Rng rng(seed);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 40),
      data::MarginSpec::Zipf("b", 30, 1.0),
      data::MarginSpec::Uniform("c", 20)};
  return *data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(3, 0.4), rows, &rng);
}

TEST_F(ObsTest, RunReportJsonRoundTrips) {
  data::Table table = MakeTable(11);
  core::DpCopulaOptions options;
  options.epsilon = 1.0;
  options.num_threads = 4;
  Rng rng(5);
  auto result = core::Synthesize(table, options, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const obs::BudgetAudit audit = obs::AuditFrom(result->budget);
  const std::string json = obs::RenderRunReportJson(&audit);
  ASSERT_TRUE(JsonChecker::Valid(json)) << json.substr(0, 400);

  // The audit must carry the full charge log and sum to options.epsilon.
  EXPECT_NEAR(audit.spent, options.epsilon, 1e-9);
  double entry_sum = 0.0;
  for (const auto& entry : audit.entries) entry_sum += entry.epsilon;
  EXPECT_NEAR(entry_sum, options.epsilon, 1e-9);
  const std::size_t entries_pos = json.find("\"entries\"");
  ASSERT_NE(entries_pos, std::string::npos);
  EXPECT_NEAR(SumNumbersForKey(json, "epsilon", entries_pos),
              options.epsilon, 1e-9);

#if DPCOPULA_OBS_ENABLED
  // Phase spans from the pipeline.
  for (const char* phase :
       {"\"synthesize\"", "\"budget_split\"", "\"margins\"",
        "\"correlation\"", "\"sampling\""}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }
  // Counters from at least 4 instrumented modules.
  int modules = 0;
  for (const char* prefix : {"\"core.", "\"kendall.", "\"marginals.",
                             "\"parallel.", "\"sampler."}) {
    if (json.find(prefix) != std::string::npos) ++modules;
  }
  EXPECT_GE(modules, 4);
#endif

  // Null audit must also render valid JSON (eval / sample-only modes).
  const std::string no_budget = obs::RenderRunReportJson(nullptr);
  EXPECT_TRUE(JsonChecker::Valid(no_budget));
  EXPECT_EQ(no_budget.find("\"budget\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The core guarantee: observability never changes released bytes.

bool TablesEqual(const data::Table& a, const data::Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (std::size_t j = 0; j < a.num_columns(); ++j) {
    if (a.column(j) != b.column(j)) return false;
  }
  return true;
}

TEST_F(ObsTest, ObsOnVersusOffIsByteIdentical) {
  data::Table table = MakeTable(21);
  core::DpCopulaOptions options;
  options.epsilon = 0.8;

  auto run = [&](bool obs_on, int threads) {
    obs::ObsConfig config;
    if (obs_on) {
      config.metrics = true;
      config.trace = true;
    }
    obs::SetObsConfig(config);
    options.num_threads = threads;
    Rng rng(123);
    auto result = core::Synthesize(table, options, &rng);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result->synthetic);
  };

  const data::Table off_1 = run(false, 1);
  const data::Table on_1 = run(true, 1);
  const data::Table on_7 = run(true, 7);
  const data::Table off_7 = run(false, 7);
  EXPECT_TRUE(TablesEqual(off_1, on_1));
  EXPECT_TRUE(TablesEqual(off_1, on_7));
  EXPECT_TRUE(TablesEqual(off_1, off_7));
}

}  // namespace
}  // namespace dpcopula
